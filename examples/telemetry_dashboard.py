#!/usr/bin/env python3
"""Replay a telemetry JSONL sink into a terminal dashboard.

Any serving command can write its full trace to disk::

    python -m repro cluster-sim --elastic --telemetry out.jsonl

This example replays such a sink (generating one first if no path is
given) and renders what an operator would want on one screen:

* a **per-shard latency table** — batch count, total/mean/p50/p99 batch
  wall-clock from the ``repro_shard_batch_seconds{shard=...}`` histogram
  cells, plus the lossless all-shard roll-up (histograms with equal
  buckets merge exactly);
* the **cluster timeline** — every elastic action and migration span in
  sequence order, with durations;
* the **slowest batch, attributed** — the causal trace's worst batch-like
  root span, its wall time bucketed into acquisition / evaluation /
  plan_cache / migration / elastic / telemetry / residue, and the
  critical path (the chain of latest-finishing spans) through it;
* the **tail of the workload** — per-query p50/p99 round cost for the
  costliest queries, straight from the final snapshot.

Run: python examples/telemetry_dashboard.py [telemetry.jsonl]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.experiments import ascii_table
from repro.obs import (
    Histogram,
    attribute,
    build_forest,
    critical_path,
    latest_snapshot,
    read_jsonl,
)
from repro.obs.analyze import ATTRIBUTION_BUCKETS


def generate_demo_sink(path: Path) -> None:
    """Drive a small elastic cluster with telemetry attached."""
    from repro.adaptive import ElasticPolicy
    from repro.cluster import ClusterServer
    from repro.generators import clustered_registry, overlap_clustered_population
    from repro.obs import Telemetry

    registry = clustered_registry(4, 3, seed=7)
    population = overlap_clustered_population(48, registry, 4, 3, seed=8)
    telemetry = Telemetry(sink=path)
    cluster = ClusterServer(
        registry,
        n_shards=2,
        seed=9,
        telemetry=telemetry,
        elastic=ElasticPolicy(target_shard_queries=16, min_split_size=4),
    )
    with telemetry.finally_snapshot():
        cluster.register_population(population[:24])
        cluster.run_batch(6)
        for name, tree in population[24:]:
            cluster.register(name, tree)
        cluster.run_batch(6)
        cluster.resize(2)
        cluster.run_batch(4)
    print(f"demo telemetry written to {path} ({telemetry.tracer.emitted} records)\n")


def shard_latency_table(snapshot: dict) -> str:
    cells = [
        cell
        for cell in snapshot["metrics"]["histograms"]
        if cell["name"] == "repro_shard_batch_seconds"
    ]
    rows = []
    merged: Histogram | None = None
    for cell in sorted(cells, key=lambda c: c["labels"].get("shard", "")):
        hist = Histogram.from_snapshot(cell)
        merged = hist if merged is None else merged.merge(hist)
        rows.append(
            (
                f"shard {cell['labels']['shard']}",
                str(hist.count),
                f"{hist.total * 1e3:.2f}",
                f"{hist.mean * 1e3:.3f}",
                f"{hist.percentile(50.0) * 1e3:.3f}",
                f"{hist.percentile(99.0) * 1e3:.3f}",
            )
        )
    if merged is not None:
        rows.append(
            (
                "all shards",
                str(merged.count),
                f"{merged.total * 1e3:.2f}",
                f"{merged.mean * 1e3:.3f}",
                f"{merged.percentile(50.0) * 1e3:.3f}",
                f"{merged.percentile(99.0) * 1e3:.3f}",
            )
        )
    return ascii_table(
        ("shard", "batches", "total ms", "mean ms", "p50 ms", "p99 ms"), rows
    )


def timeline(records: list[dict]) -> list[str]:
    lines = []
    for record in records:
        kind, name = record.get("type"), record.get("name")
        attrs = record.get("attrs", {})
        if kind == "event" and name == "elastic-action":
            lines.append(
                f"  [{record['seq']:>4}] elastic {attrs.get('kind'):<14}"
                f" round {attrs.get('round')}  shard {attrs.get('shard')}"
                f"  moves {attrs.get('moves')}  ({attrs.get('duration', 0) * 1e3:.2f} ms)"
            )
        elif kind == "span" and name == "migration":
            lines.append(
                f"  [{record['seq']:>4}] migrate {attrs.get('queries')} queries"
                f" shard {attrs.get('src')} -> {attrs.get('dest')}"
                f"  ({record.get('dur', 0) * 1e3:.2f} ms)"
            )
    return lines


def slowest_batch_attribution(records: list[dict]) -> list[str]:
    """Attribution + critical path for the trace's worst batch root."""
    forest = build_forest(records)
    roots = forest.batch_roots()
    if not roots:
        return []
    slowest = max(roots, key=lambda root: root.dur)
    att = attribute(slowest)
    lines = [
        f"  {slowest.name} (pid {slowest.pid}): wall "
        f"{slowest.dur * 1e3:.3f} ms, {att.coverage:.1%} attributed"
    ]
    for bucket in ATTRIBUTION_BUCKETS:
        seconds = att.residue if bucket == "residue" else att.buckets[bucket]
        if seconds > 0.0:
            lines.append(f"    {bucket:<12} {seconds * 1e3:9.3f} ms")
    chain = " -> ".join(
        f"{node.name}[{node.dur * 1e3:.2f} ms]" for node in critical_path(slowest)
    )
    lines.append(f"    critical path: {chain}")
    return lines


def costliest_queries(snapshot: dict, top: int = 8) -> str:
    cells = [
        cell
        for cell in snapshot["metrics"]["histograms"]
        if cell["name"] == "repro_query_round_cost"
    ]
    cells.sort(key=lambda c: c["sum"], reverse=True)
    rows = [
        (
            cell["labels"]["query"],
            str(cell["count"]),
            f"{cell['sum'] / cell['count']:.4g}",
            f"{cell['p50']:.4g}",
            f"{cell['p99']:.4g}",
        )
        for cell in cells[:top]
    ]
    return ascii_table(("query", "rounds", "mean cost", "p50", "p99"), rows)


def main() -> int:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
    else:
        path = Path(tempfile.gettempdir()) / "repro_telemetry_demo.jsonl"
        generate_demo_sink(path)

    records = read_jsonl(path)
    snapshot = latest_snapshot(records)
    if snapshot is None:
        print(f"{path} holds no metrics snapshot; re-run with --telemetry")
        return 1

    print(f"replaying {path}: {len(records)} records\n")
    print("per-shard batch latency")
    print(shard_latency_table(snapshot))
    events = timeline(records)
    if events:
        print("\ncluster timeline (elastic actions and migrations)")
        print("\n".join(events))
    attribution = slowest_batch_attribution(records)
    if attribution:
        print("\nslowest batch, attributed (see also: repro trace --format critical-path)")
        print("\n".join(attribution))
    print("\ncostliest queries (per-round cost distribution)")
    print(costliest_queries(snapshot))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
