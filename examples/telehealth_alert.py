#!/usr/bin/env python3
"""Telehealth alerting — the paper's §I motivating scenario, end to end.

"An alert may be generated either if the heart rate is high and the
accelerometer is stationary, or if the heart rate is low and SPO2 (blood
oxygen saturation) is low." The HR stream appears in both conjunctions —
a *shared* query.

Pipeline demonstrated:
1. synthetic wearable sensors (random-walk HR, periodic accelerometer,
   Gaussian SPO2) behind a stream registry with BLE energy costs;
2. predicate success probabilities estimated by profiling historical data
   (the paper's "historical traces");
3. schedules from three schedulers (prior art stream-ordered [4], the
   paper's best heuristic, and the exhaustive optimum);
4. continuous query sessions measuring *actual* energy over 500 rounds on
   the same data, plus battery-life projections.

Run: python examples/telehealth_alert.py
"""

import numpy as np

from repro import DnfTree, dnf_schedule_cost
from repro.core.dnf_optimal import optimal_depth_first
from repro.core.heuristics import get_scheduler
from repro.core.heuristics.base import Scheduler
from repro.core.schedule import Schedule
from repro.core.tree import DnfTree as _DnfTree
from repro.engine import Battery, ContinuousQuerySession
from repro.predicates import Predicate, leaves_from_predicates
from repro.streams import (
    BLUETOOTH_LE,
    EnergyCost,
    GaussianSource,
    PeriodicSource,
    RandomWalkSource,
    StreamRegistry,
    StreamSpec,
    cost_table,
)


class FixedSchedule(Scheduler):
    """Adapter: wrap a precomputed schedule as a Scheduler."""

    name = "fixed"
    paper_label = "fixed"

    def __init__(self, schedule: Schedule) -> None:
        self._schedule = schedule

    def schedule(self, tree: _DnfTree) -> Schedule:
        return self._schedule


def build_environment() -> tuple[StreamRegistry, dict[str, float]]:
    # Energy model: BLE radio, per-item payload sizes per sensor.
    energy = EnergyCost({"HR": 16, "ACC": 64, "SPO2": 24}, BLUETOOTH_LE)
    costs = cost_table(energy, ["HR", "ACC", "SPO2"])
    registry = StreamRegistry()
    registry.add(
        StreamSpec("HR", costs["HR"], description="heart rate, bpm", medium="ble"),
        RandomWalkSource(start=78, step_std=3.0, seed=101, low=40, high=185),
    )
    registry.add(
        StreamSpec("ACC", costs["ACC"], description="accelerometer magnitude", medium="ble"),
        PeriodicSource(amplitude=0.8, period=30, noise_std=0.35, offset=1.0, seed=102),
    )
    registry.add(
        StreamSpec("SPO2", costs["SPO2"], description="blood oxygen saturation, %", medium="ble"),
        GaussianSource(mean=96.5, std=1.6, seed=103),
    )
    return registry, costs


def main() -> None:
    registry, costs = build_environment()

    predicates = [
        Predicate("HR", "AVG", 5, ">", 95),      # heart rate high
        Predicate("ACC", "STD", 10, "<", 0.55),  # stationary
        Predicate("HR", "AVG", 5, "<", 70),      # heart rate low
        Predicate("SPO2", "MIN", 3, "<", 94),    # SPO2 low
    ]
    print("predicates and their per-item energy costs (joules):")
    for predicate in predicates:
        print(f"  {predicate.text():<22} stream cost {costs[predicate.stream]:.2e} J/item")

    # Profile historical data to estimate success probabilities (§I).
    leaves = leaves_from_predicates(predicates, registry, n_windows=512)
    print("\nestimated success probabilities from historical traces:")
    for leaf in leaves:
        print(f"  {leaf.label:<22} p = {leaf.prob:.3f}")

    # Alert = (HR high AND stationary) OR (HR low AND SPO2 low) — HR shared.
    tree = DnfTree([[leaves[0], leaves[1]], [leaves[2], leaves[3]]], costs)
    print(f"\nquery sharing ratio: {tree.sharing_ratio:.2f} (HR in both AND nodes)")

    schedulers: dict[str, Scheduler] = {
        "stream-ordered (prior art [4])": get_scheduler("stream-ordered"),
        "AND-ord. inc C/p dynamic (paper)": get_scheduler("and-inc-c-over-p-dynamic"),
    }
    optimum = optimal_depth_first(tree)
    schedulers["exhaustive optimum"] = FixedSchedule(optimum.schedule)

    predicate_bindings = dict(enumerate(predicates))
    rounds = 500
    print(f"\nexpected (analytic) vs measured energy over {rounds} rounds:")
    print(f"{'scheduler':<34} {'E[cost]/query':>14} {'measured/round':>15} {'battery life':>13}")
    for name, scheduler in schedulers.items():
        expected = dnf_schedule_cost(tree, scheduler.schedule(tree))
        battery = Battery(capacity_joules=0.5)  # sensing budget share
        session = ContinuousQuerySession(
            tree,
            build_environment()[0],  # fresh sources -> identical data per scheduler
            scheduler,
            predicates=predicate_bindings,
            battery=battery,
        )
        report = session.run(rounds)
        projected = battery.rounds_until_empty(report.mean_cost)
        print(
            f"{name:<34} {expected:>14.6f} {report.mean_cost:>15.6f} "
            f"{projected:>10.0f} rds"
        )
    print(
        "\nNote: measured per-round energy is below the one-shot expectation "
        "because consecutive rounds also share cached items (the analytic "
        "model is per-query; the session adds cross-round reuse)."
    )


if __name__ == "__main__":
    main()
