#!/usr/bin/env python3
"""Quickstart: the paper's worked examples in a dozen lines each.

Covers:
1. the shared AND-tree of Figure 2 (§II-A) — why the classical read-once
   greedy fails and what Algorithm 1 does instead;
2. the DNF tree of Figure 3 (§II-B) — evaluating a schedule's expected cost
   with Proposition 2 and finding the exhaustive optimum;
3. building queries from text with the DSL.

Run: python examples/quickstart.py
"""

from repro import (
    AndTree,
    DnfTree,
    Leaf,
    algorithm1_order,
    and_tree_cost,
    dnf_schedule_cost,
    monte_carlo_cost,
    read_once_order,
)
from repro.core.dnf_optimal import optimal_depth_first
from repro.lang import parse_query, to_expression


def example_1_shared_and_tree() -> None:
    print("=" * 72)
    print("1. Shared AND-tree (paper Figure 2, §II-A)")
    print("=" * 72)
    tree = AndTree(
        [
            Leaf("A", items=1, prob=0.75, label="l1"),
            Leaf("A", items=2, prob=0.10, label="l2"),
            Leaf("B", items=1, prob=0.50, label="l3"),
        ],
        costs={"A": 1.0, "B": 1.0},
    )
    print(tree.describe())

    smith = read_once_order(tree)
    print(f"\nread-once greedy order (Smith's d*c/q rule): {smith}")
    print(f"  expected cost: {and_tree_cost(tree, smith):.4f}   <- suboptimal!")

    optimal = algorithm1_order(tree)
    print(f"Algorithm 1 order: {optimal}")
    print(f"  expected cost: {and_tree_cost(tree, optimal):.4f}  <- the optimum (paper: 1.825)")


def example_2_dnf_tree() -> None:
    print()
    print("=" * 72)
    print("2. DNF tree (paper Figure 3, §II-B)")
    print("=" * 72)
    tree = DnfTree(
        [
            [Leaf("A", 1, 0.5, "l1"), Leaf("C", 1, 0.5, "l3"), Leaf("D", 1, 0.5, "l4")],
            [Leaf("B", 1, 0.5, "l2"), Leaf("C", 1, 0.5, "l5")],
            [Leaf("B", 1, 0.5, "l6"), Leaf("D", 1, 0.5, "l7")],
        ],
        costs={"A": 1.0, "B": 1.0, "C": 1.0, "D": 1.0},
    )
    print(tree.describe())

    # The paper's schedule l1..l7 in global indices:
    schedule = (0, 3, 1, 2, 4, 5, 6)
    analytic = dnf_schedule_cost(tree, schedule)
    simulated = monte_carlo_cost(tree, schedule, n_samples=50_000, seed=0)
    print(f"\nexpected cost of the paper's schedule (Proposition 2): {analytic:.4f}")
    print(
        f"Monte-Carlo check: {simulated.mean:.4f} +/- {simulated.std_error:.4f} "
        f"({simulated.n_samples} simulated executions)"
    )

    best = optimal_depth_first(tree)
    print(
        f"exhaustive optimum (depth-first search, Theorem 2): cost {best.cost:.4f} "
        f"via schedule {best.schedule} ({best.nodes_explored} search nodes)"
    )


def example_3_query_language() -> None:
    print()
    print("=" * 72)
    print("3. Query DSL (the Figure 1(b) shared query)")
    print("=" * 72)
    text = (
        "(AVG(A,5) < 70 p=0.6 AND MAX(B,4) > 100 p=0.3) "
        "OR (C < 3 p=0.5 AND MAX(A,10) > 80 p=0.4)"
    )
    print(f"query: {text}")
    parsed = parse_query(text, costs={"A": 1.0, "B": 2.0, "C": 1.5})
    dnf = parsed.as_dnf()
    print(parsed.tree.describe())
    print(f"stream A appears in two leaves -> shared (rho = {dnf.sharing_ratio:.2f})")

    best = optimal_depth_first(dnf)
    print(f"\noptimal schedule: {best.schedule} with expected cost {best.cost:.4f}")
    print(f"round-trip rendering: {to_expression(dnf)}")


if __name__ == "__main__":
    example_1_shared_and_tree()
    example_2_dnf_tree()
    example_3_query_language()
