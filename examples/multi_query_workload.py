#!/usr/bin/env python3
"""Multi-query workloads: sharing data items *across* queries.

A sensing device rarely runs one query. This example runs three continuous
queries — a telehealth alert, an activity classifier trigger, and a
geofencing check — over the same sensors in one workload, and measures how
much the shared item cache saves compared to running each query on its own
cache. The paper's intra-query sharing argument applies verbatim one level
up: items fetched for query 1 are free for query 2 in the same round.

Run: python examples/multi_query_workload.py
"""

from repro.core.heuristics import get_scheduler
from repro.engine import BernoulliOracle, QueryWorkload, WorkloadQuery
from repro.lang import parse_query
from repro.streams import (
    GaussianSource,
    PeriodicSource,
    RandomWalkSource,
    StreamRegistry,
    StreamSpec,
    UniformSource,
)

COSTS = {"HR": 0.4, "ACC": 0.9, "GPS": 2.5, "SPO2": 0.6}


def build_registry() -> StreamRegistry:
    registry = StreamRegistry()
    registry.add(StreamSpec("HR", COSTS["HR"]), RandomWalkSource(80, 2.5, seed=1, low=40, high=180))
    registry.add(StreamSpec("ACC", COSTS["ACC"]), PeriodicSource(1.0, 25, 0.3, seed=2))
    registry.add(StreamSpec("GPS", COSTS["GPS"]), RandomWalkSource(1.0, 0.7, seed=3, low=0, high=30))
    registry.add(StreamSpec("SPO2", COSTS["SPO2"]), GaussianSource(96.5, 1.5, seed=4))
    return registry


def build_queries():
    scheduler = get_scheduler("and-inc-c-over-p-dynamic")
    health = parse_query(
        "(AVG(HR,5) > 95 p=0.25 AND STD(ACC,10) < 0.5 p=0.4) OR "
        "(AVG(HR,5) < 65 p=0.2 AND MIN(SPO2,3) < 94 p=0.15)",
        costs=COSTS,
    ).as_dnf()
    activity = parse_query(
        "(STD(ACC,10) > 0.8 p=0.5 AND AVG(HR,5) > 90 p=0.3) OR AVG(GPS,4) > 2 p=0.4",
        costs=COSTS,
    ).as_dnf()
    geofence = parse_query(
        "AVG(GPS,4) > 2 p=0.4 AND MAX(GPS,8) > 5 p=0.25",
        costs=COSTS,
    ).as_dnf()
    return [
        WorkloadQuery("health-alert", health, scheduler),
        WorkloadQuery("activity", activity, scheduler),
        WorkloadQuery("geofence", geofence, scheduler),
    ]


def main() -> None:
    rounds = 1_000
    queries = build_queries()
    for query in queries:
        print(f"{query.name}: {query.tree.size} leaves over {query.tree.streams}")

    together = QueryWorkload(
        build_queries(), build_registry(), BernoulliOracle(seed=5)
    ).run(rounds)
    print(f"\nshared cache ({rounds} rounds):")
    print(together.summary())

    isolated_total = 0.0
    print("\neach query on an isolated cache:")
    for query in build_queries():
        report = QueryWorkload(
            [query], build_registry(), BernoulliOracle(seed=5)
        ).run(rounds)
        isolated_total += report.total_cost
        print(f"  {query.name}: {report.total_cost / rounds:.4f}/round")

    saving = 1.0 - together.total_cost / isolated_total
    print(
        f"\nworkload total {together.mean_total_cost:.4f}/round vs "
        f"{isolated_total / rounds:.4f} isolated -> cross-query sharing saves "
        f"{saving * 100:.1f}%"
    )


if __name__ == "__main__":
    main()
