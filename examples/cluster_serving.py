#!/usr/bin/env python3
"""Sharded cluster serving: partition by stream overlap, serve concurrently.

A fleet's query population arrives in interest groups — each group's queries
window the same few streams and share nothing with the others. One
:class:`~repro.service.QueryServer` still serves them correctly, but its
global plan merge compares every query against every other, mostly across
groups that can never share a window. This example:

* generates an overlap-clustered population (6 stream groups, 180 queries);
* partitions it with the stream-overlap partitioner and prints the report
  (everything kept, nothing cut, nothing duplicated);
* serves it on a 6-shard :class:`~repro.cluster.ClusterServer` vs the
  unsharded server — same per-query costs, a multiple of the throughput;
* routes a runtime admission to its home shard, then degrades the placement
  on purpose (random partition) and repairs it with ``rebalance()``.

Run: python examples/cluster_serving.py
"""

from repro.cluster import ClusterServer, default_oracle_factory
from repro.generators import clustered_registry, overlap_clustered_population
from repro.service import QueryServer

N_CLUSTERS, STREAMS_PER_CLUSTER, N_QUERIES, ROUNDS = 6, 4, 180, 10


def build_environment():
    registry = clustered_registry(N_CLUSTERS, STREAMS_PER_CLUSTER, seed=42)
    population = overlap_clustered_population(
        N_QUERIES, registry, N_CLUSTERS, STREAMS_PER_CLUSTER, seed=43
    )
    return registry, population


def main() -> None:
    registry, population = build_environment()

    cluster = ClusterServer(registry, n_shards=N_CLUSTERS, seed=7)
    partition = cluster.register_population(population)
    print(partition.report.describe())

    report = cluster.run_batch(ROUNDS)
    print(f"\n{report.summary()}")

    # The same population, unsharded, with the same per-name oracles: the
    # per-query costs agree exactly — sharding along the overlap graph
    # changes where work runs, never what it costs.
    registry2, population2 = build_environment()
    single = QueryServer(registry2)
    factory = default_oracle_factory(7)
    for name, tree in population2:
        single.register(name, tree, oracle=factory(name))
    single_report = single.run_batch(ROUNDS)
    worst = max(
        abs(single_report.per_query_cost[name] - report.per_query_cost[name])
        for name in single_report.per_query_cost
    )
    print(
        f"\nunsharded server: total cost {single_report.total_cost:.2f} "
        f"(cluster {report.total_cost:.2f}, max per-query delta {worst:.2g})"
    )

    # Runtime admission goes through the router: a query on cluster 2's
    # streams joins cluster 2's shard.
    template = dict(population)["q0002"]  # home cluster 2 (round-robin)
    shard_id = cluster.register("latecomer", template)
    print(
        f"\nrouted 'latecomer' to shard {shard_id} "
        f"(resident q0002 lives on shard {cluster.shard_of('q0002')}, "
        f"router reason: {cluster.router.decisions[-1].reason})"
    )

    # Churn degrades placement; rebalance() repairs it.
    registry3, population3 = build_environment()
    degraded = ClusterServer(registry3, n_shards=N_CLUSTERS, seed=7)
    degraded.register_population(population3, method="random")
    print(f"\ndegraded placement: {degraded.partition_report().kept_fraction:.1%} "
          "of overlap weight kept intra-shard")
    event = degraded.rebalance()
    assert event is not None
    print(event.describe())


if __name__ == "__main__":
    main()
