#!/usr/bin/env python3
"""Non-linear strategies (paper §V future work), demonstrated constructively.

The paper closes by noting that in the shared case, *linear* strategies
(fixed leaf orders) are no longer dominant: an adaptive decision tree that
picks the next leaf based on observed truth values can be strictly cheaper.
This example:

1. shows a concrete 4-leaf shared DNF where the optimal decision tree beats
   the optimal schedule by 7.2%;
2. prints the decision tree so you can see *why* (the branch taken after the
   first leaf changes which stream is worth touching next);
3. searches fresh random instances for more gaps and reports the rate;
4. verifies that in the read-once case the gap vanishes (Greiner et al.'s
   dominance result, reproduced empirically).

Run: python examples/nonlinear_strategies.py
"""

import numpy as np

from repro import DnfTree, Leaf
from repro.core.dnf_optimal import optimal_any_order
from repro.core.nonlinear import (
    StrategyNode,
    find_nonlinear_gap,
    optimal_nonlinear,
    strategy_size,
)


def render_strategy(tree: DnfTree, node: StrategyNode | None, indent: int = 0) -> str:
    pad = "    " * indent
    if node is None:
        return f"{pad}-> query resolved\n"
    leaf = tree.leaves[node.leaf]
    i, j = tree.ref(node.leaf)
    out = f"{pad}evaluate l_{i},{j} ({leaf.stream}[{leaf.items}], p={leaf.prob:g})\n"
    out += f"{pad}  if TRUE:\n" + render_strategy(tree, node.on_true, indent + 1)
    out += f"{pad}  if FALSE:\n" + render_strategy(tree, node.on_false, indent + 1)
    return out


def main() -> None:
    print("=" * 72)
    print("1. A shared instance where adaptivity strictly helps")
    print("=" * 72)
    tree = DnfTree(
        [
            [Leaf("B", 2, 0.4), Leaf("A", 2, 0.1)],
            [Leaf("A", 1, 0.6), Leaf("B", 2, 0.1)],
        ],
        costs={"A": 1.0, "B": 2.0},
    )
    print(tree.describe())

    linear = optimal_any_order(tree)
    strategy, nonlinear_cost = optimal_nonlinear(tree)
    print(f"\noptimal linear schedule:  {linear.schedule}, cost {linear.cost:.4f}")
    print(
        f"optimal decision tree:    cost {nonlinear_cost:.4f} "
        f"({(1 - nonlinear_cost / linear.cost) * 100:.2f}% cheaper, "
        f"{strategy_size(strategy)} decision nodes)"
    )
    print("\nthe decision tree:")
    print(render_strategy(tree, strategy))

    print("=" * 72)
    print("2. How common are gaps in the shared case?")
    print("=" * 72)
    trials = 150
    gaps = find_nonlinear_gap(n_trials=trials, seed=3)
    best = max(gaps, key=lambda g: g.improvement) if gaps else None
    print(
        f"random shared instances with a strict gap: {len(gaps)}/{trials} "
        f"({len(gaps) / trials * 100:.1f}%)"
    )
    if best is not None:
        print(
            f"largest observed improvement: {best.improvement * 100:.2f}% "
            f"(linear {best.linear_cost:.4f} -> nonlinear {best.nonlinear_cost:.4f})"
        )

    print()
    print("=" * 72)
    print("3. Read-once control: the gap must vanish (Greiner et al.)")
    print("=" * 72)
    rng = np.random.default_rng(5)
    checked = 0
    for _ in range(60):
        counter = 0
        groups = []
        for _ in range(int(rng.integers(2, 4))):
            group = []
            for _ in range(int(rng.integers(1, 3))):
                counter += 1
                group.append(Leaf(f"S{counter}", int(rng.integers(1, 3)), float(rng.random())))
            groups.append(group)
        used = {leaf.stream for group in groups for leaf in group}
        read_once = DnfTree(groups, {name: float(rng.uniform(0.5, 5)) for name in used})
        if read_once.size > 6:
            continue
        linear = optimal_any_order(read_once)
        _, nonlinear_cost = optimal_nonlinear(read_once)
        assert abs(linear.cost - nonlinear_cost) < 1e-9 * max(1.0, linear.cost)
        checked += 1
    print(f"verified on {checked} random read-once instances: no gap, as predicted.")


if __name__ == "__main__":
    main()
