#!/usr/bin/env python3
"""Smartphone mobile-sensing: media-aware energy and battery-life planning.

The paper's §I motivation: continuous sensing "can cause commercial
smartphone batteries to be depleted in a few hours". This example models a
context-sensing query over on-device and wearable sensors that communicate
over *different media* (local bus, BLE, WiFi), derives per-item costs from
an energy model, and shows how much battery life the choice of leaf
evaluation order buys — including what happens when probability estimates
are learned online (replanning).

Query: "user is in a risky commute context"
    (GPS speed high AND phone stationary-in-hand) OR
    (ambient noise high AND GPS speed high) OR
    (WiFi scan dense AND ambient noise high)
GPS and noise streams are shared across conjunctions.

Run: python examples/smartphone_sensing.py
"""

from repro import DnfTree, dnf_schedule_cost
from repro.core.heuristics import get_scheduler, make_paper_heuristics
from repro.engine import Battery, BernoulliOracle, ContinuousQuerySession
from repro.lang import to_expression
from repro.predicates import Predicate, leaves_from_predicates
from repro.streams import (
    BLUETOOTH_LE,
    WIFI,
    EnergyCost,
    GaussianSource,
    MarkovChainSource,
    Medium,
    PeriodicSource,
    RandomWalkSource,
    StreamRegistry,
    StreamSpec,
    cost_table,
)

#: On-device sensors cost almost nothing to read; radios dominate.
LOCAL_BUS = Medium("local", joules_per_byte=5.0e-9, joules_per_transfer=1.0e-6)


def build_environment() -> tuple[StreamRegistry, dict[str, float]]:
    energy = EnergyCost(
        item_bytes={"GPS": 128, "IMU": 32, "MIC": 256, "WIFI": 512},
        medium={"GPS": LOCAL_BUS, "IMU": BLUETOOTH_LE, "MIC": LOCAL_BUS, "WIFI": WIFI},
    )
    costs = cost_table(energy, ["GPS", "IMU", "MIC", "WIFI"])
    registry = StreamRegistry()
    registry.add(
        StreamSpec("GPS", costs["GPS"], description="speed, m/s"),
        RandomWalkSource(start=1.0, step_std=0.8, seed=7, low=0.0, high=35.0),
    )
    registry.add(
        StreamSpec("IMU", costs["IMU"], description="wrist motion", medium="ble"),
        PeriodicSource(amplitude=1.0, period=40, noise_std=0.4, offset=1.2, seed=8),
    )
    registry.add(
        StreamSpec("MIC", costs["MIC"], description="ambient noise, dB"),
        GaussianSource(mean=55.0, std=12.0, seed=9),
    )
    registry.add(
        StreamSpec("WIFI", costs["WIFI"], description="APs per scan", medium="wifi"),
        MarkovChainSource(
            values=[2.0, 8.0, 25.0],
            transition=[[0.8, 0.15, 0.05], [0.2, 0.6, 0.2], [0.05, 0.25, 0.7]],
            seed=10,
        ),
    )
    return registry, costs


def main() -> None:
    registry, costs = build_environment()
    predicates = [
        Predicate("GPS", "AVG", 4, ">", 3.0),    # moving fast
        Predicate("IMU", "STD", 8, "<", 0.6),    # phone steady
        Predicate("MIC", "AVG", 6, ">", 65.0),   # loud environment
        Predicate("GPS", "AVG", 4, ">", 3.0),    # (shared with leaf 0)
        Predicate("WIFI", "LAST", 1, ">", 15.0), # dense AP environment
        Predicate("MIC", "AVG", 6, ">", 65.0),   # (shared with leaf 2)
    ]
    leaves = leaves_from_predicates(predicates, registry, n_windows=400)
    tree = DnfTree(
        [[leaves[0], leaves[1]], [leaves[2], leaves[3]], [leaves[4], leaves[5]]],
        costs,
    )
    print("query:", to_expression(tree))
    print(f"sharing ratio: {tree.sharing_ratio:.2f} (GPS and MIC each in two ANDs)\n")

    print("expected energy per query evaluation (joules), all ten heuristics:")
    ranked = sorted(
        (
            (dnf_schedule_cost(tree, h.schedule(tree)), name)
            for name, h in make_paper_heuristics(seed=0).items()
        )
    )
    for cost, name in ranked:
        bar = "#" * int(round(cost / ranked[-1][0] * 40))
        print(f"  {name:<26} {cost:.3e} J {bar}")

    best_name = ranked[0][1]
    worst_name = ranked[-1][1]
    # Battery projection: a 36 kJ battery with 2% budgeted for this query.
    budget = 36_000.0 * 0.02
    print(f"\nsensing budget: {budget:.0f} J; one query per second.")
    for name in (worst_name, best_name):
        scheduler = get_scheduler(name, seed=0) if name == "leaf-random" else get_scheduler(name)
        session = ContinuousQuerySession(
            tree,
            build_environment()[0],
            scheduler,
            oracle=BernoulliOracle(seed=99),
            battery=Battery(budget),
            replan_every=0,
        )
        report = session.run(2_000)
        hours = report.battery.rounds_until_empty(report.mean_cost) / 3600.0
        print(
            f"  {name:<26} measured {report.mean_cost:.3e} J/round -> "
            f"~{hours:,.1f} h of further sensing"
        )
    print(
        "\nThe scheduler choice alone changes projected sensing lifetime by "
        "the ratio above — the paper's motivation in user-facing units."
    )


if __name__ == "__main__":
    main()
