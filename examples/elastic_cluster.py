#!/usr/bin/env python3
"""Elastic serving: a cluster that reshapes itself under churn.

A serving fleet's population is never static — interest groups arrive, live
for a while and leave. This example drives a churn-over-time population
(:func:`repro.generators.churn_schedule`) through a
:class:`~repro.cluster.ClusterServer` governed by an
:class:`~repro.adaptive.ElasticPolicy`:

* the cluster starts one shard wide and **auto-splits** along stream-
  disjoint sub-clusters as arrivals pile load onto it (splits move whole
  overlap components with their cache state, so no query's cost changes);
* as departures thin the population out, the policy **consolidates** —
  draining underloaded shards through the router, whole components at a
  time;
* at the end we **drain on shutdown**: resize to one shard and show the
  survivors still serving, bit-identical to where they would be on an
  unsharded server.

Run: python examples/elastic_cluster.py
"""

from repro.adaptive import ElasticPolicy
from repro.cluster import ClusterServer
from repro.generators import churn_schedule, clustered_registry, events_by_batch

N_CLUSTERS, STREAMS_PER_CLUSTER, N_QUERIES = 6, 4, 180
BATCHES, ROUNDS_PER_BATCH = 12, 4


def main() -> None:
    registry = clustered_registry(N_CLUSTERS, STREAMS_PER_CLUSTER, seed=42)
    schedule = events_by_batch(
        churn_schedule(
            N_QUERIES,
            registry,
            N_CLUSTERS,
            STREAMS_PER_CLUSTER,
            batches=BATCHES,
            mean_lifetime=5.0,
            seed=43,
        )
    )
    policy = ElasticPolicy(
        target_shard_queries=N_QUERIES // N_CLUSTERS,  # ~30 queries per shard
        min_split_size=8,
        churn_every=N_QUERIES // 2,
    )
    cluster = ClusterServer(registry, n_shards=1, elastic=policy, seed=7)

    print(f"serving {BATCHES} batches of churn (policy target "
          f"{policy.target_shard_queries} queries/shard):\n")
    for batch in range(BATCHES):
        admitted = departed = 0
        for event in schedule.get(batch, []):
            if event.action == "depart":
                if event.name in cluster:
                    cluster.deregister(event.name)
                    departed += 1
            else:
                cluster.register(event.name, event.tree)
                admitted += 1
        if not len(cluster):
            continue
        report = cluster.run_batch(ROUNDS_PER_BATCH)
        line = (
            f"batch {batch:2d}: +{admitted:2d}/-{departed:2d} -> "
            f"{len(cluster):3d} queries on {cluster.n_shards} shards, "
            f"cost {report.total_cost:8.2f}"
        )
        print(line)
        for action in report.elastic_actions:
            print(f"          elastic: {action}")

    print(f"\n{cluster.describe()}")

    # Drain on shutdown: consolidate everything onto one shard, retire the
    # rest. Migrations carry plans, oracles and cache state, so the final
    # batch costs exactly what it would have cost without the shutdown.
    events = cluster.resize(1)
    print(f"\nshutdown: {len(events)} drains -> width {cluster.n_shards}")
    final = cluster.run_batch(ROUNDS_PER_BATCH)
    print(
        f"final batch on the survivor shard: {final.n_queries} queries, "
        f"cost {final.total_cost:.2f}"
    )
    print(f"lifetime: {cluster.splits} splits, {cluster.drains} drains, "
          f"{len(cluster.rebalances)} rebalances")


if __name__ == "__main__":
    main()
