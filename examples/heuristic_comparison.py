#!/usr/bin/env python3
"""Mini Figure 5: compare all ten §IV-D heuristics against the optimum.

Generates a batch of small shared DNF trees (the paper's distributions at
exhaustive-search-friendly sizes), computes the exhaustive optimum for each
(sound by Theorem 2), scores every heuristic by its ratio to optimal, and
prints the summary table plus the ASCII performance-profile plot — the same
presentation as the paper's Figure 5.

Run: python examples/heuristic_comparison.py [instances_per_config]
"""

import sys

from repro.experiments import ascii_profile_plot, ascii_table, run_fig5


def main() -> None:
    instances = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    print(f"running the small-DNF sweep ({instances} instances per grid cell)...")
    result = run_fig5(instances_per_config=instances, seed=42)
    print(f"{result.n_instances} instances solved to optimality\n")

    print(ascii_table(result.summary_headers(), result.summary_rows()))

    wins = result.best_fractions()
    best = max(wins, key=wins.get)
    print(
        f"\nbest heuristic: {best} — best-or-tied on {wins[best] * 100:.1f}% of "
        f"instances (paper: AND-ord. inc. C/p dynamic, 83.8%)"
    )

    print("\nratio-to-optimal performance profiles (paper Figure 5):")
    print(ascii_profile_plot(result.profiles(), width=64, height=14))


if __name__ == "__main__":
    main()
