#!/usr/bin/env python3
"""The serving layer: one server, a hundred tenants, one set of streams.

A fleet-scale deployment serves many users whose queries are mostly
isomorphic variants of a few popular shapes. This example registers 100
queries (drawn from 10 templates) on a :class:`~repro.service.QueryServer`
and shows the two headline effects:

* the plan cache admits 100 queries while paying the scheduler only ~10
  times ("pay one, get hundreds");
* the shared global probe order pays each stream window once per round for
  the whole population, so the batched cost lands far below the sum of the
  queries run in isolation;
* the vectorized round loop (``run_batch(engine="vectorized")``) batches
  outcome draws and short-circuit resolution across all rounds, timing
  both engines side by side so the example doubles as a smoke test.

Run: python examples/shared_serving.py
"""

import time

from repro.engine import BernoulliOracle
from repro.service import (
    QueryServer,
    run_isolated,
    synthetic_population,
    synthetic_registry,
)


def build_server(seed: int = 44) -> tuple[QueryServer, list]:
    registry = synthetic_registry(n_streams=8, seed=42)
    population = synthetic_population(100, registry, n_templates=10, seed=43)
    server = QueryServer(registry, BernoulliOracle(seed=seed))
    for name, tree in population:
        server.register(name, tree)
    return server, population


def main() -> None:
    server, population = build_server()
    registry = server.registry
    print(
        f"registered {len(server)} queries; plan cache scheduled "
        f"{server.plan_cache.misses} shapes ({server.plan_cache.hit_rate:.0%} hit rate)"
    )

    rounds = 50
    start = time.perf_counter()
    report = server.run_batch(rounds)
    scalar_seconds = time.perf_counter() - start
    isolated = run_isolated(registry, population, rounds)
    isolated_sum = sum(isolated.values())

    print(f"\nafter {rounds} rounds:")
    print(f"  shared serving total cost : {report.total_cost:10.2f}")
    print(f"  sum of isolated queries   : {isolated_sum:10.2f}")
    print(f"  sharing advantage         : {isolated_sum / report.total_cost:10.2f}x")
    print(
        f"  probes free via sharing   : {report.free_probes}/{report.probes}"
        f" ({report.free_probes / report.probes:.0%})"
    )
    print(f"  items saved by the cache  : {report.items_saved}")

    print("\nfull metrics ledger (first lines):")
    for line in server.metrics.summary().splitlines()[:6]:
        print(f"  {line}")

    # Same batch through the vectorized round loop (fresh server, same
    # population): unchanged metrics semantics, bulk-resolved rounds.
    vector_server, _ = build_server()
    start = time.perf_counter()
    vector_report = vector_server.run_batch(rounds, engine="vectorized")
    vector_seconds = time.perf_counter() - start
    print(f"\nbatch timings over {rounds} rounds:")
    print(f"  scalar round loop         : {scalar_seconds * 1e3:8.1f} ms")
    print(f"  vectorized round loop     : {vector_seconds * 1e3:8.1f} ms"
          f" ({scalar_seconds / vector_seconds:.1f}x)")
    print(f"  vectorized total cost     : {vector_report.total_cost:10.2f}"
          f" (scalar {report.total_cost:.2f}; same distribution, different draws)")

    # Tenants churn at runtime: drop one, admit another, keep serving.
    first = server.registered[0]
    server.deregister(first)
    server.register("latecomer", population[0][1])
    server.step()
    print(f"\nchurn: deregistered {first!r}, admitted 'latecomer', still serving "
          f"{len(server)} queries")


if __name__ == "__main__":
    main()
