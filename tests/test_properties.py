"""Cross-module property tests: invariants tying the whole stack together."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (
    DnfTree,
    Leaf,
    dnf_schedule_cost,
    exact_schedule_cost,
    monte_carlo_cost,
)
from repro.core.cost import expected_stream_items, item_acquisition_probabilities
from repro.engine import BernoulliOracle, ScheduleExecutor
from repro.streams import CountingCache, DataItemCache, ConstantSource
from tests.strategies import dnf_trees_with_schedule


class TestSharingMonotonicity:
    """Merging two equal-cost streams into one can only reduce any
    schedule's cost (more reuse, same requirements)."""

    @settings(max_examples=50, deadline=None)
    @given(pair=dnf_trees_with_schedule(max_ands=3, max_per_and=2))
    def test_merging_streams_never_increases_cost(self, pair):
        tree, schedule = pair
        # Unshare: give every leaf its own private stream with the same cost.
        groups = []
        costs = {}
        counter = 0
        for group in tree.ands:
            new_group = []
            for leaf in group:
                counter += 1
                name = f"P{counter}"
                new_group.append(Leaf(name, leaf.items, leaf.prob))
                costs[name] = tree.costs[leaf.stream]
            groups.append(new_group)
        unshared = DnfTree(groups, costs)
        shared_cost = dnf_schedule_cost(tree, schedule)
        unshared_cost = dnf_schedule_cost(unshared, schedule)
        assert shared_cost <= unshared_cost + 1e-9


class TestExecutorAgreesWithAnalytics:
    def test_counting_and_data_caches_charge_identically(self, rng):
        from tests.conftest import random_small_dnf

        for _ in range(15):
            tree = random_small_dnf(rng)
            schedule = tuple(int(x) for x in rng.permutation(tree.size))
            seed = int(rng.integers(0, 2**31))
            counting = ScheduleExecutor(
                tree, CountingCache(tree.costs), BernoulliOracle(seed=seed)
            ).run(schedule)
            sources = {name: ConstantSource(0.0) for name in tree.streams}
            data = ScheduleExecutor(
                tree,
                DataItemCache(sources, tree.costs, now=tree.max_items),
                BernoulliOracle(seed=seed),
            ).run(schedule)
            assert counting.cost == pytest.approx(data.cost)
            assert counting.evaluated == data.evaluated
            assert counting.value == data.value

    def test_mean_executor_cost_within_mc_error(self, rng):
        from tests.conftest import random_small_dnf

        tree = random_small_dnf(rng, max_ands=3, max_per_and=2)
        schedule = tuple(int(x) for x in rng.permutation(tree.size))
        analytic = dnf_schedule_cost(tree, schedule)
        mc = monte_carlo_cost(tree, schedule, n_samples=30_000, seed=9)
        assert mc.compatible_with(analytic, z=5.0)


class TestItemAcquisitionProbabilities:
    @settings(max_examples=60, deadline=None)
    @given(pair=dnf_trees_with_schedule(max_ands=3, max_per_and=3))
    def test_cost_identity(self, pair):
        """sum(prob * c) over items == Proposition 2 total cost."""
        tree, schedule = pair
        per_item = item_acquisition_probabilities(tree, schedule)
        reconstructed = sum(
            prob * tree.costs[stream] for (stream, _), prob in per_item.items()
        )
        assert reconstructed == pytest.approx(
            dnf_schedule_cost(tree, schedule), rel=1e-9, abs=1e-12
        )

    @settings(max_examples=40, deadline=None)
    @given(pair=dnf_trees_with_schedule(max_ands=3, max_per_and=2))
    def test_probabilities_in_unit_interval(self, pair):
        tree, schedule = pair
        for prob in item_acquisition_probabilities(tree, schedule).values():
            assert -1e-12 <= prob <= 1.0 + 1e-12

    def test_first_leaf_items_are_certain(self):
        tree = DnfTree([[Leaf("A", 3, 0.5)], [Leaf("B", 1, 0.2)]])
        per_item = item_acquisition_probabilities(tree, (0, 1))
        assert per_item[("A", 1)] == pytest.approx(1.0)
        assert per_item[("A", 3)] == pytest.approx(1.0)
        assert per_item[("B", 1)] == pytest.approx(0.5)  # only if AND0 fails

    def test_expected_stream_items_matches_monte_carlo(self, rng):
        from tests.conftest import random_small_dnf

        tree = random_small_dnf(rng, max_ands=3, max_per_and=2)
        schedule = tuple(int(x) for x in rng.permutation(tree.size))
        expected = expected_stream_items(tree, schedule)
        # simulate and count actual fetches
        totals = {name: 0 for name in tree.streams}
        n = 20_000
        oracle = BernoulliOracle(seed=4)
        for _ in range(n):
            cache = CountingCache(tree.costs)
            ScheduleExecutor(tree, cache, oracle).run(schedule)
            for name, count in cache.fetch_counts.items():
                totals[name] += count
        for name in tree.streams:
            assert totals[name] / n == pytest.approx(
                expected.get(name, 0.0), abs=0.08
            )


class TestStructuralInvariances:
    @settings(max_examples=40, deadline=None)
    @given(pair=dnf_trees_with_schedule(max_ands=3, max_per_and=2))
    def test_and_relabeling_invariance(self, pair):
        """Permuting the declaration order of AND nodes (with the schedule
        remapped accordingly) cannot change a schedule's cost."""
        tree, schedule = pair
        order = list(reversed(range(tree.n_ands)))
        permuted = DnfTree([tree.ands[i] for i in order], tree.costs)
        # remap global indices: old (i, j) -> new (pos of i in order, j)
        new_of_old: dict[int, int] = {}
        for g in range(tree.size):
            i, j = tree.ref(g)
            new_of_old[g] = permuted.gindex(order.index(i), j)
        remapped = tuple(new_of_old[g] for g in schedule)
        assert dnf_schedule_cost(permuted, remapped) == pytest.approx(
            dnf_schedule_cost(tree, schedule), rel=1e-9, abs=1e-12
        )

    @settings(max_examples=40, deadline=None)
    @given(pair=dnf_trees_with_schedule(max_ands=2, max_per_and=2))
    def test_cost_scales_linearly_with_stream_costs(self, pair):
        tree, schedule = pair
        scaled = DnfTree(tree.ands, {k: 3.0 * v for k, v in tree.costs.items()})
        assert dnf_schedule_cost(scaled, schedule) == pytest.approx(
            3.0 * dnf_schedule_cost(tree, schedule), rel=1e-9, abs=1e-12
        )

    def test_certain_true_leaves_never_shortcircuit(self):
        # p=1 everywhere: every AND true -> only the first AND evaluated.
        tree = DnfTree(
            [[Leaf("A", 1, 1.0), Leaf("B", 1, 1.0)], [Leaf("C", 5, 1.0)]],
            {"A": 1.0, "B": 1.0, "C": 100.0},
        )
        assert dnf_schedule_cost(tree, (0, 1, 2)) == pytest.approx(2.0)

    def test_certain_false_first_leaf_kills_its_and(self):
        tree = DnfTree(
            [[Leaf("A", 1, 0.0), Leaf("B", 9, 0.5)], [Leaf("C", 1, 0.5)]],
            {"A": 1.0, "B": 1.0, "C": 1.0},
        )
        # leaf B never evaluated; C always (AND0 surely false)
        assert dnf_schedule_cost(tree, (0, 1, 2)) == pytest.approx(2.0)
