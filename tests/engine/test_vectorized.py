"""Differential-testing harness for the vectorized trial engine.

The contract under test: a :class:`VectorizedExecutor` batch is bit-for-bit
equivalent to running the scalar :class:`ScheduleExecutor` once per trial
over the same outcome matrix — same root value, same charged cost (exact
float equality, both engines accumulate in schedule order), same
evaluated/skipped partitions, same recorded outcomes. On top of the exact
harness, statistical tests check convergence of batch means to the
analytic expected costs on the paper's Figure-4 tree family.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro import AndTree, DnfTree, Leaf, and_tree_cost, dnf_schedule_cost, monte_carlo_cost
from repro.core.andtree_optimal import algorithm1_order
from repro.core.compile import compile_schedule
from repro.core.resolution import TreeIndex
from repro.core.schedule import identity_schedule, random_schedule
from repro.engine import (
    PrecomputedOracle,
    ScheduleExecutor,
    TrialBatteryResult,
    VectorizedExecutor,
    estimate_schedule_cost,
    run_battery,
)
from repro.errors import StreamError
from repro.generators.configs import AndTreeConfig
from repro.generators.random_trees import random_dnf_tree, sample_and_tree
from repro.streams.cache import CountingCache

from tests.strategies import and_trees, dnf_trees_with_schedule, safe_probs


def scalar_reference(tree, schedule, outcome_row):
    """One scalar execution replaying ``outcome_row`` — the comparison unit."""
    executor = ScheduleExecutor(
        tree, CountingCache(tree.costs), PrecomputedOracle(outcome_row)
    )
    return executor.run(schedule)


def assert_trial_equal(reference, trial):
    assert trial.value == reference.value
    assert trial.cost == reference.cost  # bit-for-bit, no tolerance
    assert trial.evaluated == reference.evaluated
    assert trial.skipped == reference.skipped
    assert dict(trial.outcomes) == dict(reference.outcomes)


class TestDifferentialEquivalence:
    """The headline harness: scalar and vectorized agree exactly, per trial."""

    @settings(max_examples=120, deadline=None)
    @given(tree_and_schedule=dnf_trees_with_schedule(), seed=st.integers(0, 2**31 - 1))
    def test_dnf_trees_random_schedules(self, tree_and_schedule, seed):
        tree, schedule = tree_and_schedule
        batch = VectorizedExecutor(tree).run_batch(schedule, 16, seed=seed)
        for trial in range(batch.n_trials):
            reference = scalar_reference(tree, schedule, batch.outcomes[trial])
            assert_trial_equal(reference, batch.result_for(trial))

    @settings(max_examples=60, deadline=None)
    @given(tree=and_trees(), seed=st.integers(0, 2**31 - 1))
    def test_and_trees(self, tree, seed):
        schedule = identity_schedule(tree)
        batch = VectorizedExecutor(tree).run_batch(schedule, 16, seed=seed)
        for trial in range(batch.n_trials):
            reference = scalar_reference(tree, schedule, batch.outcomes[trial])
            assert_trial_equal(reference, batch.result_for(trial))

    @settings(max_examples=40, deadline=None)
    @given(
        tree_and_schedule=dnf_trees_with_schedule(
            min_ands=2, max_ands=4, max_per_and=4, prob_strategy=safe_probs
        ),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_deeper_dnf_trees(self, tree_and_schedule, seed):
        tree, schedule = tree_and_schedule
        batch = VectorizedExecutor(tree).run_batch(schedule, 8, seed=seed)
        for trial in range(batch.n_trials):
            reference = scalar_reference(tree, schedule, batch.outcomes[trial])
            assert_trial_equal(reference, batch.result_for(trial))

    def test_single_leaf_tree(self):
        tree = DnfTree([[Leaf("A", 3, 0.4)]], {"A": 2.0})
        batch = VectorizedExecutor(tree).run_batch((0,), 64, seed=5)
        for trial in range(batch.n_trials):
            reference = scalar_reference(tree, (0,), batch.outcomes[trial])
            assert_trial_equal(reference, batch.result_for(trial))
        assert np.all(batch.costs == 6.0)  # the lone leaf is always paid

    def test_extreme_probabilities(self):
        tree = DnfTree(
            [[Leaf("A", 1, 1.0), Leaf("B", 2, 0.0)], [Leaf("A", 2, 1.0)]],
            {"A": 1.0, "B": 1.0},
        )
        for schedule in [(0, 1, 2), (2, 1, 0), (1, 0, 2)]:
            batch = VectorizedExecutor(tree).run_batch(schedule, 4, seed=0)
            for trial in range(batch.n_trials):
                reference = scalar_reference(tree, schedule, batch.outcomes[trial])
                assert_trial_equal(reference, batch.result_for(trial))

    def test_sweep_of_random_trees(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            tree = random_dnf_tree(
                rng,
                int(rng.integers(1, 5)),
                int(rng.integers(1, 5)),
                float(rng.choice([1.0, 1.5, 2.0, 3.0])),
            )
            schedule = random_schedule(tree, rng)
            batch = VectorizedExecutor(tree).run_batch(schedule, 32, rng=rng)
            for trial in range(batch.n_trials):
                reference = scalar_reference(tree, schedule, batch.outcomes[trial])
                assert_trial_equal(reference, batch.result_for(trial))


class TestStatisticalConvergence:
    """Batch means converge to the analytic expected costs."""

    def test_fig4_tree_family_20k_trials(self):
        # The paper's Figure-4 family: random shared AND-trees at several
        # (m, rho) cells, scheduled by Algorithm 1; the 20k-trial vectorized
        # mean must land within 5 standard errors of the closed form.
        rng = np.random.default_rng(123)
        cells = [(4, 2.0), (8, 2.0), (12, 3.0), (20, 5.0)]
        for m, rho in cells:
            config = AndTreeConfig(m=m, rho=rho)
            tree = sample_and_tree(rng, config)
            schedule = algorithm1_order(tree)
            expected = and_tree_cost(tree, schedule, validate=False)
            battery = run_battery(tree, schedule, 20_000, seed=m)
            spread = max(battery.std_error, 1e-12)
            assert abs(battery.mean_cost - expected) <= 5 * spread, (
                f"m={m} rho={rho}: mean {battery.mean_cost} vs analytic {expected}"
            )

    def test_dnf_expected_cost_convergence(self):
        rng = np.random.default_rng(11)
        tree = random_dnf_tree(rng, 4, 4, 2.0)
        schedule = random_schedule(tree, rng)
        expected = dnf_schedule_cost(tree, schedule)
        battery = run_battery(tree, schedule, 20_000, seed=0)
        assert abs(battery.mean_cost - expected) <= 5 * max(battery.std_error, 1e-12)

    def test_montecarlo_engines_identical_per_seed(self):
        rng = np.random.default_rng(2)
        tree = random_dnf_tree(rng, 3, 3, 2.0)
        schedule = random_schedule(tree, rng)
        scalar = monte_carlo_cost(tree, schedule, n_samples=2000, seed=9, engine="scalar")
        vectorized = monte_carlo_cost(
            tree, schedule, n_samples=2000, seed=9, engine="vectorized"
        )
        assert scalar.mean == vectorized.mean
        assert scalar.std_error == vectorized.std_error

    def test_montecarlo_rejects_unknown_engine(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]], {"A": 1.0})
        with pytest.raises(StreamError):
            monte_carlo_cost(tree, (0,), n_samples=10, engine="quantum")


class TestBatchResult:
    def test_partitions_and_shapes(self):
        rng = np.random.default_rng(3)
        tree = random_dnf_tree(rng, 3, 3, 2.0)
        schedule = random_schedule(tree, rng)
        batch = VectorizedExecutor(tree).run_batch(schedule, 100, seed=1)
        assert batch.n_trials == 100
        assert batch.n_leaves == tree.size
        assert batch.evaluated.shape == (100, tree.size)
        assert np.array_equal(batch.skipped_mask(), ~batch.evaluated)
        assert np.all(batch.n_evaluated() >= 1)
        assert 0.0 <= batch.true_rate <= 1.0
        assert batch.mean_cost == pytest.approx(float(batch.costs.mean()))

    def test_outcome_matrix_injection_validation(self):
        tree = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]], {"A": 1.0, "B": 1.0})
        executor = VectorizedExecutor(tree)
        with pytest.raises(StreamError):
            executor.run_batch((0, 1), outcomes=np.zeros((4, 3), dtype=bool))
        with pytest.raises(StreamError):
            executor.run_batch((0, 1), outcomes=np.zeros((0, 2), dtype=bool))
        with pytest.raises(StreamError):
            executor.run_batch((0, 1), 5, outcomes=np.zeros((4, 2), dtype=bool))
        with pytest.raises(StreamError):
            executor.run_batch((0, 1), None)
        with pytest.raises(StreamError):
            executor.run_batch((0, 1), 0)

    def test_program_cache_reused(self):
        tree = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]], {"A": 1.0, "B": 1.0})
        executor = VectorizedExecutor(tree)
        first = executor.compile((0, 1))
        assert executor.compile([0, 1]) is first
        assert executor.compile((1, 0)) is not first


class TestCompiledSchedule:
    def test_arrays_describe_the_tree(self):
        tree = DnfTree(
            [[Leaf("A", 2, 0.6), Leaf("B", 1, 0.4)], [Leaf("A", 3, 0.7)]],
            {"A": 2.0, "B": 1.5},
        )
        program = compile_schedule(tree, (2, 0, 1))
        assert program.n_leaves == 3
        assert program.n_slots == 2
        assert list(program.order) == [2, 0, 1]
        assert list(program.items) == [2, 1, 3]
        assert list(program.unit_costs) == [2.0, 1.5, 2.0]
        assert program.slot_streams == ("A", "B")
        # Every leaf's chain starts at its own node and ends at the root.
        for g in range(3):
            chain = program.chains[g]
            chain = chain[chain >= 0]
            assert chain[0] == program.leaf_node_ids[g]
            assert chain[-1] == 0 or program.n_nodes == 1

    def test_reuses_supplied_index(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]], {"A": 1.0})
        index = TreeIndex(tree)
        program = compile_schedule(tree, (0,), index=index)
        assert program.index is index

    def test_works_for_and_trees(self):
        tree = AndTree([Leaf("A", 2, 0.5), Leaf("B", 1, 0.5)], {"A": 1.0, "B": 1.0})
        program = compile_schedule(tree, (1, 0))
        assert program.n_leaves == 2


class TestRunBattery:
    def test_engines_identical_per_seed(self):
        rng = np.random.default_rng(4)
        tree = random_dnf_tree(rng, 3, 4, 2.0)
        schedule = random_schedule(tree, rng)
        scalar = run_battery(tree, schedule, 1500, engine="scalar", seed=7)
        vectorized = run_battery(tree, schedule, 1500, engine="vectorized", seed=7)
        assert np.array_equal(scalar.costs, vectorized.costs)
        assert np.array_equal(scalar.values, vectorized.values)
        assert isinstance(scalar, TrialBatteryResult)
        assert scalar.mean_cost == vectorized.mean_cost
        assert scalar.ci95 == vectorized.ci95

    def test_workers_fan_out_deterministic(self):
        rng = np.random.default_rng(5)
        tree = random_dnf_tree(rng, 2, 3, 1.5)
        schedule = random_schedule(tree, rng)
        one = run_battery(tree, schedule, 1000, seed=3, workers=2)
        two = run_battery(tree, schedule, 1000, seed=3, workers=2)
        assert one.n_trials == 1000
        assert np.array_equal(one.costs, two.costs)
        # Chunked seeding is also engine-independent.
        scalar = run_battery(tree, schedule, 1000, engine="scalar", seed=3, workers=2)
        assert np.array_equal(one.costs, scalar.costs)

    def test_validation_errors(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]], {"A": 1.0})
        with pytest.raises(StreamError):
            run_battery(tree, (0,), 0)
        with pytest.raises(StreamError):
            run_battery(tree, (0,), 10, engine="gpu")
        with pytest.raises(StreamError):
            run_battery(tree, (0,), 10, rng=np.random.default_rng(0), workers=2)

    def test_estimate_schedule_cost_dispatch(self):
        tree = DnfTree([[Leaf("A", 2, 0.5), Leaf("A", 3, 0.5)]], {"A": 1.0})
        schedule = (0, 1)
        analytic = estimate_schedule_cost(tree, schedule)
        assert analytic == dnf_schedule_cost(tree, schedule)
        simulated = estimate_schedule_cost(
            tree, schedule, engine="vectorized", n_trials=20_000, seed=0
        )
        assert simulated == pytest.approx(analytic, rel=0.05)
