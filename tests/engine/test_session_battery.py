"""Tests for continuous query sessions and the battery model."""

from __future__ import annotations

import math

import pytest

from repro import DnfTree, Leaf
from repro.core.heuristics import get_scheduler
from repro.engine import Battery, BernoulliOracle, ContinuousQuerySession
from repro.errors import StreamError
from repro.predicates import Predicate
from repro.streams import (
    ConstantSource,
    GaussianSource,
    StreamRegistry,
    StreamSpec,
    UniformSource,
)


def make_registry():
    registry = StreamRegistry()
    registry.add(StreamSpec("A", 1.0), UniformSource(0.0, 1.0, seed=1))
    registry.add(StreamSpec("B", 2.0), GaussianSource(0.0, 1.0, seed=2))
    return registry


def make_tree():
    return DnfTree(
        [[Leaf("A", 2, 0.5), Leaf("B", 1, 0.5)], [Leaf("A", 1, 0.5)]],
        {"A": 1.0, "B": 2.0},
    )


class TestBattery:
    def test_drain_and_remaining(self):
        battery = Battery(100.0)
        battery.drain(30.0)
        assert battery.remaining_joules == 70.0
        assert battery.fraction_remaining == pytest.approx(0.7)
        assert not battery.depleted

    def test_depletes_and_clamps(self):
        battery = Battery(10.0)
        battery.drain(25.0)
        assert battery.depleted
        assert battery.remaining_joules == 0.0

    def test_rounds_until_empty(self):
        battery = Battery(100.0)
        battery.drain(40.0)
        assert battery.rounds_until_empty(6.0) == pytest.approx(10.0)
        assert battery.rounds_until_empty(0.0) == math.inf

    def test_validation(self):
        with pytest.raises(StreamError):
            Battery(0.0)
        with pytest.raises(StreamError):
            Battery(10.0).drain(-1.0)


class TestSession:
    def test_runs_and_reports(self):
        session = ContinuousQuerySession(
            make_tree(),
            make_registry(),
            get_scheduler("and-inc-c-over-p-dynamic"),
            oracle=BernoulliOracle(seed=3),
        )
        report = session.run(20)
        assert report.rounds == 20
        assert len(report.round_costs) == 20
        assert report.total_cost == pytest.approx(sum(report.round_costs))
        assert report.mean_cost == pytest.approx(report.total_cost / 20)
        assert 0.0 <= report.true_rate <= 1.0
        assert "rounds" in report.summary()

    def test_round_costs_bounded_by_full_fetch(self):
        tree = make_tree()
        session = ContinuousQuerySession(
            tree, make_registry(), get_scheduler("leaf-inc-c"), oracle=BernoulliOracle(seed=4)
        )
        report = session.run(30)
        per_round_max = sum(
            max(l.items for l in tree.leaves if l.stream == s) * tree.costs[s]
            for s in tree.streams
        )
        assert all(cost <= per_round_max + 1e-9 for cost in report.round_costs)

    def test_cross_round_cache_reuse(self):
        # One leaf, window 3, advancing 1 step per round: after the first
        # round only 1 new item per round is fetched.
        tree = DnfTree([[Leaf("A", 3, 1.0)]], {"A": 1.0})
        registry = StreamRegistry()
        registry.add(StreamSpec("A", 1.0), ConstantSource(0.0))
        session = ContinuousQuerySession(
            tree, registry, get_scheduler("leaf-inc-c"), oracle=BernoulliOracle(seed=0)
        )
        report = session.run(5)
        assert report.round_costs[0] == pytest.approx(3.0)
        assert report.round_costs[1:] == pytest.approx([1.0] * 4)

    def test_battery_drains(self):
        battery = Battery(1000.0)
        session = ContinuousQuerySession(
            make_tree(),
            make_registry(),
            get_scheduler("leaf-inc-c"),
            oracle=BernoulliOracle(seed=5),
            battery=battery,
        )
        report = session.run(10)
        assert battery.drained_joules == pytest.approx(report.total_cost)
        assert report.battery is battery

    def test_predicate_bound_session_estimates_probs(self):
        tree = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]], {"A": 1.0, "B": 2.0})
        predicates = {
            0: Predicate("A", "LAST", 1, "<", 2.0),   # uniform(0,1) -> ~always true
            1: Predicate("B", "LAST", 1, ">", 100.0),  # ~never
        }
        session = ContinuousQuerySession(
            tree, make_registry(), get_scheduler("leaf-inc-c"), predicates=predicates
        )
        report = session.run(40)
        assert report.estimated_probs[0] > 0.9
        # leaf 1 is usually skipped after leaf 0 fails... leaf 0 ~always true,
        # so leaf 1 gets evaluated; its estimate must be low.
        assert report.estimated_probs.get(1, 0.0) < 0.2

    def test_replanning_changes_schedule_with_evidence(self):
        # Planning probs say AND1 cheap-and-likely, but the data says leaf 2
        # (A < -100) never fires; replanning must reorder eventually.
        tree = DnfTree(
            [[Leaf("A", 1, 0.9, "never")], [Leaf("B", 1, 0.1, "always")]],
            {"A": 1.0, "B": 1.0},
        )
        predicates = {
            0: Predicate("A", "LAST", 1, "<", -100.0),  # never true
            1: Predicate("B", "LAST", 1, ">", -100.0),  # always true
        }
        session = ContinuousQuerySession(
            tree,
            make_registry(),
            get_scheduler("and-inc-c-over-p-dynamic"),
            predicates=predicates,
            replan_every=5,
        )
        initial = session.current_schedule
        session.run(25)
        assert session.current_schedule != initial

    def test_requires_oracle_or_predicates(self):
        with pytest.raises(StreamError):
            ContinuousQuerySession(
                make_tree(), make_registry(), get_scheduler("leaf-inc-c")
            )

    def test_unregistered_stream_rejected(self):
        tree = DnfTree([[Leaf("Z", 1, 0.5)]])
        with pytest.raises(StreamError):
            ContinuousQuerySession(
                tree, make_registry(), get_scheduler("leaf-inc-c"),
                oracle=BernoulliOracle(seed=0),
            )

    def test_zero_rounds_rejected(self):
        session = ContinuousQuerySession(
            make_tree(), make_registry(), get_scheduler("leaf-inc-c"),
            oracle=BernoulliOracle(seed=0),
        )
        with pytest.raises(StreamError):
            session.run(0)
