"""Tests for multi-query workloads and the non-linear strategy executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DnfTree, Leaf
from repro.core.heuristics import get_scheduler
from repro.core.nonlinear import StrategyNode, linear_as_strategy, optimal_nonlinear, strategy_cost
from repro.engine import (
    BernoulliOracle,
    QueryWorkload,
    ScheduleExecutor,
    StrategyExecutor,
    WorkloadQuery,
)
from repro.errors import StreamError
from repro.streams import ConstantSource, CountingCache, StreamRegistry, StreamSpec


def make_registry(streams=("A", "B", "C")):
    registry = StreamRegistry()
    for idx, name in enumerate(streams):
        registry.add(StreamSpec(name, float(idx + 1)), ConstantSource(0.0))
    return registry


class TestStrategyExecutor:
    def test_mean_cost_matches_strategy_cost(self):
        tree = DnfTree(
            [[Leaf("A", 2, 0.6), Leaf("B", 1, 0.4)], [Leaf("A", 1, 0.7)]],
            {"A": 2.0, "B": 1.0},
        )
        strategy, expected = optimal_nonlinear(tree)
        oracle = BernoulliOracle(seed=3)
        total = 0.0
        n = 20_000
        for _ in range(n):
            executor = StrategyExecutor(tree, CountingCache(tree.costs), oracle)
            total += executor.run(strategy).cost
        assert total / n == pytest.approx(expected, rel=0.03)

    def test_linear_embedding_executes_identically(self, rng):
        from tests.conftest import random_small_dnf

        for _ in range(10):
            tree = random_small_dnf(rng)
            schedule = tuple(int(x) for x in rng.permutation(tree.size))
            strategy = linear_as_strategy(tree, schedule)
            seed = int(rng.integers(0, 2**31))
            linear = ScheduleExecutor(
                tree, CountingCache(tree.costs), BernoulliOracle(seed=seed)
            ).run(schedule)
            nonlinear = StrategyExecutor(
                tree, CountingCache(tree.costs), BernoulliOracle(seed=seed)
            ).run(strategy)
            # Same oracle draws in the same evaluation order -> identical runs.
            assert nonlinear.cost == pytest.approx(linear.cost)
            assert nonlinear.value == linear.value
            assert nonlinear.evaluated == linear.evaluated

    def test_rejects_malformed_strategy(self):
        tree = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]], {"A": 1.0, "B": 1.0})
        truncated = StrategyNode(0, None, None)  # on_true leaves query open
        executor = StrategyExecutor(tree, CountingCache(tree.costs), BernoulliOracle(seed=1))
        with pytest.raises(StreamError):
            for _ in range(64):  # some draw will take the TRUE branch
                executor.run(truncated)


class TestQueryWorkload:
    def make_queries(self):
        health = DnfTree(
            [[Leaf("A", 3, 0.4), Leaf("B", 1, 0.5)]], {"A": 1.0, "B": 2.0}
        )
        context = DnfTree(
            [[Leaf("A", 2, 0.6)], [Leaf("C", 1, 0.3)]], {"A": 1.0, "C": 3.0}
        )
        scheduler = get_scheduler("and-inc-c-over-p-dynamic")
        return [
            WorkloadQuery("health", health, scheduler),
            WorkloadQuery("context", context, scheduler),
        ]

    def test_runs_and_reports(self):
        workload = QueryWorkload(
            self.make_queries(), make_registry(), BernoulliOracle(seed=0)
        )
        report = workload.run(30)
        assert report.rounds == 30
        assert set(report.per_query_cost) == {"health", "context"}
        assert report.total_cost == pytest.approx(
            sum(report.per_query_cost.values())
        )
        assert "workload" in report.summary()

    def test_cross_query_sharing_saves_energy(self):
        """Running both queries on one cache must cost no more than the sum
        of running each alone (stream A is shared across queries)."""
        queries = self.make_queries()
        rounds = 200
        together = QueryWorkload(
            queries, make_registry(), BernoulliOracle(seed=1)
        ).run(rounds)
        alone_total = 0.0
        for query in queries:
            report = QueryWorkload(
                [query], make_registry(), BernoulliOracle(seed=1)
            ).run(rounds)
            alone_total += report.total_cost
        assert together.total_cost < alone_total - 1e-9

    def test_round_robin_rotation_balances_first_mover(self):
        # With "fixed" order the first query always pays for stream A; with
        # round-robin the free rides alternate.
        queries = self.make_queries()
        fixed = QueryWorkload(
            queries, make_registry(), BernoulliOracle(seed=2), order="fixed"
        ).run(100)
        rotating = QueryWorkload(
            queries, make_registry(), BernoulliOracle(seed=2), order="round-robin"
        ).run(100)
        # totals are close; the split shifts toward the second query under
        # fixed order (it reuses items the first fetched)
        assert fixed.per_query_cost["health"] >= rotating.per_query_cost["health"] - 1e-9

    def test_validation(self):
        queries = self.make_queries()
        with pytest.raises(StreamError):
            QueryWorkload([], make_registry(), BernoulliOracle(seed=0))
        with pytest.raises(StreamError):
            QueryWorkload(
                [queries[0], queries[0]], make_registry(), BernoulliOracle(seed=0)
            )
        with pytest.raises(StreamError):
            QueryWorkload(queries, make_registry(), BernoulliOracle(seed=0), order="nope")
        with pytest.raises(StreamError):
            QueryWorkload(queries, make_registry(("A",)), BernoulliOracle(seed=0))
        workload = QueryWorkload(queries, make_registry(), BernoulliOracle(seed=0))
        with pytest.raises(StreamError):
            workload.run(0)
