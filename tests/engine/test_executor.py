"""Tests for the pull-model schedule executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DnfTree, Leaf, dnf_schedule_cost
from repro.engine import BernoulliOracle, PredicateOracle, ScheduleExecutor
from repro.errors import StreamError
from repro.predicates import Predicate
from repro.streams import ConstantSource, CountingCache, DataItemCache, ReplaySource


def make_tree():
    return DnfTree(
        [[Leaf("A", 2, 0.6), Leaf("B", 1, 0.4)], [Leaf("A", 3, 0.7), Leaf("C", 2, 0.5)]],
        {"A": 2.0, "B": 1.5, "C": 3.0},
    )


class TestBernoulliExecution:
    def test_mean_cost_matches_analytic(self):
        tree = make_tree()
        schedule = (0, 1, 2, 3)
        oracle = BernoulliOracle(seed=11)
        total = 0.0
        n = 30_000
        for _ in range(n):
            executor = ScheduleExecutor(tree, CountingCache(tree.costs), oracle)
            total += executor.run(schedule).cost
        expected = dnf_schedule_cost(tree, schedule)
        assert total / n == pytest.approx(expected, rel=0.03)

    def test_result_partitions_leaves(self):
        tree = make_tree()
        executor = ScheduleExecutor(tree, CountingCache(tree.costs), BernoulliOracle(seed=0))
        result = executor.run((0, 1, 2, 3))
        assert set(result.evaluated) | set(result.skipped) == {0, 1, 2, 3}
        assert not set(result.evaluated) & set(result.skipped)
        assert isinstance(result.value, bool)
        assert set(result.outcomes) == set(result.evaluated)

    def test_deterministic_outcomes(self):
        # p=1 everywhere: first AND true -> second AND never touched
        tree = DnfTree(
            [[Leaf("A", 1, 1.0)], [Leaf("B", 1, 1.0)]], {"A": 1.0, "B": 1.0}
        )
        executor = ScheduleExecutor(tree, CountingCache(tree.costs), BernoulliOracle(seed=0))
        result = executor.run((0, 1))
        assert result.value is True
        assert result.evaluated == (0,)
        assert result.skipped == (1,)
        assert result.cost == pytest.approx(1.0)

    def test_all_false_resolves_false(self):
        tree = DnfTree(
            [[Leaf("A", 1, 0.0)], [Leaf("B", 1, 0.0)]], {"A": 1.0, "B": 2.0}
        )
        executor = ScheduleExecutor(tree, CountingCache(tree.costs), BernoulliOracle(seed=0))
        result = executor.run((0, 1))
        assert result.value is False
        assert result.cost == pytest.approx(3.0)

    def test_cache_shared_between_leaves(self):
        tree = DnfTree([[Leaf("A", 2, 1.0), Leaf("A", 2, 1.0)]], {"A": 5.0})
        executor = ScheduleExecutor(tree, CountingCache(tree.costs), BernoulliOracle(seed=0))
        result = executor.run((0, 1))
        assert result.cost == pytest.approx(10.0)  # second leaf free
        assert result.evaluated == (0, 1)


class TestPredicateExecution:
    def test_outcomes_from_real_data(self):
        tree = DnfTree([[Leaf("A", 2, 0.5), Leaf("B", 1, 0.5)]], {"A": 1.0, "B": 1.0})
        sources = {"A": ConstantSource(10.0), "B": ReplaySource([0.0] * 100)}
        cache = DataItemCache(sources, tree.costs, now=10)
        predicates = {
            0: Predicate("A", "AVG", 2, ">", 5.0),   # true: avg 10
            1: Predicate("B", "LAST", 1, ">", 5.0),  # false: value 0
        }
        executor = ScheduleExecutor(tree, cache, PredicateOracle(predicates))
        result = executor.run((0, 1))
        assert result.outcomes == {0: True, 1: False}
        assert result.value is False
        assert result.cost == pytest.approx(3.0)

    def test_predicate_oracle_requires_values(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]])
        oracle = PredicateOracle({0: Predicate("A", "LAST", 1, "<", 1.0)})
        executor = ScheduleExecutor(tree, CountingCache(tree.costs), oracle)
        with pytest.raises(StreamError):
            executor.run((0,))

    def test_missing_predicate_binding(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]])
        cache = DataItemCache({"A": ConstantSource(0.0)}, tree.costs, now=4)
        executor = ScheduleExecutor(tree, cache, PredicateOracle({}))
        with pytest.raises(StreamError):
            executor.run((0,))
