"""Tests for the parallel sweep utility."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.parallel import default_workers, pmap, spawn_seeds


def _square(x: int) -> int:
    return x * x


class TestPmap:
    def test_serial_matches_map(self):
        assert pmap(_square, range(10), workers=1) == [x * x for x in range(10)]

    def test_parallel_matches_serial(self):
        serial = pmap(_square, range(50), workers=1)
        parallel = pmap(_square, range(50), workers=2)
        assert parallel == serial

    def test_empty_input(self):
        assert pmap(_square, [], workers=4) == []

    def test_single_item_stays_serial(self):
        assert pmap(_square, [3], workers=8) == [9]

    def test_chunksize_override(self):
        assert pmap(_square, range(20), workers=2, chunksize=3) == [x * x for x in range(20)]


class TestSpawnContext:
    """The pool must be pinned to spawn (fork clones held locks -> deadlock)."""

    def test_pool_uses_spawn_start_method(self, monkeypatch):
        import repro.parallel as parallel_mod

        captured = {}

        class FakePool:
            def __init__(self, max_workers=None, mp_context=None):
                captured["workers"] = max_workers
                captured["ctx"] = mp_context

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, items, chunksize=1):
                return map(fn, items)

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", FakePool)
        assert pmap(_square, range(6), workers=2) == [x * x for x in range(6)]
        assert captured["workers"] == 2
        assert captured["ctx"].get_start_method() == "spawn"

    def test_results_identical_across_worker_counts(self):
        # Seeds are split before the map, so fan-out must not change results
        # even though spawn workers start from a fresh interpreter.
        serial = pmap(_square, range(24), workers=1)
        spawned = pmap(_square, range(24), workers=2)
        assert spawned == serial


class TestSeeds:
    def test_spawn_seeds_independent(self):
        seeds = spawn_seeds(42, 4)
        assert len(seeds) == 4
        values = [np.random.default_rng(s).random() for s in seeds]
        assert len(set(values)) == 4

    def test_spawn_seeds_deterministic(self):
        a = [np.random.default_rng(s).random() for s in spawn_seeds(7, 3)]
        b = [np.random.default_rng(s).random() for s in spawn_seeds(7, 3)]
        assert a == b


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4

    def test_default_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert default_workers() == 1
