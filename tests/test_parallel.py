"""Tests for the parallel sweep utility."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.parallel import default_workers, pmap, spawn_seeds


def _square(x: int) -> int:
    return x * x


class TestPmap:
    def test_serial_matches_map(self):
        assert pmap(_square, range(10), workers=1) == [x * x for x in range(10)]

    def test_parallel_matches_serial(self):
        serial = pmap(_square, range(50), workers=1)
        parallel = pmap(_square, range(50), workers=2)
        assert parallel == serial

    def test_empty_input(self):
        assert pmap(_square, [], workers=4) == []

    def test_single_item_stays_serial(self):
        assert pmap(_square, [3], workers=8) == [9]

    def test_chunksize_override(self):
        assert pmap(_square, range(20), workers=2, chunksize=3) == [x * x for x in range(20)]


class TestSeeds:
    def test_spawn_seeds_independent(self):
        seeds = spawn_seeds(42, 4)
        assert len(seeds) == 4
        values = [np.random.default_rng(s).random() for s in seeds]
        assert len(set(values)) == 4

    def test_spawn_seeds_deterministic(self):
        a = [np.random.default_rng(s).random() for s in spawn_seeds(7, 3)]
        b = [np.random.default_rng(s).random() for s in spawn_seeds(7, 3)]
        assert a == b


class TestDefaultWorkers:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4

    def test_default_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() == 1

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert default_workers() == 1
