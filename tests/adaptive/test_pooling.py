"""Cross-shape belief pooling: SharedLeafPool + controller warm starts.

Pooling moves selectivity evidence down from canonical-shape granularity to
interned-leaf granularity: a new shape containing a leaf some *other* shape
already observed starts from the pooled posterior instead of the prior.
Off by default (``AdaptivePolicy.share_leaf_beliefs``) because it makes a
shape's drift clock depend on which other shapes are co-resident.
"""

from __future__ import annotations

import pytest

from repro.adaptive import AdaptiveController, AdaptivePolicy, SharedLeafPool
from repro.errors import StreamError
from repro.service import SubtreeStore


class TestSharedLeafPool:
    def test_warm_start_unseen_returns_none(self):
        pool = SharedLeafPool()
        assert pool.warm_start(("A", 1, 0.5)) is None

    def test_warm_start_clones_evidence(self):
        pool = SharedLeafPool()
        leaf_id = ("A", 1, 0.5)
        for outcome in (True, True, False, True):
            pool.observe(leaf_id, outcome)
        clone = pool.warm_start(leaf_id)
        assert clone is not None
        assert clone.trials == 4
        assert clone.successes == 3
        clone.observe(False)  # mutating the clone must not touch the pool
        assert pool.warm_start(leaf_id).trials == 4

    def test_interned_leaves_are_valid_keys(self):
        store = SubtreeStore()
        pool = SharedLeafPool()
        pool.observe(store.leaf("A", 2, 0.3), True)
        # The same identity from a second intern call reads the same slot.
        assert store.leaf("A", 2, 0.3) in pool
        assert pool.warm_start(store.leaf("A", 2, 0.3)).trials == 1

    def test_capacity_is_enforced_lru(self):
        pool = SharedLeafPool(capacity=2)
        pool.observe("a", True)
        pool.observe("b", True)
        pool.observe("a", False)  # refresh a -> b is now LRU
        pool.observe("c", True)  # evicts b
        assert "a" in pool and "c" in pool and "b" not in pool
        assert len(pool) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(StreamError):
            SharedLeafPool(capacity=0)


class TestControllerPooling:
    def leaf_ids(self, store: SubtreeStore):
        return (store.leaf("A", 2, 0.3), store.leaf("B", 1, 0.6))

    def test_pool_exists_only_when_policy_opts_in(self):
        assert AdaptiveController(AdaptivePolicy()).pool is None
        on = AdaptiveController(AdaptivePolicy(share_leaf_beliefs=True))
        assert on.pool is not None

    def test_observations_mirror_into_the_pool(self):
        store = SubtreeStore()
        controller = AdaptiveController(AdaptivePolicy(share_leaf_beliefs=True))
        ids = self.leaf_ids(store)
        controller.admit("shape-1", (0.3, 0.6), (1, 1), leaf_ids=ids)
        for outcome in (True, False, True):
            controller.observe("shape-1", 0, outcome)
        controller.observe("shape-1", 1, True)
        assert controller.pool.warm_start(ids[0]).trials == 3
        assert controller.pool.warm_start(ids[1]).trials == 1

    def test_new_shape_warm_starts_from_shared_leaf(self):
        store = SubtreeStore()
        controller = AdaptiveController(AdaptivePolicy(share_leaf_beliefs=True))
        shared = store.leaf("A", 2, 0.3)
        controller.admit("shape-1", (0.3,), (1,), leaf_ids=(shared,))
        for _ in range(6):
            controller.observe("shape-1", 0, True)
        # shape-2 differs as a whole tree but contains the same leaf.
        controller.admit(
            "shape-2", (0.3, 0.7), (1, 1), leaf_ids=(shared, store.leaf("C", 1, 0.7))
        )
        warmed = controller.tracker.get(("shape-2", 0))
        assert warmed is not None and warmed.trials == 6
        # The unshared leaf starts cold.
        assert controller.tracker.get(("shape-2", 1)) is None

    def test_warm_start_does_not_entangle_shapes(self):
        store = SubtreeStore()
        controller = AdaptiveController(AdaptivePolicy(share_leaf_beliefs=True))
        shared = store.leaf("A", 2, 0.3)
        controller.admit("shape-1", (0.3,), (1,), leaf_ids=(shared,))
        controller.observe("shape-1", 0, True)
        controller.admit("shape-2", (0.3,), (1,), leaf_ids=(shared,))
        controller.observe("shape-2", 0, False)
        one = controller.tracker.get(("shape-1", 0))
        two = controller.tracker.get(("shape-2", 0))
        assert one is not two
        assert one.trials == 1  # shape-2's outcome went to its own clone
        assert two.trials == 2  # warm-started copy plus its own outcome

    def test_retire_keeps_pooled_evidence(self):
        store = SubtreeStore()
        controller = AdaptiveController(AdaptivePolicy(share_leaf_beliefs=True))
        shared = store.leaf("A", 2, 0.3)
        controller.admit("shape-1", (0.3,), (1,), leaf_ids=(shared,))
        for _ in range(4):
            controller.observe("shape-1", 0, True)
        controller.retire("shape-1")
        assert controller.tracker.get(("shape-1", 0)) is None
        controller.admit("shape-3", (0.3,), (1,), leaf_ids=(shared,))
        assert controller.tracker.get(("shape-3", 0)).trials == 4

    def test_leaf_id_length_mismatch_rejected(self):
        controller = AdaptiveController(AdaptivePolicy(share_leaf_beliefs=True))
        with pytest.raises(StreamError):
            controller.admit("shape-1", (0.3, 0.6), (1, 1), leaf_ids=("only-one",))

    def test_pooling_off_ignores_leaf_ids(self):
        controller = AdaptiveController(AdaptivePolicy())
        controller.admit("shape-1", (0.3,), (1,), leaf_ids=(("A", 2, 0.3),))
        controller.observe("shape-1", 0, True)
        assert controller.pool is None
        assert controller.tracker.get(("shape-1", 0)).trials == 1
