"""Server-level adaptive re-planning: detection, invalidation, equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adaptive import AdaptivePolicy
from repro.core.cost import dnf_schedule_cost
from repro.core.heuristics import get_scheduler
from repro.core.tree import DnfTree
from repro.core.leaf import Leaf
from repro.engine.executor import DriftingBernoulliOracle
from repro.errors import AdmissionError
from repro.generators import step_drift_by_stream
from repro.service import PlanCache, QueryServer, canonicalize
from repro.streams.drift import DriftSchedule, StepDrift
from repro.streams.registry import StreamRegistry
from repro.streams.sources import GaussianSource
from repro.streams.stream import StreamSpec

SCHEDULER = "and-inc-c-over-p-dynamic"


def drift_registry() -> StreamRegistry:
    registry = StreamRegistry()
    registry.add(StreamSpec("cheap", 1.0), GaussianSource(seed=11))
    registry.add(StreamSpec("dear", 5.0), GaussianSource(seed=12))
    return registry


def flip_tree(pre: float = 0.05) -> DnfTree:
    """OR(cheap[2] p=pre, dear[3] p=0.6): drifting pre -> 0.9 flips the plan."""
    return DnfTree(
        [[Leaf("cheap", 2, pre)], [Leaf("dear", 3, 0.6)]],
        costs={"cheap": 1.0, "dear": 5.0},
    )


def drifting_oracle(tree: DnfTree, at: int, seed: int) -> DriftingBernoulliOracle:
    return DriftingBernoulliOracle(
        step_drift_by_stream(tree, at, {"cheap": 0.9}), seed=seed
    )


def adaptive_server(policy: AdaptivePolicy | None = None) -> QueryServer:
    if policy is None:
        policy = AdaptivePolicy(window=32, threshold=0.25, min_samples=12, cooldown=8)
    return QueryServer(drift_registry(), scheduler=SCHEDULER, adaptive=policy)


class TestDriftDetection:
    def test_drift_detected_within_window(self):
        """A step drift triggers a re-plan within ~window rounds of evidence."""
        policy = AdaptivePolicy(window=32, threshold=0.25, min_samples=12, cooldown=8)
        server = adaptive_server(policy)
        tree = flip_tree()
        drift_at = 40
        for q in range(3):
            server.register(
                f"q{q}", tree, oracle=drifting_oracle(tree, drift_at, seed=100 + q)
            )
        server.run_batch(drift_at)
        assert server.replan_log == []  # truth matches admission: no drift
        server.run_batch(policy.window + 20)
        drift_events = [e for e in server.replan_log if e.reason == "drift"]
        assert drift_events, "drift was never detected"
        first = drift_events[0]
        assert drift_at <= first.round_index <= drift_at + policy.window + 20
        # The drifted leaf is the cheap one, and its new estimate moved up.
        form = canonicalize(tree)
        cheap_g = next(
            g for g, leaf in enumerate(form.tree.leaves) if leaf.stream == "cheap"
        )
        assert cheap_g in first.drifted_leaves
        assert first.new_probs[cheap_g] > first.old_probs[cheap_g] + 0.2

    def test_no_replan_when_truth_matches_plan(self):
        server = adaptive_server()
        tree = flip_tree(pre=0.5)
        oracle = DriftingBernoulliOracle(
            DriftSchedule([leaf.prob for leaf in tree.leaves]), seed=3
        )
        server.register("q0", tree, oracle=oracle)
        server.run_batch(120)
        assert server.metrics.replans == 0

    def test_static_server_never_replans(self):
        server = QueryServer(drift_registry(), scheduler=SCHEDULER)
        tree = flip_tree()
        server.register("q0", tree, oracle=drifting_oracle(tree, 10, seed=1))
        server.run_batch(80)
        assert server.metrics.replans == 0
        assert server.replan_log == []


class TestReplanMechanics:
    def test_plan_cache_invalidated_on_replan(self):
        cache = PlanCache(capacity=16)
        policy = AdaptivePolicy(window=32, threshold=0.25, min_samples=12, cooldown=8)
        server = QueryServer(
            drift_registry(), scheduler=SCHEDULER, plan_cache=cache, adaptive=policy
        )
        tree = flip_tree()
        form = canonicalize(tree)
        server.register("q0", tree, oracle=drifting_oracle(tree, 0, seed=7))
        assert (form.key, SCHEDULER) in cache
        server.run_batch(80)
        event = server.replan_log[0]
        assert event.invalidated >= 1
        assert (form.key, SCHEDULER) not in cache

    def test_replanned_schedule_matches_fresh_scheduler_run(self):
        server = adaptive_server()
        tree = flip_tree()
        server.register("q0", tree, oracle=drifting_oracle(tree, 0, seed=7))
        server.run_batch(80)
        assert server.replan_log
        event = server.replan_log[-1]
        form = canonicalize(tree)
        updated = form.reprobed_tree(event.new_probs)
        scheduler = get_scheduler(SCHEDULER)
        expected = tuple(scheduler.schedule(updated))
        assert event.new_schedule == expected
        assert event.new_cost == pytest.approx(
            dnf_schedule_cost(updated, expected)
        )
        # The registered query's expanded schedule is the canonical one
        # translated through its leaf map.
        query = server.query("q0")
        assert query.schedule == form.expand_schedule(event.new_schedule)
        assert query.plan.schedule == event.new_schedule

    def test_replan_applies_to_every_isomorph(self):
        server = adaptive_server()
        base = flip_tree()
        mirrored = DnfTree(list(reversed(base.ands)), dict(base.costs))
        server.register("q0", base, oracle=drifting_oracle(base, 0, seed=1))
        server.register("q1", mirrored, oracle=drifting_oracle(mirrored, 0, seed=2))
        assert (
            server.query("q0").canonical.key == server.query("q1").canonical.key
        )
        server.run_batch(80)
        assert server.replan_log
        event = server.replan_log[-1]
        assert set(event.queries) == {"q0", "q1"}
        for name in ("q0", "q1"):
            query = server.query(name)
            assert query.schedule == query.canonical.expand_schedule(
                event.new_schedule
            )

    def test_forced_replan_via_replan_query(self):
        server = QueryServer(drift_registry(), scheduler=SCHEDULER)
        tree = flip_tree()
        server.register("q0", tree, oracle=drifting_oracle(tree, 0, seed=5))
        old_schedule = server.query("q0").schedule
        cheap_g = next(
            g for g, leaf in enumerate(tree.leaves) if leaf.stream == "cheap"
        )
        events = server.replan_query("q0", {cheap_g: 0.9})
        assert len(events) == 1
        assert events[0].reason == "forced"
        assert server.metrics.replans == 1
        new_schedule = server.query("q0").schedule
        assert new_schedule != old_schedule  # the optimal order flipped
        # Post-flip the cheap leaf is probed first.
        assert tree.leaves[new_schedule[0]].stream == "cheap"

    def test_forced_replan_rejects_bad_input(self):
        server = QueryServer(drift_registry(), scheduler=SCHEDULER)
        tree = flip_tree()
        server.register("q0", tree)
        with pytest.raises(AdmissionError):
            server.replan_query("q0", {99: 0.5})
        with pytest.raises(AdmissionError):
            server.replan_canonical("no-such-key", (0.5,))

    def test_late_isomorph_admitted_on_rebased_belief(self):
        """A query admitted after its shape re-planned gets the new plan."""
        server = adaptive_server()
        tree = flip_tree()
        server.register("q0", tree, oracle=drifting_oracle(tree, 0, seed=9))
        server.run_batch(80)
        assert server.replan_log
        late = server.register("q9", tree, oracle=drifting_oracle(tree, 0, seed=10))
        assert late.schedule == server.query("q0").schedule
        assert late.plan.schedule == server.query("q0").plan.schedule
        # The late admission planned against the belief, not the cache: the
        # entry replan_canonical invalidated must not be repopulated with a
        # stale admission-probability plan.
        key = (late.canonical.key, late.plan.scheduler_name)
        assert key not in server.plan_cache

    def test_deregister_retires_tracker_state(self):
        server = adaptive_server()
        tree = flip_tree()
        server.register("q0", tree, oracle=drifting_oracle(tree, 0, seed=1))
        key = server.query("q0").canonical.key
        server.run_batch(5)
        assert key in server.adaptive.tracked_keys()
        server.deregister("q0")
        assert key not in server.adaptive.tracked_keys()


class TestEngineParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scalar_and_vectorized_posteriors_identical(self, seed):
        """Both engines feed the tracker the same evidence per seed."""

        def run(engine: str) -> QueryServer:
            policy = AdaptivePolicy(
                window=32, threshold=0.25, min_samples=12, cooldown=8
            )
            server = QueryServer(
                drift_registry(), scheduler=SCHEDULER, adaptive=policy
            )
            tree = flip_tree()
            for q in range(3):
                server.register(
                    f"q{q}",
                    tree,
                    oracle=drifting_oracle(tree, 20, seed=seed * 50 + q),
                )
            server.run_batch(60, engine=engine)
            return server

        scalar = run("scalar")
        vector = run("vectorized")
        scalar_snap = scalar.adaptive.tracker.snapshot()
        vector_snap = vector.adaptive.tracker.snapshot()
        assert set(scalar_snap) == set(vector_snap)
        for key in scalar_snap:
            s_post = scalar.adaptive.tracker.get(key)
            v_post = vector.adaptive.tracker.get(key)
            assert (s_post.trials, s_post.successes) == (
                v_post.trials,
                v_post.successes,
            )
        assert [e.round_index for e in scalar.replan_log] == [
            e.round_index for e in vector.replan_log
        ]
        assert scalar.metrics.total_cost == pytest.approx(vector.metrics.total_cost)


class TestReplanHysteresis:
    """AdaptivePolicy.min_saving: skip schedule swaps that save too little."""

    def hysteresis_policy(self, min_saving: float) -> AdaptivePolicy:
        return AdaptivePolicy(
            window=32,
            threshold=0.25,
            min_samples=12,
            cooldown=8,
            min_saving=min_saving,
        )

    def test_sub_threshold_drift_does_not_replan(self):
        """Drift is detected, but an unreachable min_saving suppresses the swap."""
        server = adaptive_server(self.hysteresis_policy(1e9))
        tree = flip_tree()
        server.register("q0", tree, oracle=drifting_oracle(tree, 0, seed=7))
        before = server.query("q0").schedule
        server.run_batch(120)
        assert server.metrics.replans == 0
        assert server.replan_log == []
        assert server.query("q0").schedule == before
        assert server.metrics.replans_suppressed >= 1
        # The suppressed decision still rebased the belief baseline, so the
        # detector does not re-fire every cooldown window forever.
        assert server.metrics.replans_suppressed <= 4

    def test_suppressed_replan_keeps_plan_cache(self):
        """A suppressed swap must not drop cache entries still in service."""
        cache = PlanCache(capacity=16)
        server = QueryServer(
            drift_registry(),
            scheduler=SCHEDULER,
            plan_cache=cache,
            adaptive=self.hysteresis_policy(1e9),
        )
        tree = flip_tree()
        form = canonicalize(tree)
        server.register("q0", tree, oracle=drifting_oracle(tree, 0, seed=7))
        assert (form.key, SCHEDULER) in cache
        server.run_batch(120)
        assert server.metrics.replans_suppressed >= 1
        assert (form.key, SCHEDULER) in cache

    def test_real_saving_passes_hysteresis(self):
        """The same drift with a tiny threshold re-plans as before."""
        server = adaptive_server(self.hysteresis_policy(1e-9))
        tree = flip_tree()
        server.register("q0", tree, oracle=drifting_oracle(tree, 0, seed=7))
        server.run_batch(120)
        assert server.metrics.replans >= 1
        assert server.metrics.replans_suppressed == 0

    def test_forced_replan_bypasses_hysteresis(self):
        server = adaptive_server(self.hysteresis_policy(1e9))
        tree = flip_tree()
        server.register("q0", tree, oracle=drifting_oracle(tree, 0, seed=9))
        events = server.replan_query("q0", {0: 0.9})
        assert events  # applied despite the unreachable min_saving
        assert server.metrics.replans == len(events)
        assert server.metrics.replans_suppressed == 0

    def test_negative_min_saving_rejected(self):
        from repro.errors import StreamError

        with pytest.raises(StreamError):
            AdaptivePolicy(min_saving=-0.5)
