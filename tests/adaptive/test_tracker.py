"""LeafPosterior / SelectivityTracker / AdaptivePolicy unit behaviour."""

from __future__ import annotations

import pytest

from repro.adaptive import AdaptivePolicy, LeafPosterior, SelectivityTracker
from repro.adaptive.controller import AdaptiveController, fold_base_probs
from repro.errors import StreamError


class TestLeafPosterior:
    def test_prior_mean_before_evidence(self):
        posterior = LeafPosterior(window=8, prior=(1.0, 1.0))
        assert posterior.mean == pytest.approx(0.5)
        assert posterior.window_mean == pytest.approx(0.5)
        assert posterior.window_trials == 0

    def test_counts_accumulate(self):
        posterior = LeafPosterior(window=16)
        for outcome in (True, True, False, True):
            posterior.observe(outcome)
        assert (posterior.trials, posterior.successes) == (4, 3)
        assert posterior.window_mean == pytest.approx((3 + 1) / (4 + 2))

    def test_window_forgets_old_regime(self):
        posterior = LeafPosterior(window=10)
        for _ in range(100):
            posterior.observe(False)
        for _ in range(10):
            posterior.observe(True)
        # Lifetime estimate still remembers the failures; the window doesn't.
        assert posterior.mean < 0.2
        assert posterior.window_mean == pytest.approx(11 / 12)
        assert posterior.window_trials == 10

    def test_window_eviction_keeps_success_count_consistent(self):
        posterior = LeafPosterior(window=4)
        pattern = [True, False, True, True, False, False, True, False]
        for outcome in pattern:
            posterior.observe(outcome)
        assert posterior.window_successes == sum(pattern[-4:])
        assert posterior.window_trials == 4

    def test_divergence_and_reset(self):
        posterior = LeafPosterior(window=64)
        for _ in range(64):
            posterior.observe(True)
        assert posterior.divergence(0.1) > 0.8
        posterior.reset_window()
        assert posterior.window_trials == 0
        assert posterior.trials == 64  # lifetime retained
        assert posterior.divergence(0.5) == pytest.approx(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(StreamError):
            LeafPosterior(window=0)
        with pytest.raises(StreamError):
            LeafPosterior(prior=(0.0, 1.0))


class TestSelectivityTracker:
    def test_keys_are_independent(self):
        tracker = SelectivityTracker(window=8)
        tracker.observe(("k", 0), True)
        tracker.observe(("k", 1), False)
        assert tracker.posterior(("k", 0)).successes == 1
        assert tracker.posterior(("k", 1)).successes == 0
        assert len(tracker) == 2
        assert ("k", 0) in tracker

    def test_estimate_falls_back_to_default(self):
        tracker = SelectivityTracker()
        assert tracker.estimate(("missing", 0), default=0.42) == pytest.approx(0.42)
        tracker.observe(("k", 0), True)
        assert tracker.estimate(("k", 0), default=0.42) == pytest.approx(2 / 3)

    def test_drop_and_snapshot(self):
        tracker = SelectivityTracker(window=4)
        tracker.observe("a", True)
        tracker.observe("b", False)
        snap = tracker.snapshot()
        assert snap["a"] == (pytest.approx(2 / 3), 1)
        tracker.drop("a")
        assert "a" not in tracker


class TestAdaptivePolicy:
    def test_defaults_validate(self):
        policy = AdaptivePolicy()
        assert policy.window >= policy.min_samples

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"threshold": 0.0},
            {"threshold": 1.0},
            {"min_samples": 0},
            {"window": 8, "min_samples": 9},
            {"cooldown": -1},
            {"prior": (0.0, 1.0)},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs):
        with pytest.raises(StreamError):
            AdaptivePolicy(**kwargs)


class TestController:
    def test_fold_base_probs(self):
        assert fold_base_probs((0.5, 0.9), (1, 2)) == (
            pytest.approx(0.5),
            pytest.approx(0.81),
        )
        with pytest.raises(StreamError):
            fold_base_probs((0.5,), (1, 2))

    def test_extreme_probs_clipped_open_interval(self):
        folded = fold_base_probs((0.0, 1.0), (1, 1))
        assert 0.0 < folded[0] < folded[1] < 1.0

    def test_drift_requires_min_samples_and_threshold(self):
        controller = AdaptiveController(
            AdaptivePolicy(window=32, threshold=0.2, min_samples=10, cooldown=0)
        )
        controller.admit("key", (0.1,), (1,))
        for _ in range(9):
            controller.observe("key", 0, True)
        assert controller.drifted_leaves("key") == ()  # not enough evidence
        controller.observe("key", 0, True)
        assert controller.drifted_leaves("key") == (0,)

    def test_cooldown_blocks_consecutive_replans(self):
        controller = AdaptiveController(
            AdaptivePolicy(window=16, threshold=0.2, min_samples=4, cooldown=10)
        )
        controller.admit("key", (0.1,), (1,))
        for _ in range(8):
            controller.observe("key", 0, True)
        assert controller.should_replan("key", round_index=5) == (0,)
        controller.rebase("key", 5, controller.proposed_base_probs("key"))
        # Windows reset on rebase: evidence must re-accumulate, and even with
        # evidence the cooldown gate holds until round 15.
        for _ in range(8):
            controller.observe("key", 0, False)
        assert controller.should_replan("key", round_index=14) == ()
        assert controller.should_replan("key", round_index=15) != ()

    def test_rebase_updates_baseline(self):
        controller = AdaptiveController(AdaptivePolicy(window=8, min_samples=2))
        controller.admit("key", (0.3, 0.7), (1, 1))
        controller.rebase("key", 3, (0.8, 0.7))
        assert controller.baseline("key") == (0.8, 0.7)
        with pytest.raises(StreamError):
            controller.rebase("key", 4, (0.8,))

    def test_retire_forgets_everything(self):
        controller = AdaptiveController(AdaptivePolicy(window=8, min_samples=2))
        controller.admit("key", (0.5,), (1,))
        controller.observe("key", 0, True)
        controller.retire("key")
        assert "key" not in controller.tracked_keys()
        assert controller.tracker.get(("key", 0)) is None
        with pytest.raises(StreamError):
            controller.baseline("key")

    def test_admit_is_idempotent(self):
        controller = AdaptiveController(AdaptivePolicy())
        controller.admit("key", (0.5,), (1,))
        controller.rebase("key", 1, (0.9,))
        controller.admit("key", (0.5,), (1,))  # second isomorph arriving
        assert controller.baseline("key") == (0.9,)  # rebased belief kept
