"""Golden tests against every worked example and in-text number of the paper."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro import (
    AndTree,
    DnfTree,
    Leaf,
    algorithm1_order,
    and_tree_cost,
    brute_force_and_tree,
    dnf_schedule_cost,
    exact_schedule_cost,
    read_once_order,
)
from repro.core.dnf_optimal import optimal_depth_first
from repro.core.heuristics.and_ordered import and_block_plan
from repro.lang import parse_query

from tests.conftest import PAPER_FIG3_SCHEDULE, fig3_paper_cost, make_paper_dnf


class TestSectionIIReadOnceExample:
    """Figure 1(a) read-once query.

    The §II cost derivation ("the expected evaluation cost of the OR operator
    is 4 c(B) + q2 c(C)"; l1 evaluated iff the OR is TRUE) identifies the
    tree as AND(OR(l2, l3), l1) with l1 = AVG(A,5)<70, l2 = MAX(B,4)>100,
    l3 = C<3.
    """

    def make_tree(self, p1: float, p2: float, p3: float):
        text = "(MAX(B,4) > 100 p=%g OR C < 3 p=%g) AND AVG(A,5) < 70 p=%g" % (p2, p3, p1)
        return parse_query(text, costs={"A": 1.0, "B": 1.0, "C": 1.0}).tree

    @pytest.mark.parametrize("p1,p2,p3", [(0.3, 0.7, 0.5), (0.9, 0.2, 0.1), (0.5, 0.5, 0.5)])
    def test_schedule_l2_l3_l1_cost_matches_paper_formula(self, p1, p2, p3):
        # Paper: cost(l2,l3,l1) = 4 c(B) + q2 c(C) + (1 - q2 q3) 5 c(A)
        tree = self.make_tree(p1, p2, p3)
        # leaf global indices: l2 (MAX B) = 0, l3 (C) = 1, l1 (AVG A) = 2
        cost = exact_schedule_cost(tree, (0, 1, 2))
        q2, q3 = 1 - p2, 1 - p3
        expected = 4.0 + q2 * 1.0 + (1 - q2 * q3) * 5.0
        assert cost == pytest.approx(expected, rel=1e-12)


class TestSectionIIAAndTreeExample:
    """The Figure 2 shared AND-tree: exact costs 1.875 / 2.0 / 1.825."""

    def test_cost_l3_l1_l2(self, paper_and_tree):
        assert and_tree_cost(paper_and_tree, (2, 0, 1)) == pytest.approx(1.875)

    def test_cost_l3_l2_l1(self, paper_and_tree):
        assert and_tree_cost(paper_and_tree, (2, 1, 0)) == pytest.approx(2.0)

    def test_cost_l1_l2_l3(self, paper_and_tree):
        assert and_tree_cost(paper_and_tree, (0, 1, 2)) == pytest.approx(1.825)

    def test_read_once_algorithm_schedules_l3_first(self, paper_and_tree):
        # Smith ratios: l1 -> 4, l2 -> 2.22, l3 -> 2, so l3 comes first.
        order = read_once_order(paper_and_tree)
        assert order[0] == 2

    def test_read_once_algorithm_is_suboptimal_here(self, paper_and_tree):
        read_once_cost = and_tree_cost(paper_and_tree, read_once_order(paper_and_tree))
        assert read_once_cost > 1.825 + 1e-12

    def test_algorithm1_finds_the_optimal_schedule(self, paper_and_tree):
        order = algorithm1_order(paper_and_tree)
        assert order == (0, 1, 2)
        assert and_tree_cost(paper_and_tree, order) == pytest.approx(1.825)

    def test_brute_force_agrees(self, paper_and_tree):
        _, best_cost = brute_force_and_tree(paper_and_tree)
        assert best_cost == pytest.approx(1.825)

    def test_smith_ratios_match_paper(self, paper_and_tree):
        from repro.core.andtree_optimal import smith_ratio

        l1, l2, l3 = paper_and_tree.leaves
        assert smith_ratio(l1, paper_and_tree.costs) == pytest.approx(4.0)
        assert smith_ratio(l2, paper_and_tree.costs) == pytest.approx(2.0 / 0.9)
        assert smith_ratio(l3, paper_and_tree.costs) == pytest.approx(2.0)


class TestSectionIIBDnfExample:
    """Figure 3 cost derivation: the paper's closed form, per leaf and total."""

    @pytest.mark.parametrize("seed", range(8))
    def test_total_cost_matches_paper_formula(self, seed):
        rng = np.random.default_rng(seed)
        p = {k: float(rng.random()) for k in range(1, 8)}
        c = {s: float(rng.uniform(1, 10)) for s in "ABCD"}
        tree = make_paper_dnf(p, c)
        got = dnf_schedule_cost(tree, PAPER_FIG3_SCHEDULE)
        assert got == pytest.approx(fig3_paper_cost(p, c), rel=1e-12)

    def test_per_leaf_costs_match_paper_derivation(self):
        rng = np.random.default_rng(123)
        p = {k: float(rng.random()) for k in range(1, 8)}
        c = {s: float(rng.uniform(1, 10)) for s in "ABCD"}
        tree = make_paper_dnf(p, c)
        from repro.core.cost import DnfPrefixCost

        state = DnfPrefixCost(tree)
        contributions = [state.push(g).contribution for g in PAPER_FIG3_SCHEDULE]
        # Paper: C1 = c(A); C2 = c(B); C3 = p1 c(C); C4 = p1 p3 c(D);
        # C5 = (1-p1) p2 c(C); C6 = 0; C7 = (1-p1 p3)(1-p2 p5) p6 c(D).
        expected = [
            c["A"],
            c["B"],
            p[1] * c["C"],
            p[1] * p[3] * c["D"],
            (1 - p[1]) * p[2] * c["C"],
            0.0,
            (1 - p[1] * p[3]) * (1 - p[2] * p[5]) * p[6] * c["D"],
        ]
        assert contributions == pytest.approx(expected, rel=1e-12, abs=1e-15)

    def test_exact_evaluator_agrees_with_paper_formula(self):
        rng = np.random.default_rng(7)
        p = {k: float(rng.random()) for k in range(1, 8)}
        c = {s: float(rng.uniform(1, 10)) for s in "ABCD"}
        tree = make_paper_dnf(p, c)
        got = exact_schedule_cost(tree, PAPER_FIG3_SCHEDULE)
        assert got == pytest.approx(fig3_paper_cost(p, c), rel=1e-12)


class TestSectionIVCCounterexample:
    """§IV-C: read-once's compositional approach fails in the shared case —
    no optimal schedule keeps Algorithm 1's within-AND orders."""

    def test_alg1_within_and_orders_are_suboptimal(self, alg1_within_and_counterexample):
        tree = alg1_within_and_counterexample
        optimum = optimal_depth_first(tree)
        plans = [and_block_plan(tree, i)[0] for i in range(tree.n_ands)]
        best_with_alg1_orders = min(
            dnf_schedule_cost(tree, tuple(g for a in order for g in plans[a]))
            for order in itertools.permutations(range(tree.n_ands))
        )
        assert optimum.cost == pytest.approx(6.537, abs=1e-3)
        assert best_with_alg1_orders == pytest.approx(10.297, abs=1e-3)
        assert best_with_alg1_orders > optimum.cost * 1.5


class TestSectionVNonlinearGap:
    """§V: linear strategies are not dominant in the shared case."""

    def test_hardcoded_gap_instance(self, nonlinear_gap_tree):
        from repro.core.dnf_optimal import optimal_any_order
        from repro.core.nonlinear import optimal_nonlinear

        linear = optimal_any_order(nonlinear_gap_tree)
        _, nonlinear_cost = optimal_nonlinear(nonlinear_gap_tree)
        assert linear.cost == pytest.approx(4.5, abs=1e-9)
        assert nonlinear_cost == pytest.approx(4.176, abs=1e-9)
        assert nonlinear_cost < linear.cost


class TestProposition1:
    """Same-stream leaves: increasing-d order is never worse (exchange argument)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_increasing_d_exchange_never_hurts(self, seed):
        rng = np.random.default_rng(seed)
        leaves = [
            Leaf("A", int(rng.integers(1, 5)), float(rng.random())) for _ in range(3)
        ] + [Leaf("B", int(rng.integers(1, 5)), float(rng.random()))]
        tree = AndTree(leaves, {"A": float(rng.uniform(1, 5)), "B": float(rng.uniform(1, 5))})
        # The best schedule overall equals the best among schedules where
        # same-stream leaves appear in increasing-d order.
        best_all = min(
            and_tree_cost(tree, perm) for perm in itertools.permutations(range(4))
        )

        def respects_prop1(perm):
            positions = {idx: pos for pos, idx in enumerate(perm)}
            for i, j in itertools.permutations(range(4), 2):
                a, b = tree.leaves[i], tree.leaves[j]
                if a.stream == b.stream and a.items < b.items and positions[i] > positions[j]:
                    return False
            return True

        best_prop1 = min(
            and_tree_cost(tree, perm)
            for perm in itertools.permutations(range(4))
            if respects_prop1(perm)
        )
        assert best_prop1 == pytest.approx(best_all, rel=1e-12)
