"""Trace analysis: forest reconstruction, critical path, attribution, export."""

from __future__ import annotations

import pytest

from repro.obs import (
    Tracer,
    attribute,
    build_forest,
    critical_path,
    to_chrome_trace,
)
from repro.obs.analyze import ATTRIBUTION_BUCKETS, SPAN_BUCKETS


def span(
    name: str,
    sid: str,
    parent: str | None = None,
    *,
    trace: str = "t",
    ts: float = 0.0,
    dur: float = 1.0,
    pid: int = 1,
    **attrs,
) -> dict:
    return {
        "type": "span",
        "name": name,
        "ts": ts,
        "dur": dur,
        "thread": 7,
        "pid": pid,
        "trace_id": trace,
        "span_id": sid,
        "parent_id": parent,
        "attrs": attrs,
    }


def event(name: str, parent: str | None, *, trace: str = "t", **attrs) -> dict:
    return {
        "type": "event",
        "name": name,
        "ts": 0.5,
        "dur": 0.0,
        "thread": 7,
        "pid": 1,
        "trace_id": trace,
        "parent_id": parent,
        "attrs": attrs,
    }


class TestBuildForest:
    def test_links_children_regardless_of_file_order(self):
        # A merged sink interleaves worker spans *before* the dispatching
        # span closes — the child precedes its parent in the file.
        records = [
            span("child", "c", "p", ts=1.0),
            span("parent", "p", None, ts=0.0, dur=3.0),
        ]
        forest = build_forest(records)
        (root,) = forest.roots
        assert root.name == "parent"
        assert [c.name for c in root.children] == ["child"]
        assert forest.orphans == []

    def test_orphan_spans_surface_and_stay_analyzable(self):
        records = [span("lost", "x", "missing-parent")]
        forest = build_forest(records)
        assert len(forest.orphans) == 1
        # Orphans still appear as roots so their subtree is inspectable.
        assert [r.name for r in forest.roots] == ["lost"]

    def test_unparented_events_are_legal_not_orphans(self):
        forest = build_forest([event("startup", None)])
        assert forest.orphans == []

    def test_event_with_unknown_parent_is_an_orphan(self):
        forest = build_forest([event("tick", "nope")])
        assert len(forest.orphans) == 1

    def test_events_attach_to_their_span(self):
        records = [span("batch", "b"), event("replan", "b", key="k")]
        forest = build_forest(records)
        (root,) = forest.roots
        assert [e["name"] for e in root.events] == ["replan"]

    def test_children_sorted_by_start_time(self):
        records = [
            span("parent", "p", None, ts=0.0, dur=5.0),
            span("late", "b", "p", ts=3.0),
            span("early", "a", "p", ts=1.0),
        ]
        (root,) = build_forest(records).roots
        assert [c.name for c in root.children] == ["early", "late"]

    def test_trace_ids_and_batch_roots(self):
        records = [
            span("cluster-batch", "a", None, trace="t1"),
            span("migration", "b", None, trace="t2"),
            span("batch", "c", None, trace="t3"),
        ]
        forest = build_forest(records)
        assert forest.trace_ids == ["t1", "t2", "t3"]
        assert [r.name for r in forest.batch_roots()] == ["cluster-batch", "batch"]

    def test_snapshot_records_are_ignored(self):
        forest = build_forest([{"type": "snapshot", "metrics": {}}, span("s", "1")])
        assert forest.n_records == 2
        assert len(forest.roots) == 1

    def test_real_tracer_output_reconstructs(self):
        tracer = Tracer()
        with tracer.span("batch"):
            with tracer.span("round"):
                tracer.event("probe")
        forest = build_forest(tracer.records())
        (root,) = forest.roots
        assert [n.name for n in root.walk()] == ["batch", "round"]
        assert forest.orphans == []


class TestCriticalPath:
    def test_descends_into_latest_finishing_child(self):
        records = [
            span("root", "r", None, ts=0.0, dur=10.0),
            span("fast", "f", "r", ts=1.0, dur=2.0),
            span("slow", "s", "r", ts=1.0, dur=8.0),
            span("slow-inner", "si", "s", ts=2.0, dur=6.0),
        ]
        (root,) = build_forest(records).roots
        assert [n.name for n in critical_path(root)] == [
            "root",
            "slow",
            "slow-inner",
        ]

    def test_leaf_root_is_its_own_path(self):
        (root,) = build_forest([span("only", "o")]).roots
        assert [n.name for n in critical_path(root)] == ["only"]

    def test_late_start_beats_long_duration(self):
        # end time decides, not duration: the join waited on the finisher.
        records = [
            span("root", "r", None, ts=0.0, dur=10.0),
            span("long-but-early", "a", "r", ts=0.0, dur=5.0),
            span("short-but-late", "b", "r", ts=8.0, dur=1.5),
        ]
        (root,) = build_forest(records).roots
        assert critical_path(root)[1].name == "short-but-late"


class TestAttribution:
    def test_phase_seconds_credit_their_buckets(self):
        records = [
            span(
                "batch",
                "b",
                None,
                dur=1.0,
                phase_seconds={
                    "acquisition": 0.2,
                    "evaluation": 0.5,
                    "telemetry": 0.1,
                },
            )
        ]
        (root,) = build_forest(records).roots
        att = attribute(root)
        assert att.buckets["acquisition"] == 0.2
        assert att.buckets["evaluation"] == 0.5
        assert att.buckets["telemetry"] == 0.1
        assert att.residue == pytest.approx(0.2)
        assert att.coverage == pytest.approx(0.8)

    def test_mapped_spans_credit_their_durations(self):
        records = [
            span("cluster-batch", "c", None, dur=2.0),
            span("migration", "m", "c", ts=0.1, dur=0.3),
            span("elastic", "e", "c", ts=0.5, dur=0.2),
            span("plan-cache-upcall", "p", "c", ts=0.8, dur=0.1),
        ]
        (root,) = build_forest(records).roots
        att = attribute(root)
        assert att.buckets["migration"] == 0.3
        assert att.buckets["elastic"] == 0.2
        assert att.buckets["plan_cache"] == 0.1

    def test_nested_mapped_spans_count_once(self):
        # Only the outermost mapped span on a path is credited; anything
        # nested under it (mapped spans or phase accounting) is subsumed.
        records = [
            span("cluster-batch", "c", None, dur=2.0),
            span("elastic", "e", "c", dur=1.0),
            span("migration", "m", "e", dur=0.4),
            span("batch", "b", "m", dur=0.2, phase_seconds={"evaluation": 0.2}),
        ]
        (root,) = build_forest(records).roots
        att = attribute(root)
        assert att.buckets["elastic"] == 1.0
        assert att.buckets["migration"] == 0.0
        assert att.buckets["evaluation"] == 0.0
        assert att.busy_seconds == 1.0

    def test_concurrent_shards_can_exceed_wall(self):
        records = [
            span("cluster-batch", "c", None, dur=1.0),
            span("batch", "b1", "c", dur=0.9, phase_seconds={"evaluation": 0.9}),
            span("batch", "b2", "c", dur=0.9, phase_seconds={"evaluation": 0.9}),
        ]
        (root,) = build_forest(records).roots
        att = attribute(root)
        assert att.coverage > 1.0
        assert att.residue == 0.0

    def test_bucket_names_are_the_documented_set(self):
        assert set(SPAN_BUCKETS.values()) < set(ATTRIBUTION_BUCKETS)
        assert ATTRIBUTION_BUCKETS[-1] == "residue"

    def test_zero_wall_span_has_zero_coverage(self):
        (root,) = build_forest([span("batch", "b", None, dur=0.0)]).roots
        assert attribute(root).coverage == 0.0


class TestChromeExport:
    def test_spans_become_complete_events_in_microseconds(self):
        records = [span("batch", "b", None, ts=2.0, dur=0.5, rounds=3)]
        trace = to_chrome_trace(records)
        (entry,) = trace["traceEvents"]
        assert entry["ph"] == "X"
        assert entry["ts"] == 2.0 * 1e6
        assert entry["dur"] == 0.5 * 1e6
        assert entry["args"]["rounds"] == 3
        assert entry["args"]["span_id"] == "b"
        assert trace["displayTimeUnit"] == "ms"

    def test_events_become_instants(self):
        trace = to_chrome_trace([event("replan", "b")])
        (entry,) = trace["traceEvents"]
        assert entry["ph"] == "i"
        assert entry["dur"] if "dur" in entry else True

    def test_snapshots_are_skipped(self):
        trace = to_chrome_trace([{"type": "snapshot", "metrics": {}}])
        assert trace["traceEvents"] == []

    def test_pid_and_thread_become_lanes(self):
        records = [span("batch", "b", None, pid=42)]
        (entry,) = to_chrome_trace(records)["traceEvents"]
        assert entry["pid"] == 42
        assert entry["tid"] == 7
