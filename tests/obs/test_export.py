"""Prometheus exposition rendering, golden-file pinned."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import TelemetryError
from repro.obs import MetricsRegistry, render_prometheus

DATA_DIR = Path(__file__).parent / "data"


def golden_registry() -> MetricsRegistry:
    """A small deterministic registry covering every rendering feature:
    labelled/unlabelled counters, a gauge, a labelled histogram with
    overflow, and a label value needing escaping."""
    reg = MetricsRegistry()
    reg.counter("repro_rounds_total").inc(12)
    reg.counter("repro_migrations_total", direction="in").inc(3)
    reg.counter("repro_migrations_total", direction="out").inc(3)
    reg.counter("repro_odd_total", note='say "hi"\n').inc(1.5)
    reg.gauge("repro_cluster_shards").set(4)
    hist = reg.histogram("repro_shard_batch_seconds", (0.1, 1.0, 10.0), shard="0")
    for value in (0.05, 0.5, 0.5, 2.0, 100.0):
        hist.observe(value)
    return reg


class TestRenderPrometheus:
    def test_matches_golden_file(self):
        rendered = render_prometheus(golden_registry())
        golden = (DATA_DIR / "prometheus_golden.txt").read_text()
        assert rendered == golden

    def test_registry_and_snapshot_render_identically(self):
        reg = golden_registry()
        assert render_prometheus(reg) == render_prometheus(reg.snapshot())

    def test_accepts_telemetry_snapshot_envelope(self):
        reg = golden_registry()
        wrapped = {"type": "snapshot", "metrics": reg.snapshot()}
        assert render_prometheus(wrapped) == render_prometheus(reg)

    def test_histogram_buckets_are_cumulative_and_inf_includes_overflow(self):
        text = render_prometheus(golden_registry())
        lines = [l for l in text.splitlines() if l.startswith("repro_shard_batch")]
        by_suffix = {line.rsplit(" ", 1)[0]: line.rsplit(" ", 1)[1] for line in lines}
        assert by_suffix['repro_shard_batch_seconds_bucket{le="0.1",shard="0"}'] == "1"
        assert by_suffix['repro_shard_batch_seconds_bucket{le="1",shard="0"}'] == "3"
        assert by_suffix['repro_shard_batch_seconds_bucket{le="10",shard="0"}'] == "4"
        # 100.0 lands beyond the last bound: only +Inf (and _count) see it.
        assert by_suffix['repro_shard_batch_seconds_bucket{le="+Inf",shard="0"}'] == "5"
        assert by_suffix['repro_shard_batch_seconds_count{shard="0"}'] == "5"

    def test_type_header_emitted_once_per_family(self):
        text = render_prometheus(golden_registry())
        assert text.count("# TYPE repro_migrations_total counter") == 1
        assert text.count("repro_migrations_total{") == 2

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_rejects_non_snapshots(self):
        with pytest.raises(TelemetryError):
            render_prometheus(42)
        with pytest.raises(TelemetryError):
            render_prometheus({"metrics": {"counters": []}})
