"""Telemetry facade semantics and end-to-end serving/cluster integration."""

from __future__ import annotations

import io

from repro.adaptive import AdaptivePolicy
from repro.cluster import ClusterServer
from repro.engine import BernoulliOracle
from repro.experiments.drift import run_drift
from repro.generators import clustered_registry, overlap_clustered_population
from repro.obs import MetricsRegistry, Telemetry, latest_snapshot, read_jsonl
from repro.service import QueryServer, synthetic_population, synthetic_registry


def make_server(telemetry: Telemetry | None, n_queries: int = 12) -> QueryServer:
    registry = synthetic_registry(6, seed=31)
    population = synthetic_population(n_queries, registry, seed=32)
    server = QueryServer(registry, BernoulliOracle(seed=33), telemetry=telemetry)
    for name, tree in population:
        server.register(name, tree)
    return server


def make_cluster(telemetry: Telemetry | None, seed: int = 41) -> ClusterServer:
    registry = clustered_registry(3, 3, seed=seed)
    population = overlap_clustered_population(18, registry, 3, 3, seed=seed + 1)
    cluster = ClusterServer(registry, n_shards=2, seed=seed + 2, telemetry=telemetry)
    cluster.register_population(population)
    return cluster


class TestFacade:
    def test_disabled_span_still_yields_attrs(self):
        tel = Telemetry(enabled=False)
        with tel.span("batch", rounds=3) as attrs:
            attrs["result"] = 1
        assert attrs == {"rounds": 3, "result": 1}
        tel.event("ignored")
        assert tel.tracer.emitted == 0

    def test_enabled_span_records(self):
        tel = Telemetry()
        with tel.span("batch") as attrs:
            attrs["x"] = 1
        assert tel.tracer.spans("batch")[0]["attrs"] == {"x": 1}

    def test_snapshot_envelope(self):
        tel = Telemetry()
        tel.counter("c").inc(2)
        record = tel.write_snapshot()
        assert record["type"] == "snapshot"
        assert record["metrics"]["counters"][0]["value"] == 2.0
        assert tel.tracer.records()[-1]["type"] == "snapshot"

    def test_finally_snapshot_writes_on_exit(self):
        sink = io.StringIO()
        tel = Telemetry(sink=sink)
        with tel.finally_snapshot():
            tel.event("tick")
        records = [r for r in read_jsonl(io.StringIO(sink.getvalue()))]
        assert latest_snapshot(records) is not None

    def test_shared_registry_across_telemetries(self):
        shared = MetricsRegistry()
        a, b = Telemetry(registry=shared), Telemetry(registry=shared)
        a.counter("c").inc()
        b.counter("c").inc()
        assert shared.value("c") == 2.0


class TestServerIntegration:
    def test_batch_metrics_match_report(self):
        for engine in ("scalar", "vectorized"):
            tel = Telemetry()
            server = make_server(tel)
            report = server.run_batch(8, engine=engine)
            reg = tel.registry
            assert reg.value("repro_rounds_total") == 8
            assert reg.value("repro_probes_total") == report.probes
            assert reg.value("repro_free_probes_total") == report.free_probes
            assert reg.value("repro_items_fetched_total") == report.items_fetched
            assert reg.value("repro_items_saved_total") == report.items_saved
            cost = reg.get_histogram("repro_round_cost")
            assert cost is not None and cost.count == 8
            assert cost.total == sum(report.round_costs)
            seconds = reg.get_histogram("repro_round_seconds")
            assert seconds is not None and seconds.count == 8
            (span,) = tel.tracer.spans("batch")
            assert span["attrs"]["engine"] == engine
            assert span["attrs"]["total_cost"] == report.total_cost

    def test_per_query_cost_histograms(self):
        tel = Telemetry()
        server = make_server(tel, n_queries=6)
        report = server.run_batch(5, engine="vectorized")
        for name in server.registered:
            hist = tel.registry.get_histogram("repro_query_round_cost", query=name)
            assert hist is not None and hist.count == 5
            assert hist.total == report.per_query_cost[name]

    def test_telemetry_does_not_change_serving(self):
        bare = make_server(None).run_batch(6, engine="vectorized")
        traced = make_server(Telemetry()).run_batch(6, engine="vectorized")
        disabled = make_server(Telemetry(enabled=False)).run_batch(
            6, engine="vectorized"
        )
        assert bare == traced == disabled

    def test_disabled_telemetry_records_nothing(self):
        tel = Telemetry(enabled=False)
        make_server(tel).run_batch(4, engine="vectorized")
        assert tel.tracer.emitted == 0
        assert len(tel.registry) == 0

    def test_detail_mode_emits_per_query_resolutions(self):
        for engine in ("scalar", "vectorized"):
            tel = Telemetry(detail=True)
            server = make_server(tel, n_queries=4)
            server.run_batch(3, engine=engine)
            events = tel.tracer.events("query-resolution")
            assert len(events) == 3 * 4
            assert {e["attrs"]["query"] for e in events} == set(server.registered)
            assert all(isinstance(e["attrs"]["value"], bool) for e in events)

    def test_service_and_registry_percentiles_agree(self):
        tel = Telemetry()
        server = make_server(tel)
        server.run_batch(20, engine="vectorized")
        hist = tel.registry.get_histogram("repro_round_cost")
        for q, prop in ((50.0, "p50_round_cost"), (99.0, "p99_round_cost")):
            assert getattr(server.metrics, prop) == hist.percentile(q)

    def test_adaptive_replans_traced(self):
        tel = Telemetry()
        policy = AdaptivePolicy(window=16, threshold=0.2, min_samples=8, cooldown=4)
        report = run_drift(
            n_queries=4,
            cluster_size=2,
            rounds=60,
            drift_round=20,
            policy=policy,
            telemetry=tel,
        )
        assert report.adaptive.replans > 0
        assert tel.registry.value("repro_replans_total") == report.adaptive.replans
        events = tel.tracer.events("replan")
        assert len(events) == report.adaptive.replans
        assert all(e["attrs"]["new_cost"] <= e["attrs"]["old_cost"] for e in events)


class TestClusterIntegration:
    def test_report_fields_are_registry_deltas(self):
        tel = Telemetry()
        cluster = make_cluster(tel)
        first = cluster.run_batch(4)
        reg = tel.registry
        for field, name in (
            ("rounds", "repro_cluster_rounds_total"),
            ("probes", "repro_cluster_probes_total"),
            ("free_probes", "repro_cluster_free_probes_total"),
            ("items_fetched", "repro_cluster_items_fetched_total"),
            ("items_saved", "repro_cluster_items_saved_total"),
            ("replans", "repro_cluster_replans_total"),
        ):
            assert getattr(first, field) == reg.value(name)
        assert first.total_cost == reg.value("repro_cluster_cost_total")
        # A second batch's report covers only its own delta, not lifetime.
        second = cluster.run_batch(4)
        assert second.rounds == 4
        assert reg.value("repro_cluster_rounds_total") == 8
        assert reg.value("repro_cluster_batches_total") == 2
        assert reg.value("repro_cluster_shards") == cluster.n_shards
        assert reg.value("repro_cluster_queries") == len(cluster)

    def test_cluster_reports_identical_with_and_without_telemetry(self):
        bare = make_cluster(None).run_batch(5)
        traced = make_cluster(Telemetry()).run_batch(5)
        # Everything but wall-clock timing must be bit-identical.
        for field in (
            "rounds",
            "total_cost",
            "probes",
            "free_probes",
            "items_fetched",
            "items_saved",
            "replans",
            "shard_sizes",
            "per_query_cost",
            "per_query_true_rate",
        ):
            assert getattr(bare, field) == getattr(traced, field), field

    def test_shard_batch_spans_and_histograms_roll_up(self):
        tel = Telemetry()
        cluster = make_cluster(tel)
        cluster.run_batch(3)
        cluster.run_batch(3)
        spans = tel.tracer.spans("shard-batch")
        assert len(spans) == 2 * cluster.n_shards
        assert {s["attrs"]["shard"] for s in spans} == set(cluster.shards)
        merged = tel.registry.merged_histogram("repro_shard_batch_seconds")
        assert merged is not None and merged.count == 2 * cluster.n_shards
        cluster_spans = tel.tracer.spans("cluster-batch")
        assert len(cluster_spans) == 2
        assert all(s["attrs"]["shards"] == cluster.n_shards for s in cluster_spans)

    def test_elastic_actions_and_migrations_traced(self):
        tel = Telemetry()
        cluster = make_cluster(tel)
        cluster.run_batch(2)
        before = len(cluster.elastic_log)
        cluster.resize(4)
        cluster.resize(2)
        actions = tel.tracer.events("elastic-action")
        assert len(actions) == len(cluster.elastic_log) - before
        kinds = {e["attrs"]["kind"] for e in actions}
        total = sum(
            tel.registry.value("repro_elastic_actions_total", kind=kind)
            for kind in kinds
        )
        assert total == len(actions)
        # Resizing moved queries: migration spans pair with in/out events.
        assert tel.registry.value("repro_migrations_total", direction="in") > 0
        assert tel.registry.value(
            "repro_migrations_total", direction="in"
        ) == tel.registry.value("repro_migrations_total", direction="out")
        assert len(tel.tracer.events("migration-in")) == len(
            tel.tracer.events("migration-out")
        )
        assert tel.tracer.spans("migration")


class TestTraceDropAccounting:
    def test_ring_drops_surface_as_a_counter(self):
        tel = Telemetry(capacity=2)
        for i in range(5):
            tel.event("tick", i=i)
        assert tel.sync_trace_drops() == 3
        assert tel.registry.value("repro_trace_dropped_total") == 3.0

    def test_sync_is_idempotent_per_drop(self):
        tel = Telemetry(capacity=1)
        tel.event("a")
        tel.event("b")  # evicts "a"
        tel.sync_trace_drops()
        tel.sync_trace_drops()
        assert tel.registry.value("repro_trace_dropped_total") == 1.0
        tel.event("c")  # evicts "b"
        tel.sync_trace_drops()
        assert tel.registry.value("repro_trace_dropped_total") == 2.0

    def test_snapshot_includes_the_drop_counter(self):
        tel = Telemetry(capacity=1)
        tel.event("a")
        snapshot = tel.snapshot()
        names = {cell["name"] for cell in snapshot["metrics"]["counters"]}
        # Created eagerly at zero, so dashboards always see the series.
        assert "repro_trace_dropped_total" in names
        assert tel.registry.value("repro_trace_dropped_total") == 0.0

    def test_registry_swap_attributes_drops_to_the_watching_registry(self):
        # The worker delta pattern: each shipped registry carries exactly
        # the drops that happened on its watch.
        from repro.obs import MetricsRegistry

        tel = Telemetry(capacity=1)
        tel.event("a")
        tel.event("b")  # drop 1 on the first registry's watch
        tel.sync_trace_drops()
        first = tel.registry
        tel.registry = MetricsRegistry()
        tel.event("c")
        tel.event("d")  # drops 2..4 land on the second registry
        tel.event("e")
        tel.sync_trace_drops()
        assert first.value("repro_trace_dropped_total") == 1.0
        assert tel.registry.value("repro_trace_dropped_total") == 3.0

    def test_disabled_telemetry_still_records_nothing(self):
        tel = Telemetry(enabled=False)
        tel.sync_trace_drops()
        assert len(tel.registry) == 0


class TestSloOnClusterReport:
    def make_slo_cluster(self, threshold: float):
        from repro.obs import SloObjective

        registry = clustered_registry(3, 3, seed=41)
        population = overlap_clustered_population(18, registry, 3, 3, seed=42)
        cluster = ClusterServer(
            registry,
            n_shards=2,
            seed=43,
            telemetry=Telemetry(),
            slo=[
                SloObjective(
                    name="shard-p99",
                    metric="repro_shard_batch_seconds",
                    threshold=threshold,
                )
            ],
        )
        cluster.register_population(population)
        return cluster

    def test_healthy_objective_reports_ok(self):
        cluster = self.make_slo_cluster(threshold=60.0)
        report = cluster.run_batch(3)
        (status,) = report.slo_statuses
        assert status.objective.name == "shard-p99"
        assert not status.breached
        assert status.good_fraction == 1.0
        assert "shard-p99: ok" in report.summary()

    def test_impossible_objective_breaches_and_exports(self):
        cluster = self.make_slo_cluster(threshold=1e-12)
        report = cluster.run_batch(3)
        cluster.run_batch(3)
        (status,) = report.slo_statuses
        assert status.good_fraction < 1.0
        reg = cluster.telemetry.registry
        assert reg.value("repro_slo_breached", slo="shard-p99") == 1.0
        assert reg.value("repro_slo_breach_checks_total", slo="shard-p99") >= 1.0
        from repro.obs import render_prometheus

        text = render_prometheus(cluster.telemetry.snapshot())
        assert 'repro_slo_burn_rate{slo="shard-p99",window="fast"}' in text

    def test_no_slo_configured_means_empty_statuses(self):
        report = make_cluster(Telemetry()).run_batch(2)
        assert report.slo_statuses == ()
