"""Tracer ring/sink behaviour and thread-safety."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.errors import TelemetryError
from repro.obs import Tracer, read_jsonl


class TestTracerBasics:
    def test_capacity_validated(self):
        with pytest.raises(TelemetryError):
            Tracer(capacity=0)

    def test_span_times_region_and_captures_attrs(self):
        tracer = Tracer()
        with tracer.span("batch", rounds=4) as attrs:
            attrs["total_cost"] = 7.5
        (span,) = tracer.spans("batch")
        assert span["dur"] >= 0.0
        assert span["attrs"] == {"rounds": 4, "total_cost": 7.5}
        assert span["seq"] == 1

    def test_span_recorded_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("batch"):
                raise RuntimeError("boom")
        assert len(tracer.spans("batch")) == 1

    def test_event_is_zero_duration(self):
        tracer = Tracer()
        tracer.event("replan", key="k", reason="drift")
        (event,) = tracer.events("replan")
        assert event["dur"] == 0.0
        assert event["attrs"]["reason"] == "drift"

    def test_filters_by_name_and_type(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.event("a")
        tracer.event("b")
        assert len(tracer.spans()) == 1
        assert len(tracer.events()) == 2
        assert len(tracer.events("b")) == 1

    def test_ring_is_bounded_but_emitted_is_lifetime(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.event("tick", i=i)
        records = tracer.records()
        assert len(records) == 3
        assert [r["attrs"]["i"] for r in records] == [7, 8, 9]
        assert tracer.emitted == 10

    def test_seq_is_monotonic_across_record_kinds(self):
        tracer = Tracer()
        tracer.event("e")
        with tracer.span("s"):
            pass
        tracer.emit({"type": "snapshot"})
        assert [r["seq"] for r in tracer.records()] == [1, 2, 3]


class TestSink:
    def test_borrowed_sink_receives_every_record(self):
        sink = io.StringIO()
        tracer = Tracer(capacity=2, sink=sink)
        for i in range(5):
            tracer.event("tick", i=i)
        tracer.close()
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        # The ring dropped the oldest three; the sink kept all five.
        assert len(lines) == 5
        assert len(tracer.records()) == 2

    def test_path_sink_owned_and_replayable(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=path)
        with tracer.span("batch", rounds=2):
            tracer.event("replan", key="k")
        tracer.emit({"type": "snapshot", "metrics": {}})
        tracer.close()
        records = read_jsonl(path)
        assert [r["type"] for r in records] == ["event", "span", "snapshot"]
        # Closing again is a no-op, and the file handle really is closed.
        tracer.close()

    def test_read_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "event"}\n\n{"type": "span"}\n')
        assert len(read_jsonl(path)) == 2


class TestTracerThreadSafety:
    def test_concurrent_spans_and_events_never_tear(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(capacity=10_000, sink=path)
        n_threads, per_thread = 6, 200
        barrier = threading.Barrier(n_threads)

        def work(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                if i % 2:
                    tracer.event("tick", tid=tid, i=i)
                else:
                    with tracer.span("work", tid=tid) as attrs:
                        attrs["i"] = i

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tracer.close()

        total = n_threads * per_thread
        assert tracer.emitted == total
        # Every sink line parses (no interleaved partial writes) and seq
        # numbers are exactly 1..total with no gaps or duplicates.
        records = read_jsonl(path)
        assert sorted(r["seq"] for r in records) == list(range(1, total + 1))
        assert len(tracer.records()) == total
