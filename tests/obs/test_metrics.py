"""Metrics registry and histogram unit + property tests."""

from __future__ import annotations

import math
import pickle
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.obs import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)

values = st.floats(
    min_value=1e-9, max_value=1e9, allow_nan=False, allow_infinity=False
)
samples = st.lists(values, min_size=0, max_size=40)


def fill(vals) -> Histogram:
    hist = Histogram()
    for v in vals:
        hist.observe(v)
    return hist


class TestCounterGauge:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.snapshot() == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(TelemetryError):
            Counter().inc(-1.0)

    def test_gauge_tracks_last_set(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.set(2)
        assert gauge.snapshot() == 2.0


class TestHistogram:
    def test_default_buckets_cover_twelve_decades(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(1e6)
        assert len(DEFAULT_BUCKETS) == 61  # 5 per decade over 12 decades

    def test_exponential_buckets_validated(self):
        assert exponential_buckets(1.0, 2.0, 3) == (1.0, 2.0, 4.0)
        for bad in ((0.0, 2.0, 3), (1.0, 1.0, 3), (1.0, 2.0, 0)):
            with pytest.raises(TelemetryError):
                exponential_buckets(*bad)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99.0) == 0.0

    def test_percentile_rejects_out_of_range_q(self):
        with pytest.raises(TelemetryError):
            Histogram().percentile(101.0)

    def test_percentiles_clamped_to_observed_range(self):
        hist = fill([2.0, 3.0, 5.0])
        assert hist.percentile(0.0) == 2.0
        assert hist.percentile(100.0) == 5.0
        assert 2.0 <= hist.percentile(50.0) <= 5.0

    def test_merge_requires_equal_bounds(self):
        with pytest.raises(TelemetryError):
            Histogram([1.0, 2.0]).merge(Histogram([1.0, 3.0]))

    def test_self_merge_doubles_without_deadlock(self):
        hist = fill([1.0, 10.0])
        doubled = hist.merge(hist)
        assert doubled.count == 4
        assert doubled.total == pytest.approx(22.0)

    def test_snapshot_roundtrip(self):
        hist = fill([0.5, 7.0, 7.0])
        clone = Histogram.from_snapshot(hist.snapshot())
        assert clone.counts == hist.counts
        assert clone.percentile(50.0) == hist.percentile(50.0)

    @settings(max_examples=60, deadline=None)
    @given(a=samples, b=samples, c=samples)
    def test_merge_is_associative_and_commutative(self, a, b, c):
        ha, hb, hc = fill(a), fill(b), fill(c)
        left = ha.merge(hb).merge(hc)
        right = ha.merge(hb.merge(hc))
        flipped = hc.merge(hb).merge(ha)
        for other in (right, flipped):
            assert left.counts == other.counts
            assert left.count == other.count
            assert left.vmin == other.vmin and left.vmax == other.vmax
            assert math.isclose(left.total, other.total, rel_tol=1e-12)

    @settings(max_examples=60, deadline=None)
    @given(vals=st.lists(values, min_size=1, max_size=40), q=st.floats(0.0, 100.0))
    def test_percentile_lands_in_exact_values_bucket(self, vals, q):
        """The interpolated percentile shares a bucket with the exact
        nearest-rank order statistic, so it is never off by more than one
        bucket width."""
        hist = fill(vals)
        ordered = sorted(vals)
        rank = max(0, min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1))
        exact = ordered[rank]
        approx = hist.percentile(q)
        assert hist._bucket_index(exact) == hist._bucket_index(approx)

    @settings(max_examples=40, deadline=None)
    @given(vals=st.lists(values, min_size=1, max_size=40))
    def test_percentile_bounds_and_mean(self, vals):
        hist = fill(vals)
        assert hist.percentile(0.0) == pytest.approx(min(vals))
        assert hist.percentile(100.0) == pytest.approx(max(vals))
        assert hist.mean == pytest.approx(sum(vals) / len(vals))


class TestMetricsRegistry:
    def test_labels_create_distinct_cells(self):
        reg = MetricsRegistry()
        reg.counter("hits", shard="0").inc()
        reg.counter("hits", shard="1").inc(2)
        assert reg.value("hits", shard="0") == 1.0
        assert reg.value("hits", shard="1") == 2.0
        assert reg.value("hits", shard="9") == 0.0

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError):
            reg.gauge("x")

    def test_value_on_histogram_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(1.0)
        with pytest.raises(TelemetryError):
            reg.value("lat")

    def test_merged_histogram_rolls_up_labels(self):
        reg = MetricsRegistry()
        reg.histogram("lat", shard="0").observe(1.0)
        reg.histogram("lat", shard="1").observe(100.0)
        merged = reg.merged_histogram("lat")
        assert merged is not None
        assert merged.count == 2
        assert merged.percentile(100.0) == 100.0
        assert reg.merged_histogram("missing") is None

    def test_snapshot_is_json_ready_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.gauge("g").set(3)
        reg.histogram("h").observe(0.25)
        snap = reg.snapshot()
        assert [cell["name"] for cell in snap["counters"]] == ["a", "b"]
        assert snap["gauges"][0]["value"] == 3.0
        hist = snap["histograms"][0]
        assert hist["count"] == 1 and hist["sum"] == 0.25
        assert "p99" in hist

    def test_registry_pickles_with_live_locks(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        clone = pickle.loads(pickle.dumps(reg))
        clone.counter("c").inc()
        assert clone.value("c") == 2.0
        assert reg.value("c") == 1.0

    def test_concurrent_observation_loses_nothing(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def work(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                reg.counter("ops").inc()
                reg.histogram("lat", shard=str(tid % 2)).observe(0.001 * (i + 1))

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert reg.value("ops") == n_threads * per_thread
        merged = reg.merged_histogram("lat")
        assert merged is not None and merged.count == n_threads * per_thread

    def test_concurrent_cross_merges_do_not_deadlock(self):
        a, b = fill([1.0] * 100), fill([2.0] * 100)
        results: list[Histogram] = []
        barrier = threading.Barrier(2)

        def merger(first: Histogram, second: Histogram) -> None:
            barrier.wait()
            for _ in range(200):
                results.append(first.merge(second))

        threads = [
            threading.Thread(target=merger, args=(a, b)),
            threading.Thread(target=merger, args=(b, a)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "merge deadlocked"
        assert all(merged.count == 200 for merged in results)


class TestDeltaRollup:
    """In-place accumulation used by the process-mode cluster roll-up.

    Workers ship pickled registry *deltas*; the parent folds them in with
    :meth:`MetricsRegistry.merge_from` / :meth:`Histogram.absorb`. The parent
    cell must accumulate in place (report code holds references to it), and
    the fold must be lossless: the merged registry equals the registry a
    single-process run would have produced.
    """

    def test_absorb_accumulates_in_place(self):
        sink, delta = fill([1.0, 10.0]), fill([2.0, 200.0])
        sink.absorb(delta)
        assert sink.count == 4
        assert sink.total == pytest.approx(213.0)
        assert (sink.vmin, sink.vmax) == (1.0, 200.0)
        # The delta is untouched; absorbing is one-directional.
        assert delta.count == 2

    def test_absorb_rejects_mismatched_bounds_and_self(self):
        with pytest.raises(TelemetryError):
            Histogram([1.0, 2.0]).absorb(Histogram([1.0, 3.0]))
        hist = fill([1.0])
        with pytest.raises(TelemetryError):
            hist.absorb(hist)

    def test_merge_from_matches_single_registry_run(self):
        # Reference: every observation lands in one registry.
        reference = MetricsRegistry()
        # Split: the same observations spread over two worker deltas.
        parent, worker = MetricsRegistry(), MetricsRegistry()
        for reg in (reference, parent):
            reg.counter("rounds").inc(3)
            reg.gauge("width", shard="0").set(2)
            reg.histogram("lat", shard="0").observe(0.5)
        for reg in (reference, worker):
            reg.counter("rounds").inc(4)
            reg.gauge("width", shard="0").set(5)
            reg.histogram("lat", shard="0").observe(1.5)
            reg.histogram("lat", shard="1").observe(9.0)

        shipped = pickle.loads(pickle.dumps(worker))  # cross the boundary
        parent.merge_from(shipped)
        assert parent.snapshot() == reference.snapshot()

    def test_merge_from_creates_missing_cells(self):
        parent, delta = MetricsRegistry(), MetricsRegistry()
        delta.counter("new_counter", shard="3").inc(7)
        parent.merge_from(delta)
        assert parent.value("new_counter", shard="3") == 7.0

    def test_merge_from_rejects_self_and_kind_collisions(self):
        reg = MetricsRegistry()
        with pytest.raises(TelemetryError):
            reg.merge_from(reg)
        parent, delta = MetricsRegistry(), MetricsRegistry()
        parent.counter("x").inc()
        delta.gauge("x").set(1)
        with pytest.raises(TelemetryError):
            parent.merge_from(delta)

    def test_parent_references_survive_merge(self):
        parent, delta = MetricsRegistry(), MetricsRegistry()
        held = parent.histogram("lat")
        held.observe(1.0)
        delta.histogram("lat").observe(2.0)
        parent.merge_from(delta)
        # Same cell object, now carrying both observations.
        assert parent.histogram("lat") is held
        assert held.count == 2


class TestCountBelow:
    def test_empty_histogram_counts_nothing(self):
        assert Histogram().count_below(5.0) == 0.0

    def test_all_below_and_all_above(self):
        hist = fill([1.0, 2.0, 3.0])
        assert hist.count_below(3.0) == 3.0
        assert hist.count_below(0.5) == 0.0

    def test_whole_buckets_counted_exactly(self):
        hist = Histogram([1.0, 2.0, 4.0])
        for v in (0.5, 0.5, 1.5, 3.0):
            hist.observe(v)
        # 2.0 is a bucket edge: both sub-1.0 values and the 1.5 are below.
        assert hist.count_below(2.0) == 3.0

    def test_interpolates_inside_the_covering_bucket(self):
        hist = Histogram([1.0, 2.0])
        hist.observe(1.2)
        hist.observe(1.8)
        partial = hist.count_below(1.5)
        assert 0.0 < partial < 2.0

    @given(samples, values)
    @settings(max_examples=100, deadline=None)
    def test_bounded_and_monotone(self, vals, cut):
        hist = fill(vals)
        below = hist.count_below(cut)
        assert 0.0 <= below <= hist.count
        assert hist.count_below(cut * 2 + 1.0) >= below

    def test_duals_with_percentile(self):
        hist = fill([float(i) for i in range(1, 101)])
        p50 = hist.percentile(50.0)
        assert hist.count_below(p50) == pytest.approx(50.0, rel=0.2)


class TestCardinalityCap:
    def test_cap_validated(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry(max_cells_per_name=0)

    def test_under_cap_labels_pass_through(self):
        reg = MetricsRegistry(max_cells_per_name=4)
        for i in range(4):
            reg.counter("c", query=f"q{i}").inc()
        assert reg.value("c", query="q0") == 1.0
        assert reg.value("repro_metric_label_overflow_total", metric="c") == 0.0

    def test_overflow_collapses_to_catch_all_cell(self):
        from repro.obs.metrics import OVERFLOW_LABEL_VALUE

        reg = MetricsRegistry(max_cells_per_name=2)
        for i in range(5):
            reg.counter("c", query=f"q{i}").inc()
        # Two real cells, the rest pooled into {query="overflow"}.
        assert reg.value("c", query="q0") == 1.0
        assert reg.value("c", query="q1") == 1.0
        assert reg.value("c", query="q4") == 0.0
        assert reg.value("c", query=OVERFLOW_LABEL_VALUE) == 3.0

    def test_overflow_warning_counter_tracks_redirects(self):
        reg = MetricsRegistry(max_cells_per_name=1)
        for i in range(4):
            reg.counter("c", shard=str(i)).inc()
        assert reg.value("repro_metric_label_overflow_total", metric="c") == 3.0

    def test_unlabelled_cells_are_never_capped(self):
        reg = MetricsRegistry(max_cells_per_name=1)
        reg.counter("a").inc()
        reg.counter("b").inc()
        reg.counter("c").inc()
        assert reg.value("a") == reg.value("b") == reg.value("c") == 1.0

    def test_cap_is_per_name_not_global(self):
        reg = MetricsRegistry(max_cells_per_name=2)
        for name in ("x", "y"):
            for i in range(2):
                reg.histogram(name, shard=str(i)).observe(1.0)
        # Both names stayed under their own cap: no overflow anywhere.
        assert reg.get_histogram("x", shard="1") is not None
        assert reg.get_histogram("y", shard="1") is not None
        assert reg.value("repro_metric_label_overflow_total", metric="x") == 0.0

    def test_uncapped_registry_admits_everything(self):
        reg = MetricsRegistry(max_cells_per_name=None)
        for i in range(2000):
            reg.counter("c", query=f"q{i}").inc()
        assert reg.value("c", query="q1999") == 1.0

    def test_existing_cells_keep_working_at_cap(self):
        reg = MetricsRegistry(max_cells_per_name=1)
        reg.counter("c", shard="0").inc()
        reg.counter("c", shard="1").inc()  # overflow
        reg.counter("c", shard="0").inc()  # existing cell: untouched path
        assert reg.value("c", shard="0") == 2.0

    def test_histogram_overflow_merges_observations(self):
        reg = MetricsRegistry(max_cells_per_name=1)
        reg.histogram("lat", query="a").observe(1.0)
        reg.histogram("lat", query="b").observe(2.0)
        reg.histogram("lat", query="c").observe(3.0)
        from repro.obs.metrics import OVERFLOW_LABEL_VALUE

        pooled = reg.get_histogram("lat", query=OVERFLOW_LABEL_VALUE)
        assert pooled is not None and pooled.count == 2

    def test_regression_per_query_blowup_is_bounded(self):
        # The regression this cap exists for: an unbounded per-query label
        # dimension must not grow the registry without limit.
        reg = MetricsRegistry(max_cells_per_name=8)
        for i in range(10_000):
            reg.histogram("repro_query_round_cost", query=f"q{i}").observe(0.5)
        cells = [
            cell for cell in reg.snapshot()["histograms"]
            if cell["name"] == "repro_query_round_cost"
        ]
        assert len(cells) == 9  # 8 admitted + 1 overflow catch-all
        assert (
            reg.value("repro_metric_label_overflow_total",
                      metric="repro_query_round_cost")
            == 10_000 - 8
        )

    def test_shipped_delta_rebuilds_counts_under_receiver_cap(self):
        delta = MetricsRegistry(max_cells_per_name=None)
        for i in range(4):
            delta.counter("c", shard=str(i)).inc()
        shipped = pickle.loads(pickle.dumps(delta))
        # The receiving side's cap governs admission of *new* cells; the
        # shipped registry itself rebuilt its per-name counts on unpickle.
        shipped.counter("c", shard="new").inc()
        assert shipped.value("c", shard="new") == 1.0
