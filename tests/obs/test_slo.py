"""SLO burn-rate monitor: objectives, windowed burn math, breach logic."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.obs import MetricsRegistry, SloMonitor, SloObjective


def objective(**overrides) -> SloObjective:
    spec = dict(name="lat", metric="lat_seconds", threshold=1.0, objective=0.9)
    spec.update(overrides)
    return SloObjective(**spec)


def observe(registry: MetricsRegistry, *values: float) -> None:
    for value in values:
        registry.histogram("lat_seconds").observe(value)


class TestObjective:
    def test_error_budget_is_one_minus_objective(self):
        assert objective(objective=0.99).error_budget == pytest.approx(0.01)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"name": ""},
            {"metric": ""},
            {"threshold": 0.0},
            {"threshold": -1.0},
            {"objective": 0.0},
            {"objective": 1.0},
        ],
    )
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(TelemetryError):
            objective(**overrides)


class TestMonitorConstruction:
    def test_needs_at_least_one_objective(self):
        with pytest.raises(TelemetryError):
            SloMonitor([])

    def test_rejects_duplicate_names(self):
        with pytest.raises(TelemetryError):
            SloMonitor([objective(), objective()])

    def test_rejects_fast_window_longer_than_slow(self):
        with pytest.raises(TelemetryError):
            SloMonitor([objective()], fast_window=100.0, slow_window=10.0)


class TestBurnRates:
    def make(self, **kwargs) -> SloMonitor:
        defaults = dict(
            fast_window=10.0,
            slow_window=100.0,
            fast_burn_threshold=14.4,
            slow_burn_threshold=6.0,
        )
        defaults.update(kwargs)
        return SloMonitor([objective()], **defaults)

    def test_no_observations_is_healthy(self):
        monitor = self.make()
        (status,) = monitor.check(MetricsRegistry(), now=0.0, record=False)
        assert status.good_fraction == 1.0
        assert status.fast_burn == 0.0
        assert not status.breached

    def test_all_good_burns_nothing(self):
        registry = MetricsRegistry()
        observe(registry, 0.1, 0.2, 0.3)
        monitor = self.make()
        (status,) = monitor.check(registry, now=0.0, record=False)
        assert status.good_fraction == 1.0
        assert status.fast_burn == 0.0

    def test_all_bad_burns_at_inverse_budget(self):
        # bad_fraction 1.0 against a 0.1 budget: burn rate 10.
        registry = MetricsRegistry()
        observe(registry, 50.0, 60.0)
        monitor = self.make()
        (status,) = monitor.check(registry, now=0.0, record=False)
        assert status.fast_burn == pytest.approx(10.0)
        assert status.slow_burn == pytest.approx(10.0)

    def test_burn_is_windowed_not_lifetime(self):
        registry = MetricsRegistry()
        observe(registry, 50.0, 60.0)  # two bad observations early on
        monitor = self.make()
        monitor.check(registry, now=0.0, record=False)
        # Much later, a burst of good observations: the fast window sees
        # only the good delta while the slow window still carries the bad.
        observe(registry, 0.1, 0.1, 0.1, 0.1)
        (status,) = monitor.check(registry, now=50.0, record=False)
        assert status.fast_burn == 0.0
        assert status.slow_burn > 0.0

    def test_breach_requires_both_windows(self):
        registry = MetricsRegistry()
        monitor = self.make(fast_burn_threshold=5.0, slow_burn_threshold=5.0)
        observe(registry, 50.0)
        (status,) = monitor.check(registry, now=0.0, record=False)
        # One checkpoint: both windows see the same all-bad delta.
        assert status.breached
        # Fast recovery: the fast window goes quiet, so no breach even
        # though the slow window still burns.
        observe(registry, *([0.1] * 20))
        monitor.check(registry, now=20.0, record=False)
        observe(registry, 0.1)
        (recovered,) = monitor.check(registry, now=40.0, record=False)
        assert recovered.slow_burn > 0.0
        assert not recovered.breached

    def test_checkpoints_must_move_forward(self):
        monitor = self.make()
        registry = MetricsRegistry()
        monitor.check(registry, now=5.0, record=False)
        with pytest.raises(TelemetryError):
            monitor.check(registry, now=1.0, record=False)

    def test_history_is_pruned_to_the_slow_window(self):
        monitor = self.make(fast_window=1.0, slow_window=5.0)
        registry = MetricsRegistry()
        for t in range(20):
            monitor.check(registry, now=float(t), record=False)
        points = monitor._histories["lat"].points
        # One baseline at-or-before the horizon plus the in-window points.
        assert len(points) <= 7

    def test_describe_mentions_state_and_numbers(self):
        registry = MetricsRegistry()
        observe(registry, 0.1)
        (status,) = self.make().check(registry, now=0.0, record=False)
        text = status.describe()
        assert "lat:" in text and "ok" in text and "good=100.00%" in text


class TestRegistryRecording:
    def test_verdict_gauges_written_back(self):
        registry = MetricsRegistry()
        observe(registry, 0.1, 50.0)
        monitor = SloMonitor([objective()], fast_window=10.0, slow_window=100.0)
        (status,) = monitor.check(registry, now=0.0)
        assert registry.value(
            "repro_slo_good_fraction", slo="lat"
        ) == pytest.approx(status.good_fraction)
        assert registry.value(
            "repro_slo_burn_rate", slo="lat", window="fast"
        ) == pytest.approx(status.fast_burn)
        assert registry.value("repro_slo_breached", slo="lat") == 0.0

    def test_breach_counter_increments_only_on_breach(self):
        registry = MetricsRegistry()
        monitor = SloMonitor(
            [objective()],
            fast_window=10.0,
            slow_window=100.0,
            fast_burn_threshold=1.0,
            slow_burn_threshold=1.0,
        )
        observe(registry, 50.0, 60.0)
        monitor.check(registry, now=0.0)
        assert registry.value("repro_slo_breach_checks_total", slo="lat") == 1.0
        assert registry.value("repro_slo_breached", slo="lat") == 1.0

    def test_recorded_gauges_survive_snapshot_roundtrip(self):
        registry = MetricsRegistry()
        observe(registry, 0.2)
        SloMonitor([objective()]).check(registry, now=0.0)
        names = {cell["name"] for cell in registry.snapshot()["gauges"]}
        assert "repro_slo_good_fraction" in names
        assert "repro_slo_burn_rate" in names
