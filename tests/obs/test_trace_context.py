"""Causal span propagation: nesting, cross-boundary attach, roll-up, replay.

The first half exercises the contextvar plumbing (``SpanContext``,
``current_context``/``attach_context``) that makes spans causal; the second
half is the sink story: concurrent writers never tear a JSONL file, and a
merged parent+worker sink replays into one well-formed span tree.
"""

from __future__ import annotations

import io
import pickle
import threading

import pytest

from repro.obs import (
    SpanContext,
    Tracer,
    attach_context,
    build_forest,
    current_context,
    read_jsonl,
)


class TestCausalIds:
    def test_root_span_starts_a_fresh_trace(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        (span,) = tracer.spans("root")
        assert span["parent_id"] is None
        assert span["trace_id"] and span["span_id"]

    def test_nested_span_parents_and_inherits_trace(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        (inner,) = tracer.spans("inner")
        (outer,) = tracer.spans("outer")
        assert inner["parent_id"] == outer["span_id"]
        assert inner["trace_id"] == outer["trace_id"]

    def test_sibling_spans_share_parent_but_not_identity(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (outer,) = tracer.spans("outer")
        (a,), (b,) = tracer.spans("a"), tracer.spans("b")
        assert a["parent_id"] == b["parent_id"] == outer["span_id"]
        assert a["span_id"] != b["span_id"]

    def test_event_attaches_to_enclosing_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("tick")
        (event,) = tracer.events("tick")
        (outer,) = tracer.spans("outer")
        assert event["parent_id"] == outer["span_id"]
        assert event["trace_id"] == outer["trace_id"]

    def test_event_outside_any_span_is_unparented(self):
        tracer = Tracer()
        tracer.event("tick")
        (event,) = tracer.events("tick")
        assert event["parent_id"] is None
        assert event["trace_id"] is None

    def test_context_restored_after_span_exits(self):
        tracer = Tracer()
        assert current_context() is None
        with tracer.span("outer"):
            outer_ctx = current_context()
            assert outer_ctx is not None
            with tracer.span("inner"):
                assert current_context() != outer_ctx
            assert current_context() == outer_ctx
        assert current_context() is None

    def test_context_restored_even_when_body_raises(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                raise RuntimeError("boom")
        assert current_context() is None

    def test_two_tracers_share_one_causal_context(self):
        # The context is execution-scoped, not tracer-scoped: a span on a
        # worker-side tracer parents under the enclosing parent-side span.
        parent, worker = Tracer(), Tracer()
        with parent.span("dispatch"):
            with worker.span("work"):
                pass
        (work,) = worker.spans("work")
        (dispatch,) = parent.spans("dispatch")
        assert work["parent_id"] == dispatch["span_id"]


class TestAttachContext:
    def test_attach_none_is_a_noop(self):
        tracer = Tracer()
        with attach_context(None):
            with tracer.span("root"):
                pass
        assert tracer.spans("root")[0]["parent_id"] is None

    def test_attach_parents_spans_opened_in_a_fresh_thread(self):
        tracer = Tracer()
        with tracer.span("dispatch"):
            ctx = current_context()

            def far_side() -> None:
                # A fresh thread starts with an empty context: without the
                # attach, this span would begin a brand-new trace.
                assert current_context() is None
                with attach_context(ctx):
                    with tracer.span("remote"):
                        pass

            thread = threading.Thread(target=far_side)
            thread.start()
            thread.join()
        (remote,) = tracer.spans("remote")
        (dispatch,) = tracer.spans("dispatch")
        assert remote["parent_id"] == dispatch["span_id"]
        assert remote["trace_id"] == dispatch["trace_id"]

    def test_attach_resets_on_exit(self):
        ctx = SpanContext(trace_id="t", span_id="s")
        with attach_context(ctx):
            assert current_context() == ctx
        assert current_context() is None

    def test_span_context_is_picklable(self):
        ctx = SpanContext(trace_id="t-1", span_id="s-2")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_tracer_refuses_to_pickle(self):
        with pytest.raises(TypeError, match="take_records"):
            pickle.dumps(Tracer())


class TestRollup:
    def test_take_records_drains_the_ring(self):
        tracer = Tracer()
        tracer.event("a")
        tracer.event("b")
        taken = tracer.take_records()
        assert [r["name"] for r in taken] == ["a", "b"]
        assert tracer.records() == []
        # Lifetime counters are unaffected by the drain.
        assert tracer.emitted == 2

    def test_successive_drains_ship_disjoint_deltas(self):
        tracer = Tracer()
        tracer.event("a")
        first = tracer.take_records()
        tracer.event("b")
        second = tracer.take_records()
        assert [r["name"] for r in first] == ["a"]
        assert [r["name"] for r in second] == ["b"]

    def test_ingest_keeps_causal_ids_and_reassigns_seq(self):
        worker = Tracer()
        with worker.span("work"):
            pass
        delta = worker.take_records()
        parent = Tracer()
        parent.event("local")
        parent.ingest(delta)
        records = parent.records()
        assert [r["seq"] for r in records] == [1, 2]
        merged = records[1]
        original = delta[0]
        for key in ("trace_id", "span_id", "parent_id", "ts", "pid"):
            assert merged[key] == original[key]

    def test_dropped_counts_ring_evictions(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.event("tick", i=i)
        assert tracer.dropped == 3
        assert tracer.emitted == 5
        assert len(tracer.records()) == 2

    def test_rollup_reconstructs_one_tree_across_tracers(self):
        # The full worker protocol in miniature: the parent dispatches
        # under a span, the worker records under the attached context,
        # ships its delta back, and the parent ingests it.
        parent, worker = Tracer(), Tracer()
        with parent.span("cluster-batch"):
            ctx = current_context()

            def worker_side() -> None:
                with attach_context(ctx):
                    with worker.span("shard-batch"):
                        with worker.span("batch"):
                            pass

            thread = threading.Thread(target=worker_side)
            thread.start()
            thread.join()
            parent.ingest(worker.take_records())
        forest = build_forest(parent.records())
        assert len(forest.roots) == 1
        assert forest.orphans == []
        (root,) = forest.roots
        assert [n.name for n in root.walk()] == [
            "cluster-batch",
            "shard-batch",
            "batch",
        ]


class TestSinkConcurrencyAndReplay:
    def test_concurrent_writers_emit_seq_in_file_order(self, tmp_path):
        # One lock covers seq assignment and the sink write, so the file
        # is totally ordered by seq even under heavy thread interleaving.
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(capacity=16, sink=path)
        n_threads, per_thread = 8, 150
        barrier = threading.Barrier(n_threads)

        def work(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                with tracer.span("work", tid=tid) as attrs:
                    attrs["i"] = i

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        tracer.close()

        records = read_jsonl(path)
        seqs = [r["seq"] for r in records]
        assert seqs == list(range(1, n_threads * per_thread + 1))
        # The ring only kept the newest 16, but the sink kept everything.
        assert len(records) == n_threads * per_thread

    def test_merged_parent_and_worker_sinks_replay_to_one_tree(self, tmp_path):
        parent_path = tmp_path / "parent.jsonl"
        worker_path = tmp_path / "worker.jsonl"
        parent = Tracer(sink=parent_path)
        worker = Tracer(sink=worker_path)
        with parent.span("cluster-batch", shards=1):
            ctx = current_context()
            with attach_context(ctx):
                with worker.span("shard-batch", shard=0):
                    worker.event("replan", key="k")
        parent.close()
        worker.close()

        merged = read_jsonl(parent_path) + read_jsonl(worker_path)
        forest = build_forest(merged)
        assert forest.orphans == []
        assert len(forest.roots) == 1
        (root,) = forest.roots
        assert root.name == "cluster-batch"
        (shard,) = root.children
        assert shard.name == "shard-batch"
        assert [e["name"] for e in shard.events] == ["replan"]
        # Every record that names a parent can resolve it in the merge.
        span_ids = {r["span_id"] for r in merged if r.get("type") == "span"}
        named_parents = {
            r["parent_id"] for r in merged if r.get("parent_id") is not None
        }
        assert named_parents <= span_ids

    def test_string_sink_replay_roundtrips_causal_ids(self):
        sink = io.StringIO()
        tracer = Tracer(sink=sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        replayed = read_jsonl(io.StringIO(sink.getvalue()))
        by_name = {r["name"]: r for r in replayed}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
