"""Tests for tree serialization (dict / JSON / DSL expression)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import AndNode, AndTree, DnfTree, Leaf, LeafNode, OrNode, QueryTree
from repro.errors import ParseError
from repro.lang import (
    leaf_from_dict,
    leaf_to_dict,
    parse_query,
    to_expression,
    tree_from_dict,
    tree_from_json,
    tree_to_dict,
    tree_to_json,
)
from tests.strategies import and_trees, dnf_trees


class TestLeafSerialization:
    def test_round_trip(self):
        leaf = Leaf("A", 3, 0.25, "label")
        assert leaf_from_dict(leaf_to_dict(leaf)) == leaf

    def test_label_omitted_when_empty(self):
        assert "label" not in leaf_to_dict(Leaf("A", 1, 0.5))

    def test_missing_key_rejected(self):
        with pytest.raises(ParseError):
            leaf_from_dict({"stream": "A"})


class TestTreeSerialization:
    @settings(max_examples=30, deadline=None)
    @given(tree=and_trees(max_leaves=5))
    def test_and_tree_dict_round_trip(self, tree):
        back = tree_from_dict(tree_to_dict(tree))
        assert isinstance(back, AndTree)
        assert back.leaves == tree.leaves
        assert dict(back.costs) == dict(tree.costs)

    @settings(max_examples=30, deadline=None)
    @given(tree=dnf_trees(max_ands=3, max_per_and=3))
    def test_dnf_json_round_trip(self, tree):
        back = tree_from_json(tree_to_json(tree))
        assert isinstance(back, DnfTree)
        assert back.ands == tree.ands
        assert dict(back.costs) == dict(tree.costs)

    def test_query_tree_round_trip(self):
        root = AndNode(
            [
                OrNode([LeafNode(Leaf("A", 1, 0.5)), LeafNode(Leaf("B", 2, 0.3))]),
                LeafNode(Leaf("C", 1, 0.9)),
            ]
        )
        tree = QueryTree(root, {"A": 1.0, "B": 2.0, "C": 3.0})
        back = tree_from_dict(tree_to_dict(tree))
        assert isinstance(back, QueryTree)
        assert back.root == tree.root
        assert dict(back.costs) == dict(tree.costs)

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError):
            tree_from_dict({"type": "mystery"})

    def test_bad_json_rejected(self):
        with pytest.raises(ParseError):
            tree_from_json("{not json")

    def test_unknown_operator_rejected(self):
        with pytest.raises(ParseError):
            tree_from_dict({"type": "query-tree", "root": {"op": "xor", "children": []}, "costs": {}})


class TestExpressionRendering:
    def test_and_tree_expression(self):
        tree = AndTree([Leaf("A", 1, 0.75), Leaf("B", 2, 0.5)])
        assert to_expression(tree) == "A[1] p=0.75 AND B[2] p=0.5"

    def test_dnf_expression_parenthesizes_multileaf_terms(self):
        tree = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)], [Leaf("C", 2, 0.25)]])
        assert to_expression(tree) == "(A[1] p=0.5 AND B[1] p=0.5) OR C[2] p=0.25"

    @settings(max_examples=30, deadline=None)
    @given(tree=dnf_trees(max_ands=3, max_per_and=3))
    def test_dnf_expression_round_trips_structure(self, tree):
        text = to_expression(tree)
        parsed = parse_query(text, costs=dict(tree.costs))
        back = parsed.tree.as_dnf()
        assert back.and_sizes == tree.and_sizes
        for got, want in zip(back.leaves, tree.leaves):
            assert got.stream == want.stream
            assert got.items == want.items
            assert got.prob == pytest.approx(want.prob, rel=1e-5)

    def test_query_tree_expression_parenthesizes_or_under_and(self):
        root = AndNode(
            [
                OrNode([LeafNode(Leaf("A", 1, 0.5)), LeafNode(Leaf("B", 1, 0.5))]),
                LeafNode(Leaf("C", 1, 0.5)),
            ]
        )
        tree = QueryTree(root)
        text = to_expression(tree)
        assert text == "(A[1] p=0.5 OR B[1] p=0.5) AND C[1] p=0.5"
        reparsed = parse_query(text)
        assert isinstance(reparsed.tree.root, AndNode)
