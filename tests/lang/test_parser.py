"""Tests for the query DSL parser."""

from __future__ import annotations

import pytest

from repro import AndNode, LeafNode, OrNode
from repro.errors import ParseError
from repro.lang import parse_query


class TestPredicates:
    def test_windowed_predicate(self):
        parsed = parse_query("AVG(A,5) < 70")
        (leaf,) = parsed.tree.leaves
        assert leaf.stream == "A" and leaf.items == 5
        assert leaf.label == "AVG(A,5) < 70"
        assert parsed.predicates[0].op == "AVG"
        assert parsed.predicates[0].threshold == 70.0

    def test_bare_predicate_is_last_window_1(self):
        parsed = parse_query("C < 3")
        (leaf,) = parsed.tree.leaves
        assert leaf.stream == "C" and leaf.items == 1
        assert parsed.predicates[0].op == "LAST"

    def test_probability_annotation(self):
        parsed = parse_query("C < 3 p=0.25")
        assert parsed.tree.leaves[0].prob == 0.25

    def test_default_probability(self):
        parsed = parse_query("C < 3", default_prob=0.7)
        assert parsed.tree.leaves[0].prob == 0.7

    def test_abstract_leaf(self):
        parsed = parse_query("HR[5] p=0.3")
        (leaf,) = parsed.tree.leaves
        assert leaf.stream == "HR" and leaf.items == 5 and leaf.prob == 0.3
        assert parsed.predicates == {}

    def test_negative_and_float_thresholds(self):
        parsed = parse_query("A < -2.5 AND MAX(B,3) >= 1e2")
        assert parsed.predicates[0].threshold == -2.5
        assert parsed.predicates[1].threshold == 100.0

    @pytest.mark.parametrize("cmp", ["<", "<=", ">", ">=", "==", "!="])
    def test_all_comparators(self, cmp):
        parsed = parse_query(f"A {cmp} 3")
        assert parsed.predicates[0].cmp == cmp


class TestStructure:
    def test_and_binds_tighter_than_or(self):
        parsed = parse_query("A < 1 AND B < 1 OR C < 1")
        assert isinstance(parsed.tree.root, OrNode)
        first, second = parsed.tree.root.children
        assert isinstance(first, AndNode)
        assert isinstance(second, LeafNode)

    def test_parentheses_override(self):
        parsed = parse_query("A < 1 AND (B < 1 OR C < 1)")
        assert isinstance(parsed.tree.root, AndNode)

    def test_keywords_case_insensitive(self):
        parsed = parse_query("A < 1 and B < 1 or C < 1")
        assert isinstance(parsed.tree.root, OrNode)

    def test_single_leaf_query(self):
        parsed = parse_query("A[2]")
        assert parsed.tree.size == 1

    def test_nested_parens(self):
        parsed = parse_query("((A < 1))")
        assert parsed.tree.size == 1

    def test_dnf_helper(self):
        parsed = parse_query("(A<1 AND B<1) OR C<1")
        dnf = parsed.as_dnf()
        assert dnf.n_ands == 2 and dnf.and_sizes == (2, 1)

    def test_predicates_keyed_by_global_leaf_index(self):
        parsed = parse_query("(A<1 AND HR[2] p=0.5) OR B>2")
        # leaves: 0 = A<1 (predicate), 1 = HR[2] (abstract), 2 = B>2 (predicate)
        assert set(parsed.predicates) == {0, 2}
        assert parsed.predicates[2].stream == "B"

    def test_costs_threaded_through(self):
        parsed = parse_query("A < 1 AND B < 1", costs={"A": 2.0, "B": 3.0})
        assert dict(parsed.tree.costs) == {"A": 2.0, "B": 3.0}

    def test_default_cost(self):
        parsed = parse_query("A < 1", default_cost=4.0)
        assert parsed.tree.costs["A"] == 4.0


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "AND",
            "A <",
            "A < 1 AND",
            "(A < 1",
            "A < 1)",
            "AVG(A) < 1",
            "AVG(A,0) < 1",
            "AVG(A,1.5) < 1",
            "NOPE(A,3) < 1",
            "A < 1 p=1.5",
            "A[0]",
            "A[1] extra",
            "A ? 1",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ParseError):
            parse_query(text)

    def test_stream_named_p_works(self):
        # 'p' as a stream name must not collide with the p= annotation.
        parsed = parse_query("p < 3 p=0.4")
        assert parsed.tree.leaves[0].stream == "p"
        assert parsed.tree.leaves[0].prob == 0.4
