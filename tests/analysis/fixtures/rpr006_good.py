"""Known-good twin for RPR006: narrow handlers, and broad ones that report.

Never imported — this file exists only as a lint target.
"""


def handle(op):
    raise NotImplementedError


def command_loop(conn) -> None:
    while True:
        try:
            op = conn.recv()
        except (EOFError, OSError):  # narrow: only the expected pipe errors
            return
        try:
            result = handle(op)
        except Exception as exc:  # broad, but reported to the caller
            conn.send(("error", repr(exc)))
        else:
            conn.send(("ok", result))


def best_effort(actions, log) -> None:
    for action in actions:
        try:
            action()
        except ValueError as exc:
            log(exc)
