"""Known-bad twin for RPR002: frozen __slots__ class without pickle hooks.

Never imported — this file exists only as a lint target.
"""


class FrozenPoint:
    """__slots__ + raising __setattr__ and no explicit pickle state hooks.

    Default unpickling calls __setattr__ per slot, so this class explodes
    at load time unless it defines __getstate__/__setstate__ or __reduce__.
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FrozenPoint is immutable")
