"""Known-good twin for RPR005: seeded RNG instances and monotonic clocks.

Never imported — this file exists only as a lint target.
"""

import random
import time

import numpy as np


def jitter(seed: int) -> float:
    rng = random.Random(seed)
    return rng.random() * 0.1


def sample(n: int, seed: int):
    rng = np.random.default_rng(seed)
    return rng.random(n)


def spawn_streams(seed: int, k: int):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(k)]


def elapsed(start: float) -> float:
    return time.perf_counter() - start  # monotonic: telemetry-safe
