"""Mini package for the RPR004 import-graph half of the corpus.

Never imported — lint target only. Corpus tests lint this directory with
worker_root="spawnpkg.worker" so the reachability walk starts at worker.py.
"""
