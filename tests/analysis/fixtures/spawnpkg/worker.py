"""Entry module of the spawned worker process (fixture)."""

from spawnpkg import clean_good, sidefx_bad


def run() -> None:
    sidefx_bad.touch()
    clean_good.touch()
