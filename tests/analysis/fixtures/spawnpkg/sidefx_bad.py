"""Known-bad: creates a lock and a thread at import time.

Any module reachable from the worker entry point must not run side effects
at import: every spawned worker re-imports it before doing useful work.
"""

import threading

_POOL_LOCK = threading.Lock()  # runs at import in every spawned worker

_WATCHER = threading.Thread(target=lambda: None, daemon=True)


def touch() -> None:
    with _POOL_LOCK:
        pass
