"""Known-good: lazy lock creation keeps import side-effect free."""

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from threading import Lock

_POOL_LOCK: "Lock | None" = None


def _lock() -> threading.Lock:
    global _POOL_LOCK
    if _POOL_LOCK is None:
        _POOL_LOCK = threading.Lock()  # created on first use, not at import
    return _POOL_LOCK


def touch() -> None:
    with _lock():
        pass


if __name__ == "__main__":  # exempt guard: never runs on worker import
    holder = threading.Lock()
