"""Known-bad twin for RPR003: unordered multi-lock acquisition.

Never imported — this file exists only as a lint target.
"""

import threading


class Cell:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


def transfer(a: Cell, b: Cell, amount: int) -> None:
    with a._lock, b._lock:  # two locks in one with, outside a blessed helper
        a.value -= amount
        b.value += amount


def drain(a: Cell, b: Cell) -> None:
    with a._lock:
        with b._lock:  # nested acquisition while a._lock is held
            b.value += a.value
            a.value = 0
