"""Known-good twin for RPR001: every lock-bearing class controls pickling.

Never imported — this file exists only as a lint target.
"""

import threading
from threading import RLock


class GoodCache:
    """Drop-and-recreate hooks: the canonical picklable lock holder."""

    def __init__(self) -> None:
        self._items: dict[str, int] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def put(self, key: str, value: int) -> None:
        with self._lock:
            self._items[key] = value


class GoodProcessLocal:
    """Deliberately unpicklable: a raising __getstate__ satisfies the rule."""

    def __init__(self) -> None:
        self._guard_lock = RLock()

    def __getstate__(self) -> dict:
        raise TypeError("GoodProcessLocal is process-local; do not pickle it")


class GoodReduced:
    """__reduce__ also counts as an explicit pickle contract."""

    def __init__(self, size: int) -> None:
        self.size = size
        self._lock = threading.Lock()

    def __reduce__(self):
        return (type(self), (self.size,))


class NoLocksAtAll:
    """Control: plain state, no hooks needed."""

    def __init__(self) -> None:
        self.value = 0
