"""Known-bad twin for RPR004: multiprocessing without an explicit spawn pin.

Never imported — this file exists only as a lint target.
"""

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor


def run_pool(fn, items):
    with multiprocessing.Pool(4) as pool:  # inherits the platform default
        return pool.map(fn, items)


def run_default_context(fn, item):
    ctx = multiprocessing.get_context()  # no method argument: fork on Linux
    proc = ctx.Process(target=fn, args=(item,))
    proc.start()
    proc.join()


def pin_fork():
    multiprocessing.set_start_method("fork")  # explicitly wrong


def run_executor(fn, items):
    with ProcessPoolExecutor(max_workers=2) as pool:  # no mp_context=
        return list(pool.map(fn, items))


def raw_fork():
    return os.fork()
