"""Fixture exercising inline suppression pragmas.

Every violation here carries a pragma, so a lint run reports zero findings
but a nonzero suppressed count.
"""

import random
import threading


class KnownUnpicklable:  # repro-lint: disable=RPR001
    def __init__(self) -> None:
        self._lock = threading.Lock()


def noisy() -> float:
    return random.random()  # repro-lint: disable=RPR005


def ignore_everything(action) -> None:
    try:
        action()
    except:  # repro-lint: disable=all
        pass
