"""Known-bad twin for RPR005: unseeded randomness and wall-clock reads.

Never imported — this file exists only as a lint target. The determinism
checker only looks at modules inside its configured scope, so the corpus
tests lint this file with determinism_scope=() (= everything in scope).
"""

import random
import time
from datetime import datetime

import numpy as np


def jitter() -> float:
    return random.random() * 0.1  # global, unseeded RNG


def sample(n: int):
    rng = np.random.default_rng()  # seedable constructor called unseeded
    return rng.random(n)


def legacy(n: int):
    return np.random.rand(n)  # numpy global RNG


def stamp() -> float:
    return time.time()  # wall clock in a hot path


def today():
    return datetime.now()  # wall clock in a hot path
