"""Known-bad twin for RPR007: mutating interned nodes outside the store.

Never imported — a lint target only, so the undefined ``substore`` module
is fine. Three findings: a plain attribute write, an ``object.__setattr__``
bypass, and an augmented assignment.
"""

from substore import InternedLeaf, InternedTree


def retag(leaf: InternedLeaf) -> None:
    leaf.prob = 0.5  # shared canonical identity, silently corrupted


def forge(tree: InternedTree) -> None:
    object.__setattr__(tree, "key", "forged")  # bypasses the runtime guard


def bump() -> int:
    node = InternedLeaf("alpha", 4, 0.25)
    node.items += 1  # AugAssign is a write too
    return node.items
