"""Known-good twin for RPR003: single-lock code plus a blessed merge helper.

Never imported — this file exists only as a lint target.
"""

import threading


class Cell:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def add(self, amount: int) -> None:
        with self._lock:
            self.value += amount

    def merge(self, other: "Cell") -> None:
        # Blessed helper: acquires both locks in id() order, so nested
        # acquisition here is the sanctioned deadlock-free idiom.
        first, second = sorted((self, other), key=id)
        with first._lock:
            with second._lock:
                self.value += other.value
                other.value = 0


def read(a: Cell) -> int:
    with a._lock:
        return a.value
