"""Known-bad twin for RPR001: lock-bearing classes without pickle hooks.

Never imported — this file exists only as a lint target.
"""

import threading
from threading import RLock


class BadCache:
    """Stores a Lock assigned in __init__ and defines no pickle hooks."""

    def __init__(self) -> None:
        self._items: dict[str, int] = {}
        self._lock = threading.Lock()

    def put(self, key: str, value: int) -> None:
        with self._lock:
            self._items[key] = value


class BadCounter:
    """Lock imported by name, assigned outside __init__ — still caught."""

    def __init__(self) -> None:
        self.value = 0

    def enable_threading(self) -> None:
        self._guard_lock = RLock()
