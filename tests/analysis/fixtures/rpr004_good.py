"""Known-good twin for RPR004: every process boundary pins spawn.

Never imported — this file exists only as a lint target.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor


def run_pool(fn, items):
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(4) as pool:
        return pool.map(fn, items)


def run_process(fn, item):
    ctx = multiprocessing.get_context("spawn")
    proc = ctx.Process(target=fn, args=(item,))
    proc.start()
    proc.join()


def pin_spawn():
    multiprocessing.set_start_method("spawn", force=True)


def run_executor(fn, items):
    ctx = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=2, mp_context=ctx) as pool:
        return list(pool.map(fn, items))
