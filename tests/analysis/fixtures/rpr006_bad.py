"""Known-bad twin for RPR006: bare and swallowed exception handlers.

Never imported — this file exists only as a lint target. The broad-handler
half of the rule is scoped, so corpus tests lint this file with
except_scope=() (= everything in scope).
"""


def handle(op):
    raise NotImplementedError


def command_loop(conn) -> None:
    while True:
        try:
            op = conn.recv()
        except:  # bare except: catches KeyboardInterrupt/SystemExit too
            return
        try:
            handle(op)
        except Exception:  # swallowed: the caller never learns it failed
            pass


def best_effort(actions) -> None:
    for action in actions:
        try:
            action()
        except (Exception, OSError):  # broad tuple, body is just continue
            continue
