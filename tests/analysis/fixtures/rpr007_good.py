"""Known-good twin for RPR007: interned nodes are read, never written.

Ordinary objects stay mutable; rebuilding through the store is the
sanctioned way to get a "changed" interned node.
"""

from substore import InternedLeaf


def expected_cost(leaf: InternedLeaf, cost: float) -> float:
    return leaf.items * cost / leaf.prob


class Tally:
    """A plain mutable object: attribute writes here are fine."""

    def __init__(self) -> None:
        self.count = 0

    def bump(self) -> None:
        self.count += 1


def reprice(leaf: InternedLeaf, store, prob: float) -> InternedLeaf:
    return store.leaf(leaf.stream, leaf.items, prob)
