"""Known-good twin for RPR002: frozen __slots__ classes that pickle cleanly.

Never imported — this file exists only as a lint target.
"""

from dataclasses import dataclass


class FrozenPoint:
    """Same shape as the bad twin, plus explicit pickle state hooks."""

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FrozenPoint is immutable")

    def __getstate__(self) -> tuple:
        return (self.x, self.y)

    def __setstate__(self, state: tuple) -> None:
        object.__setattr__(self, "x", state[0])
        object.__setattr__(self, "y", state[1])


@dataclass(frozen=True, slots=True)
class FrozenRecord:
    """Dataclasses generate correct slot pickling; exempt from the rule."""

    x: float
    y: float


class PlainSlots:
    """Control: __slots__ without a guarded __setattr__ pickles fine."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value
