"""The linter against the real tree: clean, fast, and still sharp.

The mutation check is the acceptance test for RPR001: textually delete
``__getstate__`` from the real ``PlanCache`` source and assert the rule
fires. If a refactor ever makes the checker blind to the exact bug class
PR 7 fixed by hand, this test goes red — a linter that stays green on its
own motivating bug is worthless.
"""

import ast
import time
from pathlib import Path

import repro
from repro.analysis import lint_paths, lint_sources

SRC = Path(repro.__file__).parent  # .../src/repro
PLAN_CACHE = SRC / "service" / "plan_cache.py"


def _without_method(source: str, class_name: str, method: str) -> str:
    """``source`` with ``class_name.method`` textually removed."""
    tree = ast.parse(source)
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == method:
                    assert item.end_lineno is not None
                    spans.append((item.lineno, item.end_lineno))
    assert spans, f"{class_name}.{method} not found — update this test"
    lines = source.splitlines(keepends=True)
    for start, end in sorted(spans, reverse=True):
        del lines[start - 1 : end]
    return "".join(lines)


def test_repo_lints_clean() -> None:
    result = lint_paths([SRC])
    assert result.ok, "\n" + result.render_text()
    # The one sanctioned suppression: worker __del__ cleanup.
    assert len(result.suppressed) == 1
    assert result.suppressed[0].rule == "RPR006"
    assert result.files > 90


def test_lint_is_fast_enough_for_ci() -> None:
    start = time.perf_counter()
    lint_paths([SRC])
    elapsed = time.perf_counter() - start
    # ~0.4 s locally; 5 s leaves room for cold caches and slow CI runners.
    assert elapsed < 5.0, f"lint took {elapsed:.2f}s over {SRC}"


def test_mutated_plan_cache_without_getstate_fires_rpr001() -> None:
    source = PLAN_CACHE.read_text(encoding="utf-8")
    mutated = _without_method(source, "PlanCache", "__getstate__")
    result = lint_sources({str(PLAN_CACHE): mutated})
    fired = result.rules_fired()
    assert fired.get("RPR001", 0) >= 1, (
        "deleting PlanCache.__getstate__ must trip RPR001; got: "
        + result.render_text()
    )
    assert any(
        f.rule == "RPR001" and "PlanCache" in f.message and f.path == str(PLAN_CACHE)
        for f in result.findings
    )


def test_unmutated_plan_cache_is_silent() -> None:
    source = PLAN_CACHE.read_text(encoding="utf-8")
    result = lint_sources({str(PLAN_CACHE): source})
    assert result.ok, result.render_text()
