"""Reflection-driven pickle audit of every lock-bearing class in the tree.

The linter's RPR001 proves each lock-bearing class *defines* pickle hooks;
this test proves the hooks *work*. It discovers the classes the same way
the checker does (AST scan over ``src/repro``), then demands that every
one appears in exactly one of two maps:

* ``FACTORIES`` — picklable classes: build an instance, round-trip it,
  assert the lock fields come back as fresh, unshared locks.
* ``UNPICKLABLE_BY_DESIGN`` — process-local classes whose ``__getstate__``
  raises a deliberate ``TypeError`` instead of emitting a corpse that
  fails at load time.

Adding a new lock-bearing class without extending one of the maps fails
the coverage assertion — the audit can never silently go stale.
"""

from __future__ import annotations

import ast
import importlib
import pickle
import threading
from pathlib import Path

import pytest

import repro
from repro.analysis import ModuleInfo, lock_fields, module_name_for
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, Tracer
from repro.service import PlanCache
from repro.streams import (
    DriftingSource,
    DriftSchedule,
    DropoutSource,
    FailingSource,
    StepDrift,
    UniformSource,
)

SRC = Path(repro.__file__).parent


def discover_lock_bearing_classes() -> dict[str, tuple[type, tuple[str, ...]]]:
    """``"module.Class" -> (class object, lock field names)`` for src/repro."""
    found: dict[str, tuple[type, tuple[str, ...]]] = {}
    for file in sorted(SRC.rglob("*.py")):
        name = module_name_for(file)
        source = file.read_text(encoding="utf-8")
        info = ModuleInfo(path=str(file), name=name, source=source, tree=ast.parse(source))
        for node in info.nodes:
            if not isinstance(node, ast.ClassDef):
                continue
            fields = lock_fields(node, info)
            if not fields:
                continue
            cls = getattr(importlib.import_module(name), node.name)
            found[f"{name}.{node.name}"] = (cls, tuple(sorted(fields)))
    return found


def _uniform() -> UniformSource:
    return UniformSource(seed=11)


def _drifting() -> DriftingSource:
    schedule = DriftSchedule([0.3], [StepDrift(at=8, targets={0: 0.9})])
    return DriftingSource(schedule, seed=13)


# Picklable lock holders: a factory building a *warmed* representative
# instance (an instance of the class or of a concrete subclass).
FACTORIES = {
    "repro.obs.metrics.Counter": lambda: Counter(),
    "repro.obs.metrics.Gauge": lambda: Gauge(),
    "repro.obs.metrics.Histogram": lambda: Histogram(),
    "repro.obs.metrics.MetricsRegistry": lambda: MetricsRegistry(),
    "repro.service.plan_cache.PlanCache": lambda: PlanCache(capacity=8),
    "repro.streams.sources._SequentialSource": _uniform,
    "repro.streams.drift.DriftingSource": _drifting,
    "repro.streams.failures.FailingSource": lambda: FailingSource(
        UniformSource(seed=5), 0.5, seed=33
    ),
    "repro.streams.failures.DropoutSource": lambda: DropoutSource(
        UniformSource(seed=5), 0.4, seed=21
    ),
}

# Process-local by contract: __getstate__ raises a clear TypeError. Their
# constructors spawn processes or wire live registries, so the contract is
# checked on a bare instance — __getstate__ raises before reading state.
UNPICKLABLE_BY_DESIGN = {
    "repro.obs.trace.Tracer",
    "repro.service.server.QueryServer",
    "repro.service.substore.SubtreeStore",
    "repro.cluster.cluster.ClusterServer",
    "repro.cluster.worker.ShardWorkerProxy",
}

_LOCKY = (
    type(threading.Lock()),
    type(threading.RLock()),
    threading.Condition,
    threading.Semaphore,
    threading.Event,
)

DISCOVERED = discover_lock_bearing_classes()


def _attr_names(obj: object) -> set[str]:
    """Instance attribute names for both ``__dict__`` and ``__slots__`` classes."""
    if hasattr(obj, "__dict__"):
        return set(obj.__dict__)
    names: set[str] = set()
    for klass in type(obj).__mro__:
        names.update(getattr(klass, "__slots__", ()))
    return {name for name in names if hasattr(obj, name)}


def test_every_lock_bearing_class_is_audited() -> None:
    assert set(DISCOVERED) == set(FACTORIES) | UNPICKLABLE_BY_DESIGN, (
        "lock-bearing classes changed; extend FACTORIES or "
        "UNPICKLABLE_BY_DESIGN to keep the pickle audit exhaustive"
    )
    assert not set(FACTORIES) & UNPICKLABLE_BY_DESIGN


@pytest.mark.parametrize("qualname", sorted(FACTORIES))
def test_round_trip_recreates_fresh_locks(qualname: str) -> None:
    cls, fields = DISCOVERED[qualname]
    donor = FACTORIES[qualname]()
    assert isinstance(donor, cls)
    copy = pickle.loads(pickle.dumps(donor))
    assert isinstance(copy, type(donor))
    assert _attr_names(copy) == _attr_names(donor)
    for field_name in fields:
        donor_lock = getattr(donor, field_name)
        copy_lock = getattr(copy, field_name)
        assert isinstance(copy_lock, _LOCKY), (qualname, field_name)
        assert copy_lock is not donor_lock, (
            f"{qualname}.{field_name} was shared across the pickle boundary"
        )


@pytest.mark.parametrize("qualname", sorted(UNPICKLABLE_BY_DESIGN))
def test_process_local_classes_refuse_to_pickle(qualname: str) -> None:
    cls, _ = DISCOVERED[qualname]
    instance = object.__new__(cls)
    with pytest.raises(TypeError, match="pickle|process-local"):
        pickle.dumps(instance)


def test_warmed_plan_cache_round_trip_preserves_entries() -> None:
    """One end-to-end behavioral check on the motivating PR-7 class."""
    cache = PlanCache(capacity=8)
    copy = pickle.loads(pickle.dumps(cache))
    assert copy.capacity == cache.capacity
    assert type(copy._lock) is type(cache._lock)
