"""Fixture-corpus tests: each RPR rule fires on its known-bad file and
stays silent on the known-good twin.

The fixtures live in ``tests/analysis/fixtures/`` and are never imported;
they exist purely as lint targets. Scoped rules (RPR005 determinism,
RPR006 broad handlers) are pointed at the bare fixture modules by widening
their scope to everything; RPR004's import-graph half gets its own mini
package (``spawnpkg/``) with ``worker_root`` overridden.
"""

from pathlib import Path

import pytest

from repro.analysis import LintConfig, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

# Everything in scope: fixture modules are bare top-level names, far outside
# the repro.* default scopes.
CORPUS_CONFIG = LintConfig(
    determinism_scope=(),
    except_scope=(),
    worker_root="spawnpkg.worker",
)

RULES = ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007")


@pytest.mark.parametrize("rule", RULES)
def test_rule_fires_on_bad_twin(rule: str) -> None:
    result = lint_paths([FIXTURES / f"{rule.lower()}_bad.py"], CORPUS_CONFIG)
    assert not result.errors
    fired = result.rules_fired()
    assert rule in fired, f"{rule} did not fire on its known-bad fixture"
    assert set(fired) == {rule}, f"unexpected rules on {rule} fixture: {fired}"


@pytest.mark.parametrize("rule", RULES)
def test_rule_silent_on_good_twin(rule: str) -> None:
    result = lint_paths([FIXTURES / f"{rule.lower()}_good.py"], CORPUS_CONFIG)
    assert not result.errors
    assert result.ok, [f.format() for f in result.findings]
    assert not result.suppressed


def test_expected_finding_counts() -> None:
    """Pin the exact per-rule counts so fixture edits stay deliberate."""
    bad = [FIXTURES / f"{rule.lower()}_bad.py" for rule in RULES]
    result = lint_paths(bad, CORPUS_CONFIG)
    assert result.rules_fired() == {
        "RPR001": 2,  # BadCache, BadCounter
        "RPR002": 1,  # FrozenPoint
        "RPR003": 2,  # multi-item with, nested with
        "RPR004": 5,  # Pool, get_context(), set_start_method, executor, os.fork
        "RPR005": 5,  # random.random, default_rng(), np.random.rand, time, now
        "RPR006": 3,  # bare, swallowed Exception, broad tuple + continue
        "RPR007": 3,  # attr write, object.__setattr__, AugAssign
    }


def test_findings_carry_location_and_format() -> None:
    path = FIXTURES / "rpr001_bad.py"
    result = lint_paths([path], CORPUS_CONFIG)
    finding = result.findings[0]
    assert finding.rule == "RPR001"
    assert finding.path == str(path)
    assert finding.line > 0 and finding.col > 0
    assert finding.format().startswith(f"{path}:{finding.line}:{finding.col}: RPR001 ")
    assert "BadCache" in finding.message


def test_spawnpkg_import_graph_flags_side_effects() -> None:
    """RPR004's project half: side effects reachable from the worker root."""
    result = lint_paths([FIXTURES / "spawnpkg"], CORPUS_CONFIG)
    assert not result.errors
    flagged_paths = {f.path for f in result.findings}
    assert flagged_paths == {str(FIXTURES / "spawnpkg" / "sidefx_bad.py")}
    assert result.rules_fired() == {"RPR004": 2}  # Lock() and Thread() at import
    messages = " ".join(f.message for f in result.findings)
    assert "import" in messages


def test_spawnpkg_silent_without_matching_root() -> None:
    """With the default worker root the fixture package is unreachable."""
    config = LintConfig(determinism_scope=(), except_scope=())
    result = lint_paths([FIXTURES / "spawnpkg"], config)
    assert result.ok


def test_scoped_rules_silent_outside_scope() -> None:
    """RPR005/RPR006(broad) stay quiet when the module is out of scope."""
    config = LintConfig(
        determinism_scope=("some.other.package",),
        except_scope=("some.other.package",),
    )
    result = lint_paths([FIXTURES / "rpr005_bad.py"], config)
    assert result.ok
    result = lint_paths([FIXTURES / "rpr006_bad.py"], config)
    # The bare `except:` is flagged everywhere; only broad handlers are scoped.
    assert result.rules_fired() == {"RPR006": 1}
