"""Engine-level tests: suppression accounting, select/ignore, rendering,
module-name derivation, pyproject config loading and error handling."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ALL_RULES,
    LintConfig,
    lint_paths,
    lint_sources,
    load_pyproject_config,
    module_name_for,
    rule_listing,
)
from repro.errors import AnalysisError, ReproError

FIXTURES = Path(__file__).parent / "fixtures"

WIDE = LintConfig(determinism_scope=(), except_scope=())


class TestSuppression:
    def test_pragmas_suppress_but_are_counted(self) -> None:
        result = lint_paths([FIXTURES / "suppressed.py"], WIDE)
        assert result.ok
        assert not result.findings
        # One RPR001 (class), one RPR005 (random.random), one RPR006 (bare
        # except, via disable=all) — suppressed, never silently dropped.
        assert {f.rule for f in result.suppressed} == {"RPR001", "RPR005", "RPR006"}
        assert len(result.suppressed) == 3

    def test_pragma_only_disables_named_rule(self) -> None:
        source = (
            "import random\n"
            "def f():\n"
            "    return random.random()  # repro-lint: disable=RPR001\n"
        )
        result = lint_sources({"virt/mod.py": source}, WIDE)
        assert result.rules_fired() == {"RPR005": 1}
        assert not result.suppressed

    def test_disable_all_pragma(self) -> None:
        source = (
            "import random\n"
            "def f():\n"
            "    return random.random()  # repro-lint: disable=all\n"
        )
        result = lint_sources({"virt/mod.py": source}, WIDE)
        assert result.ok
        assert [f.rule for f in result.suppressed] == ["RPR005"]

    def test_suppressed_count_in_text_output(self) -> None:
        result = lint_paths([FIXTURES / "suppressed.py"], WIDE)
        assert "3 suppressed" in result.render_text()


class TestSelection:
    def test_select_runs_only_named_rules(self) -> None:
        bad = [FIXTURES / f"{rule.lower()}_bad.py" for rule in ALL_RULES]
        config = LintConfig(
            select=("RPR001", "RPR006"), determinism_scope=(), except_scope=()
        )
        result = lint_paths(bad, config)
        assert set(result.rules_fired()) == {"RPR001", "RPR006"}

    def test_ignore_drops_named_rules(self) -> None:
        bad = [FIXTURES / f"{rule.lower()}_bad.py" for rule in ALL_RULES]
        config = LintConfig(ignore=("RPR005",), determinism_scope=(), except_scope=())
        result = lint_paths(bad, config)
        assert "RPR005" not in result.rules_fired()
        assert "RPR001" in result.rules_fired()

    def test_unknown_rule_raises(self) -> None:
        with pytest.raises(AnalysisError, match="unknown rule"):
            LintConfig(select=("RPR999",))
        with pytest.raises(ReproError):  # part of the repo error hierarchy
            LintConfig(ignore=("nope",))


class TestRendering:
    def test_json_output_shape(self) -> None:
        result = lint_paths([FIXTURES / "rpr001_bad.py"], WIDE)
        payload = json.loads(result.render_json())
        assert payload["ok"] is False
        assert payload["rules_fired"] == {"RPR001": 2}
        assert payload["files"] == 1
        first = payload["findings"][0]
        assert set(first) == {"rule", "path", "line", "col", "message"}
        assert payload["errors"] == []

    def test_text_output_clean_summary(self) -> None:
        result = lint_paths([FIXTURES / "rpr001_good.py"], WIDE)
        text = result.render_text()
        assert text.startswith("clean: 0 finding(s)")
        assert result.exit_code() == 0

    def test_text_output_lists_findings_sorted(self) -> None:
        result = lint_paths(
            [FIXTURES / "rpr001_bad.py", FIXTURES / "rpr002_bad.py"], WIDE
        )
        lines = result.render_text().splitlines()
        assert len(lines) == len(result.findings) + 1  # findings + summary
        assert lines == sorted(lines[:-1]) + [lines[-1]]
        assert result.exit_code() == 1

    def test_rule_listing_covers_all_rules(self) -> None:
        listing = rule_listing()
        for rule in ALL_RULES:
            assert rule in listing


class TestErrors:
    def test_syntax_error_is_reported_not_raised(self) -> None:
        result = lint_sources({"broken.py": "def f(:\n    pass\n"}, WIDE)
        assert result.errors and "cannot parse" in result.errors[0][1]
        assert result.exit_code() == 1
        assert "error:" in result.render_text()

    def test_missing_path_raises(self) -> None:
        with pytest.raises(AnalysisError, match="no such file"):
            lint_paths([FIXTURES / "does_not_exist.py"])


class TestModuleNames:
    def test_package_module(self) -> None:
        import repro

        src = Path(repro.__file__).parent
        assert module_name_for(src / "cluster" / "worker.py") == "repro.cluster.worker"
        assert module_name_for(src / "__init__.py") == "repro"

    def test_bare_module(self) -> None:
        assert module_name_for(FIXTURES / "rpr001_bad.py") == "rpr001_bad"

    def test_fixture_package(self) -> None:
        path = FIXTURES / "spawnpkg" / "worker.py"
        assert module_name_for(path) == "spawnpkg.worker"

    def test_non_python_path(self) -> None:
        assert module_name_for(Path("README.md")) == ""

    def test_lint_sources_derives_names_from_paths(self) -> None:
        # A virtual file at a real package path gets the real module name:
        # the PlanCache mutation test in test_repo_clean.py depends on this.
        import repro

        path = str(Path(repro.__file__).parent / "service" / "plan_cache.py")
        source = "import random\nx = random.random()\n"
        result = lint_sources({path: source})  # default (repro.*) scopes
        assert result.rules_fired() == {"RPR005": 1}


class TestPyprojectConfig:
    def test_missing_table_returns_base(self, tmp_path: Path) -> None:
        (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
        config = load_pyproject_config(tmp_path)
        assert config == LintConfig()

    def test_table_overrides_fields(self, tmp_path: Path) -> None:
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint]\n"
            'ignore = ["RPR005"]\n'
            'blessed-multilock = ["merge"]\n'
            'worker-root = "spawnpkg.worker"\n'
        )
        config = load_pyproject_config(tmp_path)
        assert config.ignore == ("RPR005",)
        assert config.blessed_multilock == ("merge",)
        assert config.worker_root == "spawnpkg.worker"
        assert "RPR005" not in config.enabled_rules()

    def test_search_walks_up_from_subdirectory(self, tmp_path: Path) -> None:
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro-lint]\nselect = ["RPR001"]\n'
        )
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        config = load_pyproject_config(nested)
        assert config.select == ("RPR001",)

    def test_unknown_key_raises(self, tmp_path: Path) -> None:
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint]\nselct = [\"RPR001\"]\n"
        )
        with pytest.raises(AnalysisError, match="unknown \\[tool.repro-lint\\] key"):
            load_pyproject_config(tmp_path)

    def test_bad_value_type_raises(self, tmp_path: Path) -> None:
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint]\nworker-root = 7\n"
        )
        with pytest.raises(AnalysisError, match="must be a string"):
            load_pyproject_config(tmp_path)

    def test_with_overrides_rejects_unknown_field(self) -> None:
        with pytest.raises(AnalysisError, match="unknown lint config key"):
            LintConfig().with_overrides({"not_a_field": 1})
