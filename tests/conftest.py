"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro import AndTree, DnfTree, Leaf

# Hypothesis profiles: "ci" (selected with --hypothesis-profile=ci) drops the
# per-example deadline — shared CI runners have noisy clocks, and the
# stateful elasticity suites run whole serving batches per step — and trims
# example counts so tier-1 stays fast; "dev" keeps default example counts but
# also no deadline, for local soak runs.
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def paper_and_tree() -> AndTree:
    """The shared AND-tree of paper Figure 2 / §II-A.

    l1 = A[1] p=0.75, l2 = A[2] p=0.1, l3 = B[1] p=0.5, unit costs.
    Known costs: (l3,l1,l2) -> 1.875, (l3,l2,l1) -> 2.0, optimal
    (l1,l2,l3) -> 1.825.
    """
    return AndTree(
        [
            Leaf("A", 1, 0.75, "l1"),
            Leaf("A", 2, 0.1, "l2"),
            Leaf("B", 1, 0.5, "l3"),
        ],
        costs={"A": 1.0, "B": 1.0},
    )


def make_paper_dnf(p: dict[int, float], costs: dict[str, float]) -> DnfTree:
    """The DNF tree of paper Figure 3 / §II-B with parametric probabilities.

    Leaves l1..l7 with paper indices; ``p[k]`` is leaf lk's probability.
    Global indices: l1=0, l3=1, l4=2 (AND 1); l2=3, l5=4 (AND 2);
    l6=5, l7=6 (AND 3). The schedule l1..l7 is (0, 3, 1, 2, 4, 5, 6).
    """
    return DnfTree(
        [
            [Leaf("A", 1, p[1], "l1"), Leaf("C", 1, p[3], "l3"), Leaf("D", 1, p[4], "l4")],
            [Leaf("B", 1, p[2], "l2"), Leaf("C", 1, p[5], "l5")],
            [Leaf("B", 1, p[6], "l6"), Leaf("D", 1, p[7], "l7")],
        ],
        costs=costs,
    )


PAPER_FIG3_SCHEDULE = (0, 3, 1, 2, 4, 5, 6)


def fig3_paper_cost(p: dict[int, float], c: dict[str, float]) -> float:
    """The closed-form cost the paper derives for the Figure 3 schedule."""
    return (
        c["A"]
        + c["B"]
        + (p[1] + (1 - p[1]) * p[2]) * c["C"]
        + (p[1] * p[3] + (1 - p[1] * p[3]) * (1 - p[2] * p[5]) * p[6]) * c["D"]
    )


@pytest.fixture
def nonlinear_gap_tree() -> DnfTree:
    """Shared DNF instance where non-linear strictly beats linear (§V).

    Found by exhaustive search: optimal linear cost 4.5, optimal non-linear
    cost 4.176 (7.2% gap).
    """
    return DnfTree(
        [
            [Leaf("B", 2, 0.4), Leaf("A", 2, 0.1)],
            [Leaf("A", 1, 0.6), Leaf("B", 2, 0.1)],
        ],
        costs={"A": 1.0, "B": 2.0},
    )


@pytest.fixture
def alg1_within_and_counterexample() -> DnfTree:
    """§IV-C counterexample: no optimal schedule uses Algorithm 1's
    within-AND orders (best such schedule costs 10.297 vs optimum 6.537)."""
    return DnfTree(
        [
            [Leaf("B", 1, 0.1), Leaf("B", 1, 0.5), Leaf("A", 1, 0.2)],
            [Leaf("B", 2, 0.1), Leaf("A", 1, 0.3), Leaf("A", 1, 0.2)],
        ],
        costs={"A": 5.0, "B": 5.0},
    )


def random_small_dnf(
    rng: np.random.Generator,
    *,
    max_ands: int = 3,
    max_per_and: int = 3,
    max_items: int = 3,
    n_streams: int = 3,
) -> DnfTree:
    """Small random shared DNF for brute-force cross-validation."""
    streams = [f"S{k}" for k in range(1, n_streams + 1)]
    groups = []
    for _ in range(int(rng.integers(1, max_ands + 1))):
        group = [
            Leaf(
                streams[int(rng.integers(0, len(streams)))],
                int(rng.integers(1, max_items + 1)),
                float(rng.random()),
            )
            for _ in range(int(rng.integers(1, max_per_and + 1)))
        ]
        groups.append(group)
    used = {leaf.stream for group in groups for leaf in group}
    costs = {name: float(rng.uniform(0.5, 10.0)) for name in used}
    return DnfTree(groups, costs)
