"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import DnfTree, Leaf
from repro.cli import main
from repro.lang import tree_to_json

QUERY = "(A[2] p=0.3 AND B[1] p=0.5) OR C[1] p=0.2"


class TestSchedule:
    def test_all_schedulers(self, capsys):
        assert main(["schedule", QUERY]) == 0
        out = capsys.readouterr().out
        assert "and-inc-c-over-p-dynamic" in out
        assert "optimal" in out
        assert "expected cost" in out

    def test_single_scheduler(self, capsys):
        assert main(["schedule", QUERY, "--scheduler", "leaf-inc-c"]) == 0
        out = capsys.readouterr().out
        assert "leaf-inc-c" in out
        assert "and-inc-c-over-p-dynamic" not in out

    def test_json_input(self, tmp_path, capsys):
        tree = DnfTree([[Leaf("A", 1, 0.5)], [Leaf("B", 2, 0.4)]], {"A": 1.0, "B": 2.0})
        path = tmp_path / "tree.json"
        path.write_text(tree_to_json(tree))
        assert main(["schedule", str(path), "--scheduler", "optimal"]) == 0
        assert "optimal" in capsys.readouterr().out

    def test_unknown_scheduler_fails_cleanly(self, capsys):
        assert main(["schedule", QUERY, "--scheduler", "bogus"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_query_fails_cleanly(self, capsys):
        assert main(["schedule", "(((("]) == 2
        assert "error:" in capsys.readouterr().err


class TestEvaluate:
    def test_prop2_value(self, capsys):
        assert main(["evaluate", "A[2] p=0.5 AND A[3] p=0.5", "--order", "0,1"]) == 0
        out = capsys.readouterr().out
        # cost = 2 + 0.5 * 1 = 2.5
        assert "2.5" in out

    def test_monte_carlo_flag(self, capsys):
        assert (
            main(
                [
                    "evaluate", QUERY, "--order", "0,1,2",
                    "--monte-carlo", "--samples", "2000",
                ]
            )
            == 0
        )
        assert "Monte-Carlo" in capsys.readouterr().out

    def test_invalid_order(self, capsys):
        assert main(["evaluate", QUERY, "--order", "0,1"]) == 2
        assert main(["evaluate", QUERY, "--order", "a,b,c"]) == 2


class TestOptimalAndDecide:
    def test_optimal(self, capsys):
        assert main(["optimal", QUERY]) == 0
        out = capsys.readouterr().out
        assert "optimal schedule:" in out and "search nodes:" in out

    def test_decide_yes_and_no(self, capsys):
        # optimal cost of a single 5-item unit-cost leaf is 5
        assert main(["decide", "A[5] p=0.5", "--bound", "5.0"]) == 0
        assert "YES" in capsys.readouterr().out
        assert main(["decide", "A[5] p=0.5", "--bound", "4.9"]) == 1
        assert "NO" in capsys.readouterr().out


class TestExperiment:
    def test_fig4_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "fig4.csv"
        assert (
            main(["experiment", "fig4", "--scale", "2", "--csv", str(csv_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "max ratio" in out
        header = csv_path.read_text().splitlines()[0]
        assert header == "optimal_cost,read_once_cost,m,rho"

    def test_fig5(self, capsys):
        assert main(["experiment", "fig5", "--scale", "1"]) == 0
        assert "and-inc-c-over-p-dynamic" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["experiment", "fig6", "--scale", "1"]) == 0
        assert "(ref)" in capsys.readouterr().out


class TestServeSim:
    def test_default_run(self, capsys):
        assert main(["serve-sim", "--queries", "20", "--rounds", "5"]) == 0
        out = capsys.readouterr().out
        assert "plan-cache hit rate" in out
        assert "items fetched / saved" in out

    def test_compare_isolated_reports_speedup(self, capsys):
        assert (
            main(
                [
                    "serve-sim",
                    "--queries",
                    "30",
                    "--rounds",
                    "5",
                    "--compare-isolated",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "isolated-sum cost" in out
        assert "sharing speedup" in out

    def test_ablation_flags(self, capsys):
        assert (
            main(
                [
                    "serve-sim",
                    "--queries",
                    "10",
                    "--rounds",
                    "3",
                    "--no-plan-cache",
                    "--no-shared-plan",
                ]
            )
            == 0
        )
        assert "hit rate" in capsys.readouterr().out


class TestClusterSim:
    def test_default_run_prints_comparison(self, capsys):
        assert (
            main(
                [
                    "cluster-sim", "--queries", "30", "--clusters", "3",
                    "--streams-per-cluster", "3", "--rounds", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "overlap-sharded" in out
        assert "random-sharded" in out
        assert "overlap-sharded vs single-shard" in out

    def test_verify_flag_runs_parity_check(self, capsys):
        assert (
            main(
                [
                    "cluster-sim", "--queries", "20", "--clusters", "2",
                    "--streams-per-cluster", "3", "--rounds", "4", "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "parity:" in out
        assert "identical between sharded and unsharded" in out

    def test_vectorized_engine(self, capsys):
        assert (
            main(
                [
                    "cluster-sim", "--queries", "16", "--clusters", "2",
                    "--streams-per-cluster", "3", "--rounds", "3",
                    "--engine", "vectorized", "--shards", "2",
                ]
            )
            == 0
        )
        assert "evals/s" in capsys.readouterr().out

    def test_process_executor_flag(self, capsys):
        assert (
            main(
                [
                    "cluster-sim", "--queries", "18", "--clusters", "3",
                    "--streams-per-cluster", "3", "--rounds", "3",
                    "--executor", "process", "--verify",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "parity:" in out
        assert "max cost delta 0" in out

    def test_elastic_churn_sim(self, capsys):
        assert (
            main(
                [
                    "cluster-sim", "--elastic", "--queries", "40",
                    "--clusters", "3", "--streams-per-cluster", "3",
                    "--rounds", "2", "--batches", "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "elastic serving:" in out
        assert "elastic actions" in out
        assert "splits" in out

    def test_elastic_verify_gauntlet(self, capsys):
        assert (
            main(
                [
                    "cluster-sim", "--elastic", "--verify", "--queries", "24",
                    "--clusters", "3", "--streams-per-cluster", "3",
                    "--rounds", "3", "--batches", "4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "elastic parity:" in out
        assert "bit-identical" in out


class TestDrift:
    def test_default_run_prints_comparison(self, capsys):
        assert (
            main(
                [
                    "drift", "--queries", "4", "--cluster-size", "2",
                    "--rounds", "120", "--drift-round", "40",
                    "--window", "32", "--min-samples", "12",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "static" in out and "adaptive" in out and "oracle" in out
        assert "detection lag" in out
        assert "post-drift cost vs oracle replan" in out

    def test_scalar_engine(self, capsys):
        assert (
            main(
                [
                    "drift", "--queries", "4", "--cluster-size", "2",
                    "--rounds", "80", "--drift-round", "30",
                    "--engine", "scalar", "--window", "32", "--min-samples", "12",
                ]
            )
            == 0
        )
        assert "scalar engine" in capsys.readouterr().out

    def test_invalid_drift_round_errors(self, capsys):
        assert main(["drift", "--rounds", "10", "--drift-round", "10"]) == 2
        assert "error:" in capsys.readouterr().err


class TestEngineFlag:
    def test_evaluate_engines_agree_per_seed(self, capsys):
        args = ["evaluate", QUERY, "--order", "0,1,2", "--monte-carlo", "--samples", "2000"]
        assert main([*args, "--engine", "scalar"]) == 0
        scalar_out = capsys.readouterr().out
        assert main([*args, "--engine", "vectorized"]) == 0
        vector_out = capsys.readouterr().out
        assert "scalar engine" in scalar_out
        assert "vectorized engine" in vector_out
        # Same seed, same outcome matrix: identical estimates either way.
        assert scalar_out.split("engine):")[1] == vector_out.split("engine):")[1]

    def test_experiment_fig4_vectorized(self, capsys):
        assert (
            main(
                [
                    "experiment", "fig4", "--scale", "2",
                    "--engine", "vectorized", "--trials", "200",
                ]
            )
            == 0
        )
        assert "max ratio" in capsys.readouterr().out

    def test_serve_sim_vectorized(self, capsys):
        assert (
            main(
                [
                    "serve-sim", "--queries", "15", "--rounds", "4",
                    "--engine", "vectorized",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "plan-cache hit rate" in out

    def test_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-sim", "--engine", "warp"])


class TestExhaustiveSchedulerRegistryEntry:
    def test_optimal_registered(self):
        from repro.core.heuristics import get_scheduler
        from repro.core.dnf_optimal import optimal_depth_first

        tree = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 2, 0.4)], [Leaf("A", 2, 0.3)]])
        scheduler = get_scheduler("optimal")
        schedule = scheduler.schedule(tree)
        assert schedule == optimal_depth_first(tree).schedule


class TestTelemetryFlag:
    def run_traced(self, tmp_path, capsys, argv):
        path = tmp_path / "out.jsonl"
        assert main(argv + ["--telemetry", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"telemetry written to {path}" in out
        return path

    def test_serve_sim_writes_replayable_sink(self, tmp_path, capsys):
        from repro.obs import latest_snapshot, read_jsonl

        path = self.run_traced(
            tmp_path, capsys,
            ["serve-sim", "--queries", "12", "--rounds", "4"],
        )
        records = read_jsonl(path)
        snapshot = latest_snapshot(records)
        assert snapshot is not None
        names = {cell["name"] for cell in snapshot["metrics"]["counters"]}
        assert "repro_rounds_total" in names

    def test_cluster_sim_elastic_traces_topology_changes(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = self.run_traced(
            tmp_path, capsys,
            [
                "cluster-sim", "--elastic", "--queries", "40",
                "--batches", "3", "--rounds", "3",
            ],
        )
        records = read_jsonl(path)
        types = {(r.get("type"), r.get("name")) for r in records}
        assert ("span", "batch") in types
        assert ("span", "shard-batch") in types
        assert ("span", "cluster-batch") in types
        assert ("event", "elastic-action") in types
        assert ("snapshot", None) in types

    def test_drift_traces_adaptive_replans(self, tmp_path, capsys):
        from repro.obs import read_jsonl

        path = self.run_traced(
            tmp_path, capsys,
            ["drift", "--queries", "6", "--rounds", "60", "--drift-round", "20"],
        )
        records = read_jsonl(path)
        assert any(r.get("name") == "replan" for r in records)


class TestMetricsCommand:
    def make_sink(self, tmp_path, capsys) -> str:
        path = tmp_path / "out.jsonl"
        assert (
            main(
                [
                    "serve-sim", "--queries", "10", "--rounds", "4",
                    "--telemetry", str(path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        return str(path)

    def test_summary_lists_spans_and_metrics(self, tmp_path, capsys):
        sink = self.make_sink(tmp_path, capsys)
        assert main(["metrics", sink]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out and "batch" in out
        assert "repro_rounds_total" in out
        assert "repro_round_cost" in out  # histogram table

    def test_prometheus_format(self, tmp_path, capsys):
        sink = self.make_sink(tmp_path, capsys)
        assert main(["metrics", sink, "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_rounds_total counter" in out
        assert 'repro_round_cost_bucket{le="+Inf"}' in out

    def test_json_format_parses(self, tmp_path, capsys):
        sink = self.make_sink(tmp_path, capsys)
        assert main(["metrics", sink, "--format", "json"]) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert {"counters", "gauges", "histograms"} <= set(metrics)

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["metrics", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read telemetry file" in capsys.readouterr().err

    def test_snapshotless_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"type": "event", "name": "tick"}\n')
        assert main(["metrics", str(path)]) == 2
        assert "no metrics snapshot" in capsys.readouterr().err


class TestLint:
    FIXTURES = "tests/analysis/fixtures"

    @pytest.fixture()
    def src_dir(self):
        import pathlib

        import repro

        return str(pathlib.Path(repro.__file__).parent)

    @pytest.fixture()
    def bad_file(self):
        import pathlib

        return str(
            pathlib.Path(__file__).parent / "analysis" / "fixtures" / "rpr001_bad.py"
        )

    def test_src_tree_is_clean(self, src_dir, capsys):
        assert main(["lint", src_dir]) == 0
        out = capsys.readouterr().out
        assert out.startswith("clean: 0 finding(s)")

    def test_findings_exit_nonzero(self, bad_file, capsys):
        assert main(["lint", bad_file, "--no-config"]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "BadCache" in out
        assert f"{bad_file}:" in out  # file:line:col prefix

    def test_json_format(self, bad_file, capsys):
        assert main(["lint", bad_file, "--no-config", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["rules_fired"]["RPR001"] == 2

    def test_select_narrows_rules(self, bad_file, capsys):
        assert main(["lint", bad_file, "--no-config", "--select", "RPR002"]) == 0
        assert "clean:" in capsys.readouterr().out

    def test_ignore_drops_rule(self, bad_file, capsys):
        assert main(["lint", bad_file, "--no-config", "--ignore", "RPR001"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006", "RPR007"
        ):
            assert rule in out

    def test_unknown_rule_fails_cleanly(self, bad_file, capsys):
        assert main(["lint", bad_file, "--select", "RPR999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_fails_cleanly(self, capsys):
        assert main(["lint", "no/such/path.py"]) == 2
        assert "no such file" in capsys.readouterr().err


class TestTraceCommand:
    def make_sink(self, tmp_path, capsys, argv=None) -> str:
        path = tmp_path / "out.jsonl"
        base = argv or ["cluster-sim", "--queries", "30", "--clusters", "3",
                        "--rounds", "3"]
        assert main(base + ["--telemetry", str(path)]) == 0
        capsys.readouterr()
        return str(path)

    def test_summary_shows_forest_shape_and_span_stats(self, tmp_path, capsys):
        sink = self.make_sink(tmp_path, capsys)
        assert main(["trace", sink]) == 0
        out = capsys.readouterr().out
        assert "0 orphans" in out
        assert "cluster-batch" in out and "shard-batch" in out
        assert "mean ms" in out

    def test_critical_path_attributes_batch_roots(self, tmp_path, capsys):
        sink = self.make_sink(tmp_path, capsys)
        assert main(["trace", sink, "--format", "critical-path"]) == 0
        out = capsys.readouterr().out
        assert "cluster-batch" in out
        for bucket in ("acquisition", "evaluation", "plan_cache", "residue"):
            assert bucket in out
        assert "critical path:" in out
        assert "coverage" in out

    def test_chrome_export_to_stdout_parses(self, tmp_path, capsys):
        sink = self.make_sink(tmp_path, capsys)
        assert main(["trace", sink, "--format", "chrome"]) == 0
        trace = json.loads(capsys.readouterr().out)
        assert trace["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert "X" in phases

    def test_chrome_export_to_file(self, tmp_path, capsys):
        sink = self.make_sink(tmp_path, capsys)
        out_path = tmp_path / "chrome.json"
        assert main(["trace", sink, "--format", "chrome", "--out",
                     str(out_path)]) == 0
        assert "written to" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "cluster-batch" in names

    def test_serve_sim_sink_has_batch_root(self, tmp_path, capsys):
        sink = self.make_sink(
            tmp_path, capsys, ["serve-sim", "--queries", "10", "--rounds", "4"]
        )
        assert main(["trace", sink, "--format", "critical-path"]) == 0
        assert "batch" in capsys.readouterr().out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read telemetry file" in capsys.readouterr().err

    def test_spanless_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bare.jsonl"
        path.write_text('{"type": "snapshot", "metrics": {}}\n')
        assert main(["trace", str(path)]) == 2
        assert "no spans" in capsys.readouterr().err
