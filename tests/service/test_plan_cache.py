"""Plan cache: hit/miss accounting, LRU eviction, scheduler separation."""

from __future__ import annotations

import threading

import pytest

from repro import DnfTree, Leaf
from repro.core.cost import dnf_schedule_cost
from repro.core.heuristics import get_scheduler
from repro.errors import ReproError
from repro.service import PlanCache, canonicalize


def make_tree(prob: float) -> DnfTree:
    return DnfTree(
        [[Leaf("A", 2, prob), Leaf("B", 1, 0.5)], [Leaf("C", 1, 0.3)]],
        costs={"A": 1.0, "B": 2.0, "C": 0.5},
    )


@pytest.fixture
def scheduler():
    return get_scheduler("and-inc-c-over-p-dynamic")


class TestPlanCache:
    def test_first_lookup_misses_then_hits(self, scheduler):
        cache = PlanCache(capacity=4)
        form = canonicalize(make_tree(0.4))
        first = cache.plan(form, scheduler)
        second = cache.plan(form, scheduler)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_plan_matches_direct_scheduling(self, scheduler):
        cache = PlanCache()
        form = canonicalize(make_tree(0.4))
        plan = cache.plan(form, scheduler)
        assert plan.schedule == tuple(scheduler.schedule(form.tree))
        assert plan.cost == pytest.approx(
            dnf_schedule_cost(form.tree, plan.schedule)
        )

    def test_distinct_trees_occupy_distinct_slots(self, scheduler):
        cache = PlanCache(capacity=8)
        cache.plan(canonicalize(make_tree(0.4)), scheduler)
        cache.plan(canonicalize(make_tree(0.6)), scheduler)
        assert len(cache) == 2
        assert cache.misses == 2

    def test_distinct_schedulers_cached_separately(self):
        cache = PlanCache()
        form = canonicalize(make_tree(0.4))
        cache.plan(form, get_scheduler("and-inc-c-over-p-dynamic"))
        cache.plan(form, get_scheduler("leaf-inc-c"))
        assert len(cache) == 2
        assert cache.misses == 2

    def test_lru_eviction_order(self, scheduler):
        cache = PlanCache(capacity=2)
        forms = [canonicalize(make_tree(p)) for p in (0.2, 0.4, 0.6)]
        cache.plan(forms[0], scheduler)
        cache.plan(forms[1], scheduler)
        cache.plan(forms[0], scheduler)  # refresh 0 -> 1 is now LRU
        cache.plan(forms[2], scheduler)  # evicts 1
        assert cache.evictions == 1
        assert (forms[0].key, scheduler.name) in cache
        assert (forms[1].key, scheduler.name) not in cache
        assert (forms[2].key, scheduler.name) in cache

    def test_invalidate_drops_all_scheduler_variants(self, scheduler):
        cache = PlanCache()
        form = canonicalize(make_tree(0.4))
        cache.plan(form, scheduler)
        cache.plan(form, get_scheduler("leaf-inc-c"))
        assert cache.invalidate(form.key) == 2
        assert len(cache) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            PlanCache(capacity=0)

    def test_stats_snapshot(self, scheduler):
        cache = PlanCache(capacity=4)
        form = canonicalize(make_tree(0.4))
        cache.plan(form, scheduler)
        cache.plan(form, scheduler)
        stats = cache.stats()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 1.0
        assert stats["size"] == 1.0
        assert stats["hit_rate"] == pytest.approx(0.5)


class TestPlanCacheConcurrency:
    """Regression: counter races under concurrent admissions.

    Before the fix, ``hit_rate`` read ``hits``/``misses`` without the lock
    and every thread racing through the unlocked miss path counted its own
    miss — so N racing admissions of one shape could record N misses even
    though the cache ends up holding (and serving) a single entry.
    """

    def test_racing_admissions_single_count_per_shape(self, scheduler):
        cache = PlanCache(capacity=64)
        forms = [canonicalize(make_tree(p)) for p in (0.2, 0.4, 0.6, 0.8)]
        n_threads, per_thread = 8, 40
        barrier = threading.Barrier(n_threads)
        errors: list[Exception] = []

        def hammer(thread_index: int) -> None:
            try:
                barrier.wait()
                for i in range(per_thread):
                    form = forms[(thread_index + i) % len(forms)]
                    plan = cache.plan(form, scheduler)
                    assert plan.key == form.key
                    cache.hit_rate  # exercise the snapshot path concurrently
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        total_lookups = n_threads * per_thread
        stats = cache.stats()
        # Exactly one miss per distinct shape, no matter how many threads
        # raced the first computation; every other lookup settled as a hit.
        assert stats["misses"] == float(len(forms))
        assert stats["hits"] == float(total_lookups - len(forms))
        assert stats["evictions"] == 0.0
        assert len(cache) == len(forms)
        assert cache.hit_rate == pytest.approx(
            (total_lookups - len(forms)) / total_lookups
        )

    def test_racing_insert_returns_first_entry(self, scheduler):
        """The loser of a compute race is served the winner's plan object."""
        from collections import OrderedDict

        class OneMissDict(OrderedDict):
            """Pretends the entry is absent for exactly one lookup —
            the loser thread's view before the winner's insert landed."""

            misses_left = 1

            def get(self, key, default=None):
                if self.misses_left:
                    self.misses_left -= 1
                    return default
                return super().get(key, default)

        cache = PlanCache(capacity=8)
        form = canonicalize(make_tree(0.4))
        winner = cache.plan(form, scheduler)
        cache._plans = OneMissDict(cache._plans)
        loser = cache.plan(form, scheduler)
        assert loser is winner  # insert-time check found the existing entry
        assert cache.stats()["misses"] == 1.0  # still single-counted
        assert cache.stats()["hits"] == 1.0  # the loser settled as a hit


class TestReadThroughProtocol:
    """``lookup``/``publish``: the split halves of ``plan`` used by process
    workers over the command channel. The accounting invariant: any
    interleaving of (lookup miss -> compute -> publish) pairs records exactly
    what the same sequence of in-process ``plan`` calls would have."""

    def test_lookup_miss_counts_nothing(self, scheduler):
        cache = PlanCache(capacity=4)
        form = canonicalize(make_tree(0.4))
        assert cache.lookup(form.key, scheduler.name) is None
        assert (cache.hits, cache.misses) == (0, 0)

    def test_publish_then_lookup_matches_plan_accounting(self, scheduler):
        split = PlanCache(capacity=4)
        fused = PlanCache(capacity=4)
        form = canonicalize(make_tree(0.4))

        computed = fused.plan(form, scheduler)  # reference: one plan() miss
        assert split.lookup(form.key, scheduler.name) is None
        winner, inserted = split.publish(computed)
        assert inserted and winner is computed
        # reference: one plan() hit
        fused.plan(form, scheduler)
        hit = split.lookup(form.key, scheduler.name)
        assert hit is computed
        assert split.stats() == fused.stats()

    def test_publish_race_serves_existing_entry_as_hit(self, scheduler):
        cache = PlanCache(capacity=4)
        form = canonicalize(make_tree(0.4))
        first = cache.plan(form, scheduler)
        # A worker that lost the race publishes its own computation of the
        # same shape; the resident entry wins and the publish settles as a
        # hit — identical to plan()'s insert-time re-check.
        rival = cache.plan(canonicalize(make_tree(0.4)), scheduler)
        assert rival is first
        winner, inserted = cache.publish(first)
        assert winner is first and not inserted
        assert cache.stats()["misses"] == 1.0

    def test_publish_respects_capacity(self, scheduler):
        cache = PlanCache(capacity=2)
        plans = [
            PlanCache(capacity=1).plan(canonicalize(make_tree(p)), scheduler)
            for p in (0.2, 0.4, 0.6)
        ]
        for plan in plans:
            cache.publish(plan)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert (plans[0].key, scheduler.name) not in cache

    def test_lookup_refreshes_lru_position(self, scheduler):
        cache = PlanCache(capacity=2)
        forms = [canonicalize(make_tree(p)) for p in (0.2, 0.4, 0.6)]
        cache.plan(forms[0], scheduler)
        cache.plan(forms[1], scheduler)
        cache.lookup(forms[0].key, scheduler.name)  # refresh 0 -> 1 is LRU
        cache.plan(forms[2], scheduler)
        assert (forms[0].key, scheduler.name) in cache
        assert (forms[1].key, scheduler.name) not in cache
