"""Shared global plans: merge invariants and the sharing cost-dominance property."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DnfTree, Leaf
from repro.core.heuristics import get_scheduler
from repro.engine.executor import LeafOracle
from repro.errors import StreamError
from repro.service import (
    QueryServer,
    merge_schedules,
    run_isolated,
    synthetic_population,
    synthetic_registry,
)


class DataDrivenOracle(LeafOracle):
    """Outcome is a pure function of the fetched window values.

    Deterministic given the stream tapes, so a shared run and an isolated run
    of the same population see *identical* leaf outcomes — which makes
    "shared total <= sum of isolated totals" an exact theorem, not a
    statistical tendency.
    """

    def outcome(self, gindex, leaf, values):
        return (abs(float(values.sum())) * 997.0) % 1.0 < leaf.prob


def small_population(seed: int, n_queries: int = 6):
    registry = synthetic_registry(4, seed=seed)
    population = synthetic_population(
        n_queries, registry, n_templates=max(1, n_queries // 2), seed=seed + 1
    )
    return registry, population


class TestMergeSchedules:
    def make_inputs(self, seed=0):
        registry, population = small_population(seed)
        scheduler = get_scheduler("and-inc-c-over-p-dynamic")
        trees = {name: tree for name, tree in population}
        schedules = {name: scheduler.schedule(tree) for name, tree in population}
        return trees, schedules, registry.cost_table()

    def test_contains_every_probe_exactly_once(self):
        trees, schedules, costs = self.make_inputs()
        plan = merge_schedules(trees, schedules, costs)
        assert plan.size == sum(len(s) for s in schedules.values())
        seen = {(p.query, p.gindex) for p in plan.probes}
        assert len(seen) == plan.size

    def test_preserves_per_query_order(self):
        trees, schedules, costs = self.make_inputs()
        plan = merge_schedules(trees, schedules, costs)
        for name, order in plan.per_query().items():
            assert order == tuple(schedules[name])

    def test_planned_items_cover_every_window(self):
        trees, schedules, costs = self.make_inputs()
        plan = merge_schedules(trees, schedules, costs)
        for name, tree in trees.items():
            for leaf in tree.leaves:
                assert plan.planned_items[leaf.stream] >= leaf.items

    def test_population_plan_interleaves_queries(self):
        trees, schedules, costs = self.make_inputs()
        plan = merge_schedules(trees, schedules, costs)
        assert plan.interleaving_degree() > 0.0

    def test_free_probe_scheduled_before_paid_probe(self):
        """Once one query pays for a window, identical probes float forward."""
        expensive = DnfTree([[Leaf("X", 4, 0.5)], [Leaf("Y", 1, 0.5)]], {"X": 10.0, "Y": 1.0})
        rider = DnfTree([[Leaf("X", 4, 0.6)]], {"X": 10.0})
        schedules = {
            "payer": (0, 1),
            "rider": (0,),
        }
        plan = merge_schedules(
            {"payer": expensive, "rider": rider}, schedules, {"X": 10.0, "Y": 1.0}
        )
        order = [(p.query, p.gindex) for p in plan.probes]
        # The rider's X-probe becomes free the moment the payer's X-probe is
        # planned, so they end up adjacent — before the cheap Y probe would
        # have been reached in a blocked order.
        payer_x = order.index(("payer", 0))
        rider_x = order.index(("rider", 0))
        assert abs(payer_x - rider_x) == 1

    def test_mismatched_key_sets_rejected(self):
        trees, schedules, costs = self.make_inputs()
        schedules.pop(next(iter(schedules)))
        with pytest.raises(StreamError):
            merge_schedules(trees, schedules, costs)


class TestSharingDominance:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_shared_cost_never_exceeds_isolated_sum(self, seed):
        """Property: total batched cost <= sum of per-query isolated costs.

        Holds sample-by-sample (not just in expectation) because the oracle
        is data-driven and the caches only ever *remove* charges.
        """
        registry, population = small_population(seed, n_queries=5)
        oracle = DataDrivenOracle()
        server = QueryServer(registry, oracle)
        for name, tree in population:
            server.register(name, tree)
        rounds = 8
        report = server.run_batch(rounds)
        isolated = run_isolated(
            registry, population, rounds, oracle_factory=lambda name: oracle
        )
        assert report.total_cost <= sum(isolated.values()) + 1e-9

    def test_per_query_outcomes_match_isolated_run(self):
        """Interleaving changes cost, never semantics: same TRUE rates."""
        registry, population = small_population(3, n_queries=4)
        server = QueryServer(registry, DataDrivenOracle())
        for name, tree in population:
            server.register(name, tree)
        rounds = 10
        shared_true = {name: 0 for name, _ in population}
        for _ in range(rounds):
            for name, result in server.step().items():
                shared_true[name] += 1 if result.value else 0

        # Isolated reference: fresh registry clone with identical tapes.
        registry2, population2 = small_population(3, n_queries=4)
        scheduler = get_scheduler("and-inc-c-over-p-dynamic")
        oracle = DataDrivenOracle()
        from repro.engine.executor import ScheduleExecutor
        from repro.engine.workload import compute_max_windows

        for name, tree in population2:
            cache = registry2.build_cache(now=64)
            executor = ScheduleExecutor(tree, cache, oracle)
            schedule = scheduler.schedule(tree)
            true_count = 0
            for _ in range(rounds):
                cache.advance(1, max_windows=compute_max_windows([tree]))
                if executor.run(schedule).value:
                    true_count += 1
            assert true_count == shared_true[name], name
