"""QueryServer: admission, lifecycle, batching, metrics, acceptance criteria."""

from __future__ import annotations

import pytest

from repro import AndTree, DnfTree, Leaf, QueryServer, run_isolated
from repro.engine import BernoulliOracle
from repro.errors import AdmissionError, StreamError
from repro.service import PlanCache, synthetic_population, synthetic_registry
from repro.streams.registry import StreamRegistry
from repro.streams.sources import GaussianSource
from repro.streams.stream import StreamSpec


def tiny_registry() -> StreamRegistry:
    registry = StreamRegistry()
    registry.add(StreamSpec("A", 1.0), GaussianSource(seed=1))
    registry.add(StreamSpec("B", 2.0), GaussianSource(seed=2))
    return registry


def tiny_tree(prob: float = 0.5) -> DnfTree:
    return DnfTree([[Leaf("A", 2, prob)], [Leaf("B", 1, 0.3)]], {"A": 1.0, "B": 2.0})


class TestAdmission:
    def test_register_returns_planned_query(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0))
        registered = server.register("q1", tiny_tree())
        assert "q1" in server
        assert len(registered.schedule) == registered.tree.size
        assert registered.canonical.key

    def test_duplicate_name_rejected(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0))
        server.register("q1", tiny_tree())
        with pytest.raises(AdmissionError):
            server.register("q1", tiny_tree())

    def test_admission_limit_enforced(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0), max_queries=2)
        server.register("q1", tiny_tree(0.4))
        server.register("q2", tiny_tree(0.5))
        with pytest.raises(AdmissionError):
            server.register("q3", tiny_tree(0.6))
        server.deregister("q1")
        server.register("q3", tiny_tree(0.6))  # freed slot is reusable

    def test_unknown_stream_rejected(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0))
        with pytest.raises(StreamError):
            server.register("bad", DnfTree([[Leaf("Z", 1, 0.5)]]))

    def test_deregister_unknown_name_rejected(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0))
        with pytest.raises(AdmissionError):
            server.deregister("ghost")

    def test_and_tree_admitted(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0))
        registered = server.register(
            "and", AndTree([Leaf("A", 1, 0.75), Leaf("A", 2, 0.1)], {"A": 1.0})
        )
        assert registered.tree.n_ands == 1

    def test_isomorphic_admissions_share_one_plan(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0))
        tree = DnfTree(
            [[Leaf("A", 2, 0.5), Leaf("B", 1, 0.3)], [Leaf("A", 1, 0.9)]],
            {"A": 1.0, "B": 2.0},
        )
        reordered = DnfTree(
            [[Leaf("A", 1, 0.9)], [Leaf("B", 1, 0.3), Leaf("A", 2, 0.5)]],
            {"A": 1.0, "B": 2.0},
        )
        first = server.register("q1", tree)
        second = server.register("q2", reordered)
        assert first.canonical.key == second.canonical.key
        assert server.plan_cache.hits == 1
        assert server.plan_cache.misses == 1

    def test_plan_cache_can_be_disabled(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0), plan_cache=None)
        assert server.plan_cache is None
        server.register("q1", tiny_tree())
        server.register("q2", tiny_tree())
        assert server.run_batch(3).plan_cache_hit_rate == 0.0

    def test_shared_plan_cache_instance(self):
        cache = PlanCache(capacity=16)
        server_a = QueryServer(tiny_registry(), BernoulliOracle(seed=0), plan_cache=cache)
        server_b = QueryServer(tiny_registry(), BernoulliOracle(seed=1), plan_cache=cache)
        server_a.register("q", tiny_tree())
        server_b.register("q", tiny_tree())
        assert cache.hits == 1  # second server rides the first's plan


class TestExecution:
    def test_step_requires_queries(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0))
        with pytest.raises(StreamError):
            server.step()

    def test_step_returns_result_per_query(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0))
        server.register("q1", tiny_tree(0.4))
        server.register("q2", tiny_tree(0.6))
        results = server.step()
        assert set(results) == {"q1", "q2"}
        for result in results.values():
            assert isinstance(result.value, bool)
            assert result.cost >= 0.0

    def test_deregistered_query_stops_appearing(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0))
        server.register("q1", tiny_tree(0.4))
        server.register("q2", tiny_tree(0.6))
        server.step()
        server.deregister("q1")
        assert set(server.step()) == {"q2"}

    def test_large_window_grows_device_time(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0), warmup=4)
        server.register("wide", DnfTree([[Leaf("A", 50, 0.5)]], {"A": 1.0}))
        results = server.step()  # would raise if the cache were too young
        assert "wide" in results

    def test_run_batch_accumulates_metrics(self):
        server = QueryServer(tiny_registry(), BernoulliOracle(seed=0))
        server.register("q1", tiny_tree(0.4))
        report = server.run_batch(10)
        assert report.rounds == 10
        assert report.total_cost == pytest.approx(sum(report.round_costs))
        assert server.metrics.rounds == 10
        assert server.metrics.total_cost == pytest.approx(report.total_cost)
        assert len(server.metrics.round_costs) == 10
        assert server.metrics.p95_round_cost >= server.metrics.p50_round_cost
        assert server.metrics.query_stats("q1").rounds == 10
        assert "q1" in server.metrics.summary()

    def test_blocked_mode_matches_query_set(self):
        server = QueryServer(
            tiny_registry(), BernoulliOracle(seed=0), shared_plan=False
        )
        server.register("q1", tiny_tree(0.4))
        server.register("q2", tiny_tree(0.6))
        results = server.run_batch(5)
        assert set(results.per_query_cost) == {"q1", "q2"}


class TestReRegistration:
    """Regression: re-registering a name must never reuse stale compiled state."""

    def a_tree(self) -> DnfTree:
        return DnfTree([[Leaf("A", 1, 1.0)]], {"A": 1.0})

    def b_tree(self) -> DnfTree:
        return DnfTree([[Leaf("A", 1, 1.0), Leaf("B", 2, 1.0)]], {"A": 1.0, "B": 2.0})

    def test_replace_swaps_tree_and_vector_executor(self):
        from repro.engine import PrecomputedOracle

        server = QueryServer(tiny_registry())
        server.register("q", self.a_tree(), oracle=PrecomputedOracle([True]))
        first = server.run_batch(2, engine="vectorized")
        assert server._vector_executors  # executor compiled for the 1-leaf tree
        server.register(
            "q", self.b_tree(), oracle=PrecomputedOracle([False, True]), replace=True
        )
        assert server.query("q").tree.size == 2
        report = server.run_batch(2, engine="vectorized")
        # The new tree is AND(A=False, B) -> always FALSE; a stale 1-leaf
        # executor would have replayed the old always-TRUE query.
        assert report.per_query_true_rate["q"] == 0.0
        assert first.per_query_true_rate["q"] == 1.0
        assert report.probes == 2  # only the FALSE leaf is probed per round

    def test_replace_false_still_rejects(self):
        server = QueryServer(tiny_registry())
        server.register("q", self.a_tree())
        with pytest.raises(AdmissionError):
            server.register("q", self.b_tree())
        assert server.query("q").tree.size == 1  # original untouched

    def test_deregister_then_register_drops_executor(self):
        from repro.engine import PrecomputedOracle

        server = QueryServer(tiny_registry())
        server.register("q", self.a_tree(), oracle=PrecomputedOracle([True]))
        server.run_batch(1, engine="vectorized")
        server.deregister("q")
        assert "q" not in server._vector_executors
        server.register("q", self.b_tree(), oracle=PrecomputedOracle([False, True]))
        report = server.run_batch(1, engine="vectorized")
        assert report.per_query_true_rate["q"] == 0.0

    def test_replace_respects_capacity_of_remaining_population(self):
        server = QueryServer(tiny_registry(), max_queries=1)
        server.register("q", self.a_tree())
        replaced = server.register("q", self.b_tree(), replace=True)
        assert replaced.tree.size == 2  # swap fits: the old slot was freed


class TestAcceptanceCriteria:
    """The issue's headline numbers: 100 mostly-isomorphic queries."""

    @pytest.fixture(scope="class")
    def served(self):
        registry = synthetic_registry(8, seed=11)
        population = synthetic_population(100, registry, n_templates=10, seed=12)
        server = QueryServer(registry, BernoulliOracle(seed=13))
        for name, tree in population:
            server.register(name, tree)
        report = server.run_batch(25)
        isolated = run_isolated(registry, population, 25)
        return server, report, isolated

    def test_plan_cache_hit_rate_above_80_percent(self, served):
        server, report, _ = served
        assert len(server) == 100
        assert report.plan_cache_hit_rate > 0.8

    def test_total_cost_strictly_below_isolated_sum(self, served):
        _, report, isolated = served
        assert report.total_cost < sum(isolated.values())

    def test_sharing_is_observable_in_metrics(self, served):
        server, report, _ = served
        assert report.items_saved > 0
        assert report.free_probes > 0
        assert server.metrics.sharing_rate > 0.5
