"""QueryServer.run_batch(engine="vectorized") — parity with the scalar loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tree import DnfTree
from repro.engine import BernoulliOracle, PrecomputedOracle
from repro.errors import StreamError
from repro.predicates import Predicate
from repro.engine.executor import PredicateOracle
from repro.service import QueryServer, synthetic_population, synthetic_registry


def deterministic_population(n_queries: int, seed: int):
    """A synthetic population with every leaf probability forced to 0 or 1.

    With deterministic outcomes both engines evaluate exactly the same
    probes, so every metric must agree exactly.
    """
    registry = synthetic_registry(6, seed=3)
    population = synthetic_population(n_queries, registry, n_templates=5, seed=4)
    rng = np.random.default_rng(seed)
    forced = []
    for name, tree in population:
        groups = [
            [leaf.with_prob(float(rng.integers(0, 2))) for leaf in group]
            for group in tree.ands
        ]
        forced.append((name, DnfTree(groups, tree.costs)))
    return forced


def run_engine(population, engine: str, *, shared_plan: bool = True, rounds: int = 25):
    registry = synthetic_registry(6, seed=3)
    server = QueryServer(registry, BernoulliOracle(seed=0), shared_plan=shared_plan)
    for name, tree in population:
        server.register(name, tree)
    report = server.run_batch(rounds, engine=engine)
    return server, report


class TestDeterministicParity:
    @pytest.mark.parametrize("shared_plan", [True, False])
    def test_reports_and_metrics_identical(self, shared_plan):
        population = deterministic_population(30, seed=9)
        scalar_server, scalar = run_engine(population, "scalar", shared_plan=shared_plan)
        vector_server, vector = run_engine(
            population, "vectorized", shared_plan=shared_plan
        )
        assert scalar.round_costs == vector.round_costs
        assert scalar.per_query_cost == vector.per_query_cost
        assert scalar.per_query_true_rate == vector.per_query_true_rate
        assert scalar.probes == vector.probes
        assert scalar.free_probes == vector.free_probes
        assert scalar.items_fetched == vector.items_fetched
        assert scalar.items_saved == vector.items_saved
        assert scalar.plan_cache_hit_rate == vector.plan_cache_hit_rate
        for name in scalar_server.registered:
            a = scalar_server.metrics.query_stats(name)
            b = vector_server.metrics.query_stats(name)
            assert (a.rounds, a.cost, a.probes, a.true_count) == (
                b.rounds,
                b.cost,
                b.probes,
                b.true_count,
            )
            assert (a.items_fetched, a.items_saved) == (b.items_fetched, b.items_saved)

    def test_precomputed_oracles_replay_identically(self):
        registry = synthetic_registry(4, seed=1)
        population = synthetic_population(8, registry, n_templates=2, seed=2)

        def build(engine):
            reg = synthetic_registry(4, seed=1)
            server = QueryServer(reg, BernoulliOracle(seed=0))
            for ordinal, (name, tree) in enumerate(population):
                fixed = [bool((ordinal + g) % 2) for g in range(tree.size)]
                server.register(name, tree, oracle=PrecomputedOracle(fixed))
            return server.run_batch(10, engine=engine)

        scalar, vector = build("scalar"), build("vectorized")
        assert scalar.round_costs == vector.round_costs
        assert scalar.per_query_true_rate == vector.per_query_true_rate


class TestStochasticBehaviour:
    def test_statistics_close_under_bernoulli(self):
        registry = synthetic_registry(8, seed=7)
        population = synthetic_population(60, registry, seed=8)

        def run(engine, seed):
            reg = synthetic_registry(8, seed=7)
            server = QueryServer(reg, BernoulliOracle(seed=seed))
            for name, tree in population:
                server.register(name, tree)
            return server.run_batch(40, engine=engine)

        scalar = run("scalar", 1)
        vector = run("vectorized", 1)
        # Different rng consumption order, same distribution: totals agree
        # loosely and structural counts stay in the same regime.
        assert vector.total_cost == pytest.approx(scalar.total_cost, rel=0.25)
        assert vector.rounds == scalar.rounds
        assert vector.probes > 0 and vector.free_probes > 0
        assert vector.items_saved > 0

    def test_rounds_advance_device_time(self):
        population = deterministic_population(5, seed=2)
        server, _ = run_engine(population, "vectorized", rounds=15)
        assert server.metrics.rounds == 15


class TestValidation:
    def test_unknown_engine(self):
        population = deterministic_population(3, seed=1)
        registry = synthetic_registry(6, seed=3)
        server = QueryServer(registry, BernoulliOracle(seed=0))
        for name, tree in population:
            server.register(name, tree)
        with pytest.raises(StreamError):
            server.run_batch(5, engine="warp")

    def test_empty_server(self):
        registry = synthetic_registry(3, seed=0)
        server = QueryServer(registry, BernoulliOracle(seed=0))
        with pytest.raises(StreamError):
            server.run_batch(5, engine="vectorized")

    def test_partial_precomputed_oracle_clear_error(self):
        registry = synthetic_registry(3, seed=0)
        population = synthetic_population(2, registry, n_templates=1, seed=1)
        server = QueryServer(registry, BernoulliOracle(seed=0))
        name, tree = population[0]
        assert tree.size >= 2
        server.register(name, tree, oracle=PrecomputedOracle({0: True}))
        with pytest.raises(StreamError, match="precomputed oracle"):
            server.run_batch(3, engine="vectorized")

    def test_predicate_oracle_stays_scalar(self):
        registry = synthetic_registry(3, seed=0)
        population = synthetic_population(2, registry, n_templates=1, seed=1)
        server = QueryServer(registry, BernoulliOracle(seed=0))
        # A Bernoulli query registered first must not have its rng consumed
        # by a vectorized attempt that fails on a later predicate query.
        bern_name, bern_tree = population[1]
        server.register(bern_name, bern_tree)
        name, tree = population[0]
        predicates = {
            g: Predicate(leaf.stream, "AVG", leaf.items, ">", 0.0)
            for g, leaf in enumerate(tree.leaves)
        }
        server.register(name, tree, oracle=PredicateOracle(predicates))
        state_before = server.default_oracle.rng.bit_generator.state
        with pytest.raises(StreamError, match="scalar"):
            server.run_batch(3, engine="vectorized")
        assert server.default_oracle.rng.bit_generator.state == state_before
