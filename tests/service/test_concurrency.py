"""QueryServer thread-safety: concurrent admission, stepping and batching.

The serving lock's contract: any interleaving of register/deregister/step/
run_batch across threads is equivalent to *some* serial interleaving — no
torn population views, no lost metrics, no crashes. The hammer tests drive
exactly the access pattern the cluster layer and background admission
threads produce.
"""

from __future__ import annotations

import threading

import pytest

from repro import DnfTree, Leaf, QueryServer
from repro.engine import BernoulliOracle
from repro.errors import AdmissionError, StreamError
from repro.streams.registry import StreamRegistry
from repro.streams.sources import GaussianSource
from repro.streams.stream import StreamSpec

N_STREAMS = 4


def registry() -> StreamRegistry:
    reg = StreamRegistry()
    for k in range(N_STREAMS):
        reg.add(StreamSpec(f"S{k}", 1.0 + k), GaussianSource(seed=k))
    return reg


def tree_for(i: int) -> DnfTree:
    stream = f"S{i % N_STREAMS}"
    other = f"S{(i + 1) % N_STREAMS}"
    return DnfTree(
        [[Leaf(stream, 1 + i % 3, 0.4)], [Leaf(other, 2, 0.6)]],
        {stream: 1.0 + i % N_STREAMS, other: 1.0 + (i + 1) % N_STREAMS},
    )


class TestConcurrentAdmission:
    def test_register_hammer_under_stepping(self):
        """Many admission threads racing one stepping thread."""
        server = QueryServer(registry(), BernoulliOracle(seed=0))
        server.register("anchor", tree_for(0))  # steps never see an empty server
        n_threads, per_thread = 8, 12
        errors: list[BaseException] = []
        barrier = threading.Barrier(n_threads + 1)

        def admit(tid: int) -> None:
            barrier.wait()
            try:
                for i in range(per_thread):
                    server.register(f"t{tid}q{i}", tree_for(tid * per_thread + i))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def drive() -> None:
            barrier.wait()
            try:
                for _ in range(30):
                    server.step()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=admit, args=(tid,)) for tid in range(n_threads)
        ]
        stepper = threading.Thread(target=drive)
        for thread in threads:
            thread.start()
        stepper.start()
        for thread in threads:
            thread.join()
        stepper.join()

        assert errors == []
        assert len(server) == 1 + n_threads * per_thread
        assert server.metrics.registrations == 1 + n_threads * per_thread
        assert server.metrics.rounds == 30
        # Every step evaluated the whole population it observed: each round's
        # results covered >= 1 query, and the final population steps cleanly.
        results = server.step()
        assert set(results) == set(server.registered)

    def test_register_deregister_churn_under_stepping(self):
        server = QueryServer(registry(), BernoulliOracle(seed=1))
        for i in range(6):
            server.register(f"stable{i}", tree_for(i))
        errors: list[BaseException] = []
        stop = threading.Event()

        def churn() -> None:
            try:
                for i in range(40):
                    server.register(f"churn{i}", tree_for(i + 7))
                    server.deregister(f"churn{i}")
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def drive() -> None:
            try:
                while not stop.is_set():
                    server.step()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        churner = threading.Thread(target=churn)
        stepper = threading.Thread(target=drive)
        churner.start()
        stepper.start()
        churner.join()
        stepper.join()

        assert errors == []
        assert len(server) == 6
        assert server.metrics.deregistrations == 40

    def test_duplicate_racing_registrations_single_winner(self):
        """N threads racing the same name: exactly one wins, rest get the
        documented AdmissionError — never corruption."""
        server = QueryServer(registry(), BernoulliOracle(seed=2))
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        outcomes: list[str] = []
        lock = threading.Lock()

        def race() -> None:
            barrier.wait()
            try:
                server.register("contested", tree_for(3))
                with lock:
                    outcomes.append("won")
            except AdmissionError:
                with lock:
                    outcomes.append("lost")

        threads = [threading.Thread(target=race) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert outcomes.count("won") == 1
        assert outcomes.count("lost") == n_threads - 1
        assert len(server) == 1

    def test_concurrent_batches_serialize(self):
        """Two run_batch calls interleave at batch granularity: every round
        lands in metrics exactly once."""
        server = QueryServer(registry(), BernoulliOracle(seed=3))
        server.register("q", tree_for(1))
        errors: list[BaseException] = []

        def batch() -> None:
            try:
                report = server.run_batch(10)
                assert report.rounds == 10
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=batch) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert server.metrics.rounds == 30

    def test_step_on_empty_server_still_raises(self):
        server = QueryServer(registry())
        with pytest.raises(StreamError):
            server.step()
