"""Canonical query identities: isomorphism, dedup, schedule expansion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AndTree, DnfTree, Leaf
from repro.core.cost import dnf_schedule_cost
from repro.core.schedule import validate_schedule
from repro.errors import InvalidTreeError
from repro.generators.random_trees import random_dnf_tree
from repro.lang.parser import parse_query
from repro.service import canonical_key, canonicalize, shuffled_isomorph


def tree_abc() -> DnfTree:
    return DnfTree(
        [
            [Leaf("A", 2, 0.3), Leaf("B", 1, 0.5)],
            [Leaf("C", 3, 0.2)],
        ],
        costs={"A": 1.0, "B": 2.0, "C": 0.5},
    )


class TestCanonicalKey:
    def test_key_is_stable(self):
        assert canonical_key(tree_abc()) == canonical_key(tree_abc())

    def test_isomorphic_trees_hash_equal(self):
        tree = tree_abc()
        reordered = DnfTree(
            [
                [Leaf("C", 3, 0.2)],
                [Leaf("B", 1, 0.5), Leaf("A", 2, 0.3)],
            ],
            costs=tree.costs,
        )
        assert canonical_key(tree) == canonical_key(reordered)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_shuffles_hash_equal(self, seed):
        rng = np.random.default_rng(seed)
        tree = random_dnf_tree(rng, n_ands=3, leaves_per_and=3, rho=2.0)
        assert canonical_key(shuffled_isomorph(tree, rng)) == canonical_key(tree)

    def test_distinct_probability_hashes_differ(self):
        tree = tree_abc()
        other = DnfTree(
            [[Leaf("A", 2, 0.31), Leaf("B", 1, 0.5)], [Leaf("C", 3, 0.2)]],
            costs=tree.costs,
        )
        assert canonical_key(tree) != canonical_key(other)

    def test_distinct_items_hashes_differ(self):
        tree = tree_abc()
        other = DnfTree(
            [[Leaf("A", 3, 0.3), Leaf("B", 1, 0.5)], [Leaf("C", 3, 0.2)]],
            costs=tree.costs,
        )
        assert canonical_key(tree) != canonical_key(other)

    def test_distinct_costs_hash_differ(self):
        tree = tree_abc()
        other = DnfTree([list(g) for g in tree.ands], {"A": 9.0, "B": 2.0, "C": 0.5})
        assert canonical_key(tree) != canonical_key(other)

    def test_distinct_grouping_hashes_differ(self):
        one_and = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]])
        two_ands = DnfTree([[Leaf("A", 1, 0.5)], [Leaf("B", 1, 0.5)]])
        assert canonical_key(one_and) != canonical_key(two_ands)

    def test_and_tree_matches_its_dnf_view(self):
        tree = AndTree([Leaf("A", 1, 0.75), Leaf("A", 2, 0.1), Leaf("B", 1, 0.5)])
        assert canonical_key(tree) == canonical_key(tree.to_dnf())

    def test_labels_do_not_affect_key(self):
        bare = DnfTree([[Leaf("A", 1, 0.5)]])
        labeled = DnfTree([[Leaf("A", 1, 0.5, "AVG(A,1) < 3")]])
        assert canonical_key(bare) == canonical_key(labeled)

    def test_query_tree_accepted_when_dnf_shaped(self):
        parsed = parse_query("(A[2] p=0.3 AND B[1] p=0.5) OR C[3] p=0.2")
        assert canonical_key(parsed.tree) == canonical_key(parsed.as_dnf())

    def test_non_dnf_query_tree_rejected(self):
        parsed = parse_query("A[1] p=0.5 AND (B[1] p=0.5 OR C[1] p=0.5)")
        assert not parsed.tree.is_dnf()
        with pytest.raises(InvalidTreeError):
            canonicalize(parsed.tree)


class TestDeduplication:
    def test_identical_leaves_fold_with_product_probability(self):
        tree = AndTree([Leaf("A", 2, 0.5), Leaf("A", 2, 0.5), Leaf("B", 1, 0.9)])
        form = canonicalize(tree)
        assert form.deduped
        assert form.tree.size == 2
        folded = [leaf for leaf in form.tree.leaves if leaf.stream == "A"][0]
        assert folded.prob == pytest.approx(0.25)
        assert folded.items == 2

    def test_duplicate_count_distinguishes_keys(self):
        single = AndTree([Leaf("A", 2, 0.5)])
        double = AndTree([Leaf("A", 2, 0.5), Leaf("A", 2, 0.5)])
        assert canonical_key(single) != canonical_key(double)

    def test_near_duplicates_do_not_fold(self):
        tree = AndTree([Leaf("A", 2, 0.5), Leaf("A", 2, 0.6)])
        form = canonicalize(tree)
        assert not form.deduped
        assert form.tree.size == 2

    def test_folding_preserves_expected_cost(self):
        """AND of k identical leaves == one leaf with prob p**k, exactly."""
        tree = DnfTree(
            [[Leaf("A", 2, 0.5), Leaf("A", 2, 0.5), Leaf("B", 1, 0.9)]],
            costs={"A": 1.0, "B": 3.0},
        )
        form = canonicalize(tree)
        canon_schedule = tuple(range(form.tree.size))
        expanded = form.expand_schedule(canon_schedule)
        assert dnf_schedule_cost(form.tree, canon_schedule) == pytest.approx(
            dnf_schedule_cost(tree, expanded)
        )


class TestExpandSchedule:
    def test_round_trip_is_valid_permutation(self):
        tree = DnfTree(
            [
                [Leaf("A", 2, 0.5), Leaf("A", 2, 0.5)],
                [Leaf("B", 1, 0.4), Leaf("A", 1, 0.7)],
            ]
        )
        form = canonicalize(tree)
        for perm in [tuple(range(form.tree.size)), tuple(reversed(range(form.tree.size)))]:
            expanded = form.expand_schedule(perm)
            validate_schedule(tree, expanded)

    def test_duplicates_expand_adjacently(self):
        tree = AndTree([Leaf("A", 2, 0.5), Leaf("B", 1, 0.4), Leaf("A", 2, 0.5)])
        form = canonicalize(tree)
        expanded = form.expand_schedule(tuple(range(form.tree.size)))
        positions = [expanded.index(g) for g in (0, 2)]  # the two A[2] copies
        assert abs(positions[0] - positions[1]) == 1

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_random_trees_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        tree = random_dnf_tree(rng, n_ands=3, leaves_per_and=3, rho=1.5)
        form = canonicalize(tree)
        expanded = form.expand_schedule(
            tuple(int(i) for i in rng.permutation(form.tree.size))
        )
        validate_schedule(tree, expanded)
