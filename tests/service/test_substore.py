"""Hash-consed subtree store: identity, immutability, partial plan sharing.

Covers the substore itself (interning, weak reclamation, pickle re-intern,
canonicalization memo), the canonical-identity quantization fix, the plan
cache's indexed invalidate and clause tier, and the end-to-end invariant
that interning is semantically invisible (store-on and store-off servers
produce bit-identical keys, schedules and costs).
"""

from __future__ import annotations

import gc
import pickle
import threading
from collections import OrderedDict
from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DnfTree, Leaf
from repro.core.heuristics import get_scheduler
from repro.engine.executor import BernoulliOracle
from repro.errors import ReproError
from repro.service import (
    PlanCache,
    QueryServer,
    SubtreeStore,
    canonicalize,
    default_store,
    quantize_prob,
    shuffled_isomorph,
    synthetic_population,
    synthetic_registry,
)

COSTS = {"A": 1.0, "B": 2.0, "C": 0.5, "D": 1.5, "E": 0.8, "F": 2.5}

#: Four distinct AND clauses over the shared cost table. Trees below are
#: built from 2-clause *combinations*, so every whole-tree key is unique
#: while every clause recurs across trees — the partial-sharing regime.
CLAUSE_POOL = [
    [Leaf("A", 2, 0.3), Leaf("B", 1, 0.6)],
    [Leaf("C", 3, 0.2), Leaf("D", 1, 0.7)],
    [Leaf("E", 1, 0.4), Leaf("F", 2, 0.5)],
    [Leaf("A", 1, 0.8), Leaf("C", 2, 0.35)],
]


def clause_sharing_population() -> list[DnfTree]:
    trees = []
    for first, second in combinations(range(len(CLAUSE_POOL)), 2):
        groups = [list(CLAUSE_POOL[first]), list(CLAUSE_POOL[second])]
        used = {leaf.stream for group in groups for leaf in group}
        trees.append(DnfTree(groups, {s: COSTS[s] for s in used}))
    return trees


def make_tree(prob: float = 0.4) -> DnfTree:
    return DnfTree(
        [[Leaf("A", 2, prob), Leaf("B", 1, 0.5)], [Leaf("C", 1, 0.3)]],
        costs={"A": 1.0, "B": 2.0, "C": 0.5},
    )


@pytest.fixture
def store() -> SubtreeStore:
    return SubtreeStore()


@pytest.fixture
def scheduler():
    return get_scheduler("and-inc-c-over-p-dynamic")


class TestInterning:
    def test_leaf_identity(self, store):
        assert store.leaf("A", 2, 0.3) is store.leaf("A", 2, 0.3)
        assert store.leaf("A", 2, 0.3) is not store.leaf("A", 2, 0.31)

    def test_clause_identity(self, store):
        spec = (("A", 2, 0.3), ("B", 1, 0.6))
        costs = (("A", 1.0), ("B", 2.0))
        clause = store.clause(spec, costs)
        assert clause is store.clause(spec, costs)
        assert clause.leaves[0] is store.leaf("A", 2, 0.3)

    def test_isomorphs_intern_to_the_same_tree(self, store):
        tree = make_tree()
        form = store.canonicalize(tree)
        rng = np.random.default_rng(3)
        for _ in range(5):
            other = store.canonicalize(shuffled_isomorph(tree, rng))
            assert other.key == form.key
            assert other.interned is form.interned

    def test_shared_clauses_intern_once_across_trees(self, store):
        forms = [store.canonicalize(tree) for tree in clause_sharing_population()]
        keys = {form.key for form in forms}
        assert len(keys) == len(forms)  # zero whole-tree isomorphs
        distinct_clauses = {
            clause for form in forms for clause in form.interned.clauses
        }
        assert len(distinct_clauses) == len(CLAUSE_POOL)

    def test_immutability_is_enforced(self, store):
        form = store.canonicalize(make_tree())
        leaf = form.interned.clauses[0].leaves[0]
        for node in (leaf, form.interned.clauses[0], form.interned):
            with pytest.raises(AttributeError, match="interned and immutable"):
                node.key = "forged"  # type: ignore[union-attr]
            with pytest.raises(AttributeError, match="interned and immutable"):
                del node.costs  # type: ignore[union-attr]

    def test_interned_nodes_have_no_dict(self, store):
        assert not hasattr(store.leaf("A", 1, 0.5), "__dict__")

    def test_unreferenced_nodes_are_reclaimed(self, store):
        node = store.leaf("A", 2, 0.3)
        assert store.stats()["leaves"] == 1.0
        del node
        gc.collect()
        assert store.stats()["leaves"] == 0.0

    def test_memo_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            SubtreeStore(memo_capacity=0)


class TestPickleReintern:
    def test_nodes_reintern_into_the_default_store(self, store):
        form = store.canonicalize(make_tree())
        copy = pickle.loads(pickle.dumps(form.interned))
        expected = default_store().canonicalize(make_tree()).interned
        assert copy is expected
        assert copy is not form.interned  # distinct stores, distinct identity

    def test_canonical_form_round_trips_with_identity(self):
        form = default_store().canonicalize(make_tree())
        copy = pickle.loads(pickle.dumps(form))
        assert copy.key == form.key
        assert copy.interned is form.interned

    def test_store_itself_refuses_to_pickle(self, store):
        with pytest.raises(TypeError, match="process-local"):
            pickle.dumps(store)

    def test_default_store_is_a_singleton(self):
        assert default_store() is default_store()


class TestCanonicalizeMemo:
    def test_repeat_admissions_hit_the_memo(self, store):
        tree = make_tree()
        first = store.canonicalize(tree)
        second = store.canonicalize(make_tree())  # byte-identical rebuild
        assert second is first
        stats = store.stats()
        assert stats["memo_hits"] == 1.0
        assert stats["memo_misses"] == 1.0

    def test_isomorphs_miss_the_memo_but_share_identity(self, store):
        tree = make_tree()
        form = store.canonicalize(tree)
        other = store.canonicalize(shuffled_isomorph(tree, np.random.default_rng(5)))
        if other is not form:  # the shuffle changed syntactic order
            assert store.stats()["memo_misses"] == 2.0
        assert other.interned is form.interned

    def test_memo_is_bounded(self):
        store = SubtreeStore(memo_capacity=4)
        for i in range(10):
            store.canonicalize(make_tree(0.05 + i * 0.07))
        assert store.stats()["memo_size"] == 4.0

    def test_clear_memo_keeps_interned_identity(self, store):
        form = store.canonicalize(make_tree())
        store.clear_memo()
        again = store.canonicalize(make_tree())
        assert again is not form
        assert again.interned is form.interned


class TestQuantizedIdentity:
    """The exact-float ``==`` fold/key bug: sub-quantum noise must not split
    canonical identity, and genuinely different probabilities must."""

    def test_quantize_prob_rounds_at_twelve_decimals(self):
        assert quantize_prob(0.3 + 1e-15) == quantize_prob(0.3)
        assert quantize_prob(0.3 + 1e-9) != quantize_prob(0.3)

    def test_noise_perturbed_isomorphs_share_a_key(self, store):
        tree = make_tree()
        noisy = DnfTree(
            [
                [Leaf("C", 1, 0.3 + 1e-15)],
                [Leaf("B", 1, 0.5), Leaf("A", 2, 0.4 + 2e-16)],
            ],
            costs=tree.costs,
        )
        exact = store.canonicalize(tree)
        perturbed = store.canonicalize(noisy)
        assert perturbed.key == exact.key
        assert perturbed.interned is exact.interned

    def test_duplicate_leaves_fold_despite_noise(self):
        base, noisy = 0.5, 0.5 + 1e-14
        tree = DnfTree(
            [[Leaf("A", 2, base), Leaf("A", 2, noisy), Leaf("B", 1, 0.9)]],
            costs={"A": 1.0, "B": 3.0},
        )
        form = canonicalize(tree)
        assert form.deduped
        assert form.tree.size == 2

    def test_distinct_probabilities_still_split_keys(self, store):
        assert (
            store.canonicalize(make_tree(0.4)).key
            != store.canonicalize(make_tree(0.41)).key
        )


class _NoIteration(OrderedDict):
    """An OrderedDict that forbids whole-dict scans — the invalidate
    regression guard: the old implementation collected matching keys with a
    full ``for key in self._plans`` sweep under the lock."""

    def __iter__(self):
        raise AssertionError("invalidate must not scan the whole plan cache")

    def keys(self):
        raise AssertionError("invalidate must not scan the whole plan cache")


class TestIndexedInvalidate:
    def test_invalidate_does_not_scan_the_cache(self, scheduler):
        cache = PlanCache(capacity=64)
        forms = [canonicalize(make_tree(0.1 + i * 0.08)) for i in range(8)]
        for form in forms:
            cache.plan(form, scheduler)
        cache._plans = _NoIteration(cache._plans.items())
        assert cache.invalidate(forms[3].key) == 1
        assert cache.invalidate(forms[3].key) == 0  # already gone, still no scan

    def test_index_survives_eviction(self, scheduler):
        cache = PlanCache(capacity=2)
        forms = [canonicalize(make_tree(p)) for p in (0.2, 0.4, 0.6)]
        for form in forms:
            cache.plan(form, scheduler)
        # forms[0] was evicted; its index entry must be gone too.
        assert cache.invalidate(forms[0].key) == 0
        assert cache.invalidate(forms[1].key) == 1
        assert cache.invalidate(forms[2].key) == 1

    def test_index_tracks_scheduler_variants(self, scheduler):
        cache = PlanCache(capacity=8)
        form = canonicalize(make_tree())
        cache.plan(form, scheduler)
        cache.plan(form, get_scheduler("leaf-inc-c"))
        assert cache.invalidate(form.key) == 2
        assert len(cache) == 0

    def test_concurrent_invalidate_keeps_index_consistent(self, scheduler):
        cache = PlanCache(capacity=128)
        forms = [canonicalize(make_tree(0.05 + i * 0.06)) for i in range(12)]
        barrier = threading.Barrier(6)
        errors: list[Exception] = []

        def churn(thread_index: int) -> None:
            try:
                barrier.wait()
                for i in range(60):
                    form = forms[(thread_index + i) % len(forms)]
                    if i % 5 == 4:
                        cache.invalidate(form.key)
                    else:
                        cache.plan(form, scheduler)
            except Exception as exc:  # pragma: no cover - only on regression
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(t,)) for t in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        indexed = {
            (key, name)
            for key, names in cache._by_key.items()
            for name in names
        }
        assert indexed == set(cache._plans)


class TestClauseSharing:
    """The tentpole's acceptance invariant at the plan-cache level: a
    population with shared AND clauses but zero whole-tree isomorphs earns a
    strictly positive subtree hit rate at zero whole-tree hit rate, with
    schedules bit-identical to the store-off path."""

    def test_subtree_hits_exceed_whole_tree_hits(self, store, scheduler):
        cache = PlanCache(capacity=64)
        for tree in clause_sharing_population():
            cache.plan(store.canonicalize(tree), scheduler)
        stats = cache.stats()
        assert stats["hit_rate"] == 0.0
        assert stats["subtree_hit_rate"] > 0.0
        assert stats["clause_misses"] == float(len(CLAUSE_POOL))
        n_requests = 2 * len(clause_sharing_population())
        assert stats["clause_hits"] == float(n_requests - len(CLAUSE_POOL))

    def test_clause_reuse_is_bit_identical(self, store, scheduler):
        cached = PlanCache(capacity=64)
        plain = PlanCache(capacity=64)
        for tree in clause_sharing_population():
            with_store = cached.plan(store.canonicalize(tree), scheduler)
            without = plain.plan(canonicalize(tree), scheduler)
            assert with_store.schedule == without.schedule
            assert with_store.cost == without.cost  # exact, not approx
            assert with_store.schedule == tuple(
                scheduler.schedule(canonicalize(tree).tree)
            )
        assert plain.stats()["clause_hits"] == 0.0  # no interned identity

    def test_clause_plans_survive_invalidate(self, store, scheduler):
        cache = PlanCache(capacity=64)
        form = store.canonicalize(clause_sharing_population()[0])
        cache.plan(form, scheduler)
        cache.invalidate(form.key)
        assert cache.stats()["clause_size"] > 0.0  # pure structure, never stale


class TestStoreIsSemanticallyInvisible:
    """Differential: interning must never change an observable outcome."""

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_server_outcomes_identical_store_on_and_off(self, seed):
        registry = synthetic_registry(6, seed=seed)
        population = synthetic_population(14, registry, seed=seed + 1)
        outcomes = {}
        for flag in (True, False):
            server = QueryServer(
                registry,
                plan_cache=PlanCache(capacity=64),
                substore=SubtreeStore() if flag else False,
            )
            for index, (name, tree) in enumerate(population):
                server.register(
                    name, tree, oracle=BernoulliOracle(seed=seed * 131 + index)
                )
            report = server.run_batch(6)
            outcomes[flag] = (
                tuple(server.query(name).schedule for name, _ in population),
                report.total_cost,
            )
        assert outcomes[True] == outcomes[False]

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_store_canonicalize_matches_plain(self, seed):
        registry = synthetic_registry(5, seed=seed)
        store = SubtreeStore()
        for _, tree in synthetic_population(10, registry, seed=seed + 1):
            memoized = store.canonicalize(tree)
            plain = canonicalize(tree)
            assert memoized.key == plain.key
            assert memoized.tree == plain.tree
            assert memoized.leaf_map == plain.leaf_map


class TestStreamWeights:
    def test_matches_unmemoized_vector(self, store):
        from repro.cluster.partition import stream_weight_vector

        for tree in clause_sharing_population():
            assert store.stream_weights(tree, COSTS) == stream_weight_vector(
                tree, COSTS
            )

    def test_memo_returns_independent_copies(self, store):
        tree = clause_sharing_population()[0]
        first = store.stream_weights(tree, COSTS)
        first["A"] = -1.0
        assert store.stream_weights(tree, COSTS) != first
