"""ServiceMetrics ledger: percentile edge cases and histogram routing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.metrics import ROUND_COST_WINDOW, ServiceMetrics, percentile

costs = st.floats(min_value=1e-6, max_value=1e4, allow_nan=False)


class TestPercentile:
    def test_empty_window_is_zero_not_crash(self):
        # Regression: used to IndexError on an empty series.
        for q in (0.0, 50.0, 99.0, 100.0):
            assert percentile([], q) == 0.0

    def test_singleton_window_returns_its_element(self):
        for q in (0.0, 50.0, 99.0, 100.0):
            assert percentile([3.5], q) == 3.5

    def test_out_of_range_q_rejected_even_on_empty_input(self):
        # A bad q is a caller bug regardless of the data.
        for bad_q in (-0.1, 100.1):
            with pytest.raises(ValueError):
                percentile([], bad_q)
            with pytest.raises(ValueError):
                percentile([1.0], bad_q)

    def test_known_ranks(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 50.0) == 3.0
        assert percentile(values, 100.0) == 5.0

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(costs, min_size=1, max_size=50), q=st.floats(0.0, 100.0))
    def test_result_is_an_order_statistic_within_bounds(self, values, q):
        result = percentile(values, q)
        assert result in values
        assert min(values) <= result <= max(values)

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(costs, min_size=2, max_size=50))
    def test_monotone_in_q(self, values):
        qs = [0.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0]
        results = [percentile(values, q) for q in qs]
        assert results == sorted(results)


class TestServiceMetricsPercentiles:
    def test_empty_metrics_report_zero_percentiles(self):
        metrics = ServiceMetrics()
        assert metrics.p50_round_cost == 0.0
        assert metrics.p95_round_cost == 0.0
        assert metrics.p99_round_cost == 0.0
        assert "p99" in metrics.summary()

    def test_singleton_round(self):
        metrics = ServiceMetrics()
        metrics.record_round(2.5)
        assert metrics.p50_round_cost == pytest.approx(2.5)
        assert metrics.p99_round_cost == pytest.approx(2.5)

    def test_percentiles_route_through_histogram(self):
        metrics = ServiceMetrics()
        for cost in (1.0, 2.0, 3.0, 100.0):
            metrics.record_round(cost)
        hist = metrics.round_cost_histogram()
        assert metrics.p50_round_cost == hist.percentile(50.0)
        assert metrics.p95_round_cost == hist.percentile(95.0)
        assert metrics.p99_round_cost == hist.percentile(99.0)
        assert hist.count == 4

    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(costs, min_size=1, max_size=60))
    def test_percentiles_bounded_by_window_extremes(self, values):
        metrics = ServiceMetrics()
        for cost in values:
            metrics.record_round(cost)
        for p in (
            metrics.p50_round_cost,
            metrics.p95_round_cost,
            metrics.p99_round_cost,
        ):
            assert min(values) <= p <= max(values) or p == pytest.approx(min(values))
        assert metrics.p50_round_cost <= metrics.p99_round_cost + 1e-12

    def test_window_truncates_but_lifetime_aggregates_do_not(self):
        metrics = ServiceMetrics()
        total = ROUND_COST_WINDOW + 100
        for i in range(total):
            metrics.record_round(float(i))
        assert metrics.rounds == total
        assert metrics.total_cost == pytest.approx(sum(range(total)))
        assert len(metrics.round_costs) == ROUND_COST_WINDOW
        # The oldest 100 rounds fell out of the percentile scope.
        assert metrics.round_costs[0] == 100.0
        assert metrics.p50_round_cost >= 100.0
