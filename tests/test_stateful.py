"""Stateful property tests (hypothesis RuleBasedStateMachine).

Two core mutable structures are driven through random operation sequences
and compared, after every step, against brutally simple reference models:

* :class:`~repro.streams.cache.DataItemCache` vs a dict-of-fetched-taus
  model (charging, caching, advancing, evicting);
* :class:`~repro.core.cost.DnfPrefixCost` vs recomputing the prefix cost
  from scratch with a fresh evaluator (push/undo consistency).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from repro.core.cost import DnfPrefixCost, dnf_schedule_cost
from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.streams.cache import DataItemCache
from repro.streams.sources import UniformSource

STREAMS = ("A", "B")
COSTS = {"A": 1.0, "B": 2.0}
START_NOW = 8
MAX_WINDOW = 5


class CacheMachine(RuleBasedStateMachine):
    """DataItemCache vs an explicit (stream -> set of taus) model."""

    def __init__(self) -> None:
        super().__init__()
        self.cache = DataItemCache(
            {name: UniformSource(seed=hash(name) % 2**31) for name in STREAMS},
            COSTS,
            now=START_NOW,
        )
        self.model: dict[str, set[int]] = {name: set() for name in STREAMS}
        self.now = START_NOW
        self.charged = 0.0

    @rule(stream=st.sampled_from(STREAMS), count=st.integers(1, MAX_WINDOW))
    def fetch(self, stream: str, count: int) -> None:
        result = self.cache.fetch_window(stream, count)
        window = set(range(self.now - count, self.now))
        missing = window - self.model[stream]
        assert result.fetched_items == len(missing)
        assert result.cost == pytest.approx(len(missing) * COSTS[stream])
        assert len(result.values) == count
        self.model[stream] |= window
        self.charged += result.cost

    @rule(steps=st.integers(1, 3), evict=st.booleans())
    def advance(self, steps: int, evict: bool) -> None:
        windows = {name: MAX_WINDOW for name in STREAMS} if evict else None
        self.cache.advance(steps, max_windows=windows)
        self.now += steps
        if evict:
            horizon = self.now - MAX_WINDOW
            for name in STREAMS:
                self.model[name] = {tau for tau in self.model[name] if tau >= horizon}

    @rule()
    def clear(self) -> None:
        self.cache.clear()
        for name in STREAMS:
            self.model[name].clear()

    @invariant()
    def charges_match(self) -> None:
        assert self.cache.charged == pytest.approx(self.charged)

    @invariant()
    def contiguous_run_matches_model(self) -> None:
        for name in STREAMS:
            run = 0
            tau = self.now - 1
            while tau in self.model[name]:
                run += 1
                tau -= 1
            assert self.cache.items_cached(name) == run


def _stateful_tree() -> DnfTree:
    rng = np.random.default_rng(20240611)
    groups = []
    for _ in range(3):
        groups.append(
            [
                Leaf(STREAMS[int(rng.integers(0, 2))], int(rng.integers(1, 4)), float(rng.random()))
                for _ in range(int(rng.integers(1, 4)))
            ]
        )
    return DnfTree(groups, COSTS)


class PrefixCostMachine(RuleBasedStateMachine):
    """DnfPrefixCost under random push/undo vs a from-scratch recompute."""

    def __init__(self) -> None:
        super().__init__()
        self.tree = _stateful_tree()
        self.state = DnfPrefixCost(self.tree)
        self.stack: list[tuple[int, object]] = []
        self.available = list(range(self.tree.size))

    @precondition(lambda self: self.available)
    @rule(data=st.data())
    def push(self, data) -> None:
        g = data.draw(st.sampled_from(self.available))
        self.available.remove(g)
        token = self.state.push(g)
        assert token.contribution >= -1e-12
        self.stack.append((g, token))

    @precondition(lambda self: self.stack)
    @rule()
    def undo(self) -> None:
        g, token = self.stack.pop()
        self.state.undo(token)
        self.available.append(g)

    @invariant()
    def total_matches_fresh_recompute(self) -> None:
        prefix = [g for g, _ in self.stack]
        fresh = DnfPrefixCost(self.tree)
        for g in prefix:
            fresh.push(g)
        assert self.state.total == pytest.approx(fresh.total, rel=1e-9, abs=1e-12)
        assert self.state.pushed == len(prefix)

    @invariant()
    def full_schedule_matches_prop2(self) -> None:
        if not self.available:
            schedule = tuple(g for g, _ in self.stack)
            assert self.state.total == pytest.approx(
                dnf_schedule_cost(self.tree, schedule), rel=1e-9
            )


TestCacheMachine = CacheMachine.TestCase
TestCacheMachine.settings = settings(max_examples=30, stateful_step_count=30, deadline=None)

TestPrefixCostMachine = PrefixCostMachine.TestCase
TestPrefixCostMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
