"""Tests for the probability-estimation sensitivity experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DnfTree, Leaf
from repro.experiments import perturb_probabilities, probability_sensitivity


class TestPerturbation:
    def test_zero_noise_is_identity(self, rng):
        tree = DnfTree([[Leaf("A", 1, 0.3), Leaf("B", 2, 0.7)]], {"A": 1.0, "B": 2.0})
        noisy = perturb_probabilities(tree, 0.0, rng)
        assert noisy.ands == tree.ands

    def test_probabilities_stay_in_open_interval(self, rng):
        tree = DnfTree([[Leaf("A", 1, 0.01), Leaf("B", 1, 0.99)]], {"A": 1.0, "B": 1.0})
        for _ in range(50):
            noisy = perturb_probabilities(tree, 0.5, rng)
            for leaf in noisy.leaves:
                assert 0.0 < leaf.prob < 1.0

    def test_structure_and_costs_preserved(self, rng):
        tree = DnfTree(
            [[Leaf("A", 3, 0.5)], [Leaf("B", 2, 0.4), Leaf("A", 1, 0.6)]],
            {"A": 1.5, "B": 2.5},
        )
        noisy = perturb_probabilities(tree, 0.2, rng)
        assert noisy.and_sizes == tree.and_sizes
        assert dict(noisy.costs) == dict(tree.costs)
        for got, want in zip(noisy.leaves, tree.leaves):
            assert got.stream == want.stream and got.items == want.items


class TestSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        return probability_sensitivity(
            heuristics=("and-inc-c-over-p-dynamic", "leaf-inc-c"),
            epsilons=(0.0, 0.1, 0.4),
            n_instances=40,
            seed=0,
        )

    def test_point_grid_complete(self, points):
        assert len(points) == 2 * 3
        assert {p.heuristic for p in points} == {"and-inc-c-over-p-dynamic", "leaf-inc-c"}

    def test_zero_noise_zero_regret(self, points):
        for point in points:
            if point.epsilon == 0.0:
                assert point.mean_regret == pytest.approx(0.0, abs=1e-12)
                assert point.worst_regret == pytest.approx(0.0, abs=1e-12)

    def test_regret_grows_with_noise(self, points):
        for name in ("and-inc-c-over-p-dynamic", "leaf-inc-c"):
            series = sorted(
                (p.epsilon, p.mean_regret) for p in points if p.heuristic == name
            )
            assert series[0][1] <= series[-1][1] + 1e-12

    def test_regret_is_bounded_sane(self, points):
        for point in points:
            assert -0.5 <= point.mean_regret <= 5.0
