"""Integration tests for the figure-regeneration drivers (small scales).

These check the *shape* of the paper's findings at reduced instance counts;
the full-scale regenerations live in ``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    REFERENCE_HEURISTIC,
    compare_dynamic_vs_static,
    compare_stream_ordered_d_direction,
    compare_stream_ordered_r_direction,
    execution_throughput,
    paper_runtime_claim,
    run_fig4,
    run_fig5,
    run_fig6,
    runtime_grid,
    shared_cache_savings,
)
from repro.generators import DnfConfig


class TestFig4Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(trees_per_config=8, leaf_counts=range(2, 13), seed=0)

    def test_instance_count(self, result):
        assert result.n_instances == 8 * sum(
            1 for m in range(2, 13) for rho in (1, 5 / 4, 4 / 3, 3 / 2, 2, 3, 4, 5, 10) if rho <= m
        )

    def test_algorithm1_never_worse(self, result):
        assert np.all(result.ratios() >= 1.0 - 1e-9)

    def test_sharing_hurts_read_once_greedy(self, result):
        summary = result.summary()
        assert summary.max_ratio > 1.2
        assert summary.pct_over_1pct > 30.0
        assert 0.0 < summary.pct_equal < 100.0

    def test_low_sharing_hurts_least(self, result):
        # rho controls the *expected* leaves per stream (uniform assignment
        # still collides at rho=1), so assert the trend, not exact ties: the
        # rho=1 cells must show the smallest mean ratio of the sweep.
        by_rho = result.by_rho()
        assert by_rho[1.0].mean_ratio == min(s.mean_ratio for s in by_rho.values())
        assert by_rho[1.0].mean_ratio < by_rho[5.0].mean_ratio

    def test_truly_read_once_instances_always_tie(self, rng):
        from repro.core.andtree_optimal import algorithm1_order, read_once_order
        from repro.core.cost import and_tree_cost
        from repro.generators import random_and_tree

        checked = 0
        for _ in range(300):
            tree = random_and_tree(rng, int(rng.integers(2, 8)), 1.0)
            if not tree.is_read_once:
                continue
            checked += 1
            alg1 = and_tree_cost(tree, algorithm1_order(tree))
            smith = and_tree_cost(tree, read_once_order(tree))
            assert alg1 == pytest.approx(smith, rel=1e-9)
        assert checked > 10

    def test_sorted_series_monotone_x(self, result):
        optimal, read_once = result.sorted_series()
        assert np.all(np.diff(optimal) >= 0)
        assert np.all(read_once >= optimal - 1e-9)

    def test_deterministic_given_seed(self):
        a = run_fig4(trees_per_config=3, leaf_counts=(2, 3), rhos=(1.0, 2.0), seed=9)
        b = run_fig4(trees_per_config=3, leaf_counts=(2, 3), rhos=(1.0, 2.0), seed=9)
        assert np.array_equal(a.optimal_costs, b.optimal_costs)


class TestFig5Driver:
    @pytest.fixture(scope="class")
    def result(self):
        configs = [
            DnfConfig(n_ands=2, leaves_per_and=2, rho=rho, sampled=True, max_leaves=8)
            for rho in (1.0, 2.0, 3.0)
        ] + [
            DnfConfig(n_ands=3, leaves_per_and=3, rho=rho, sampled=True, max_leaves=9)
            for rho in (1.0, 2.0, 3.0)
        ]
        return run_fig5(instances_per_config=10, configs=configs, seed=1)

    def test_all_heuristics_scored(self, result):
        assert len(result.heuristic_costs) == 10
        assert result.n_instances == 60
        assert result.skipped_budget == 0

    def test_no_heuristic_beats_optimal(self, result):
        for name in result.heuristic_costs:
            assert np.all(result.ratios(name) >= 1.0 - 1e-9), name

    def test_best_heuristic_is_and_ordered_dynamic(self, result):
        wins = result.best_fractions()
        best_name = max(wins, key=wins.get)
        assert best_name in (
            "and-inc-c-over-p-dynamic",
            "and-inc-c-over-p-static",
        )

    def test_random_is_among_the_worst(self, result):
        profiles = result.profiles()
        random_score = profiles["leaf-random"].fraction_within(1.1)
        best_score = profiles[REFERENCE_HEURISTIC].fraction_within(1.1)
        assert random_score < best_score

    def test_summary_table_shape(self, result):
        rows = result.summary_rows()
        assert len(rows) == 10
        assert len(rows[0]) == len(result.summary_headers())


class TestFig6Driver:
    @pytest.fixture(scope="class")
    def result(self):
        configs = [
            DnfConfig(n_ands=n, leaves_per_and=5, rho=rho)
            for n in (2, 4) for rho in (1.0, 2.0, 5.0)
        ]
        return run_fig6(instances_per_config=6, configs=configs, seed=2)

    def test_reference_ratio_is_one(self, result):
        assert np.allclose(result.ratios(REFERENCE_HEURISTIC), 1.0)

    def test_reference_among_top_heuristics(self, result):
        wins = result.best_fractions()
        ranked = sorted(wins, key=wins.get, reverse=True)
        assert REFERENCE_HEURISTIC in ranked[:2]

    def test_summary_rows_include_reference_first(self, result):
        rows = result.summary_rows()
        assert rows[0][0].startswith(REFERENCE_HEURISTIC)


class TestRuntime:
    def test_paper_claim_point(self):
        point = paper_runtime_claim(repeats=1)
        assert point.n_ands == 10 and point.leaves_per_and == 20
        assert point.seconds < 5.0  # paper's bound, with a ~100x margin here

    def test_grid_shape(self):
        points = runtime_grid(
            heuristics=("stream-ordered",),
            n_ands_values=(2, 3),
            leaves_per_and_values=(5,),
            trees_per_cell=1,
            repeats=1,
        )
        assert len(points) == 2
        assert all(p.seconds >= 0 for p in points)


class TestTrialEngineFastPath:
    """The drivers' engine="vectorized" path tracks the analytic figures."""

    def test_fig4_vectorized_close_to_analytic(self):
        kwargs = dict(trees_per_config=4, leaf_counts=(3, 6), rhos=(1.0, 2.0), seed=1)
        analytic = run_fig4(**kwargs)
        simulated = run_fig4(**kwargs, engine="vectorized", trials_per_instance=3000)
        assert simulated.n_instances == analytic.n_instances
        # Same trees (same seeds), so per-instance costs track the closed form.
        np.testing.assert_allclose(
            simulated.optimal_costs, analytic.optimal_costs, rtol=0.2, atol=0.3
        )
        assert simulated.summary().mean_ratio == pytest.approx(
            analytic.summary().mean_ratio, rel=0.1
        )

    def test_fig5_vectorized_smoke(self):
        configs = [DnfConfig(n_ands=2, leaves_per_and=2, rho=1.5, sampled=True, max_leaves=6)]
        result = run_fig5(
            instances_per_config=2,
            configs=configs,
            seed=0,
            engine="vectorized",
            trials_per_instance=500,
        )
        assert result.n_instances == 2
        # Simulated heuristic costs may dip below the analytic optimum by
        # Monte-Carlo noise, but not wildly.
        for name in result.heuristic_costs:
            assert np.all(result.ratios(name) > 0.5)

    def test_fig6_vectorized_smoke(self):
        configs = [DnfConfig(n_ands=2, leaves_per_and=5, rho=2.0)]
        result = run_fig6(
            instances_per_config=2,
            configs=configs,
            seed=0,
            engine="vectorized",
            trials_per_instance=500,
        )
        assert result.n_instances == 2
        assert np.all(result.heuristic_costs[REFERENCE_HEURISTIC] >= 0.0)

    def test_execution_throughput_grid(self):
        points = execution_throughput(
            n_ands_values=(2,), leaves_per_and_values=(5,), n_trials=500, seed=0
        )
        engines = {point.engine for point in points}
        assert engines == {"scalar", "vectorized"}
        assert all(point.trials_per_second > 0 for point in points)

    def test_sensitivity_vectorized_smoke(self):
        from repro.experiments import probability_sensitivity

        points = probability_sensitivity(
            heuristics=("leaf-inc-c",),
            epsilons=(0.0, 0.2),
            n_instances=4,
            seed=0,
            engine="vectorized",
            trials_per_instance=400,
        )
        assert len(points) == 2
        assert all(point.n_instances == 4 for point in points)


class TestAblations:
    def test_prop1_improvement_direction(self):
        comparison = compare_stream_ordered_d_direction(n_instances=60, seed=0)
        # paper: improved version wins in the vast majority, rest are ties
        assert comparison.a_wins + comparison.ties >= 0.9 * comparison.n_instances
        assert comparison.mean_ratio_b_over_a >= 1.0

    def test_r_direction_rationale_wins(self):
        comparison = compare_stream_ordered_r_direction(n_instances=60, seed=0)
        assert comparison.a_wins > comparison.b_wins

    def test_dynamic_vs_static_marginal(self):
        comparison = compare_dynamic_vs_static(n_instances=60, seed=0)
        # "marginally better": dynamic >= static in wins; mean ratio near 1
        assert comparison.a_wins >= comparison.b_wins
        assert comparison.mean_ratio_b_over_a == pytest.approx(1.0, abs=0.2)

    def test_shared_cache_strictly_helps(self):
        comparison = shared_cache_savings(n_instances=60, seed=0)
        assert comparison.b_wins == 0  # no-cache can never be cheaper
        assert comparison.mean_ratio_b_over_a > 1.0
