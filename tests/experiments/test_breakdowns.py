"""Tests for the win-rate breakdown experiment."""

from __future__ import annotations

import pytest

from repro.experiments import breakdown_matrix, win_rate_breakdown


class TestBreakdown:
    @pytest.fixture(scope="class")
    def cells(self):
        return win_rate_breakdown(
            leaves_per_and_values=(2, 8),
            rhos=(1.0, 5.0),
            instances_per_cell=15,
            n_ands=4,
            seed=0,
        )

    def test_grid_complete(self, cells):
        assert len(cells) == 4
        assert {(c.leaves_per_and, c.rho) for c in cells} == {
            (2, 1.0), (2, 5.0), (8, 1.0), (8, 5.0)
        }

    def test_rates_are_probabilities(self, cells):
        for cell in cells:
            assert 0.0 <= cell.win_rate <= 1.0
            assert 0.0 <= cell.tie_rate <= cell.win_rate + 1e-12

    def test_reference_wins_more_on_larger_trees(self, cells):
        """The aggregate 94.5% vs our 63%: ties melt as instances grow."""
        by_m = {}
        for cell in cells:
            by_m.setdefault(cell.leaves_per_and, []).append(cell)
        small_ties = sum(c.tie_rate for c in by_m[2]) / len(by_m[2])
        large_ties = sum(c.tie_rate for c in by_m[8]) / len(by_m[8])
        assert large_ties <= small_ties + 0.15

    def test_matrix_renders(self, cells):
        text = breakdown_matrix(cells)
        assert "m\\rho" in text
        assert "%" in text
