"""The drift experiment's acceptance criteria (ISSUE 3).

Under a step change in leaf selectivities with a fixed seed, adaptive
serving's post-drift mean round cost must land within 10% of the
oracle-replan baseline, while the static plan stays measurably worse.
"""

from __future__ import annotations

import pytest

from repro.adaptive import AdaptivePolicy
from repro.errors import StreamError
from repro.experiments.drift import default_drift_population, run_drift

# Small enough for CI, large enough for the lag to amortize.
KWARGS = dict(n_queries=8, cluster_size=4, rounds=240, drift_round=80, seed=0)


@pytest.fixture(scope="module")
def report():
    return run_drift(**KWARGS)


class TestAcceptance:
    def test_adaptive_within_10_percent_of_oracle(self, report):
        assert report.adaptive_vs_oracle <= 1.10

    def test_static_measurably_worse_than_oracle(self, report):
        assert report.static_vs_oracle >= 1.15
        # ... and worse than adaptive too, not just worse than the oracle.
        assert report.post_drift_mean(report.static) > 1.1 * report.post_drift_mean(
            report.adaptive
        )

    def test_drift_is_detected_with_bounded_lag(self, report):
        assert report.adaptive.replans > 0
        assert report.detection_lag is not None
        assert report.detection_lag <= 64  # the policy window

    def test_oracle_replans_once_per_cluster(self, report):
        assert report.oracle.replans == 2  # 8 queries / cluster_size 4
        assert all(r == KWARGS["drift_round"] for r in report.oracle.replan_rounds)

    def test_static_never_replans(self, report):
        assert report.static.replans == 0

    def test_pre_drift_costs_agree_across_modes(self, report):
        """Before the drift all three servers run the identical plan on the
        identical outcome tape, so their cost prefixes must agree."""
        pre = KWARGS["drift_round"]
        assert report.static.round_costs[:pre] == report.oracle.round_costs[:pre]
        # The adaptive server may re-plan pre-drift only on estimation noise;
        # its mean must still match closely.
        assert report.adaptive.mean_cost(0, pre) == pytest.approx(
            report.static.mean_cost(0, pre), rel=0.02
        )


class TestDeterminismAndEngines:
    def test_same_seed_reproduces_exactly(self):
        a = run_drift(**KWARGS)
        b = run_drift(**KWARGS)
        assert a.adaptive.round_costs == b.adaptive.round_costs
        assert a.adaptive.replan_rounds == b.adaptive.replan_rounds

    def test_scalar_engine_matches_vectorized(self, report):
        scalar = run_drift(engine="scalar", **KWARGS)
        for mode_v, mode_s in zip(report.modes, scalar.modes):
            assert mode_v.round_costs == mode_s.round_costs
            assert mode_v.replan_rounds == mode_s.replan_rounds


class TestPlumbing:
    def test_population_shapes(self):
        population = default_drift_population(5, cluster_size=2, seed=1)
        assert len(population) == 5
        streams = {tree.leaves[0].stream for _, tree, _ in population}
        assert len({s[-1] for s in streams}) >= 2  # multiple clusters
        for _, tree, drift in population:
            assert drift.n_leaves == tree.size
            assert not drift.is_static

    def test_bad_drift_round_rejected(self):
        with pytest.raises(StreamError):
            run_drift(rounds=50, drift_round=50)

    def test_custom_policy_is_used(self):
        tight = AdaptivePolicy(window=16, threshold=0.3, min_samples=8, cooldown=4)
        report = run_drift(policy=tight, **KWARGS)
        assert report.adaptive.replans > 0

    def test_summary_rows_render(self, report):
        rows = report.summary_rows()
        assert [row[0] for row in rows] == ["static", "adaptive", "oracle"]
        assert "drift at round" in report.describe()
