"""Tests for performance profiles and text reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ascii_profile_plot,
    ascii_table,
    best_fractions,
    fraction_within,
    performance_profile,
    write_csv,
)


class TestPerformanceProfile:
    def test_sorted_and_fractions(self):
        profile = performance_profile("h", [2.0, 1.0, 1.5, 1.0])
        assert list(profile.ratios) == [1.0, 1.0, 1.5, 2.0]
        assert list(profile.fractions) == pytest.approx([0.25, 0.5, 0.75, 1.0])
        assert profile.n_instances == 4

    def test_fraction_within(self):
        profile = performance_profile("h", [1.0, 1.1, 1.2, 2.0])
        assert profile.fraction_within(1.15) == pytest.approx(0.5)
        assert profile.fraction_within(5.0) == 1.0
        assert profile.fraction_within(0.5) == 0.0

    def test_ratio_at_fraction(self):
        profile = performance_profile("h", [1.0, 1.5, 3.0, 4.0])
        assert profile.ratio_at_fraction(0.5) == 1.5
        assert profile.ratio_at_fraction(1.0) == 4.0
        with pytest.raises(ValueError):
            profile.ratio_at_fraction(0.0)

    def test_stats(self):
        profile = performance_profile("h", [1.0, 3.0])
        assert profile.max_ratio == 3.0
        assert profile.mean_ratio == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            performance_profile("h", [])

    def test_fraction_within_free_function(self):
        assert fraction_within([1.0, 2.0, 3.0], 2.0) == pytest.approx(2 / 3)


class TestBestFractions:
    def test_winner_takes_all(self):
        costs = {"a": [1.0, 1.0], "b": [2.0, 2.0]}
        wins = best_fractions(costs)
        assert wins["a"] == 1.0 and wins["b"] == 0.0

    def test_ties_count_for_everyone(self):
        costs = {"a": [1.0, 2.0], "b": [1.0, 1.0]}
        wins = best_fractions(costs)
        assert wins["a"] == 0.5 and wins["b"] == 1.0


class TestReport:
    def test_ascii_table_alignment(self):
        table = ascii_table(["name", "value"], [["x", 1.23456], ["longer", 2]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "1.235" in table  # float formatting

    def test_ascii_profile_plot_contains_curves_and_legend(self):
        profiles = {
            "fast": performance_profile("fast", np.linspace(1.0, 1.2, 50)),
            "slow": performance_profile("slow", np.linspace(1.0, 8.0, 50)),
        }
        plot = ascii_profile_plot(profiles, width=40, height=10)
        assert "a = fast" in plot and "b = slow" in plot
        assert "100%" in plot

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "out" / "data.csv", ["a", "b"], [[1, 2], [3, 4]])
        text = path.read_text()
        assert text.splitlines() == ["a,b", "1,2", "3,4"]
