"""Elastic cluster width: split/drain/resize semantics, state migration,
the ElasticPolicy auto-triggers and the elastic experiment drivers."""

from __future__ import annotations

import pytest

from repro.adaptive import AdaptivePolicy, ElasticPolicy
from repro.cluster import ClusterServer, ElasticEvent
from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.errors import AdmissionError, StreamError
from repro.experiments.cluster import run_elastic_sim, verify_elastic_parity
from repro.generators import (
    clustered_registry,
    overlap_clustered_population,
)


def small_environment(seed: int = 0, n_queries: int = 24, clusters: int = 3):
    registry = clustered_registry(clusters, 3, seed=seed)
    population = overlap_clustered_population(
        n_queries, registry, clusters, 3, seed=seed + 1
    )
    return registry, population


def tree_on(streams: list[str], items: int = 2) -> DnfTree:
    return DnfTree([[Leaf(s, items, 0.5) for s in streams]], {s: 1.0 for s in streams})


class TestSplitShard:
    def test_split_moves_whole_components(self):
        registry, population = small_environment()
        cluster = ClusterServer(registry, n_shards=1)
        cluster.register_population(population)
        event = cluster.split_shard(0, into=3)
        assert event is not None and event.kind == "split"
        assert cluster.n_shards == 3
        assert event.moves > 0
        # Free split: nothing cut, so queries sharing a stream stay together.
        report = cluster.partition_report()
        assert report.kept_fraction == 1.0
        assert report.duplicated_stream_cost == 0.0
        # Every query still resident exactly once, assignment consistent.
        resident = [n for shard in cluster.shards.values() for n in shard.names]
        assert sorted(resident) == sorted(cluster.registered)

    def test_split_preserves_oracles_plans_and_stats(self):
        registry, population = small_environment(seed=5)
        cluster = ClusterServer(registry, n_shards=1, seed=6)
        cluster.register_population(population)
        cluster.run_batch(3)
        before_oracles = {n: cluster.query(n).oracle for n in cluster.registered}
        before_plans = {n: cluster.query(n).plan for n in cluster.registered}
        cache_stats = cluster.plan_cache.stats()
        stats_before = {
            n: cluster.shards[cluster.shard_of(n)].server.metrics.per_query[n]
            for n in cluster.registered
        }
        cluster.split_shard(0, into=2)
        for name in cluster.registered:
            assert cluster.query(name).oracle is before_oracles[name]
            assert cluster.query(name).plan is before_plans[name]
            shard = cluster.shards[cluster.shard_of(name)]
            assert shard.server.metrics.per_query[name] is stats_before[name]
        # Migration never touches the shared plan cache.
        assert cluster.plan_cache.stats() == cache_stats

    def test_split_unsplittable_returns_none(self):
        registry = clustered_registry(1, 1, seed=2)
        cluster = ClusterServer(registry, n_shards=1)
        cluster.register("a", tree_on(["C0S0"]))
        assert cluster.split_shard(0) is None  # one resident
        cluster.register("b", tree_on(["C0S0"]))
        # Two residents, one connected component: clean split impossible.
        assert cluster.split_shard(0) is None
        assert cluster.n_shards == 1

    def test_allow_cut_splits_monolith_and_duplicates_spend(self):
        registry = clustered_registry(1, 3, seed=3)
        cluster = ClusterServer(registry, n_shards=1)
        # Two dense sub-groups glued by one thin bridge query.
        for i in range(3):
            cluster.register(f"left{i}", tree_on(["C0S0"]))
        for i in range(3):
            cluster.register(f"right{i}", tree_on(["C0S1"]))
        cluster.register("bridge", tree_on(["C0S0", "C0S1"], items=1))
        event = cluster.split_shard(0, allow_cut=True)
        assert event is not None
        assert cluster.n_shards == 2
        report = cluster.partition_report()
        assert report.cut_weight > 0.0 or report.duplicated_stream_cost > 0.0

    def test_split_unknown_shard_and_bad_into(self):
        registry, population = small_environment()
        cluster = ClusterServer(registry, n_shards=1)
        cluster.register_population(population)
        with pytest.raises(AdmissionError):
            cluster.split_shard(99)
        with pytest.raises(AdmissionError):
            cluster.split_shard(0, into=1)

    def test_new_shard_clock_synced(self):
        registry, population = small_environment(seed=9)
        cluster = ClusterServer(registry, n_shards=1, seed=10)
        cluster.register_population(population)
        cluster.run_batch(5)
        cluster.split_shard(0, into=2)
        clocks = {
            shard.server.rounds_served
            for shard in cluster.shards.values()
            if len(shard)
        }
        assert clocks == {5}


class TestDrainShard:
    def test_drain_retires_shard_and_migrates_components(self):
        registry, population = small_environment(seed=11)
        cluster = ClusterServer(registry, n_shards=3, seed=12)
        cluster.register_population(population)
        victim = max(cluster.shards, key=lambda sid: len(cluster.shards[sid]))
        event = cluster.drain_shard(victim)
        assert event.kind == "drain"
        assert victim not in cluster.shards
        assert len(cluster) == len(population)
        # Sharing survives: components moved whole.
        assert cluster.partition_report().kept_fraction == 1.0
        report = cluster.run_batch(2)
        assert set(report.per_query_cost) == {name for name, _ in population}

    def test_drain_last_shard_rejected(self):
        registry, population = small_environment()
        cluster = ClusterServer(registry, n_shards=1)
        cluster.register_population(population)
        with pytest.raises(AdmissionError):
            cluster.drain_shard(0)

    def test_drain_empty_shard(self):
        registry, _ = small_environment()
        cluster = ClusterServer(registry, n_shards=3)
        cluster.register("a", tree_on(["C0S0"]))
        empty = next(sid for sid in cluster.shards if len(cluster.shards[sid]) == 0)
        event = cluster.drain_shard(empty)
        assert event.moves == 0
        assert cluster.n_shards == 2

    def test_partial_drain_is_audited_before_raising(self):
        registry = clustered_registry(3, 2, seed=14)
        cluster = ClusterServer(registry, n_shards=2, max_shard_queries=4)
        for i in range(3):
            cluster.register(f"b{i}", tree_on(["C1S0"]))  # 3/4 on one shard
        cluster.register("c0", tree_on(["C2S0"]))  # lands on the other
        for i in range(3):
            cluster.register(f"a{i}", tree_on(["C0S0"]))  # joins c0's shard
        victim = cluster.shard_of("c0")
        assert cluster.shard_of("a0") == victim
        # Draining moves c0 (fits: 3+1 <= 4) then fails on the a-component.
        with pytest.raises(AdmissionError):
            cluster.drain_shard(victim)
        assert victim in cluster.shards  # not retired
        partial = cluster.elastic_log[-1]
        assert partial.kind == "drain-partial"
        assert partial.moves == 1
        assert cluster.shard_of("c0") != victim
        assert len(cluster) == 7
        report = cluster.run_batch(2)
        assert len(report.per_query_cost) == 7

    def test_drain_capacity_exhaustion_keeps_cluster_consistent(self):
        registry = clustered_registry(3, 2, seed=13)
        cluster = ClusterServer(registry, n_shards=2, max_shard_queries=3)
        for i in range(3):
            cluster.register(f"a{i}", tree_on(["C0S0"]))  # fills one shard
        for i in range(3):
            cluster.register(f"b{i}", tree_on(["C1S0"]))  # fills the other
        drained_home = cluster.shard_of("a0")
        other_home = cluster.shard_of("b0")
        assert drained_home != other_home
        # The only destination is full (3/3) for a 3-query component.
        with pytest.raises(AdmissionError):
            cluster.drain_shard(drained_home)
        # The shard was not retired and every query is still served.
        assert drained_home in cluster.shards
        assert len(cluster) == 6
        report = cluster.run_batch(2)
        assert len(report.per_query_cost) == 6


class TestResize:
    def test_resize_round_trip_serves_everyone(self):
        registry, population = small_environment(seed=17)
        cluster = ClusterServer(registry, n_shards=2, seed=18)
        cluster.register_population(population)
        cluster.resize(5)
        assert cluster.n_shards == 5
        cluster.resize(1)
        assert cluster.n_shards == 1
        report = cluster.run_batch(2)
        assert len(report.per_query_cost) == len(population)

    def test_resize_grows_with_empty_shard_when_unsplittable(self):
        registry = clustered_registry(1, 1, seed=19)
        cluster = ClusterServer(registry, n_shards=1)
        cluster.register("a", tree_on(["C0S0"]))
        events = cluster.resize(2)
        assert [event.kind for event in events] == ["grow"]
        assert cluster.n_shards == 2

    def test_resize_validates_width(self):
        registry, _ = small_environment()
        cluster = ClusterServer(registry, n_shards=2)
        with pytest.raises(AdmissionError):
            cluster.resize(0)


class TestMigrationState:
    def test_registration_order_restored_after_moves(self):
        """Merge tie-break order must not depend on a query's travel path."""
        registry, population = small_environment(seed=23)
        cluster = ClusterServer(registry, n_shards=3, seed=24)
        cluster.register_population(population)
        cluster.resize(6)
        cluster.resize(1)
        # Everything ended on one shard: its registration order must be the
        # cluster admission order exactly.
        (survivor,) = [s for s in cluster.shards.values() if len(s)]
        assert list(survivor.names) == list(cluster.registered)

    def test_adaptive_belief_travels_with_split(self):
        registry, population = small_environment(seed=29)
        policy = AdaptivePolicy(window=32, threshold=0.2, min_samples=8, cooldown=4)
        cluster = ClusterServer(registry, n_shards=1, seed=30, adaptive=policy)
        cluster.register_population(population)
        cluster.run_batch(6)
        source = cluster.shards[0].server
        tracked_before = set(source.adaptive.tracked_keys())
        evidence_before = {
            key: source.adaptive.tracker.get((key, 0)).window_trials
            for key in tracked_before
            if source.adaptive.tracker.get((key, 0)) is not None
        }
        assert evidence_before  # batches actually observed outcomes
        cluster.split_shard(0, into=2)
        # Every shard tracks exactly its residents' shapes, with evidence.
        seen: set[str] = set()
        for shard in cluster.shards.values():
            if not len(shard):
                continue
            keys = set(shard.server.adaptive.tracked_keys())
            resident_keys = {
                shard.server.query(name).canonical.key for name in shard.names
            }
            assert keys == resident_keys
            seen |= keys
            for key in keys:
                if key in evidence_before and evidence_before[key]:
                    posterior = shard.server.adaptive.tracker.get((key, 0))
                    assert posterior is not None
                    assert posterior.window_trials > 0  # evidence transplanted
        assert seen == tracked_before

    def test_migration_counters_and_churn_separation(self):
        registry, population = small_environment(seed=31)
        cluster = ClusterServer(registry, n_shards=1, seed=32)
        cluster.register_population(population)
        churn_before = cluster._churn
        event = cluster.split_shard(0, into=2)
        assert event is not None
        metrics = [s.server.metrics for s in cluster.shards.values()]
        assert sum(m.migrations_in for m in metrics) == event.moves
        assert sum(m.migrations_out for m in metrics) == event.moves
        # Migrations are placement changes, not churn.
        assert cluster._churn == churn_before
        assert sum(m.deregistrations for m in metrics) == 0

    def test_admission_absorbs_bridged_components(self):
        registry = clustered_registry(1, 3, seed=33)
        cluster = ClusterServer(registry, n_shards=2)
        cluster.register("a", tree_on(["C0S0"]))
        cluster.register("b", tree_on(["C0S1"]))  # disjoint -> other shard
        assert cluster.shard_of("a") != cluster.shard_of("b")
        # The bridge overlaps both: everything must end up co-resident.
        cluster.register("bridge", tree_on(["C0S0", "C0S1"]))
        assert (
            cluster.shard_of("a")
            == cluster.shard_of("b")
            == cluster.shard_of("bridge")
        )
        assert cluster.partition_report().kept_fraction == 1.0


class TestElasticPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"check_every": 0},
            {"min_shards": 0},
            {"max_shards": 1, "min_shards": 2},
            {"split_above": 1.0},
            {"min_split_size": 1},
            {"target_shard_queries": -1},
            {"drain_below": 1.0},
            {"min_kept_fraction": 1.5},
            {"churn_every": -1},
            {"replans_every": -1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(StreamError):
            ElasticPolicy(**kwargs)

    def test_cluster_rejects_non_policy(self):
        registry, _ = small_environment()
        with pytest.raises(AdmissionError):
            ClusterServer(registry, elastic=object())  # type: ignore[arg-type]


class TestAutoElastic:
    def test_auto_split_grows_under_load(self):
        registry, population = small_environment(seed=41, n_queries=36)
        policy = ElasticPolicy(target_shard_queries=12, min_split_size=4)
        cluster = ClusterServer(registry, n_shards=1, seed=42, elastic=policy)
        for name, tree in population:
            cluster.register(name, tree)
        report = cluster.run_batch(2)
        assert report.elastic_actions  # overload split fired
        assert cluster.n_shards > 1
        assert cluster.splits >= 1
        assert any(e.trigger == "auto:overload" for e in cluster.elastic_log)

    def test_auto_consolidate_shrinks_after_departures(self):
        registry, population = small_environment(seed=43, n_queries=36)
        policy = ElasticPolicy(target_shard_queries=12, min_split_size=4)
        cluster = ClusterServer(registry, n_shards=1, seed=44, elastic=policy)
        for name, tree in population:
            cluster.register(name, tree)
        for _ in range(3):
            cluster.run_batch(2)
        peak = cluster.n_shards
        for name, _ in population[6:]:
            cluster.deregister(name)
        for _ in range(6):
            cluster.run_batch(2)
        assert cluster.n_shards < peak
        assert any(
            e.trigger in ("auto:consolidate", "auto:underload", "auto:empty")
            for e in cluster.elastic_log
        )

    def test_auto_rebalance_on_churn(self):
        registry, population = small_environment(seed=47, n_queries=30)
        policy = ElasticPolicy(churn_every=10, min_split_size=1000)
        cluster = ClusterServer(registry, n_shards=3, seed=48, elastic=policy)
        cluster.register_population(population, method="random")
        assert cluster.partition_report().kept_fraction < 1.0
        report = cluster.run_batch(2)
        assert any("rebalance" in action for action in report.elastic_actions)
        assert cluster.partition_report().kept_fraction == 1.0

    def test_check_every_defers_evaluation(self):
        registry, population = small_environment(seed=49, n_queries=30)
        policy = ElasticPolicy(
            target_shard_queries=8, min_split_size=4, check_every=3
        )
        cluster = ClusterServer(registry, n_shards=1, seed=50, elastic=policy)
        cluster.register_population(population)
        assert cluster.run_batch(1).elastic_actions == ()
        assert cluster.run_batch(1).elastic_actions == ()
        assert cluster.run_batch(1).elastic_actions != ()

    def test_elastic_event_describe(self):
        event = ElasticEvent(
            kind="split",
            round_index=7,
            shard_id=1,
            new_shard_ids=(4, 5),
            moves=9,
            trigger="auto:overload",
            detail="x",
        )
        text = event.describe()
        assert "split shard 1" in text and "4,5" in text and "auto:overload" in text

    def test_report_surfaces_elastic_state(self):
        registry, population = small_environment(seed=51)
        policy = ElasticPolicy(target_shard_queries=8, min_split_size=4)
        cluster = ClusterServer(registry, n_shards=1, seed=52, elastic=policy)
        cluster.register_population(population)
        report = cluster.run_batch(2)
        assert report.n_shards_total == cluster.n_shards
        assert report.splits == cluster.splits
        assert report.drains == cluster.drains
        assert "splits" in report.summary()


class TestElasticExperimentDrivers:
    def test_verify_elastic_parity_scalar(self):
        deltas = verify_elastic_parity(
            n_queries=24, n_clusters=3, rounds=3, seed=1
        )
        assert len(deltas) == 24
        assert max(deltas.values()) == 0.0

    def test_verify_elastic_parity_vectorized_with_policy(self):
        deltas = verify_elastic_parity(
            n_queries=20,
            n_clusters=2,
            rounds=3,
            seed=2,
            engine="vectorized",
            elastic=ElasticPolicy(target_shard_queries=10, min_split_size=4),
        )
        assert max(deltas.values()) == 0.0

    def test_run_elastic_sim_timeline(self):
        report = run_elastic_sim(
            n_queries=60,
            n_clusters=3,
            streams_per_cluster=3,
            batches=6,
            rounds_per_batch=2,
            seed=3,
        )
        assert len(report.timeline) == 6
        assert report.peak_width >= 1
        assert report.evals > 0
        record = report.to_record()
        assert record["batches"] == 6
        assert len(record["width_timeline"]) == 6
        assert len(report.summary_rows()) == 6
