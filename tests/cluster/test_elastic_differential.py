"""Elasticity differential harness (hypothesis stateful).

The elastic cluster's core guarantee: *topology is invisible to cost*. Any
sequence of admissions, departures, shard splits, drains and resizes,
interleaved with serving batches on either engine, must produce per-query
costs and outcomes bit-identical to one unsharded :class:`QueryServer`
driven through the same admissions/departures/batches on the same seeds —
migrations transplant oracles, plans, cache state and clocks, so a query
can never tell it moved.

The machine mirrors every population op onto both systems, fires topology
ops only at the cluster (they are no-ops for the oracle server) and
compares the full per-query cost/outcome maps after every batch with exact
float equality.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.cluster import ClusterServer, default_oracle_factory
from repro.generators import clustered_registry, overlap_clustered_population
from repro.service import QueryServer

N_CLUSTERS = 3
STREAMS_PER_CLUSTER = 3
POOL_SIZE = 24


class ElasticParityMachine(RuleBasedStateMachine):
    """Random split/drain/resize/admit/deregister/batch sequences vs oracle."""

    @initialize(seed=st.integers(0, 3))
    def setup(self, seed: int) -> None:
        env_seed = seed * 101
        self.registry = clustered_registry(
            N_CLUSTERS, STREAMS_PER_CLUSTER, seed=env_seed
        )
        self.pool = overlap_clustered_population(
            POOL_SIZE,
            self.registry,
            N_CLUSTERS,
            STREAMS_PER_CLUSTER,
            cross_cluster_prob=0.0,
            seed=env_seed + 1,
        )
        self.cluster = ClusterServer(self.registry, n_shards=2, seed=seed + 7)
        self.single = QueryServer(self.registry)
        self.factory = default_oracle_factory(seed + 7)
        self.next_index = 0
        self.live: list[str] = []
        self._admit_next()

    # -- population ops (mirrored on both systems) -----------------------

    def _admit_next(self) -> None:
        name, tree = self.pool[self.next_index]
        self.next_index += 1
        self.cluster.register(name, tree)
        self.single.register(name, tree, oracle=self.factory(name))
        self.live.append(name)

    @precondition(lambda self: self.next_index < len(self.pool))
    @rule()
    def admit(self) -> None:
        self._admit_next()

    @precondition(lambda self: len(self.live) > 1)
    @rule(position=st.integers(0, POOL_SIZE - 1))
    def deregister(self, position: int) -> None:
        name = self.live.pop(position % len(self.live))
        self.cluster.deregister(name)
        self.single.deregister(name)

    # -- topology ops (cluster only; must be invisible) ------------------

    @rule(position=st.integers(0, 7), into=st.integers(2, 3))
    def split(self, position: int, into: int) -> None:
        candidates = [
            sid for sid in sorted(self.cluster.shards)
            if len(self.cluster.shards[sid]) >= 2
        ]
        if not candidates:
            return
        self.cluster.split_shard(candidates[position % len(candidates)], into=into)

    @rule(position=st.integers(0, 7))
    def drain(self, position: int) -> None:
        if self.cluster.n_shards < 2:
            return
        shard_ids = sorted(self.cluster.shards)
        self.cluster.drain_shard(shard_ids[position % len(shard_ids)])

    @rule(width=st.integers(1, 5))
    def resize(self, width: int) -> None:
        self.cluster.resize(width)

    # -- the differential ------------------------------------------------

    @rule(rounds=st.integers(1, 3), engine=st.sampled_from(["scalar", "vectorized"]))
    def run_batch(self, rounds: int, engine: str) -> None:
        cluster_report = self.cluster.run_batch(rounds, engine=engine)
        single_report = self.single.run_batch(rounds, engine=engine)
        assert cluster_report.per_query_cost == single_report.per_query_cost, (
            "per-query costs diverged after a topology change: "
            f"{sorted(set(cluster_report.per_query_cost.items()) ^ set(single_report.per_query_cost.items()))}"
        )
        assert (
            cluster_report.per_query_true_rate == single_report.per_query_true_rate
        ), "per-query outcomes diverged after a topology change"

    @invariant()
    def populations_agree(self) -> None:
        assert len(self.cluster) == len(self.single)
        assert set(self.cluster.registered) == set(self.single.registered)
        # Every query is resident on exactly the shard the cluster says.
        resident = [
            name for shard in self.cluster.shards.values() for name in shard.names
        ]
        assert sorted(resident) == sorted(self.cluster.registered)
        for name in self.cluster.registered:
            assert name in self.cluster.shards[self.cluster.shard_of(name)]


# Enough examples/steps to reliably reach topology-op -> batch sequences on
# moved queries (verified by mutation testing: disabling the migration cache
# transplant or clock sync makes this suite fail); the CI profile
# (--hypothesis-profile=ci) trims example counts further for speed.
ElasticParityMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)

TestElasticParity = ElasticParityMachine.TestCase
