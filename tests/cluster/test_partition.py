"""Overlap graph + partitioner: structure recovery, balance, edge cases."""

from __future__ import annotations

import pytest

from repro.cluster.partition import (
    build_overlap_graph,
    partition_by_overlap,
    partition_report,
    random_partition,
    stream_weight_vector,
)
from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.errors import StreamError
from repro.generators import clustered_registry, overlap_clustered_population


def tree_on(streams: list[str], items: int = 2, prob: float = 0.5) -> DnfTree:
    return DnfTree(
        [[Leaf(s, items, prob) for s in streams]], {s: 1.0 for s in streams}
    )


COSTS = {f"S{k}": 1.0 for k in range(12)}


class TestOverlapGraph:
    def test_stream_weight_vector_takes_max_window(self):
        tree = DnfTree(
            [[Leaf("A", 2, 0.5), Leaf("A", 5, 0.4)], [Leaf("B", 1, 0.3)]],
            {"A": 2.0, "B": 1.0},
        )
        weights = stream_weight_vector(tree, {"A": 2.0, "B": 1.0})
        assert weights == {"A": 10.0, "B": 1.0}

    def test_overlap_is_min_shared_weight(self):
        graph = build_overlap_graph(
            [("a", tree_on(["S0", "S1"], items=3)), ("b", tree_on(["S1", "S2"], items=1))],
            COSTS,
        )
        # Only S1 is shared; min(3*1, 1*1) = 1.
        assert graph.overlap("a", "b") == pytest.approx(1.0)
        assert graph.overlap("b", "a") == pytest.approx(1.0)

    def test_components_split_disjoint_stream_groups(self):
        graph = build_overlap_graph(
            [
                ("a", tree_on(["S0"])),
                ("b", tree_on(["S0", "S1"])),
                ("c", tree_on(["S2"])),
            ],
            COSTS,
        )
        components = sorted(sorted(c) for c in graph.components())
        assert components == [["a", "b"], ["c"]]

    def test_duplicate_names_rejected(self):
        with pytest.raises(StreamError):
            build_overlap_graph(
                [("a", tree_on(["S0"])), ("a", tree_on(["S1"]))], COSTS
            )

    def test_empty_population_rejected(self):
        with pytest.raises(StreamError):
            build_overlap_graph([], COSTS)


class TestPartitionEdgeCases:
    def test_zero_overlap_population_each_query_own_cluster(self):
        """Every query on its own stream: singletons, packed evenly, no cut."""
        population = [(f"q{k}", tree_on([f"S{k}"])) for k in range(8)]
        graph = build_overlap_graph(population, COSTS)
        assert sorted(len(c) for c in graph.components()) == [1] * 8
        partition = partition_by_overlap(population, 4, COSTS)
        assert partition.n_shards == 4
        assert sorted(partition.report.shard_sizes) == [2, 2, 2, 2]
        # No pairwise overlap exists anywhere, so nothing is kept or cut.
        assert partition.report.intra_weight == 0.0
        assert partition.report.cut_weight == 0.0
        assert partition.report.duplicated_stream_cost == 0.0

    def test_fully_overlapping_population_one_shard(self):
        """All queries on one stream: one component, never split for k."""
        population = [(f"q{k}", tree_on(["S0"])) for k in range(10)]
        partition = partition_by_overlap(population, 3, COSTS)
        assert partition.n_shards == 1
        assert partition.report.shard_sizes == (10,)
        assert partition.report.cut_weight == 0.0
        assert partition.report.kept_fraction == 1.0

    def test_k_larger_than_cluster_count(self):
        """k=8 over 3 natural clusters: one shard per cluster, no more."""
        population = (
            [(f"a{k}", tree_on(["S0", "S1"])) for k in range(3)]
            + [(f"b{k}", tree_on(["S2", "S3"])) for k in range(3)]
            + [(f"c{k}", tree_on(["S4"])) for k in range(3)]
        )
        partition = partition_by_overlap(population, 8, COSTS)
        assert partition.n_shards == 3
        assert partition.report.cut_weight == 0.0
        shard_sets = [set(shard) for shard in partition.shards]
        assert {"a0", "a1", "a2"} in shard_sets
        assert {"b0", "b1", "b2"} in shard_sets
        assert {"c0", "c1", "c2"} in shard_sets

    def test_k_one_is_the_unsharded_layout(self):
        population = [(f"q{k}", tree_on([f"S{k % 3}"])) for k in range(6)]
        partition = partition_by_overlap(population, 1, COSTS)
        assert partition.n_shards == 1
        assert set(partition.shards[0]) == {name for name, _ in population}
        assert partition.report.kept_fraction == 1.0

    def test_capacity_splits_oversized_component(self):
        population = [(f"q{k}", tree_on(["S0"])) for k in range(9)]
        partition = partition_by_overlap(
            population, 3, COSTS, max_shard_queries=3
        )
        assert partition.n_shards == 3
        assert sorted(partition.report.shard_sizes) == [3, 3, 3]

    def test_capacity_respected_when_packing_forces_splits(self):
        """Three 2-query components, k=2, cap=3: LPT must not overload a
        shard to 4 — the capacity forces splitting a component instead."""
        population = [
            (f"q{k}", tree_on([f"S{k // 2}"])) for k in range(6)
        ]  # components {q0,q1} {q2,q3} {q4,q5}
        partition = partition_by_overlap(
            population, 2, COSTS, max_shard_queries=3
        )
        assert max(partition.report.shard_sizes) <= 3
        assert sum(partition.report.shard_sizes) == 6

    def test_capacity_too_small_rejected(self):
        population = [(f"q{k}", tree_on(["S0"])) for k in range(9)]
        with pytest.raises(StreamError):
            partition_by_overlap(population, 2, COSTS, max_shard_queries=3)

    def test_invalid_k_rejected(self):
        with pytest.raises(StreamError):
            partition_by_overlap([("q", tree_on(["S0"]))], 0, COSTS)


class TestPartitionQuality:
    def test_recovers_planted_clusters(self):
        registry = clustered_registry(5, 3, seed=11)
        population = overlap_clustered_population(50, registry, 5, 3, seed=12)
        partition = partition_by_overlap(population, 5, registry.cost_table())
        assert partition.n_shards == 5
        assert partition.report.kept_fraction == 1.0
        assert partition.report.duplicated_stream_cost == 0.0
        # Queries of one planted cluster (dealt round-robin: q index % 5)
        # must co-reside.
        shard_of = partition.shard_of()
        for name, _ in population:
            home = int(name[1:]) % 5
            peer = f"q{home:04d}"
            assert shard_of[name] == shard_of[peer]

    def test_noise_glued_clusters_still_split(self):
        """Thin cross-traffic must not collapse the cluster to one shard.

        With 10% of leaves rewired across clusters the overlap graph is one
        connected component; the noise-cut pass must still recover multiple
        shards while keeping the bulk of the overlap weight (clusters that
        the noise has *genuinely* coupled may legitimately stay together, so
        the exact width is seed-dependent).
        """
        registry = clustered_registry(4, 4, seed=51)
        population = overlap_clustered_population(
            80, registry, 4, 4, cross_cluster_prob=0.1, seed=52
        )
        graph = build_overlap_graph(population, registry.cost_table())
        assert len(graph.components()) == 1  # the noise glues everything
        partition = partition_by_overlap(population, 4, registry.cost_table())
        assert partition.n_shards >= 3
        assert partition.report.kept_fraction > 0.6

    def test_dense_clique_not_split_by_noise_cut_pass(self):
        """A clique of width > target still refuses to split: any split of a
        uniform clique keeps only ~1/k of its weight."""
        population = [(f"q{k}", tree_on(["S0", "S1"])) for k in range(12)]
        partition = partition_by_overlap(population, 4, COSTS)
        assert partition.n_shards == 1
        assert partition.report.kept_fraction == 1.0

    def test_beats_random_partition_on_clustered_population(self):
        registry = clustered_registry(4, 4, seed=21)
        population = overlap_clustered_population(
            40, registry, 4, 4, cross_cluster_prob=0.05, seed=22
        )
        costs = registry.cost_table()
        overlap = partition_by_overlap(population, 4, costs)
        random = random_partition(population, 4, costs, seed=23)
        assert overlap.report.kept_fraction > random.report.kept_fraction
        assert (
            overlap.report.duplicated_stream_cost
            <= random.report.duplicated_stream_cost
        )

    def test_report_totals_are_assignment_invariant(self):
        """intra + cut is the population's total overlap, however you shard."""
        registry = clustered_registry(3, 3, seed=31)
        population = overlap_clustered_population(
            18, registry, 3, 3, cross_cluster_prob=0.2, seed=32
        )
        costs = registry.cost_table()
        overlap = partition_by_overlap(population, 3, costs)
        random = random_partition(population, 3, costs, seed=33)
        assert overlap.report.intra_weight + overlap.report.cut_weight == pytest.approx(
            random.report.intra_weight + random.report.cut_weight
        )

    def test_partition_report_rejects_bad_assignments(self):
        population = [("a", tree_on(["S0"])), ("b", tree_on(["S1"]))]
        graph = build_overlap_graph(population, COSTS)
        with pytest.raises(StreamError):
            partition_report(graph, [["a"]], method="broken")  # b missing
        with pytest.raises(StreamError):
            partition_report(graph, [["a", "b"], ["a"]], method="broken")

    def test_random_partition_covers_population(self):
        population = [(f"q{k}", tree_on([f"S{k % 2}"])) for k in range(7)]
        partition = random_partition(population, 3, COSTS, seed=1)
        assert partition.n_shards == 3
        names = [name for shard in partition.shards for name in shard]
        assert sorted(names) == sorted(name for name, _ in population)

    def test_partition_record_is_json_ready(self):
        population = [(f"q{k}", tree_on(["S0"])) for k in range(4)]
        record = partition_by_overlap(population, 2, COSTS).report.to_record()
        assert record["method"] == "overlap"
        assert record["n_shards"] == 1
        assert 0.0 <= record["kept_fraction"] <= 1.0
