"""ClusterServer: routing, concurrent batches, parity, rebalance."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterServer, ShardRouter, default_oracle_factory
from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.errors import AdmissionError, StreamError
from repro.experiments.cluster import run_cluster_compare, verify_cluster_parity
from repro.generators import clustered_registry, overlap_clustered_population
from repro.service import QueryServer


def small_environment(seed: int = 0, n_queries: int = 24, clusters: int = 3):
    registry = clustered_registry(clusters, 3, seed=seed)
    population = overlap_clustered_population(
        n_queries, registry, clusters, 3, seed=seed + 1
    )
    return registry, population


def tree_on(streams: list[str], items: int = 2) -> DnfTree:
    return DnfTree([[Leaf(s, items, 0.5) for s in streams]], {s: 1.0 for s in streams})


class TestAdmission:
    def test_register_population_places_clusters_together(self):
        registry, population = small_environment()
        cluster = ClusterServer(registry, n_shards=3)
        partition = cluster.register_population(population)
        assert len(cluster) == len(population)
        assert partition.report.kept_fraction == 1.0
        shard_of = partition.shard_of()
        for name, _ in population:
            assert cluster.shard_of(name) == shard_of[name]

    def test_router_sends_overlapping_query_home(self):
        registry, population = small_environment()
        cluster = ClusterServer(registry, n_shards=3)
        cluster.register_population(population)
        # A fresh query entirely on cluster 1's streams must join its shard.
        home_shard = cluster.shard_of("q0001")  # q0001 lives in cluster 1
        sid = cluster.register("newcomer", tree_on(["C1S0", "C1S1"]))
        assert sid == home_shard
        decision = cluster.router.decisions[-1]
        assert decision.reason == "overlap"
        assert decision.overlap > 0

    def test_cold_query_falls_back_to_least_loaded(self):
        registry = clustered_registry(2, 2, seed=3)
        cluster = ClusterServer(registry, n_shards=2)
        cluster.register("a", tree_on(["C0S0"]))
        # Nothing on C1 streams yet: the cold query lands on the empty shard.
        sid = cluster.register("b", tree_on(["C1S0"]))
        assert sid != cluster.shard_of("a")
        assert cluster.router.decisions[-1].reason == "least-loaded"

    def test_duplicate_name_rejected(self):
        registry, population = small_environment()
        cluster = ClusterServer(registry, n_shards=2)
        cluster.register("a", tree_on(["C0S0"]))
        with pytest.raises(AdmissionError):
            cluster.register("a", tree_on(["C0S1"]))

    def test_capacity_enforced_by_router(self):
        registry = clustered_registry(1, 2, seed=4)
        cluster = ClusterServer(registry, n_shards=2, max_shard_queries=1)
        cluster.register("a", tree_on(["C0S0"]))
        cluster.register("b", tree_on(["C0S0"]))
        with pytest.raises(AdmissionError):
            cluster.register("c", tree_on(["C0S0"]))

    def test_failed_admission_leaves_router_clean(self):
        registry = clustered_registry(2, 2, seed=5)
        cluster = ClusterServer(registry, n_shards=2)
        cluster.register("a", tree_on(["C0S0"]))
        before = len(cluster.router.decisions)
        with pytest.raises(StreamError):
            cluster.register("bad", tree_on(["nope"]))  # unregistered stream
        assert len(cluster.router.decisions) == before
        assert "bad" not in cluster

    def test_deregister_updates_assignment(self):
        registry, population = small_environment()
        cluster = ClusterServer(registry, n_shards=3)
        cluster.register_population(population)
        victim = population[0][0]
        cluster.deregister(victim)
        assert victim not in cluster
        with pytest.raises(AdmissionError):
            cluster.shard_of(victim)
        with pytest.raises(AdmissionError):
            cluster.deregister(victim)

    def test_adaptive_must_be_policy(self):
        registry, _ = small_environment()
        with pytest.raises(AdmissionError):
            ClusterServer(registry, adaptive=object())  # type: ignore[arg-type]


class TestExecution:
    def test_step_merges_all_shards(self):
        registry, population = small_environment()
        cluster = ClusterServer(registry, n_shards=3)
        cluster.register_population(population)
        results = cluster.step()
        assert set(results) == {name for name, _ in population}

    def test_empty_cluster_rejects_execution(self):
        registry, _ = small_environment()
        cluster = ClusterServer(registry, n_shards=2)
        with pytest.raises(StreamError):
            cluster.step()
        with pytest.raises(StreamError):
            cluster.run_batch(3)

    def test_report_aggregates_shards(self):
        registry, population = small_environment()
        cluster = ClusterServer(registry, n_shards=3)
        cluster.register_population(population)
        report = cluster.run_batch(5)
        assert report.rounds == 5
        assert report.n_queries == len(population)
        assert report.evals == 5 * len(population)
        assert set(report.per_query_cost) == {name for name, _ in population}
        assert report.total_cost == pytest.approx(
            sum(r.total_cost for r in report.shard_reports.values())
        )
        assert report.probes == sum(r.probes for r in report.shard_reports.values())
        assert report.throughput > 0
        assert "cluster batch" in report.summary()

    def test_threaded_matches_serial(self):
        """Shards are independent: worker count cannot change any outcome."""
        registry, population = small_environment(seed=7)
        serial = ClusterServer(registry, n_shards=3, workers=1, seed=9)
        serial.register_population(population)
        serial_report = serial.run_batch(6)

        registry2, population2 = small_environment(seed=7)
        threaded = ClusterServer(registry2, n_shards=3, workers=3, seed=9)
        threaded.register_population(population2)
        threaded_report = threaded.run_batch(6)

        assert serial_report.per_query_cost == threaded_report.per_query_cost
        assert serial_report.per_query_true_rate == threaded_report.per_query_true_rate

    def test_vectorized_engine_supported(self):
        registry, population = small_environment(seed=13)
        cluster = ClusterServer(registry, n_shards=3, seed=14)
        cluster.register_population(population)
        report = cluster.run_batch(4, engine="vectorized")
        assert report.rounds == 4
        assert report.total_cost > 0


class TestParity:
    def test_sharded_equals_unsharded_per_query(self):
        """The acceptance differential: K shards == one QueryServer, exactly."""
        registry, population = small_environment(seed=17, n_queries=30)
        cluster = ClusterServer(registry, n_shards=3, seed=18)
        cluster.register_population(population)
        cluster_report = cluster.run_batch(7)

        single = QueryServer(registry)
        factory = default_oracle_factory(18)
        for name, tree in population:
            single.register(name, tree, oracle=factory(name))
        single_report = single.run_batch(7)

        assert single_report.per_query_cost == pytest.approx(
            cluster_report.per_query_cost, abs=1e-12
        )
        assert single_report.per_query_true_rate == cluster_report.per_query_true_rate
        assert single_report.total_cost == pytest.approx(cluster_report.total_cost)

    def test_verify_cluster_parity_helper(self):
        deltas = verify_cluster_parity(n_queries=20, n_clusters=2, rounds=5, seed=3)
        assert len(deltas) == 20
        assert max(deltas.values()) <= 1e-9

    def test_parity_holds_on_vectorized_engine(self):
        deltas = verify_cluster_parity(
            n_queries=16, n_clusters=2, rounds=4, seed=5, engine="vectorized"
        )
        assert max(deltas.values()) <= 1e-9


class TestRebalance:
    def test_rebalance_noop_when_placement_good(self):
        registry, population = small_environment(seed=23)
        cluster = ClusterServer(registry, n_shards=3)
        cluster.register_population(population)
        assert cluster.rebalance() is None
        assert cluster.rebalances == []

    def test_rebalance_repairs_random_placement(self):
        registry, population = small_environment(seed=29, n_queries=30)
        cluster = ClusterServer(registry, n_shards=3, seed=30)
        cluster.register_population(population, method="random")
        degraded = cluster.partition_report()
        assert degraded.kept_fraction < 1.0
        event = cluster.rebalance()
        assert event is not None
        assert event.moves > 0
        assert event.new_report.kept_fraction == 1.0
        assert cluster.partition_report().kept_fraction == 1.0
        # The cluster still serves every query after the rebuild.
        report = cluster.run_batch(3)
        assert set(report.per_query_cost) == {name for name, _ in population}
        assert "rebalance" in event.describe()

    def test_rebalance_preserves_oracles(self):
        registry, population = small_environment(seed=31)
        cluster = ClusterServer(registry, n_shards=3, seed=32)
        cluster.register_population(population, method="random")
        before = {name: cluster.query(name).oracle for name in cluster.registered}
        cluster.rebalance(force=True)
        after = {name: cluster.query(name).oracle for name in cluster.registered}
        assert before == after  # same oracle instances, outcome streams continue

    def test_forced_rebalance_records_event(self):
        registry, population = small_environment(seed=37)
        cluster = ClusterServer(registry, n_shards=3)
        cluster.register_population(population)
        event = cluster.rebalance(force=True)
        assert event is not None
        assert len(cluster.rebalances) == 1


class TestClusterConcurrency:
    def test_concurrent_admissions_and_batches(self):
        """Background admission threads racing cluster batches stay safe."""
        import threading

        registry = clustered_registry(3, 3, seed=61)
        population = overlap_clustered_population(12, registry, 3, 3, seed=62)
        cluster = ClusterServer(registry, n_shards=3, seed=63)
        cluster.register_population(population)
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def admit(tid: int) -> None:
            barrier.wait()
            try:
                for i in range(8):
                    home = (tid + i) % 3
                    cluster.register(
                        f"t{tid}x{i}", tree_on([f"C{home}S0", f"C{home}S1"])
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def batch() -> None:
            barrier.wait()
            try:
                for _ in range(4):
                    cluster.run_batch(2)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=admit, args=(tid,)) for tid in range(3)]
        runner = threading.Thread(target=batch)
        for thread in threads:
            thread.start()
        runner.start()
        for thread in threads:
            thread.join()
        runner.join()

        assert errors == []
        assert len(cluster) == 12 + 3 * 8
        # Every admission is routed, assigned and resident exactly once.
        assert len(cluster.router.decisions) == 3 * 8
        for name in cluster.registered:
            assert name in cluster.shards[cluster.shard_of(name)]
        # Signatures cover every resident's streams (no lost updates).
        for shard in cluster.active_shards():
            for resident in shard.names:
                for leaf in shard.server.query(resident).tree.leaves:
                    assert leaf.stream in shard.signature


class TestRouterUnit:
    def test_route_requires_shards(self):
        router = ShardRouter(costs={"A": 1.0})
        with pytest.raises(AdmissionError):
            router.route("q", tree_on(["C0S0"]), [])

    def test_overlap_hit_rate(self):
        registry = clustered_registry(2, 2, seed=41)
        cluster = ClusterServer(registry, n_shards=2)
        cluster.register("a", tree_on(["C0S0"]))  # least-loaded (cold start)
        cluster.register("b", tree_on(["C0S0"]))  # overlap
        assert cluster.router.overlap_hits == 1
        assert cluster.router.overlap_hit_rate == pytest.approx(0.5)


class TestExperimentDriver:
    def test_run_cluster_compare_smoke(self):
        report = run_cluster_compare(
            n_queries=24, n_clusters=3, rounds=4, streams_per_cluster=3, seed=2
        )
        assert [r.label for r in report.results] == [
            "single",
            "overlap-sharded",
            "random-sharded",
        ]
        single = report.result("single")
        sharded = report.result("overlap-sharded")
        assert single.n_shards == 1
        assert sharded.n_shards == 3
        # Identical population + per-name oracles: stream-disjoint sharding
        # cannot change the total cost.
        assert sharded.total_cost == pytest.approx(single.total_cost)
        assert report.speedup("overlap-sharded") > 0
        record = report.to_record()
        assert record["n_queries"] == 24
        assert len(record["modes"]) == 3
        assert len(report.summary_rows()) == 3

    def test_unknown_mode_label_rejected(self):
        report = run_cluster_compare(n_queries=12, n_clusters=2, rounds=2)
        with pytest.raises(StreamError):
            report.result("warp")
