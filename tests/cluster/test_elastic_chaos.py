"""Threaded elasticity chaos: resizes and admissions hammering live batches.

The cluster's concurrency contract: every topology change (split, drain,
resize, rebalance) serializes with batches and admissions on the cluster
RLock, while shards inside a batch still run concurrently on the pool. These
tests race all three against each other and assert the invariants that make
elasticity safe to run in production:

* **no lost queries** — everything admitted is resident exactly once;
* **no double-serving** — every batch evaluates each then-resident query
  exactly once, and a query's lifetime stats exist on exactly one shard;
* **accounting conserved** — per-query lifetime cost equals the sum of the
  batch reports' per-query costs, across every migration the resizes caused.
"""

from __future__ import annotations

import threading

import pytest

from repro.adaptive import ElasticPolicy
from repro.cluster import ClusterServer, ClusterReport
from repro.generators import clustered_registry, overlap_clustered_population
from repro.obs import Telemetry, render_prometheus


def build(seed: int, n_queries: int = 36, clusters: int = 4):
    registry = clustered_registry(clusters, 3, seed=seed)
    population = overlap_clustered_population(
        n_queries, registry, clusters, 3, seed=seed + 1
    )
    return registry, population


class TestElasticChaos:
    def test_resize_and_admissions_during_concurrent_batches(self):
        registry, population = build(seed=71)
        initial, late = population[:18], population[18:]
        cluster = ClusterServer(registry, n_shards=2, seed=72)
        cluster.register_population(initial)

        errors: list[BaseException] = []
        reports: list[ClusterReport] = []
        barrier = threading.Barrier(3)

        def admitter() -> None:
            barrier.wait()
            try:
                for name, tree in late:
                    cluster.register(name, tree)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def resizer() -> None:
            barrier.wait()
            try:
                for width in (5, 1, 4, 2, 6, 3):
                    cluster.resize(width)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def batcher() -> None:
            barrier.wait()
            try:
                for _ in range(8):
                    reports.append(cluster.run_batch(2))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=admitter),
            threading.Thread(target=resizer),
            threading.Thread(target=batcher),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert cluster.n_shards == 3  # last resize won

        # No lost queries: everything admitted is resident exactly once.
        expected = {name for name, _ in population}
        assert set(cluster.registered) == expected
        resident = [
            name for shard in cluster.shards.values() for name in shard.names
        ]
        assert sorted(resident) == sorted(expected)
        for name in expected:
            assert name in cluster.shards[cluster.shard_of(name)]

        # No double-serving inside any batch: one result slot per resident,
        # and the batch covered exactly the then-resident population.
        for report in reports:
            names = list(report.per_query_cost)
            assert len(names) == len(set(names))
            assert len(names) == report.n_queries

        # Accounting conserved across every migration: lifetime stats exist
        # exactly once, and their totals equal what the batches reported.
        lifetime: dict[str, float] = {}
        rounds_lifetime: dict[str, int] = {}
        for shard in cluster.shards.values():
            for name, stats in shard.server.metrics.per_query.items():
                assert name not in lifetime, f"{name!r} double-counted"
                lifetime[name] = stats.cost
                rounds_lifetime[name] = stats.rounds
        batch_totals: dict[str, float] = {}
        batch_rounds: dict[str, int] = {}
        for report in reports:
            for name, cost in report.per_query_cost.items():
                batch_totals[name] = batch_totals.get(name, 0.0) + cost
                batch_rounds[name] = batch_rounds.get(name, 0) + report.rounds
        assert set(batch_totals) <= set(lifetime)
        for name, cost in batch_totals.items():
            assert lifetime[name] == pytest.approx(cost)
            assert rounds_lifetime[name] == batch_rounds[name]
        assert sum(lifetime.values()) == pytest.approx(
            sum(report.total_cost for report in reports)
        )

    def test_policy_driven_cluster_survives_hammering(self):
        """Auto-elastic decisions racing churn threads stay consistent."""
        registry, population = build(seed=81, n_queries=40)
        policy = ElasticPolicy(
            target_shard_queries=10, min_split_size=4, churn_every=16
        )
        cluster = ClusterServer(registry, n_shards=1, seed=82, elastic=policy)
        cluster.register_population(population[:10])

        errors: list[BaseException] = []
        barrier = threading.Barrier(3)

        def churner() -> None:
            barrier.wait()
            try:
                for name, tree in population[10:]:
                    cluster.register(name, tree)
                for name, _ in population[10:30]:
                    cluster.deregister(name)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def batcher() -> None:
            barrier.wait()
            try:
                for _ in range(10):
                    cluster.run_batch(1)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def inspector() -> None:
            barrier.wait()
            try:
                for _ in range(10):
                    cluster.describe()
                    cluster.shard_metrics()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=churner),
            threading.Thread(target=batcher),
            threading.Thread(target=inspector),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        expected = {name for name, _ in population[:10]} | {
            name for name, _ in population[30:]
        }
        assert set(cluster.registered) == expected
        resident = [
            name for shard in cluster.shards.values() for name in shard.names
        ]
        assert sorted(resident) == sorted(expected)
        # The elastic log is a consistent audit trail.
        for event in cluster.elastic_log:
            assert event.kind in (
                "split", "drain", "drain-partial", "grow", "rebalance"
            )

    def test_telemetry_stays_consistent_under_hammering(self):
        """One shared Telemetry hammered by resizes, admissions and batches
        must stay internally consistent: contiguous trace sequence numbers,
        counters that equal what the batch reports said, per-shard
        histograms that roll up to one observation per shard-batch span,
        and a snapshot that still renders as Prometheus text."""
        registry, population = build(seed=91)
        initial, late = population[:18], population[18:]
        telemetry = Telemetry(capacity=100_000)
        cluster = ClusterServer(registry, n_shards=2, seed=92, telemetry=telemetry)
        cluster.register_population(initial)

        errors: list[BaseException] = []
        reports: list[ClusterReport] = []
        barrier = threading.Barrier(3)

        def admitter() -> None:
            barrier.wait()
            try:
                for name, tree in late:
                    cluster.register(name, tree)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def resizer() -> None:
            barrier.wait()
            try:
                for width in (4, 1, 3, 2):
                    cluster.resize(width)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def batcher() -> None:
            barrier.wait()
            try:
                for _ in range(6):
                    reports.append(cluster.run_batch(2))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=admitter),
            threading.Thread(target=resizer),
            threading.Thread(target=batcher),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        reg = telemetry.registry

        # Trace integrity: no torn or dropped records under concurrency.
        records = telemetry.tracer.records()
        assert [r["seq"] for r in records] == list(
            range(1, telemetry.tracer.emitted + 1)
        )

        # Counter/report agreement, summed over every racing batch.
        assert reg.value("repro_cluster_batches_total") == len(reports)
        assert reg.value("repro_cluster_rounds_total") == sum(
            r.rounds for r in reports
        )
        assert reg.value("repro_cluster_cost_total") == pytest.approx(
            sum(r.total_cost for r in reports)
        )
        # Every shard-batch span left exactly one histogram observation,
        # and the labelled cells merge losslessly into the cluster view;
        # the shard-level round counter totals the spans' round counts.
        shard_spans = telemetry.tracer.spans("shard-batch")
        assert reg.value("repro_rounds_total") == sum(
            s["attrs"]["rounds"] for s in shard_spans
        )
        merged = reg.merged_histogram("repro_shard_batch_seconds")
        assert merged is not None and merged.count == len(shard_spans)

        # Migrations balance and elastic actions all hit the counter.
        assert reg.value("repro_migrations_total", direction="in") == reg.value(
            "repro_migrations_total", direction="out"
        )
        logged = sum(
            reg.value("repro_elastic_actions_total", kind=kind)
            for kind in ("split", "drain", "drain-partial", "grow", "rebalance")
        )
        assert logged == len(cluster.elastic_log)

        # The final snapshot still renders.
        assert "repro_cluster_rounds_total" in render_prometheus(reg)
