"""Process-mode cluster: spawn workers, parity, migration, roll-ups.

Every test here drives real spawned worker processes, so the module wires a
stdlib watchdog around each test: a hung pipe handshake (the failure mode of
a protocol bug) would otherwise stall the whole suite. ``faulthandler``
dumps every thread's traceback and hard-exits if a test overruns — the
stdlib stand-in for a per-test timeout plugin, per the repo's
no-new-dependencies rule.
"""

from __future__ import annotations

import faulthandler
import pickle

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.cluster import ClusterServer, default_oracle_factory
from repro.errors import AdmissionError, StreamError
from repro.experiments.cluster import (
    run_cluster_compare,
    verify_cluster_parity,
    verify_elastic_parity,
)
from repro.generators import clustered_registry, overlap_clustered_population
from repro.obs import Telemetry
from repro.service import QueryServer

WATCHDOG_SECONDS = 120.0


@pytest.fixture(autouse=True)
def spawn_watchdog():
    """Dump all stacks and exit if a process-mode test wedges."""
    faulthandler.dump_traceback_later(WATCHDOG_SECONDS, exit=True)
    yield
    faulthandler.cancel_dump_traceback_later()


def small_environment(seed: int = 0, n_queries: int = 18, clusters: int = 3):
    registry = clustered_registry(clusters, 3, seed=seed)
    population = overlap_clustered_population(
        n_queries, registry, clusters, 3, cross_cluster_prob=0.0, seed=seed + 1
    )
    return registry, population


class TestExecutorSelection:
    def test_unknown_executor_rejected(self):
        registry, _ = small_environment()
        with pytest.raises(AdmissionError):
            ClusterServer(registry, n_shards=2, executor="greenlet")

    def test_thread_mode_shards_are_in_process(self):
        from repro.cluster import ShardServer

        registry, population = small_environment()
        cluster = ClusterServer(registry, n_shards=2)
        cluster.register_population(population)
        assert all(
            isinstance(shard, ShardServer) for shard in cluster.shards.values()
        )

    def test_process_mode_shards_are_worker_proxies(self):
        from repro.cluster import ShardWorkerProxy

        registry, population = small_environment()
        with ClusterServer(registry, n_shards=2, executor="process") as cluster:
            cluster.register_population(population)
            assert all(
                isinstance(shard, ShardWorkerProxy)
                for shard in cluster.shards.values()
            )


class TestProcessParity:
    """The executor is an implementation detail: costs must be bit-identical."""

    def test_cluster_parity_under_process_executor(self):
        deltas = verify_cluster_parity(
            executor="process", n_queries=18, n_clusters=3, rounds=4, seed=3
        )
        assert max(deltas.values()) == 0.0

    def test_elastic_gauntlet_under_process_executor(self):
        deltas = verify_elastic_parity(
            executor="process",
            n_queries=15,
            n_clusters=3,
            streams_per_cluster=3,
            rounds=3,
            seed=5,
        )
        assert max(deltas.values()) == 0.0

    def test_process_batch_equals_thread_batch(self):
        reports = {}
        for executor in ("thread", "process"):
            registry, population = small_environment(seed=11)
            cluster = ClusterServer(
                registry, n_shards=3, executor=executor, seed=11
            )
            try:
                cluster.register_population(population)
                reports[executor] = cluster.run_batch(4)
            finally:
                cluster.close()
        assert (
            reports["process"].per_query_cost == reports["thread"].per_query_cost
        )
        assert (
            reports["process"].per_query_true_rate
            == reports["thread"].per_query_true_rate
        )
        assert reports["process"].total_cost == reports["thread"].total_cost

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 40), rounds=st.integers(2, 4))
    def test_gauntlet_parity_holds_across_seeds(self, seed: int, rounds: int):
        deltas = verify_elastic_parity(
            executor="process",
            n_queries=12,
            n_clusters=3,
            streams_per_cluster=3,
            rounds=rounds,
            seed=seed,
        )
        assert max(deltas.values()) == 0.0


class TestClauseSharingParity:
    """Sub-tree plan sharing must be invisible to costs in every executor.

    The population is adversarial for whole-tree caching: trees are distinct
    2-clause combinations drawn from a 4-clause pool, so whole-tree keys
    never repeat while every AND clause recurs across trees. Clause-tier
    reuse fires (asserted via the cluster cache's stats), yet unsharded,
    thread-sharded and process-sharded serving all land on identical costs.
    """

    @staticmethod
    def clause_population(registry):
        from itertools import combinations

        from repro.core.leaf import Leaf
        from repro.core.tree import DnfTree

        names = list(registry.names)[:6]
        costs = registry.cost_table()
        pool = [
            [Leaf(names[0], 2, 0.3), Leaf(names[1], 1, 0.6)],
            [Leaf(names[2], 3, 0.2), Leaf(names[3], 1, 0.7)],
            [Leaf(names[4], 1, 0.4), Leaf(names[5], 2, 0.5)],
            [Leaf(names[0], 1, 0.8), Leaf(names[2], 2, 0.35)],
        ]
        population = []
        for q, (i, j) in enumerate(combinations(range(len(pool)), 2)):
            groups = [list(pool[i]), list(pool[j])]
            used = {leaf.stream for group in groups for leaf in group}
            tree = DnfTree(groups, {stream: costs[stream] for stream in used})
            population.append((f"q{q}", tree))
        return population

    def test_cost_parity_with_subtree_sharing(self):
        totals = {}
        for mode in ("unsharded", "thread", "process"):
            registry = clustered_registry(3, 3, seed=33)
            population = self.clause_population(registry)
            if mode == "unsharded":
                server = QueryServer(registry)
                factory = default_oracle_factory(7)
                for name, tree in population:
                    server.register(name, tree, oracle=factory(name))
                totals[mode] = server.run_batch(4).total_cost
            else:
                cluster = ClusterServer(
                    registry, n_shards=2, executor=mode, seed=7
                )
                try:
                    cluster.register_population(population)
                    totals[mode] = cluster.run_batch(4).total_cost
                    stats = cluster.plan_cache.stats()
                    assert stats["hit_rate"] == 0.0  # no whole-tree isomorphs
                    assert stats["subtree_hit_rate"] > 0.0  # clauses shared
                finally:
                    cluster.close()
        assert totals["thread"] == totals["unsharded"]
        assert totals["process"] == totals["unsharded"]


class TestMigrationPayloads:
    """Pickled migration payloads must be equivalent to in-memory handoff."""

    def _migrate(self, *, pickled: bool):
        registry, population = small_environment(seed=21, n_queries=12)
        factory = default_oracle_factory(9)
        source = QueryServer(registry)
        for name, tree in population:
            source.register(name, tree, oracle=factory(name))
        source.run_batch(5)

        movers = [name for name, _ in population[:5]]
        streams = set()
        for name, tree in population[:5]:
            streams.update(tree.streams)
        state = source.cache.export_stream_state(streams)
        snapshots = [source.export_query(name) for name in movers]
        if pickled:
            # Exactly what crosses the worker pipe during a shard migration.
            state = pickle.loads(pickle.dumps(state))
            snapshots = pickle.loads(pickle.dumps(snapshots))

        registry2, _ = small_environment(seed=21, n_queries=12)
        dest = QueryServer(registry2)
        dest.sync_round_clock(source.rounds_served)
        for snapshot in snapshots:
            dest.admit_migrated(snapshot)
        dest.cache.adopt_stream_state(*state)
        return dest.run_batch(4)

    def test_pickled_handoff_equals_in_memory_handoff(self):
        in_memory = self._migrate(pickled=False)
        crossed = self._migrate(pickled=True)
        assert crossed.per_query_cost == in_memory.per_query_cost
        assert crossed.per_query_true_rate == in_memory.per_query_true_rate
        assert crossed.items_fetched == in_memory.items_fetched  # cache warmth

    def test_snapshot_round_trip_preserves_fields(self):
        registry, population = small_environment(seed=2, n_queries=6)
        server = QueryServer(registry)
        factory = default_oracle_factory(4)
        for name, tree in population:
            server.register(name, tree, oracle=factory(name))
        server.run_batch(3)
        name = population[0][0]
        snapshot = server.export_query(name)
        server.admit_migrated(snapshot)  # keep the donor serving

        copy = pickle.loads(pickle.dumps(snapshot))
        assert copy.query.name == snapshot.query.name
        assert copy.query.schedule == snapshot.query.schedule
        assert copy.query.tree.streams == snapshot.query.tree.streams
        assert copy.stats == snapshot.stats
        assert copy.belief == snapshot.belief


class TestSharedPlanCache:
    """One cluster-wide cache: workers read through the command channel."""

    def test_one_miss_per_shape_cluster_wide(self):
        registry, population = small_environment(seed=7)
        with ClusterServer(registry, n_shards=3, executor="process") as cluster:
            cluster.register_population(population)
            cluster.run_batch(3)
            stats = cluster.plan_cache.stats()
            # Every canonical shape was computed exactly once, no matter
            # which worker saw it first; repeats settled as hits.
            assert stats["misses"] == stats["size"] == float(len(cluster.plan_cache))
            assert stats["hits"] > 0
            report = cluster.run_batch(2)
            assert report.plan_cache_hit_rate > 0.0

    def test_cache_stats_match_thread_mode(self):
        stats = {}
        for executor in ("thread", "process"):
            registry, population = small_environment(seed=13)
            cluster = ClusterServer(
                registry, n_shards=3, executor=executor, seed=13
            )
            try:
                cluster.register_population(population)
                cluster.run_batch(3)
                stats[executor] = cluster.plan_cache.stats()
            finally:
                cluster.close()
        assert stats["process"] == stats["thread"]


class TestTelemetryRollup:
    def test_worker_deltas_merge_into_parent_registry(self):
        registry, population = small_environment(seed=17)
        telemetry = Telemetry()
        with ClusterServer(
            registry, n_shards=3, executor="process", telemetry=telemetry
        ) as cluster:
            cluster.register_population(population)
            cluster.run_batch(5)
            # Each worker served 5 rounds; the parent's counter holds all 15.
            assert telemetry.registry.value("repro_rounds_total") == 15.0
            merged = telemetry.registry.merged_histogram(
                "repro_shard_batch_seconds"
            )
            assert merged is not None and merged.count == 3
            cluster.run_batch(2)
            assert telemetry.registry.value("repro_rounds_total") == 21.0


class TestWorkerLifecycle:
    def test_close_is_idempotent_and_context_manager_closes(self):
        registry, population = small_environment(seed=23)
        cluster = ClusterServer(registry, n_shards=2, executor="process")
        cluster.register_population(population)
        procs = [shard._proc for shard in cluster.shards.values()]
        cluster.close()
        cluster.close()
        assert all(proc is not None and not proc.is_alive() for proc in procs)

    def test_calls_after_close_raise_stream_error(self):
        registry, population = small_environment(seed=23)
        cluster = ClusterServer(registry, n_shards=2, executor="process")
        cluster.register_population(population)
        cluster.close()
        with pytest.raises(StreamError):
            cluster.run_batch(1)

    def test_worker_side_errors_surface_in_parent(self):
        registry, population = small_environment(seed=29)
        with ClusterServer(registry, n_shards=2, executor="process") as cluster:
            cluster.register_population(population)
            name = population[0][0]
            with pytest.raises(AdmissionError):
                cluster.register(name, population[0][1])  # duplicate name
            # The worker survives a rejected call and keeps serving.
            report = cluster.run_batch(2)
            assert report.rounds == 2


class TestCompareHarness:
    def test_run_cluster_compare_accepts_process_executor(self):
        report = run_cluster_compare(
            n_queries=12,
            n_clusters=3,
            streams_per_cluster=3,
            rounds=3,
            executor="process",
            seed=3,
        )
        single = report.result("single")
        sharded = report.result("overlap-sharded")
        # Aggregate totals sum per-shard subtotals in a different order than
        # the unsharded run; per-query parity is asserted bitwise elsewhere.
        assert sharded.total_cost == pytest.approx(single.total_cost)
        assert sharded.evals == single.evals


class TestTraceRollup:
    """Worker trace deltas merge into one causal tree on the parent."""

    def test_process_mode_yields_one_merged_trace_with_zero_orphans(self):
        import os

        from repro.obs import build_forest

        registry, population = small_environment()
        tel = Telemetry()
        with ClusterServer(
            registry, n_shards=2, executor="process", telemetry=tel
        ) as cluster:
            cluster.register_population(population)
            cluster.run_batch(3, engine="vectorized")
            cluster.run_batch(2, engine="scalar")
        records = tel.tracer.records()
        forest = build_forest(records)
        # The acceptance bar: every record that names a parent can resolve
        # it locally — nothing was lost crossing the process boundary.
        assert forest.orphans == []

        # Every worker-side shard-batch span parents under one of the
        # parent-side cluster-batch spans, in the same trace.
        cluster_spans = {
            r["span_id"]: r for r in records if r.get("name") == "cluster-batch"
        }
        shard_spans = [r for r in records if r.get("name") == "shard-batch"]
        assert len(cluster_spans) == 2
        assert len(shard_spans) == 2 * 2  # two batches x two shards
        for span in shard_spans:
            parent = cluster_spans[span["parent_id"]]
            assert span["trace_id"] == parent["trace_id"]

        # The shard spans really were recorded in other processes.
        worker_pids = {span["pid"] for span in shard_spans}
        assert os.getpid() not in worker_pids
        assert all(
            cluster_spans[s]["pid"] == os.getpid() for s in cluster_spans
        )

        # Server-level batch spans nest under their shard-batch span.
        shard_ids = {span["span_id"] for span in shard_spans}
        batch_spans = [r for r in records if r.get("name") == "batch"]
        assert batch_spans
        assert {span["parent_id"] for span in batch_spans} <= shard_ids

    def test_worker_step_rollup_and_plan_upcall_spans(self):
        registry, population = small_environment()
        tel = Telemetry()
        with ClusterServer(
            registry, n_shards=2, executor="process", telemetry=tel
        ) as cluster:
            cluster.register_population(population)
            cluster.step()
        # Registration-time plan upcalls roll up from the workers: they
        # carry the worker pid and the shared-plan cache key.
        upcalls = tel.tracer.spans("plan-cache-upcall")
        assert upcalls
        assert {s["pid"] for s in upcalls}.isdisjoint({__import__("os").getpid()})
        assert all("key" in s["attrs"] and "hit" in s["attrs"] for s in upcalls)

    def test_rollup_preserves_report_parity_with_thread_mode(self):
        registry, population = small_environment()

        def run(executor: str):
            tel = Telemetry()
            with ClusterServer(
                registry, n_shards=2, executor=executor, telemetry=tel
            ) as cluster:
                cluster.register_population(population)
                return cluster.run_batch(4), tel

        threaded, _ = run("thread")
        processed, tel = run("process")
        assert threaded.total_cost == processed.total_cost
        assert threaded.per_query_cost == processed.per_query_cost
        # The roll-up also delivered the shard histograms to the parent.
        merged = tel.registry.merged_histogram("repro_shard_batch_seconds")
        assert merged is not None and merged.count == 2
