"""ShardRouter unit coverage: fallback/capacity branches, the signature
cache (and the rebalance invalidation regression), and PartitionReport
duplicated-spend accounting across splits and drains."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterServer, ShardRouter, ShardServer
from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.errors import AdmissionError
from repro.generators import clustered_registry, overlap_clustered_population
from repro.service import QueryServer
from repro.streams.registry import StreamRegistry
from repro.streams.sources import UniformSource
from repro.streams.stream import StreamSpec


def registry_with(streams: list[str]) -> StreamRegistry:
    registry = StreamRegistry()
    for name in streams:
        registry.add(StreamSpec(name, 1.0), UniformSource(seed=hash(name) % 2**31))
    return registry


def tree_on(streams: list[str], items: int = 2) -> DnfTree:
    return DnfTree([[Leaf(s, items, 0.5) for s in streams]], {s: 1.0 for s in streams})


def make_shard(registry: StreamRegistry, shard_id: int, members: dict[str, list[str]]):
    shard = ShardServer(shard_id, QueryServer(registry), registry.cost_table())
    for name, streams in members.items():
        shard.register(name, tree_on(streams))
    return shard


class TestRouterBranches:
    def test_route_requires_shards(self):
        router = ShardRouter(costs={"A": 1.0})
        with pytest.raises(AdmissionError):
            router.route("q", tree_on(["A"]), [])

    def test_capacity_skips_best_overlap_shard(self):
        registry = registry_with(["A", "B"])
        full = make_shard(registry, 0, {"a1": ["A"], "a2": ["A"]})
        light = make_shard(registry, 1, {"b1": ["B"]})
        router = ShardRouter(costs=registry.cost_table(), max_shard_queries=2)
        # Shard 0 has the overlap but is full: the admission must fall
        # through to the least-loaded shard with room.
        decision = router.route("newcomer", tree_on(["A"]), [full, light])
        assert decision.shard_id == 1
        assert decision.reason == "least-loaded"

    def test_capacity_exhaustion_raises(self):
        registry = registry_with(["A"])
        s0 = make_shard(registry, 0, {"a1": ["A"]})
        s1 = make_shard(registry, 1, {"a2": ["A"]})
        router = ShardRouter(costs=registry.cost_table(), max_shard_queries=1)
        with pytest.raises(AdmissionError, match="at capacity"):
            router.route("q", tree_on(["A"]), [s0, s1])

    def test_group_too_large_for_any_shard_raises(self):
        registry = registry_with(["A"])
        s0 = make_shard(registry, 0, {})
        router = ShardRouter(costs=registry.cost_table(), max_shard_queries=3)
        with pytest.raises(AdmissionError, match="group of 4"):
            router.route_group("grp", {"A": 1.0}, [s0], group_size=4)

    def test_group_size_validated(self):
        router = ShardRouter(costs={"A": 1.0})
        registry = registry_with(["A"])
        shard = make_shard(registry, 0, {})
        with pytest.raises(AdmissionError):
            router.route_group("grp", {"A": 1.0}, [shard], group_size=0)

    def test_least_loaded_tie_breaks_to_lower_id(self):
        registry = registry_with(["A", "B"])
        s0 = make_shard(registry, 3, {})
        s1 = make_shard(registry, 5, {})
        router = ShardRouter(costs=registry.cost_table())
        decision = router.route("cold", tree_on(["A"]), [s1, s0])
        assert decision.shard_id == 3
        assert decision.reason == "least-loaded"

    def test_group_routing_prefers_combined_overlap(self):
        registry = registry_with(["A", "B", "C"])
        a_home = make_shard(registry, 0, {"a": ["A"]})
        b_home = make_shard(registry, 1, {"b": ["B"], "b2": ["B"]})
        router = ShardRouter(costs=registry.cost_table())
        # The group spends more on A than on B: it belongs with shard 0.
        decision = router.route_group(
            "grp", {"A": 4.0, "B": 1.0}, [a_home, b_home], group_size=2
        )
        assert decision.shard_id == 0
        assert decision.reason == "overlap"


class TestSignatureCache:
    def test_route_snapshots_and_record_invalidates(self):
        registry = registry_with(["A", "B"])
        shard = make_shard(registry, 0, {"a": ["A"]})
        router = ShardRouter(costs=registry.cost_table())
        router.route("q1", tree_on(["B"]), [shard])
        # The snapshot predates B's arrival on the shard...
        shard.register("b", tree_on(["B"]))
        stale = router.route("q2", tree_on(["B"]), [shard])
        assert stale.reason == "least-loaded"  # cached signature has no B
        # ...recording an admission for the shard drops its snapshot.
        router.record(stale)
        fresh = router.route("q3", tree_on(["B"]), [shard])
        assert fresh.reason == "overlap"

    def test_invalidate_selected_and_all(self):
        registry = registry_with(["A", "B"])
        s0 = make_shard(registry, 0, {"a": ["A"]})
        s1 = make_shard(registry, 1, {"b": ["B"]})
        router = ShardRouter(costs=registry.cost_table())
        router.route("warm", tree_on(["A"]), [s0, s1])
        assert set(router._signatures) == {0, 1}
        router.invalidate_signatures((0,))
        assert set(router._signatures) == {1}
        router.invalidate_signatures()
        assert router._signatures == {}

    def test_rebalance_invalidates_router_signatures(self):
        """Regression: a rebalance moves streams between shards; cached
        router signatures from before it must not route new arrivals to the
        shard their streams just left."""
        registry = clustered_registry(3, 3, seed=61)
        population = overlap_clustered_population(24, registry, 3, 3, seed=62)
        cluster = ClusterServer(registry, n_shards=3, seed=63)
        cluster.register_population(population, method="random")
        # Populate the router's signature snapshots under the degraded
        # (random) placement.
        probe = tree_on(["C1S0", "C1S1"])
        cluster.router.route("probe", probe, list(cluster.shards.values()))
        assert cluster.router._signatures  # snapshots cached
        event = cluster.rebalance()
        assert event is not None and event.moves > 0
        # Without the invalidation in rebalance() the stale snapshots would
        # still describe the pre-move layout.
        assert cluster.router._signatures == {}
        home = cluster.register("newcomer", probe)
        kin = cluster.shard_of("q0001")  # q0001 is anchored to cluster 1
        assert home == kin
        assert cluster.router.decisions[-1].reason == "overlap"
        assert cluster.partition_report().kept_fraction == 1.0


class TestDuplicatedSpendAccounting:
    def test_cut_split_then_drain_restores_accounting(self):
        """A cut split duplicates a stream's spend across two shards; the
        drain that reunites the community must bring the duplicated-spend
        accounting back to zero."""
        registry = registry_with(["A", "B", "S"])
        cluster = ClusterServer(registry, n_shards=1)

        def glued(anchor: str) -> DnfTree:
            # Heavy on the community anchor, one thin leaf on the glue
            # stream S, so label propagation sees two dense communities.
            return DnfTree(
                [[Leaf(anchor, 5, 0.5), Leaf("S", 1, 0.5)]],
                {anchor: 1.0, "S": 1.0},
            )

        for i in range(3):
            cluster.register(f"left{i}", glued("A"))
        for i in range(3):
            cluster.register(f"right{i}", glued("B"))
        assert cluster.partition_report().duplicated_stream_cost == 0.0
        event = cluster.split_shard(0, allow_cut=True)
        assert event is not None
        split_report = cluster.partition_report()
        # The glue stream S is now windowed by both shards: duplicated spend.
        assert split_report.duplicated_stream_cost > 0.0
        assert split_report.cut_weight > 0.0
        victim = min(cluster.shards, key=lambda sid: len(cluster.shards[sid]))
        cluster.drain_shard(victim)
        drained_report = cluster.partition_report()
        assert drained_report.duplicated_stream_cost == 0.0
        assert drained_report.cut_weight == 0.0
        assert drained_report.kept_fraction == 1.0

    def test_disjoint_drain_never_duplicates(self):
        registry = clustered_registry(3, 3, seed=67)
        population = overlap_clustered_population(18, registry, 3, 3, seed=68)
        cluster = ClusterServer(registry, n_shards=3, seed=69)
        cluster.register_population(population)
        victim = max(cluster.shards, key=lambda sid: len(cluster.shards[sid]))
        cluster.drain_shard(victim)
        report = cluster.partition_report()
        assert report.duplicated_stream_cost == 0.0
        assert report.kept_fraction == 1.0
