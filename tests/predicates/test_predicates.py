"""Tests for window operators, predicates and probability estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError
from repro.predicates import (
    Comparator,
    Predicate,
    apply_window_op,
    estimate_from_source,
    leaves_from_predicates,
    register_window_op,
)
from repro.streams import (
    ConstantSource,
    ReplaySource,
    Source,
    StreamRegistry,
    StreamSpec,
    UniformSource,
)


class TestWindowOps:
    values = np.array([1.0, 5.0, 3.0])

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("LAST", 3.0),
            ("AVG", 3.0),
            ("MEAN", 3.0),
            ("MAX", 5.0),
            ("MIN", 1.0),
            ("SUM", 9.0),
            ("MEDIAN", 3.0),
            ("RANGE", 4.0),
        ],
    )
    def test_builtin_ops(self, op, expected):
        assert apply_window_op(op, self.values) == pytest.approx(expected)

    def test_std(self):
        assert apply_window_op("STD", self.values) == pytest.approx(np.std(self.values))

    def test_case_insensitive(self):
        assert apply_window_op("avg", self.values) == pytest.approx(3.0)

    def test_unknown_op(self):
        with pytest.raises(StreamError):
            apply_window_op("NOPE", self.values)

    def test_empty_window_rejected(self):
        with pytest.raises(StreamError):
            apply_window_op("AVG", np.array([]))

    def test_register_custom_op(self):
        register_window_op("P90TEST", lambda v: float(np.percentile(v, 90)))
        assert apply_window_op("P90TEST", self.values) > 3.0
        with pytest.raises(StreamError):
            register_window_op("P90TEST", lambda v: 0.0)


class TestPredicate:
    def test_evaluate_on_window(self):
        predicate = Predicate("A", "AVG", 3, "<", 4.0)
        assert predicate.evaluate(np.array([1.0, 5.0, 3.0])) is True
        assert predicate.evaluate(np.array([9.0, 9.0, 9.0])) is False

    def test_uses_newest_suffix_of_longer_window(self):
        predicate = Predicate("A", "MAX", 2, ">", 4.0)
        # newest last: the [5, 1] suffix has max 5... window is last 2 = [1, 5]?
        assert predicate.evaluate(np.array([9.0, 1.0, 5.0])) is True
        assert predicate.evaluate(np.array([9.0, 1.0, 2.0])) is False

    def test_insufficient_values_rejected(self):
        with pytest.raises(StreamError):
            Predicate("A", "AVG", 5, "<", 1.0).evaluate(np.array([1.0, 2.0]))

    def test_text_rendering(self):
        assert Predicate("A", "AVG", 5, "<", 70).text() == "AVG(A,5) < 70"
        assert Predicate("C", "LAST", 1, "<", 3).text() == "C < 3"

    def test_to_leaf(self):
        leaf = Predicate("B", "MAX", 4, ">", 100).to_leaf(0.3)
        assert leaf.stream == "B" and leaf.items == 4 and leaf.prob == 0.3
        assert leaf.label == "MAX(B,4) > 100"

    @pytest.mark.parametrize("cmp", ["<", "<=", ">", ">=", "==", "!="])
    def test_all_comparators(self, cmp):
        predicate = Predicate("A", "LAST", 1, cmp, 2.0)
        result = predicate.evaluate(np.array([2.0]))
        assert result == {"<": False, "<=": True, ">": False, ">=": True, "==": True, "!=": False}[cmp]

    def test_bad_comparator_rejected(self):
        with pytest.raises(StreamError):
            Predicate("A", "LAST", 1, "=", 2.0)

    def test_bad_window_rejected(self):
        with pytest.raises(StreamError):
            Predicate("A", "LAST", 0, "<", 2.0)

    def test_comparator_constants(self):
        assert Comparator.LT == "<" and Comparator.GE == ">="


class TestEstimation:
    def test_constant_source_extreme_probs(self):
        always = Predicate("A", "LAST", 1, "<", 10.0)
        never = Predicate("A", "LAST", 1, ">", 10.0)
        source = ConstantSource(5.0)
        high = estimate_from_source(always, source, n_windows=100)
        low = estimate_from_source(never, source, n_windows=100)
        assert high > 0.98 and low < 0.02
        # Laplace smoothing keeps them inside (0, 1)
        assert 0.0 < low and high < 1.0

    def test_uniform_source_half_probability(self):
        predicate = Predicate("A", "LAST", 1, "<", 0.5)
        source = UniformSource(0.0, 1.0, seed=9)
        estimate = estimate_from_source(predicate, source, n_windows=500)
        assert estimate == pytest.approx(0.5, abs=0.08)

    def test_stride_and_start(self):
        source = ReplaySource([0.0, 1.0] * 50)
        predicate = Predicate("A", "LAST", 1, ">", 0.5)
        # stride 2 starting at index 0: always the 0.0 items... windows end at
        # start + window - 1 + k*stride = even indices -> value 0.0
        estimate = estimate_from_source(predicate, source, n_windows=20, start=0, stride=2)
        assert estimate < 0.1

    def test_invalid_params(self):
        source = ConstantSource(0.0)
        predicate = Predicate("A", "LAST", 1, "<", 1.0)
        with pytest.raises(StreamError):
            estimate_from_source(predicate, source, n_windows=0)
        with pytest.raises(StreamError):
            estimate_from_source(predicate, source, stride=0)

    def test_negative_start_rejected(self):
        source = ConstantSource(0.0)
        predicate = Predicate("A", "LAST", 1, "<", 1.0)
        with pytest.raises(StreamError, match="start"):
            estimate_from_source(predicate, source, start=-1)

    def test_exhausted_tape_raises_stream_error(self):
        # 10-item tape cannot host 20 windows: round-trips as StreamError.
        source = ReplaySource([0.0] * 10)
        predicate = Predicate("A", "LAST", 1, "<", 1.0)
        with pytest.raises(StreamError):
            estimate_from_source(predicate, source, n_windows=20)

    def test_leaky_index_error_is_wrapped(self):
        """A source raising a raw IndexError surfaces as a labelled StreamError."""

        class ListBackedSource(Source):
            def __init__(self, values):
                self.values = values

            def value_at(self, tau: int) -> float:
                return self.values[tau]  # IndexError past the end

        source = ListBackedSource([0.0] * 5)
        predicate = Predicate("A", "AVG", 2, "<", 1.0)
        with pytest.raises(StreamError, match="exhausted"):
            estimate_from_source(predicate, source, n_windows=10)
        # In-range profiling still works.
        assert estimate_from_source(predicate, source, n_windows=4) > 0.5

    def test_docstring_window_end_formula_matches_code(self):
        """Window k ends at start + window - 1 + k*stride, per the docstring."""

        class RecordingSource(Source):
            def __init__(self):
                self.ends: list[int] = []

            def value_at(self, tau: int) -> float:
                return 0.0

            def window(self, end_tau: int, count: int):
                self.ends.append(end_tau)
                return super().window(end_tau, count)

        source = RecordingSource()
        predicate = Predicate("A", "AVG", 3, "<", 1.0)
        estimate_from_source(predicate, source, n_windows=4, start=2, stride=5)
        assert source.ends == [2 + 3 - 1 + k * 5 for k in range(4)]

    def test_leaves_from_predicates(self):
        registry = StreamRegistry()
        registry.add(StreamSpec("A", 1.0), ConstantSource(5.0))
        registry.add(StreamSpec("B", 2.0), ConstantSource(50.0))
        predicates = [
            Predicate("A", "LAST", 1, "<", 10.0),
            Predicate("B", "AVG", 3, ">", 100.0),
        ]
        leaves = leaves_from_predicates(predicates, registry, n_windows=50)
        assert len(leaves) == 2
        assert leaves[0].prob > 0.9 and leaves[1].prob < 0.1
        assert leaves[0].items == 1 and leaves[1].items == 3
