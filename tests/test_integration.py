"""End-to-end integration tests and remaining corner coverage."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DnfTree, Leaf, MonteCarloResult, dnf_schedule_cost
from repro.core.heuristics import get_scheduler
from repro.engine import Battery, ContinuousQuerySession
from repro.experiments.report import ascii_cost_scatter
from repro.lang import parse_query
from repro.predicates import Predicate, leaves_from_predicates
from repro.streams import (
    DataItemCache,
    GaussianSource,
    RandomWalkSource,
    ReplaySource,
    StreamRegistry,
    StreamSpec,
)


class TestFullPipelineStory:
    """Parse -> profile -> schedule -> execute -> replan, one narrative."""

    def test_telehealth_pipeline(self):
        registry = StreamRegistry()
        registry.add(
            StreamSpec("HR", 0.5), RandomWalkSource(80, 2, seed=1, low=40, high=180)
        )
        registry.add(StreamSpec("SPO2", 0.8), GaussianSource(96.5, 1.5, seed=2))
        predicates = [
            Predicate("HR", "AVG", 5, ">", 95),
            Predicate("SPO2", "MIN", 3, "<", 94),
            Predicate("HR", "AVG", 5, "<", 70),
        ]
        leaves = leaves_from_predicates(predicates, registry, n_windows=256)
        # probabilities were profiled, not guessed
        assert all(0.0 < leaf.prob < 1.0 for leaf in leaves)

        tree = DnfTree(
            [[leaves[0], leaves[1]], [leaves[2]]], registry.cost_table()
        )
        scheduler = get_scheduler("and-inc-c-over-p-dynamic")
        expected = dnf_schedule_cost(tree, scheduler.schedule(tree))
        assert expected > 0.0

        session = ContinuousQuerySession(
            tree,
            registry,
            scheduler,
            predicates=dict(enumerate(predicates)),
            battery=Battery(100.0),
            replan_every=20,
        )
        report = session.run(60)
        assert report.rounds == 60
        assert report.total_cost <= 60 * expected + 1e-9  # cross-round reuse helps
        assert session.trace.rounds == 60
        assert report.battery.drained_joules == pytest.approx(report.total_cost)

    def test_dsl_to_optimal_to_execution(self):
        parsed = parse_query(
            "(X[2] p=0.4 AND Y[1] p=0.6) OR (X[3] p=0.5 AND Z[1] p=0.3)",
            costs={"X": 1.0, "Y": 2.0, "Z": 0.5},
        )
        tree = parsed.as_dnf()
        from repro.core.dnf_optimal import optimal_depth_first
        from repro.core.heuristics import make_paper_heuristics

        optimum = optimal_depth_first(tree)
        for heuristic in make_paper_heuristics(seed=0).values():
            assert optimum.cost <= heuristic.cost(tree) + 1e-9


class TestRemainingCorners:
    def test_ascii_scatter_renders(self):
        baseline = np.linspace(1.0, 50.0, 200)
        comparison = baseline * np.random.default_rng(0).uniform(1.0, 1.8, 200)
        plot = ascii_cost_scatter(baseline, comparison, width=40, height=10)
        assert "read-once greedy" in plot
        assert plot.count("\n") >= 10

    def test_ascii_scatter_validates(self):
        with pytest.raises(ValueError):
            ascii_cost_scatter(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            ascii_cost_scatter(np.array([]), np.array([]))

    def test_monte_carlo_compatible_with_zero_stderr_mismatch(self):
        result = MonteCarloResult(mean=3.0, std_error=0.0, n_samples=10)
        assert result.compatible_with(3.0)
        assert not result.compatible_with(3.1)

    def test_advance_without_windows_keeps_everything(self):
        cache = DataItemCache(
            {"A": ReplaySource([float(i) for i in range(50)])}, {"A": 1.0}, now=10
        )
        cache.fetch_window("A", 5)
        cache.advance(2)  # no max_windows: nothing evicted
        result = cache.fetch_window("A", 7)
        # taus 5..11; 5-9 cached, 10-11 new
        assert result.fetched_items == 2

    def test_session_warmup_and_current_schedule(self):
        registry = StreamRegistry()
        registry.add(StreamSpec("A", 1.0), GaussianSource(0, 1, seed=0))
        tree = DnfTree([[Leaf("A", 3, 0.5)]])
        session = ContinuousQuerySession(
            tree,
            registry,
            get_scheduler("leaf-inc-c"),
            oracle=__import__("repro.engine", fromlist=["BernoulliOracle"]).BernoulliOracle(seed=0),
            warmup=5,
        )
        assert session.current_schedule == (0,)
        session.run(3)
        assert session.cache.now == 8

    def test_runtime_grid_with_random_heuristic(self):
        from repro.experiments import runtime_grid

        points = runtime_grid(
            heuristics=("leaf-random",),
            n_ands_values=(2,),
            leaves_per_and_values=(3,),
            trees_per_cell=1,
            repeats=1,
        )
        assert len(points) == 1

    def test_cli_fig5_csv(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "fig5.csv"
        assert main(["experiment", "fig5", "--scale", "1", "--csv", str(csv_path)]) == 0
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("optimal,")

    def test_cli_fig6_csv(self, tmp_path, capsys):
        from repro.cli import main

        csv_path = tmp_path / "fig6.csv"
        assert main(["experiment", "fig6", "--scale", "1", "--csv", str(csv_path)]) == 0
        assert csv_path.exists()

    def test_parser_rejects_float_window(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_query("AVG(A,2.5) < 3")

    def test_parser_scientific_threshold(self):
        parsed = parse_query("A >= -1.5e-3")
        assert parsed.predicates[0].threshold == pytest.approx(-0.0015)

    def test_deeply_nested_query(self):
        text = "(" * 20 + "A < 1" + ")" * 20 + " AND B[2]"
        parsed = parse_query(text)
        assert parsed.tree.size == 2
