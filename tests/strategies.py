"""Hypothesis strategies for PAOTR objects."""

from __future__ import annotations

import hypothesis.strategies as st

from repro import AndTree, DnfTree, Leaf

STREAM_NAMES = ("A", "B", "C", "D")

probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False)
safe_probs = st.floats(min_value=0.02, max_value=0.98, allow_nan=False)
items = st.integers(min_value=1, max_value=4)
stream_names = st.sampled_from(STREAM_NAMES)
costs_values = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


@st.composite
def leaves(draw, prob_strategy=probs) -> Leaf:
    return Leaf(
        stream=draw(stream_names),
        items=draw(items),
        prob=draw(prob_strategy),
    )


@st.composite
def and_trees(draw, min_leaves: int = 1, max_leaves: int = 6, prob_strategy=probs) -> AndTree:
    leaf_list = draw(
        st.lists(leaves(prob_strategy), min_size=min_leaves, max_size=max_leaves)
    )
    used = sorted({leaf.stream for leaf in leaf_list})
    cost_table = {name: draw(costs_values) for name in used}
    return AndTree(leaf_list, cost_table)


@st.composite
def dnf_trees(
    draw,
    min_ands: int = 1,
    max_ands: int = 3,
    max_per_and: int = 3,
    prob_strategy=probs,
) -> DnfTree:
    groups = draw(
        st.lists(
            st.lists(leaves(prob_strategy), min_size=1, max_size=max_per_and),
            min_size=min_ands,
            max_size=max_ands,
        )
    )
    used = sorted({leaf.stream for group in groups for leaf in group})
    cost_table = {name: draw(costs_values) for name in used}
    return DnfTree(groups, cost_table)


@st.composite
def dnf_trees_with_schedule(draw, **kwargs):
    tree = draw(dnf_trees(**kwargs))
    schedule = tuple(draw(st.permutations(range(tree.size))))
    return tree, schedule
