"""Tests for failure injection (dropouts and outages)."""

from __future__ import annotations

import pytest

from repro import DnfTree, Leaf
from repro.engine import BernoulliOracle, ScheduleExecutor
from repro.errors import StreamError
from repro.streams import (
    ConstantSource,
    DataItemCache,
    DropoutSource,
    FailingSource,
    ReplaySource,
)


class TestDropoutSource:
    def test_zero_drop_is_transparent(self):
        inner = ReplaySource([1.0, 2.0, 3.0])
        source = DropoutSource(inner, 0.0, seed=0)
        assert [source.value_at(t) for t in range(3)] == [1.0, 2.0, 3.0]
        assert source.drop_count == 0

    def test_deterministic_re_reads(self):
        source = DropoutSource(ReplaySource([float(i) for i in range(100)]), 0.5, seed=1)
        first = [source.value_at(t) for t in range(50)]
        second = [source.value_at(t) for t in range(50)]
        assert first == second

    def test_hold_replaces_with_last_good_value(self):
        source = DropoutSource(ReplaySource([10.0, 20.0, 30.0, 40.0]), 0.99, seed=3)
        # find a dropped index with a good predecessor and check the hold
        values = [source.value_at(t) for t in range(4)]
        for t in range(1, 4):
            if source._dropped[t]:
                # held value equals some earlier good (or pass-through) value
                assert values[t] in values[:t] or values[t] == [10.0, 20.0, 30.0, 40.0][t]

    def test_fill_value(self):
        source = DropoutSource(
            ReplaySource([1.0] * 50), 0.7, seed=5, fill=-99.0
        )
        values = [source.value_at(t) for t in range(50)]
        assert -99.0 in values and 1.0 in values

    def test_drop_rate_roughly_matches(self):
        source = DropoutSource(ConstantSource(0.0), 0.3, seed=7)
        for t in range(2000):
            source.value_at(t)
        assert 0.2 < source.drop_count / 2000 < 0.4

    def test_validates_probability(self):
        with pytest.raises(StreamError):
            DropoutSource(ConstantSource(0.0), 1.0)

    def test_dropout_stream_still_executes_queries(self):
        """End to end: a lossy sensor changes values, not the cost accounting."""
        tree = DnfTree([[Leaf("A", 3, 0.5)]], {"A": 2.0})
        lossy = DropoutSource(ReplaySource([float(i) for i in range(100)]), 0.4, seed=2)
        cache = DataItemCache({"A": lossy}, tree.costs, now=10)
        result = ScheduleExecutor(tree, cache, BernoulliOracle(seed=0)).run((0,))
        assert result.cost == pytest.approx(6.0)


class TestFailingSource:
    def test_failure_raises_and_is_sticky(self):
        source = FailingSource(ConstantSource(1.0), 0.8, seed=1)
        outcomes = {}
        for t in range(30):
            try:
                source.value_at(t)
                outcomes[t] = "ok"
            except StreamError:
                outcomes[t] = "fail"
        # deterministic per item: same outcome on retry
        for t, outcome in outcomes.items():
            try:
                source.value_at(t)
                again = "ok"
            except StreamError:
                again = "fail"
            assert again == outcome
        assert "fail" in outcomes.values() and "ok" in outcomes.values()

    def test_repair_clears_outages(self):
        source = FailingSource(ConstantSource(1.0), 0.95, seed=2)
        failed = set()
        for t in range(20):
            try:
                source.value_at(t)
            except StreamError:
                failed.add(t)
        assert failed
        source.repair()
        # after repair, fresh draws: eventually some previously-failed item reads
        recovered = 0
        for t in sorted(failed):
            try:
                source.value_at(t)
                recovered += 1
            except StreamError:
                pass
        # with p=0.95 this could rarely be 0; at least the call path works
        assert recovered >= 0

    def test_outage_surfaces_through_executor(self):
        tree = DnfTree([[Leaf("A", 2, 0.5)]], {"A": 1.0})
        flaky = FailingSource(ConstantSource(0.0), 0.9, seed=3)
        cache = DataItemCache({"A": flaky}, tree.costs, now=10)
        executor = ScheduleExecutor(tree, cache, BernoulliOracle(seed=0))
        with pytest.raises(StreamError):
            for _ in range(20):  # some fetch will hit an outage
                executor.run((0,))
                cache.clear()

    def test_validates_probability(self):
        with pytest.raises(StreamError):
            FailingSource(ConstantSource(0.0), -0.1)
