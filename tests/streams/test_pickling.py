"""Pickle round-trips for stream sources and the plan cache.

Process-mode cluster workers receive their shard's stream registry and
serving state over a spawn boundary, so every tape-bearing source must
survive ``pickle`` with its *deterministic* state intact: the memoized
prefix, the RNG continuation and any lazy draw maps. The thread locks are
process-local synchronization, not tape state — they are dropped on
pickling and recreated fresh on unpickling.

Regression context: before the ``__getstate__``/``__setstate__`` pairs,
``pickle.dumps`` of any source (or of a :class:`PlanCache`) raised
``TypeError: cannot pickle '_thread.lock' object``, which blocked the
process executor entirely.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.core.heuristics import get_scheduler
from repro.errors import StreamError
from repro.service import PlanCache, canonicalize
from repro.streams import (
    DriftingSource,
    DriftSchedule,
    DropoutSource,
    FailingSource,
    GaussianSource,
    MarkovChainSource,
    PeriodicSource,
    RandomWalkSource,
    StepDrift,
    UniformSource,
)


def _lock_type():
    return type(threading.Lock())


SEQUENTIAL_FACTORIES = [
    pytest.param(lambda: UniformSource(seed=11), id="uniform"),
    pytest.param(lambda: GaussianSource(mean=2.0, std=0.5, seed=11), id="gaussian"),
    pytest.param(
        lambda: RandomWalkSource(start=60.0, step_std=2.0, seed=11, low=40.0, high=180.0),
        id="random-walk",
    ),
    pytest.param(
        lambda: PeriodicSource(amplitude=2.0, period=7.0, noise_std=0.3, seed=11),
        id="periodic",
    ),
    pytest.param(
        lambda: MarkovChainSource(
            [0.0, 1.0, 2.0],
            [[0.6, 0.3, 0.1], [0.2, 0.6, 0.2], [0.1, 0.3, 0.6]],
            seed=11,
        ),
        id="markov",
    ),
]


class TestSequentialSourcePickle:
    @pytest.mark.parametrize("factory", SEQUENTIAL_FACTORIES)
    def test_round_trip_preserves_prefix_and_rng_continuation(self, factory):
        donor = factory()
        prefix = [donor.value_at(tau) for tau in range(20)]
        copy = pickle.loads(pickle.dumps(donor))

        # The memoized tape prefix crossed intact...
        assert copy._values == donor._values == prefix
        # ...and both continue with the *same* draws: the RNG state at item
        # 20 travelled with the pickle, so donor and copy stay one tape.
        donor_cont = [donor.value_at(tau) for tau in range(20, 40)]
        copy_cont = [copy.value_at(tau) for tau in range(20, 40)]
        assert copy_cont == donor_cont

    @pytest.mark.parametrize("factory", SEQUENTIAL_FACTORIES)
    def test_round_trip_recreates_a_fresh_lock(self, factory):
        donor = factory()
        donor.value_at(5)
        copy = pickle.loads(pickle.dumps(donor))
        assert isinstance(copy._extend_lock, _lock_type())
        assert copy._extend_lock is not donor._extend_lock

    def test_unpickled_copy_is_independent(self):
        donor = UniformSource(seed=3)
        donor.value_at(9)
        copy = pickle.loads(pickle.dumps(donor))
        donor.value_at(30)  # extending the donor must not touch the copy
        assert len(copy._values) == 10


class TestDriftingSourcePickle:
    def _source(self) -> DriftingSource:
        schedule = DriftSchedule([0.3], [StepDrift(at=8, targets={0: 0.9})])
        return DriftingSource(schedule, seed=13)

    def test_round_trip_preserves_tape_and_schedule(self):
        donor = self._source()
        prefix = [donor.value_at(tau) for tau in range(12)]
        copy = pickle.loads(pickle.dumps(donor))
        assert copy._values == prefix
        assert copy.schedule.probs_at(10)[0] == donor.schedule.probs_at(10)[0]
        # Continuation draws item-by-item with each index's own probability.
        assert [copy.value_at(t) for t in range(12, 30)] == [
            donor.value_at(t) for t in range(12, 30)
        ]
        assert isinstance(copy._extend_lock, _lock_type())


class TestFailureSourcePickle:
    def test_dropout_round_trip_preserves_drop_map(self):
        donor = DropoutSource(UniformSource(seed=5), 0.4, seed=21)
        donor_values = [donor.value_at(tau) for tau in range(15)]
        copy = pickle.loads(pickle.dumps(donor))

        assert copy._dropped == donor._dropped
        assert copy.drop_count == donor.drop_count
        # Already-drawn items replay identically; fresh indices (read in the
        # same order) continue the same RNG stream.
        assert [copy.value_at(tau) for tau in range(15)] == donor_values
        assert [copy.value_at(tau) for tau in range(15, 25)] == [
            donor.value_at(tau) for tau in range(15, 25)
        ]
        assert isinstance(copy._draw_lock, _lock_type())

    def test_failing_round_trip_preserves_outage_map(self):
        donor = FailingSource(UniformSource(seed=5), 0.5, seed=33)
        donor_outcomes = []
        for tau in range(15):
            try:
                donor_outcomes.append(("ok", donor.value_at(tau)))
            except StreamError:
                donor_outcomes.append(("fail", None))
        copy = pickle.loads(pickle.dumps(donor))

        assert copy._failed == donor._failed
        copy_outcomes = []
        for tau in range(15):
            try:
                copy_outcomes.append(("ok", copy.value_at(tau)))
            except StreamError:
                copy_outcomes.append(("fail", None))
        assert copy_outcomes == donor_outcomes
        assert isinstance(copy._draw_lock, _lock_type())


class TestWindowSingleLock:
    """The single-extension ``window`` must return exactly the per-item values."""

    @pytest.mark.parametrize("factory", SEQUENTIAL_FACTORIES)
    def test_window_matches_value_at(self, factory):
        windowed = factory()
        itemized = factory()
        got = windowed.window(29, 10)
        want = np.array([itemized.value_at(tau) for tau in range(20, 30)])
        np.testing.assert_array_equal(got, want)
        # Both tapes materialized the identical prefix.
        assert windowed._values == itemized._values

    def test_window_on_cold_tape_extends_once(self):
        source = UniformSource(seed=2)
        window = source.window(14, 15)
        assert len(window) == 15
        assert len(source._values) == 15

    def test_window_still_rejects_pre_start_reach(self):
        source = UniformSource(seed=2)
        with pytest.raises(StreamError):
            source.window(4, 6)

    def test_drifting_window_matches_value_at(self):
        schedule = DriftSchedule([0.5], [StepDrift(at=10, targets={0: 0.1})])
        windowed = DriftingSource(schedule, seed=7)
        itemized = DriftingSource(schedule, seed=7)
        got = windowed.window(19, 8)
        want = np.array([itemized.value_at(tau) for tau in range(12, 20)])
        np.testing.assert_array_equal(got, want)


class TestPlanCachePickle:
    def test_round_trip_preserves_entries_and_stats_exactly(self):
        scheduler = get_scheduler("and-inc-c-over-p-dynamic")
        cache = PlanCache(capacity=4)
        from repro import DnfTree, Leaf

        forms = [
            canonicalize(
                DnfTree(
                    [[Leaf("A", 2, p), Leaf("B", 1, 0.5)]],
                    costs={"A": 1.0, "B": 2.0},
                )
            )
            for p in (0.2, 0.4)
        ]
        for form in forms:
            cache.plan(form, scheduler)
        cache.plan(forms[0], scheduler)  # one hit

        copy = pickle.loads(pickle.dumps(cache))
        assert copy.stats() == cache.stats()
        assert len(copy) == len(cache)
        for form in forms:
            assert (form.key, scheduler.name) in copy
        # The recreated lock still guards the hot path.
        assert isinstance(copy._lock, _lock_type())
        before = copy.stats()["hits"]
        copy.plan(forms[1], scheduler)
        assert copy.stats()["hits"] == before + 1
