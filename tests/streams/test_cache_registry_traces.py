"""Tests for the item caches, stream registry and trace recording."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.streams import (
    ConstantSource,
    CountingCache,
    DataItemCache,
    LeafTrace,
    ReplaySource,
    StreamRegistry,
    StreamSpec,
    TraceRecorder,
    UniformSource,
    estimate_probability,
)


class TestCountingCache:
    def test_charges_only_missing_items(self):
        cache = CountingCache({"A": 2.0})
        first = cache.fetch_window("A", 3)
        assert first.fetched_items == 3 and first.cost == 6.0
        second = cache.fetch_window("A", 5)
        assert second.fetched_items == 2 and second.cost == 4.0
        third = cache.fetch_window("A", 4)
        assert third.fetched_items == 0 and third.cost == 0.0
        assert cache.charged == 10.0
        assert cache.fetch_counts == {"A": 5}

    def test_clear_forgets_items_not_charges(self):
        cache = CountingCache({"A": 1.0})
        cache.fetch_window("A", 2)
        cache.clear()
        assert cache.items_cached("A") == 0
        assert cache.charged == 2.0
        cache.reset_charges()
        assert cache.charged == 0.0

    def test_unknown_stream(self):
        with pytest.raises(StreamError):
            CountingCache({"A": 1.0}).fetch_window("B", 1)

    def test_bad_window(self):
        with pytest.raises(StreamError):
            CountingCache({"A": 1.0}).fetch_window("A", 0)


class TestDataItemCache:
    def make(self, now=10):
        sources = {"A": ReplaySource([float(i) for i in range(100)])}
        return DataItemCache(sources, {"A": 2.0}, now=now)

    def test_fetch_returns_window_newest_last(self):
        cache = self.make(now=10)
        result = cache.fetch_window("A", 3)
        # at time 10, newest item is tau=9
        assert list(result.values) == [7.0, 8.0, 9.0]
        assert result.fetched_items == 3 and result.cost == 6.0

    def test_refetch_is_free(self):
        cache = self.make()
        cache.fetch_window("A", 3)
        again = cache.fetch_window("A", 2)
        assert again.fetched_items == 0 and again.cost == 0.0
        assert cache.charged == 6.0

    def test_deeper_window_pays_margin(self):
        cache = self.make()
        cache.fetch_window("A", 2)
        deeper = cache.fetch_window("A", 5)
        assert deeper.fetched_items == 3 and deeper.cost == 6.0

    def test_advance_shifts_windows(self):
        cache = self.make(now=10)
        cache.fetch_window("A", 2)  # taus 8, 9
        cache.advance(1)
        result = cache.fetch_window("A", 2)  # taus 9, 10: only 10 missing
        assert result.fetched_items == 1
        assert list(result.values) == [9.0, 10.0]

    def test_advance_evicts_stale_items(self):
        cache = self.make(now=10)
        cache.fetch_window("A", 3)
        cache.advance(2, max_windows={"A": 3})
        # old taus 7,8,9; horizon = 12 - 3 = 9 -> tau 7, 8 evicted
        assert cache.items_cached("A") == 0  # newest (tau 11) missing -> run = 0
        result = cache.fetch_window("A", 3)
        assert result.fetched_items == 2  # tau 10, 11 fetched; tau 9 retained

    def test_items_cached_counts_contiguous_run(self):
        cache = self.make(now=10)
        assert cache.items_cached("A") == 0
        cache.fetch_window("A", 4)
        assert cache.items_cached("A") == 4
        cache.advance(1)
        assert cache.items_cached("A") == 0  # newest missing

    def test_window_larger_than_history(self):
        cache = self.make(now=3)
        with pytest.raises(StreamError):
            cache.fetch_window("A", 5)

    def test_unknown_stream(self):
        cache = self.make()
        with pytest.raises(StreamError):
            cache.fetch_window("B", 1)

    def test_missing_cost_rejected(self):
        with pytest.raises(StreamError):
            DataItemCache({"A": ConstantSource(1.0)}, {})

    def test_negative_advance_rejected(self):
        with pytest.raises(StreamError):
            self.make().advance(-1)


class TestStreamRegistry:
    def make(self):
        registry = StreamRegistry()
        registry.add(StreamSpec("A", 1.5), ConstantSource(1.0))
        registry.add(StreamSpec("B", 2.5), UniformSource(seed=0))
        return registry

    def test_lookup(self):
        registry = self.make()
        assert registry.spec("A").cost_per_item == 1.5
        assert "A" in registry and "C" not in registry
        assert registry.names == ("A", "B")
        assert len(registry) == 2

    def test_duplicate_rejected(self):
        registry = self.make()
        with pytest.raises(StreamError):
            registry.add(StreamSpec("A", 1.0), ConstantSource(0.0))

    def test_unknown_lookup(self):
        registry = self.make()
        with pytest.raises(StreamError):
            registry.spec("missing")
        with pytest.raises(StreamError):
            registry.source("missing")

    def test_cost_table(self):
        assert self.make().cost_table() == {"A": 1.5, "B": 2.5}

    def test_build_cache(self):
        cache = self.make().build_cache(now=16)
        result = cache.fetch_window("A", 4)
        assert result.cost == pytest.approx(6.0)

    def test_validate_tree_streams(self):
        registry = self.make()
        registry.validate_tree_streams(("A", "B"))
        with pytest.raises(StreamError):
            registry.validate_tree_streams(("A", "Z"))


class TestTraces:
    def test_estimate_probability_laplace(self):
        assert estimate_probability(0, 0) == pytest.approx(0.5)
        assert estimate_probability(10, 10) == pytest.approx(11 / 12)
        assert estimate_probability(0, 10) == pytest.approx(1 / 12)

    def test_estimate_probability_validates(self):
        with pytest.raises(ValueError):
            estimate_probability(5, 3)
        with pytest.raises(ValueError):
            estimate_probability(-1, 3)

    def test_leaf_trace_counts(self):
        trace = LeafTrace()
        for outcome in (True, True, False):
            trace.record(outcome)
        assert trace.evaluations == 3 and trace.successes == 2
        assert trace.estimate() == pytest.approx(3 / 5)

    def test_recorder_estimates(self):
        recorder = TraceRecorder()
        for _ in range(8):
            recorder.record_outcome("leaf0", True)
            recorder.record_outcome("leaf1", False)
            recorder.end_round()
        estimates = recorder.estimates()
        assert estimates["leaf0"] > 0.8 and estimates["leaf1"] < 0.2
        assert recorder.rounds == 8

    def test_recorder_acquisition_stats(self):
        recorder = TraceRecorder()
        recorder.record_acquisition("A", items=4, cost=8.0)
        recorder.record_acquisition("A", items=2, cost=4.0)
        assert recorder.mean_cost_per_item()["A"] == pytest.approx(2.0)
