"""Tests for stream specs, sources and cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamError
from repro.streams import (
    BLUETOOTH_LE,
    WIFI,
    ConstantSource,
    EnergyCost,
    GaussianSource,
    MarkovChainSource,
    Medium,
    PeriodicSource,
    RandomWalkSource,
    ReplaySource,
    StreamSpec,
    TableCost,
    UniformCost,
    UniformSource,
    cost_table,
)


class TestStreamSpec:
    def test_fields(self):
        spec = StreamSpec("HR", 0.5, period=2.0, description="heart rate", medium="ble")
        assert spec.name == "HR" and spec.cost_per_item == 0.5 and spec.period == 2.0

    @pytest.mark.parametrize("cost", [-1.0, float("nan")])
    def test_rejects_bad_cost(self, cost):
        with pytest.raises(StreamError):
            StreamSpec("HR", cost)

    def test_rejects_bad_period(self):
        with pytest.raises(StreamError):
            StreamSpec("HR", 1.0, period=0.0)

    def test_rejects_empty_name(self):
        with pytest.raises(StreamError):
            StreamSpec("", 1.0)


class TestCostModels:
    def test_uniform(self):
        model = UniformCost(2.5)
        assert model.per_item("anything") == 2.5

    def test_uniform_rejects_negative(self):
        with pytest.raises(StreamError):
            UniformCost(-1.0)

    def test_table_with_default(self):
        model = TableCost({"A": 1.0}, default=9.0)
        assert model.per_item("A") == 1.0
        assert model.per_item("B") == 9.0

    def test_table_without_default_raises(self):
        with pytest.raises(StreamError):
            TableCost({"A": 1.0}).per_item("B")

    def test_energy_model_combines_payload_and_overhead(self):
        medium = Medium("test", joules_per_byte=2.0, joules_per_transfer=5.0)
        model = EnergyCost({"A": 10}, medium)
        assert model.per_item("A") == pytest.approx(25.0)

    def test_energy_model_per_stream_media(self):
        model = EnergyCost({"A": 100, "B": 100}, {"A": BLUETOOTH_LE, "B": WIFI})
        assert model.per_item("A") != model.per_item("B")

    def test_energy_model_missing_stream(self):
        with pytest.raises(StreamError):
            EnergyCost({"A": 10}).per_item("B")

    def test_medium_rejects_negative_bytes(self):
        with pytest.raises(StreamError):
            BLUETOOTH_LE.item_cost(-1)

    def test_cost_table_materialization(self):
        table = cost_table(UniformCost(3.0), ["A", "B"])
        assert table == {"A": 3.0, "B": 3.0}


class TestSources:
    def test_uniform_source_in_bounds_and_memoized(self):
        source = UniformSource(5.0, 6.0, seed=0)
        values = [source.value_at(t) for t in range(50)]
        assert all(5.0 <= v < 6.0 for v in values)
        assert source.value_at(10) == values[10]  # stable re-read

    def test_gaussian_source_seeded(self):
        a = GaussianSource(0, 1, seed=3)
        b = GaussianSource(0, 1, seed=3)
        assert [a.value_at(t) for t in range(10)] == [b.value_at(t) for t in range(10)]

    def test_random_walk_respects_bounds(self):
        source = RandomWalkSource(50, 30, seed=1, low=0, high=100)
        values = [source.value_at(t) for t in range(200)]
        assert min(values) >= 0 and max(values) <= 100

    def test_periodic_source_oscillates(self):
        source = PeriodicSource(amplitude=2.0, period=8.0, offset=10.0)
        values = np.array([source.value_at(t) for t in range(16)])
        assert values.max() == pytest.approx(12.0, abs=1e-9)
        assert values.min() == pytest.approx(8.0, abs=1e-9)

    def test_markov_chain_emits_state_values(self):
        source = MarkovChainSource([0.0, 1.0], [[0.5, 0.5], [0.5, 0.5]], seed=2)
        values = {source.value_at(t) for t in range(100)}
        assert values <= {0.0, 1.0}
        assert len(values) == 2  # both states visited

    def test_markov_validates_matrix(self):
        with pytest.raises(StreamError):
            MarkovChainSource([0.0, 1.0], [[1.0, 0.1], [0.5, 0.5]])
        with pytest.raises(StreamError):
            MarkovChainSource([0.0], [[0.5, 0.5]])

    def test_constant_source(self):
        source = ConstantSource(42.0)
        assert source.value_at(0) == source.value_at(999) == 42.0

    def test_replay_source(self):
        source = ReplaySource([1.0, 2.0, 3.0])
        assert source.value_at(1) == 2.0
        with pytest.raises(StreamError):
            source.value_at(3)
        with pytest.raises(StreamError):
            ReplaySource([])

    def test_negative_index_rejected(self):
        with pytest.raises(StreamError):
            UniformSource(seed=0).value_at(-1)

    def test_window_newest_last(self):
        source = ReplaySource([10.0, 20.0, 30.0, 40.0])
        window = source.window(end_tau=3, count=3)
        assert list(window) == [20.0, 30.0, 40.0]

    def test_window_before_start_rejected(self):
        source = ConstantSource(1.0)
        with pytest.raises(StreamError):
            source.window(end_tau=1, count=3)
