"""Drift schedules, drifting sources, and the drifting Bernoulli oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.engine.executor import DriftingBernoulliOracle
from repro.errors import StreamError
from repro.generators import (
    ramp_drift_by_stream,
    random_step_drift,
    step_drift_by_stream,
    tree_base_probs,
)
from repro.streams.drift import DriftingSource, DriftSchedule, RampDrift, StepDrift


class TestDriftSchedule:
    def test_static_schedule(self):
        schedule = DriftSchedule([0.2, 0.8])
        assert schedule.is_static
        assert schedule.probs_at(0) == pytest.approx([0.2, 0.8])
        assert schedule.probs_at(1000) == pytest.approx([0.2, 0.8])
        assert schedule.settled_after() == 0

    def test_step_changes_only_targets(self):
        schedule = DriftSchedule([0.2, 0.8], [StepDrift(at=5, targets={0: 0.9})])
        assert schedule.probs_at(4) == pytest.approx([0.2, 0.8])
        assert schedule.probs_at(5) == pytest.approx([0.9, 0.8])
        assert schedule.settled_after() == 5

    def test_ramp_interpolates_linearly(self):
        schedule = DriftSchedule([0.2], [RampDrift(start=10, end=20, targets={0: 0.7})])
        assert schedule.probs_at(10) == pytest.approx([0.2])
        assert schedule.probs_at(15) == pytest.approx([0.45])
        assert schedule.probs_at(20) == pytest.approx([0.7])
        assert schedule.probs_at(99) == pytest.approx([0.7])
        assert schedule.settled_after() == 20

    def test_sequential_changes_compose(self):
        schedule = DriftSchedule(
            [0.1],
            [StepDrift(at=3, targets={0: 0.5}), StepDrift(at=6, targets={0: 0.9})],
        )
        assert schedule.probs_at(2) == pytest.approx([0.1])
        assert schedule.probs_at(4) == pytest.approx([0.5])
        assert schedule.probs_at(7) == pytest.approx([0.9])

    def test_prob_matrix_matches_rows(self):
        schedule = DriftSchedule([0.2, 0.8], [StepDrift(at=2, targets={1: 0.1})])
        matrix = schedule.prob_matrix(0, 4)
        assert matrix.shape == (4, 2)
        for r in range(4):
            assert matrix[r] == pytest.approx(schedule.probs_at(r))

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: DriftSchedule([]),
            lambda: DriftSchedule([1.5]),
            lambda: DriftSchedule([0.5], [StepDrift(at=0, targets={3: 0.5})]),
            lambda: DriftSchedule([0.5], ["not-a-change"]),
            lambda: StepDrift(at=-1, targets={0: 0.5}),
            lambda: StepDrift(at=0, targets={}),
            lambda: StepDrift(at=0, targets={0: 1.5}),
            lambda: RampDrift(start=5, end=5, targets={0: 0.5}),
        ],
    )
    def test_invalid_inputs_rejected(self, bad):
        with pytest.raises(StreamError):
            bad()

    def test_negative_round_rejected(self):
        with pytest.raises(StreamError):
            DriftSchedule([0.5]).probs_at(-1)


class TestDriftingSource:
    def test_emits_zeros_then_ones_across_a_step(self):
        schedule = DriftSchedule([0.0], [StepDrift(at=50, targets={0: 1.0})])
        source = DriftingSource(schedule, seed=0)
        early = [source.value_at(tau) for tau in range(50)]
        late = [source.value_at(tau) for tau in range(50, 100)]
        assert set(early) == {0.0}
        assert set(late) == {1.0}

    def test_memoized_tape_is_stable(self):
        source = DriftingSource(DriftSchedule([0.5]), seed=1)
        first = [source.value_at(tau) for tau in range(20)]
        again = [source.value_at(tau) for tau in range(20)]
        assert first == again

    def test_needs_single_probability(self):
        with pytest.raises(StreamError):
            DriftingSource(DriftSchedule([0.5, 0.5]))


class TestDriftingBernoulliOracle:
    def test_row_is_consistent_within_a_round(self):
        oracle = DriftingBernoulliOracle(DriftSchedule([0.5, 0.5]), seed=0)
        leaf = Leaf("A", 1, 0.5)
        first = oracle.outcome(0, leaf, None)
        assert oracle.outcome(0, leaf, None) == first  # no re-draw mid-round

    def test_outcomes_follow_the_drift(self):
        schedule = DriftSchedule([0.0], [StepDrift(at=10, targets={0: 1.0})])
        oracle = DriftingBernoulliOracle(schedule, seed=0)
        leaf = Leaf("A", 1, 0.5)
        outcomes = []
        for _ in range(20):
            outcomes.append(oracle.outcome(0, leaf, None))
            oracle.advance()
        assert outcomes[:10] == [False] * 10
        assert outcomes[10:] == [True] * 10

    def test_draw_matrix_equals_scalar_rows_per_seed(self):
        schedule = DriftSchedule([0.3, 0.7], [StepDrift(at=3, targets={0: 0.9})])
        leaf = Leaf("A", 1, 0.5)
        scalar = DriftingBernoulliOracle(schedule, seed=42)
        rows = []
        for _ in range(8):
            rows.append([scalar.outcome(g, leaf, None) for g in range(2)])
            scalar.advance()
        batched = DriftingBernoulliOracle(schedule, seed=42)
        matrix = batched.draw_matrix(8, 2)
        assert np.array_equal(matrix, np.array(rows))
        assert batched.round_index == 8

    def test_advance_consumes_undrawn_rows(self):
        """Skipped rounds still consume the random tape (alignment contract)."""
        schedule = DriftSchedule([0.5, 0.5])
        a = DriftingBernoulliOracle(schedule, seed=7)
        a.advance(3)  # three rounds nobody probed
        leaf = Leaf("A", 1, 0.5)
        row_after_skip = [a.outcome(g, leaf, None) for g in range(2)]
        b = DriftingBernoulliOracle(schedule, seed=7)
        matrix = b.draw_matrix(4, 2)
        assert row_after_skip == list(matrix[3])

    def test_errors(self):
        oracle = DriftingBernoulliOracle(DriftSchedule([0.5]), seed=0)
        leaf = Leaf("A", 1, 0.5)
        with pytest.raises(StreamError):
            oracle.outcome(5, leaf, None)
        with pytest.raises(StreamError):
            oracle.advance(-1)
        with pytest.raises(StreamError):
            oracle.draw_matrix(4, 3)  # wrong width
        oracle.outcome(0, leaf, None)
        with pytest.raises(StreamError):
            oracle.draw_matrix(4, 1)  # mid-round batch draw


class TestScenarioBuilders:
    def tree(self) -> DnfTree:
        return DnfTree(
            [[Leaf("A", 2, 0.1), Leaf("B", 1, 0.6)], [Leaf("A", 1, 0.3)]],
            costs={"A": 1.0, "B": 2.0},
        )

    def test_tree_base_probs(self):
        assert tree_base_probs(self.tree()) == (0.1, 0.6, 0.3)

    def test_step_drift_by_stream_targets_all_matching_leaves(self):
        schedule = step_drift_by_stream(self.tree(), 10, {"A": 0.9})
        assert schedule.probs_at(9) == pytest.approx([0.1, 0.6, 0.3])
        assert schedule.probs_at(10) == pytest.approx([0.9, 0.6, 0.9])

    def test_ramp_drift_by_stream(self):
        schedule = ramp_drift_by_stream(self.tree(), 0, 10, {"B": 0.0})
        assert schedule.probs_at(5) == pytest.approx([0.1, 0.3, 0.3])

    def test_unknown_stream_rejected(self):
        with pytest.raises(StreamError):
            step_drift_by_stream(self.tree(), 5, {"Z": 0.5})

    def test_random_step_drift(self):
        rng = np.random.default_rng(0)
        schedule = random_step_drift(rng, self.tree(), 7, fraction=0.5)
        before, after = schedule.probs_at(6), schedule.probs_at(7)
        changed = sum(1 for b, a in zip(before, after) if b != a)
        assert changed >= 1
        with pytest.raises(StreamError):
            random_step_drift(rng, self.tree(), 7, fraction=0.0)
