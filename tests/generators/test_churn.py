"""Churn-over-time schedule generator."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.generators import (
    ChurnEvent,
    churn_schedule,
    clustered_registry,
    events_by_batch,
)


@pytest.fixture
def registry():
    return clustered_registry(3, 3, seed=7)


class TestChurnSchedule:
    def test_deterministic_per_seed(self, registry):
        a = churn_schedule(20, registry, 3, 3, batches=10, seed=5)
        b = churn_schedule(20, registry, 3, 3, batches=10, seed=5)
        assert [(e.batch, e.action, e.name) for e in a] == [
            (e.batch, e.action, e.name) for e in b
        ]
        c = churn_schedule(20, registry, 3, 3, batches=10, seed=6)
        assert [(e.batch, e.action, e.name) for e in a] != [
            (e.batch, e.action, e.name) for e in c
        ]

    def test_every_query_admitted_once_departures_follow(self, registry):
        events = churn_schedule(30, registry, 3, 3, batches=12, seed=1)
        admitted = [e for e in events if e.action == "admit"]
        departed = [e for e in events if e.action == "depart"]
        assert len(admitted) == 30
        assert len({e.name for e in admitted}) == 30
        assert all(e.tree is not None for e in admitted)
        assert all(e.tree is None for e in departed)
        arrival = {e.name: e.batch for e in admitted}
        for event in departed:
            assert event.batch > arrival[event.name]
            assert event.batch < 12

    def test_run_starts_nonempty_and_ordered(self, registry):
        events = churn_schedule(15, registry, 3, 3, batches=8, seed=3)
        assert events[0].batch == 0
        assert any(e.batch == 0 and e.action == "admit" for e in events)
        keys = [
            (e.batch, 0 if e.action == "depart" else 1, e.name) for e in events
        ]
        assert keys == sorted(keys)

    def test_events_by_batch_groups_in_order(self, registry):
        events = churn_schedule(15, registry, 3, 3, batches=8, seed=3)
        grouped = events_by_batch(events)
        flattened = [e for batch in sorted(grouped) for e in grouped[batch]]
        assert flattened == events

    def test_validation(self, registry):
        with pytest.raises(StreamError):
            churn_schedule(10, registry, 3, 3, batches=0)
        with pytest.raises(StreamError):
            churn_schedule(10, registry, 3, 3, arrival_fraction=0.0)
        with pytest.raises(StreamError):
            churn_schedule(10, registry, 3, 3, mean_lifetime=0.5)

    def test_event_dataclass(self):
        event = ChurnEvent(batch=2, action="depart", name="q1")
        assert event.tree is None
        assert event.batch == 2
