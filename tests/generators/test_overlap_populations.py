"""Overlap-clustered population generator: structure, determinism, noise."""

from __future__ import annotations

import pytest

from repro.cluster.partition import build_overlap_graph
from repro.errors import StreamError
from repro.generators import (
    clustered_registry,
    clustered_stream_groups,
    overlap_clustered_population,
)


class TestClusteredStreams:
    def test_groups_are_disjoint_and_named(self):
        groups = clustered_stream_groups(3, 2)
        assert groups == [["C0S0", "C0S1"], ["C1S0", "C1S1"], ["C2S0", "C2S1"]]
        flat = [name for group in groups for name in group]
        assert len(flat) == len(set(flat))

    def test_registry_holds_every_stream(self):
        registry = clustered_registry(3, 4, seed=5)
        assert len(registry) == 12
        for group in clustered_stream_groups(3, 4):
            for name in group:
                assert name in registry
                assert registry.spec(name).cost_per_item > 0

    def test_registry_is_deterministic_per_seed(self):
        a = clustered_registry(2, 2, seed=9)
        b = clustered_registry(2, 2, seed=9)
        assert a.cost_table() == b.cost_table()
        assert a.source("C0S0").value_at(5) == b.source("C0S0").value_at(5)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(StreamError):
            clustered_stream_groups(0, 2)
        with pytest.raises(StreamError):
            clustered_stream_groups(2, 0)


class TestOverlapClusteredPopulation:
    def test_disjoint_population_components_are_the_clusters(self):
        registry = clustered_registry(4, 3, seed=1)
        population = overlap_clustered_population(40, registry, 4, 3, seed=2)
        assert len(population) == 40
        graph = build_overlap_graph(population, registry.cost_table())
        components = graph.components()
        assert len(components) == 4
        # Round-robin assignment: q index mod 4 identifies the home cluster.
        for component in components:
            homes = {int(name[1:]) % 4 for name in component}
            assert len(homes) == 1

    def test_queries_stay_on_home_streams_without_noise(self):
        registry = clustered_registry(3, 3, seed=3)
        population = overlap_clustered_population(12, registry, 3, 3, seed=4)
        for name, tree in population:
            home = int(name[1:]) % 3
            for leaf in tree.leaves:
                assert leaf.stream.startswith(f"C{home}S")

    def test_cross_cluster_noise_creates_cut_edges(self):
        registry = clustered_registry(3, 3, seed=5)
        population = overlap_clustered_population(
            60, registry, 3, 3, cross_cluster_prob=0.5, seed=6
        )
        foreign_leaves = sum(
            1
            for name, tree in population
            for leaf in tree.leaves
            if not leaf.stream.startswith(f"C{int(name[1:]) % 3}S")
        )
        assert foreign_leaves > 0
        graph = build_overlap_graph(population, registry.cost_table())
        assert len(graph.components()) < 3  # noise merged some clusters

    def test_deterministic_per_seed(self):
        registry = clustered_registry(2, 3, seed=7)
        a = overlap_clustered_population(10, registry, 2, 3, seed=8)
        b = overlap_clustered_population(10, registry, 2, 3, seed=8)
        assert [(name, tuple(tree.leaves)) for name, tree in a] == [
            (name, tuple(tree.leaves)) for name, tree in b
        ]

    def test_tree_costs_match_registry(self):
        registry = clustered_registry(2, 2, seed=9)
        population = overlap_clustered_population(
            8, registry, 2, 2, cross_cluster_prob=0.3, seed=10
        )
        costs = registry.cost_table()
        for _, tree in population:
            for stream, cost in tree.costs.items():
                assert cost == costs[stream]

    def test_validation(self):
        registry = clustered_registry(2, 2, seed=11)
        with pytest.raises(StreamError):
            overlap_clustered_population(0, registry, 2, 2)
        with pytest.raises(StreamError):
            overlap_clustered_population(4, registry, 2, 2, cross_cluster_prob=1.5)
        with pytest.raises(StreamError):
            overlap_clustered_population(4, registry, 2, 2, templates_per_cluster=0)
        with pytest.raises(StreamError):
            # registry lacks cluster 2's streams
            overlap_clustered_population(4, registry, 3, 2)
