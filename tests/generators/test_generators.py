"""Tests for the random instance generators and experiment grids."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AndTree, DnfTree, QueryTree
from repro.generators import (
    FIG4_SHARING_RATIOS,
    AndTreeConfig,
    DnfConfig,
    fig4_configs,
    fig5_configs,
    fig6_configs,
    random_and_tree,
    random_dnf_tree,
    random_query_tree,
    sample_and_tree,
    sample_dnf_tree,
    stream_names,
)


class TestGrids:
    def test_fig4_matches_paper_cell_count(self):
        # 157 valid (m, rho) cells -> 157,000 instances at 1000 per cell.
        assert len(list(fig4_configs())) == 157

    def test_fig5_matches_paper_cell_count(self):
        # 216 cells -> 21,600 instances at 100 per cell.
        assert len(list(fig5_configs())) == 216

    def test_fig6_matches_paper_cell_count(self):
        # 324 cells -> 32,400 instances at 100 per cell.
        assert len(list(fig6_configs())) == 324

    def test_fig4_skips_rho_above_m(self):
        for config in fig4_configs():
            assert config.rho <= config.m

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AndTreeConfig(m=0, rho=1.0)
        with pytest.raises(ValueError):
            AndTreeConfig(m=5, rho=0.5)
        with pytest.raises(ValueError):
            DnfConfig(n_ands=0, leaves_per_and=5, rho=1.0)

    def test_stream_names(self):
        assert stream_names(3) == ["S1", "S2", "S3"]


class TestRandomAndTree:
    def test_shape_and_distributions(self, rng):
        tree = random_and_tree(rng, 12, 3.0)
        assert isinstance(tree, AndTree)
        assert tree.m == 12
        assert len(tree.streams) <= 4
        for leaf in tree.leaves:
            assert 1 <= leaf.items <= 5
            assert 0.0 <= leaf.prob <= 1.0
        for cost in tree.costs.values():
            assert 1.0 <= cost <= 10.0

    def test_rho_one_gives_read_once_streams(self, rng):
        # rho = 1 -> as many streams as leaves (each leaf draws uniformly, so
        # collisions are possible per draw, but the pool size equals m).
        tree = random_and_tree(rng, 8, 1.0)
        pool = 8
        assert len(tree.streams) <= pool

    def test_custom_ranges(self, rng):
        tree = random_and_tree(rng, 5, 1.0, d_range=(2, 2), c_range=(3.0, 3.0))
        assert all(leaf.items == 2 for leaf in tree.leaves)
        assert all(cost == pytest.approx(3.0) for cost in tree.costs.values())

    def test_deterministic_given_seed(self):
        a = random_and_tree(np.random.default_rng(5), 6, 2.0)
        b = random_and_tree(np.random.default_rng(5), 6, 2.0)
        assert a.leaves == b.leaves and dict(a.costs) == dict(b.costs)

    def test_sample_from_config(self, rng):
        config = AndTreeConfig(m=7, rho=2.0)
        tree = sample_and_tree(rng, config)
        assert tree.m == 7


class TestRandomDnfTree:
    def test_fixed_sizes(self, rng):
        tree = random_dnf_tree(rng, 4, 6, 2.0)
        assert isinstance(tree, DnfTree)
        assert tree.n_ands == 4
        assert tree.and_sizes == (6, 6, 6, 6)

    def test_explicit_size_list(self, rng):
        tree = random_dnf_tree(rng, 3, [1, 2, 3], 1.5)
        assert tree.and_sizes == (1, 2, 3)

    def test_size_list_length_checked(self, rng):
        with pytest.raises(ValueError):
            random_dnf_tree(rng, 3, [1, 2], 1.5)

    def test_sampled_sizes_respect_cap_and_total(self, rng):
        for _ in range(20):
            tree = random_dnf_tree(rng, 5, 4, 2.0, sampled=True, max_leaves=12)
            assert all(1 <= size <= 4 for size in tree.and_sizes)
            assert tree.size <= 12

    def test_infeasible_cap_clips(self, rng):
        # 9 ANDs x U{1..8} rarely fits 9..20; the clip path must still work.
        tree = random_dnf_tree(rng, 9, 8, 2.0, sampled=True, max_leaves=9)
        assert tree.size <= 9 or all(s == 1 for s in tree.and_sizes)

    def test_sample_from_config(self, rng):
        config = DnfConfig(n_ands=3, leaves_per_and=5, rho=2.0)
        tree = sample_dnf_tree(rng, config)
        assert tree.n_ands == 3 and tree.size == 15

    def test_sharing_ratio_tracks_rho(self):
        rng = np.random.default_rng(0)
        sizes = []
        for _ in range(50):
            tree = random_dnf_tree(rng, 4, 5, 4.0)
            sizes.append(len(tree.streams))
        # 20 leaves at rho=4 -> 5 streams in the pool
        assert np.mean(sizes) <= 5.01


class TestRandomQueryTree:
    def test_produces_valid_general_trees(self, rng):
        for _ in range(10):
            tree = random_query_tree(rng, depth=3)
            assert isinstance(tree, QueryTree)
            assert tree.size >= 1
            assert tree.success_prob == pytest.approx(tree.success_prob)

    def test_depth_bounded(self, rng):
        for _ in range(10):
            tree = random_query_tree(rng, depth=2)
            assert tree.depth <= 2
