"""Tests for the Greiner read-once baseline and general-tree scheduling."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AndNode,
    AndTree,
    DnfTree,
    Leaf,
    LeafNode,
    OrNode,
    QueryTree,
    dnf_schedule_cost,
    exact_schedule_cost,
    is_depth_first,
)
from repro.core.andtree_optimal import read_once_order
from repro.core.cost import and_tree_cost
from repro.core.dnf_optimal import optimal_depth_first
from repro.core.general import optimal_general, recursive_ratio_order
from repro.core.heuristics import get_scheduler
from repro.core.read_once import greiner_read_once_order
from repro.errors import BudgetExceededError


def random_read_once_dnf(rng) -> DnfTree:
    counter = 0
    groups = []
    for _ in range(int(rng.integers(1, 4))):
        group = []
        for _ in range(int(rng.integers(1, 3))):
            counter += 1
            group.append(Leaf(f"S{counter}", int(rng.integers(1, 4)), float(rng.random())))
        groups.append(group)
    used = {leaf.stream for group in groups for leaf in group}
    return DnfTree(groups, {name: float(rng.uniform(0.5, 5)) for name in used})


class TestGreinerReadOnce:
    def test_optimal_on_read_once_instances(self, rng):
        """[6]: the algorithm is exactly optimal in the read-once model."""
        for _ in range(25):
            tree = random_read_once_dnf(rng)
            schedule = greiner_read_once_order(tree)
            assert is_depth_first(tree, schedule)
            assert dnf_schedule_cost(tree, schedule) == pytest.approx(
                optimal_depth_first(tree).cost, rel=1e-9, abs=1e-12
            )

    def test_suboptimal_on_shared_instances(self, alg1_within_and_counterexample):
        tree = alg1_within_and_counterexample
        greiner = dnf_schedule_cost(tree, greiner_read_once_order(tree))
        optimum = optimal_depth_first(tree).cost
        assert greiner > optimum + 1e-6

    def test_registered_as_scheduler(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)], [Leaf("B", 2, 0.4)]])
        scheduler = get_scheduler("greiner-read-once")
        assert scheduler.schedule(tree) == greiner_read_once_order(tree)

    def test_zero_probability_and_goes_last(self):
        tree = DnfTree(
            [[Leaf("A", 1, 0.0)], [Leaf("B", 1, 0.5)]], {"A": 1.0, "B": 1.0}
        )
        # AND0 can never satisfy the OR: C/p = inf -> scheduled last.
        assert greiner_read_once_order(tree) == (1, 0)


class TestRecursiveRatioOrder:
    def test_valid_permutation_on_general_trees(self, rng):
        from repro.generators import random_query_tree

        for _ in range(15):
            tree = random_query_tree(rng, depth=3)
            order = recursive_ratio_order(tree)
            assert sorted(order) == list(range(tree.size))

    def test_reduces_to_smith_on_read_once_and_trees(self, rng):
        for _ in range(20):
            m = int(rng.integers(2, 6))
            leaves = [Leaf(f"S{k}", int(rng.integers(1, 4)), float(rng.random())) for k in range(m)]
            costs = {f"S{k}": float(rng.uniform(1, 5)) for k in range(m)}
            tree = AndTree(leaves, costs)
            got = recursive_ratio_order(tree)
            want = read_once_order(tree)
            assert and_tree_cost(tree, got) == pytest.approx(
                and_tree_cost(tree, want), rel=1e-9
            )

    def test_optimal_on_read_once_dnf(self, rng):
        for _ in range(15):
            tree = random_read_once_dnf(rng)
            order = recursive_ratio_order(tree)
            assert dnf_schedule_cost(tree, order) == pytest.approx(
                optimal_depth_first(tree).cost, rel=1e-9, abs=1e-12
            )

    def test_three_level_tree_prioritizes_failing_or(self):
        # AND(expensive-leaf, OR(cheap-unlikely, cheap-unlikely)): the OR is
        # cheap and fails often (kills the AND), so its block must go first
        # (C/q = 1.9/0.81 ≈ 2.3 vs the leaf's 9/0.5 = 18).
        root = AndNode(
            [
                LeafNode(Leaf("C", 9, 0.5)),
                OrNode([LeafNode(Leaf("A", 1, 0.1)), LeafNode(Leaf("B", 1, 0.1))]),
            ]
        )
        tree = QueryTree(root, {"A": 1.0, "B": 1.0, "C": 1.0})
        order = recursive_ratio_order(tree)
        naive = (0, 1, 2)
        assert order[0] in (1, 2)
        assert exact_schedule_cost(tree, order) < exact_schedule_cost(tree, naive) - 1e-9


class TestOptimalGeneral:
    def test_matches_dnf_search_on_dnf_trees(self, rng):
        from tests.conftest import random_small_dnf

        for _ in range(10):
            tree = random_small_dnf(rng, max_ands=2, max_per_and=2)
            _, general_cost = optimal_general(tree)
            assert general_cost == pytest.approx(
                optimal_depth_first(tree).cost, rel=1e-9, abs=1e-12
            )

    def test_never_above_recursive_heuristic(self, rng):
        from repro.generators import random_query_tree

        checked = 0
        for _ in range(20):
            tree = random_query_tree(rng, depth=2, fanout=(2, 2))
            if tree.size > 6:
                continue
            checked += 1
            _, best = optimal_general(tree)
            heuristic_cost = exact_schedule_cost(tree, recursive_ratio_order(tree))
            assert best <= heuristic_cost + 1e-9
        assert checked >= 3

    def test_budget_guard(self):
        tree = AndTree([Leaf(f"S{k}", 1, 0.5) for k in range(10)])
        with pytest.raises(BudgetExceededError):
            optimal_general(tree, max_leaves=8)
