"""Tests for the schedule explanation facility."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DnfTree, Leaf, dnf_schedule_cost
from repro.core.explain import explain_schedule
from tests.conftest import PAPER_FIG3_SCHEDULE, make_paper_dnf


class TestExplainSchedule:
    def test_total_matches_prop2(self, rng):
        from tests.conftest import random_small_dnf

        for _ in range(20):
            tree = random_small_dnf(rng)
            schedule = tuple(int(x) for x in rng.permutation(tree.size))
            explanation = explain_schedule(tree, schedule)
            assert explanation.total_cost == pytest.approx(
                dnf_schedule_cost(tree, schedule), rel=1e-9, abs=1e-12
            )
            assert explanation.steps[-1].cumulative_cost == pytest.approx(
                explanation.total_cost
            )

    def test_per_stream_costs_sum_to_total(self, rng):
        from tests.conftest import random_small_dnf

        tree = random_small_dnf(rng)
        schedule = tuple(range(tree.size))
        explanation = explain_schedule(tree, schedule)
        assert sum(explanation.stream_cost.values()) == pytest.approx(
            explanation.total_cost, rel=1e-9, abs=1e-12
        )

    def test_paper_fig3_evaluation_probabilities(self):
        """The P(evaluated) column must match the paper's §II-B narrative."""
        rng = np.random.default_rng(0)
        p = {k: float(rng.random()) for k in range(1, 8)}
        c = {s: 1.0 for s in "ABCD"}
        tree = make_paper_dnf(p, c)
        explanation = explain_schedule(tree, PAPER_FIG3_SCHEDULE)
        by_label = {step.label: step for step in explanation.steps}
        # l1, l2 always evaluated
        assert by_label["l1"].prob_evaluated == pytest.approx(1.0)
        assert by_label["l2"].prob_evaluated == pytest.approx(1.0)
        # l3 evaluated iff l1 TRUE; l4 iff l1 and l3 TRUE
        assert by_label["l3"].prob_evaluated == pytest.approx(p[1])
        assert by_label["l4"].prob_evaluated == pytest.approx(p[1] * p[3])
        # l5: AND1 (= l1,l3,l4) completed before it; evaluated iff AND1
        # FALSE and l2 TRUE
        assert by_label["l5"].prob_evaluated == pytest.approx(
            (1 - p[1] * p[3] * p[4]) * p[2]
        )
        # l6's cost is zero (B already fetched by l2) but it may be evaluated
        assert by_label["l6"].expected_cost == 0.0

    def test_monotone_cumulative(self):
        tree = DnfTree(
            [[Leaf("A", 2, 0.5), Leaf("B", 1, 0.4)], [Leaf("A", 3, 0.6)]],
            {"A": 1.0, "B": 2.0},
        )
        explanation = explain_schedule(tree, (0, 1, 2))
        cumulative = [step.cumulative_cost for step in explanation.steps]
        assert cumulative == sorted(cumulative)

    def test_dominant_stream(self):
        tree = DnfTree(
            [[Leaf("A", 1, 0.5), Leaf("B", 9, 0.5)]], {"A": 1.0, "B": 5.0}
        )
        explanation = explain_schedule(tree, (0, 1))
        assert explanation.dominant_stream() == "B"

    def test_table_rows_align_with_headers(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]])
        explanation = explain_schedule(tree, (0,))
        rows = explanation.to_table_rows()
        assert len(rows) == 1
        assert len(rows[0]) == len(explanation.table_headers())


class TestCliExplain:
    def test_schedule_explain_flag(self, capsys):
        from repro.cli import main

        assert (
            main(
                [
                    "schedule",
                    "(A[2] p=0.3 AND B[1] p=0.5) OR C[1] p=0.2",
                    "--scheduler",
                    "and-inc-c-over-p-dynamic",
                    "--explain",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "breakdown" in out
        assert "P(evaluated)" in out
        assert "dominant stream" in out
