"""Tests for the multi-stream-predicate extension (§V open question)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AndTree, Leaf, algorithm1_order, and_tree_cost
from repro.core.multistream import (
    MultiLeaf,
    MultiStreamAndTree,
    adaptive_greedy_multi,
    brute_force_multi,
    multi_and_tree_cost,
    smith_multi_order,
)
from repro.errors import BudgetExceededError, InvalidLeafError, InvalidTreeError


class TestMultiLeaf:
    def test_requirements_normalized_sorted(self):
        leaf = MultiLeaf({"B": 2, "A": 1}, 0.5)
        assert leaf.requirements == (("A", 1), ("B", 2))
        assert leaf.streams == ("A", "B")

    def test_from_mapping_and_sequence_agree(self):
        a = MultiLeaf({"A": 1, "B": 2}, 0.5)
        b = MultiLeaf([("B", 2), ("A", 1)], 0.5)
        assert a == b

    @pytest.mark.parametrize("bad", [{}, {"A": 0}, {"A": -1}, {"": 1}])
    def test_rejects_bad_requirements(self, bad):
        with pytest.raises(InvalidLeafError):
            MultiLeaf(bad, 0.5)

    def test_rejects_duplicate_streams_in_sequence(self):
        with pytest.raises(InvalidLeafError):
            MultiLeaf([("A", 1), ("A", 2)], 0.5)

    @pytest.mark.parametrize("prob", [-0.1, 1.1])
    def test_rejects_bad_prob(self, prob):
        with pytest.raises(InvalidLeafError):
            MultiLeaf({"A": 1}, prob)

    def test_marginal_cost(self):
        leaf = MultiLeaf({"A": 3, "B": 2}, 0.5)
        costs = {"A": 1.0, "B": 10.0}
        assert leaf.full_cost(costs) == pytest.approx(23.0)
        assert leaf.marginal_cost(costs, {"A": 1}) == pytest.approx(22.0)
        assert leaf.marginal_cost(costs, {"A": 5, "B": 2}) == 0.0

    def test_from_leaf(self):
        classic = Leaf("A", 4, 0.25, "x")
        wrapped = MultiLeaf.from_leaf(classic)
        assert wrapped.requirements == (("A", 4),)
        assert wrapped.prob == 0.25


class TestMultiStreamAndTree:
    def test_default_costs(self):
        tree = MultiStreamAndTree([MultiLeaf({"A": 1, "B": 2}, 0.5)], default_cost=2.0)
        assert tree.costs == {"A": 2.0, "B": 2.0}
        assert tree.streams == ("A", "B")

    def test_missing_cost_rejected(self):
        with pytest.raises(InvalidTreeError):
            MultiStreamAndTree([MultiLeaf({"A": 1}, 0.5)], {"B": 1.0})

    def test_empty_rejected(self):
        with pytest.raises(InvalidTreeError):
            MultiStreamAndTree([])


class TestCostAndOptimality:
    def test_cost_reduces_to_single_stream_case(self, rng):
        """Single-stream multi-leaves must reproduce the classical evaluator."""
        for _ in range(30):
            m = int(rng.integers(1, 6))
            leaves = [
                Leaf(f"S{int(rng.integers(1, 3))}", int(rng.integers(1, 4)), float(rng.random()))
                for _ in range(m)
            ]
            used = {leaf.stream for leaf in leaves}
            costs = {name: float(rng.uniform(0.5, 5)) for name in used}
            classic = AndTree(leaves, costs)
            multi = MultiStreamAndTree([MultiLeaf.from_leaf(l) for l in leaves], costs)
            schedule = tuple(int(x) for x in rng.permutation(m))
            assert multi_and_tree_cost(multi, schedule) == pytest.approx(
                and_tree_cost(classic, schedule), rel=1e-12
            )

    def test_cost_counts_each_stream_marginally(self):
        tree = MultiStreamAndTree(
            [MultiLeaf({"A": 2, "B": 1}, 0.5), MultiLeaf({"A": 3, "B": 1}, 0.5)],
            {"A": 1.0, "B": 10.0},
        )
        # first leaf: 2 + 10; second (prob 0.5): A needs 1 more, B cached
        assert multi_and_tree_cost(tree, (0, 1)) == pytest.approx(12.0 + 0.5 * 1.0)

    def test_brute_force_valid_and_minimal(self, rng):
        for _ in range(10):
            m = int(rng.integers(2, 5))
            leaves = [
                MultiLeaf(
                    {
                        f"S{k}": int(rng.integers(1, 3))
                        for k in range(1, int(rng.integers(2, 4)))
                    },
                    float(rng.random()),
                )
                for _ in range(m)
            ]
            tree = MultiStreamAndTree(leaves, default_cost=1.0)
            schedule, cost = brute_force_multi(tree)
            assert sorted(schedule) == list(range(m))
            assert multi_and_tree_cost(tree, schedule) == pytest.approx(cost)
            greedy_cost = multi_and_tree_cost(tree, adaptive_greedy_multi(tree))
            assert cost <= greedy_cost + 1e-12

    def test_brute_force_budget(self):
        tree = MultiStreamAndTree([MultiLeaf({"A": k + 1}, 0.5) for k in range(10)])
        with pytest.raises(BudgetExceededError):
            brute_force_multi(tree, max_leaves=9)

    def test_adaptive_greedy_reduces_to_algorithm1_quality_single_stream(self, rng):
        """On classical instances the adaptive greedy matches Algorithm 1."""
        for _ in range(30):
            m = int(rng.integers(2, 6))
            leaves = [
                Leaf(f"S{int(rng.integers(1, 3))}", int(rng.integers(1, 4)), float(rng.random()))
                for _ in range(m)
            ]
            used = {leaf.stream for leaf in leaves}
            costs = {name: float(rng.uniform(0.5, 5)) for name in used}
            classic = AndTree(leaves, costs)
            multi = MultiStreamAndTree([MultiLeaf.from_leaf(l) for l in leaves], costs)
            greedy_cost = multi_and_tree_cost(multi, adaptive_greedy_multi(multi))
            alg1_cost = and_tree_cost(classic, algorithm1_order(classic))
            # adaptive greedy is not Algorithm 1; it may be worse, never better
            assert greedy_cost >= alg1_cost - 1e-9

    def test_greedy_is_not_always_optimal_multistream(self, rng):
        """Evidence the §V question is non-trivial: the natural greedy fails
        on some genuinely multi-stream instances."""
        found_suboptimal = False
        for trial in range(400):
            local = np.random.default_rng(trial)
            m = int(local.integers(2, 5))
            leaves = [
                MultiLeaf(
                    {
                        f"S{k}": int(local.integers(1, 3))
                        for k in range(1, int(local.integers(2, 4)))
                    },
                    float(local.random()),
                )
                for _ in range(m)
            ]
            tree = MultiStreamAndTree(leaves, default_cost=1.0)
            _, best = brute_force_multi(tree)
            greedy = multi_and_tree_cost(tree, adaptive_greedy_multi(tree))
            if greedy > best * (1 + 1e-9) + 1e-12:
                found_suboptimal = True
                break
        assert found_suboptimal

    def test_smith_multi_is_static_baseline(self):
        tree = MultiStreamAndTree(
            [MultiLeaf({"A": 1}, 0.9), MultiLeaf({"B": 1}, 0.1)], {"A": 1.0, "B": 1.0}
        )
        # ratios: 1/0.1 = 10 vs 1/0.9 ~ 1.1 -> B first
        assert smith_multi_order(tree) == (1, 0)
