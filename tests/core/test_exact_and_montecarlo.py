"""Tests for the exact reference evaluator and the Monte-Carlo estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AndNode,
    AndTree,
    BudgetExceededError,
    DnfTree,
    Leaf,
    LeafNode,
    OrNode,
    QueryTree,
    dnf_schedule_cost,
    exact_schedule_cost,
    monte_carlo_cost,
)


class TestExactEvaluator:
    def test_single_leaf(self):
        tree = AndTree([Leaf("A", 2, 0.5)], {"A": 3.0})
        assert exact_schedule_cost(tree, (0,)) == pytest.approx(6.0)

    def test_or_short_circuits_on_true(self):
        # OR(a, b): b evaluated only when a FALSE.
        root = OrNode([LeafNode(Leaf("A", 1, 0.8)), LeafNode(Leaf("B", 1, 0.5))])
        tree = QueryTree(root, {"A": 1.0, "B": 10.0})
        assert exact_schedule_cost(tree, (0, 1)) == pytest.approx(1.0 + 0.2 * 10.0)

    def test_and_short_circuits_on_false(self):
        root = AndNode([LeafNode(Leaf("A", 1, 0.25)), LeafNode(Leaf("B", 1, 0.5))])
        tree = QueryTree(root, {"A": 1.0, "B": 10.0})
        assert exact_schedule_cost(tree, (0, 1)) == pytest.approx(1.0 + 0.25 * 10.0)

    def test_shared_cache_across_branches(self):
        # Same stream+window in both OR branches: second branch free.
        root = OrNode([LeafNode(Leaf("A", 2, 0.5)), LeafNode(Leaf("A", 2, 0.5))])
        tree = QueryTree(root, {"A": 1.0})
        assert exact_schedule_cost(tree, (0, 1)) == pytest.approx(2.0)

    def test_three_level_tree(self):
        # AND(OR(a, b), c): the paper's general setting beyond DNF.
        root = AndNode(
            [
                OrNode([LeafNode(Leaf("A", 1, 0.5)), LeafNode(Leaf("B", 1, 0.5))]),
                LeafNode(Leaf("C", 1, 0.5)),
            ]
        )
        tree = QueryTree(root, {"A": 1.0, "B": 1.0, "C": 1.0})
        # a; b iff a FALSE; c iff OR TRUE (p = 0.75)
        assert exact_schedule_cost(tree, (0, 1, 2)) == pytest.approx(1.0 + 0.5 + 0.75)

    def test_budget_guard(self):
        groups = [[Leaf("S%d" % k, 1, 0.5) for k in range(3)] for _ in range(4)]
        tree = DnfTree(groups)
        with pytest.raises(BudgetExceededError):
            exact_schedule_cost(tree, tuple(range(tree.size)), max_states=3)

    def test_deterministic_leaves_fold(self):
        tree = AndTree([Leaf("A", 1, 1.0), Leaf("B", 1, 0.0)], {"A": 2.0, "B": 3.0})
        assert exact_schedule_cost(tree, (0, 1)) == pytest.approx(5.0)
        assert exact_schedule_cost(tree, (1, 0)) == pytest.approx(3.0)


class TestMonteCarlo:
    def test_converges_to_analytic_dnf(self):
        tree = DnfTree(
            [[Leaf("A", 2, 0.6), Leaf("B", 1, 0.4)], [Leaf("A", 3, 0.7), Leaf("C", 2, 0.5)]],
            {"A": 2.0, "B": 1.5, "C": 3.0},
        )
        schedule = (0, 1, 2, 3)
        result = monte_carlo_cost(tree, schedule, n_samples=20_000, seed=42)
        assert result.compatible_with(dnf_schedule_cost(tree, schedule))

    def test_zero_variance_when_deterministic(self):
        tree = AndTree([Leaf("A", 2, 1.0), Leaf("B", 1, 1.0)], {"A": 1.0, "B": 1.0})
        result = monte_carlo_cost(tree, (0, 1), n_samples=500, seed=0)
        assert result.std_error == 0.0
        assert result.mean == pytest.approx(3.0)
        assert result.compatible_with(3.0)

    def test_ci95_contains_mean(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)], [Leaf("B", 1, 0.5)]])
        result = monte_carlo_cost(tree, (0, 1), n_samples=2_000, seed=1)
        low, high = result.ci95
        assert low <= result.mean <= high

    def test_reproducible_with_seed(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)], [Leaf("B", 2, 0.3)]])
        a = monte_carlo_cost(tree, (0, 1), n_samples=500, seed=7)
        b = monte_carlo_cost(tree, (0, 1), n_samples=500, seed=7)
        assert a.mean == b.mean and a.std_error == b.std_error

    def test_rng_argument(self, rng):
        tree = DnfTree([[Leaf("A", 1, 0.5)]])
        result = monte_carlo_cost(tree, (0,), n_samples=100, rng=rng)
        assert result.mean == pytest.approx(1.0)  # always evaluated

    def test_general_query_tree_supported(self):
        root = AndNode(
            [
                OrNode([LeafNode(Leaf("A", 1, 0.5)), LeafNode(Leaf("B", 1, 0.5))]),
                LeafNode(Leaf("C", 1, 0.5)),
            ]
        )
        tree = QueryTree(root, {"A": 1.0, "B": 1.0, "C": 1.0})
        schedule = (0, 1, 2)
        result = monte_carlo_cost(tree, schedule, n_samples=20_000, seed=3)
        assert result.compatible_with(exact_schedule_cost(tree, schedule))
