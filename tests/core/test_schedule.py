"""Unit tests for :mod:`repro.core.schedule`."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DnfTree, InvalidScheduleError, Leaf
from repro.core.schedule import (
    as_depth_first_orders,
    depth_first_blocks,
    identity_schedule,
    is_depth_first,
    make_depth_first,
    random_schedule,
    validate_schedule,
)


@pytest.fixture
def tree():
    return DnfTree(
        [
            [Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)],
            [Leaf("C", 1, 0.5)],
            [Leaf("A", 2, 0.5), Leaf("C", 2, 0.5)],
        ]
    )


class TestValidate:
    def test_accepts_permutation(self, tree):
        assert validate_schedule(tree, [4, 3, 2, 1, 0]) == (4, 3, 2, 1, 0)

    def test_coerces_numpy_ints(self, tree):
        sched = validate_schedule(tree, np.array([0, 1, 2, 3, 4]))
        assert all(isinstance(x, int) for x in sched)

    @pytest.mark.parametrize("bad", [[0, 1, 2], [0, 0, 1, 2, 3], [0, 1, 2, 3, 5]])
    def test_rejects_non_permutations(self, tree, bad):
        with pytest.raises(InvalidScheduleError):
            validate_schedule(tree, bad)

    def test_identity(self, tree):
        assert identity_schedule(tree) == (0, 1, 2, 3, 4)

    def test_random_is_permutation(self, tree, rng):
        sched = random_schedule(tree, rng)
        assert sorted(sched) == list(range(5))


class TestDepthFirst:
    def test_identity_is_depth_first(self, tree):
        assert is_depth_first(tree, (0, 1, 2, 3, 4))

    def test_blocks_in_any_and_order(self, tree):
        assert is_depth_first(tree, (2, 3, 4, 0, 1))
        assert is_depth_first(tree, (3, 4, 1, 0, 2))

    def test_interleaved_is_not(self, tree):
        assert not is_depth_first(tree, (0, 2, 1, 3, 4))
        assert not is_depth_first(tree, (0, 1, 3, 2, 4))

    def test_revisiting_an_and_is_not(self, tree):
        assert not is_depth_first(tree, (0, 2, 1, 3, 4))

    def test_blocks_decomposition(self, tree):
        blocks = depth_first_blocks(tree, (2, 4, 3, 1, 0))
        assert blocks == [(1, [0]), (2, [1, 0]), (0, [1, 0])]

    def test_blocks_rejects_non_depth_first(self, tree):
        with pytest.raises(InvalidScheduleError):
            depth_first_blocks(tree, (0, 2, 1, 3, 4))

    def test_make_depth_first_default_orders(self, tree):
        assert make_depth_first(tree, [2, 0, 1]) == (3, 4, 0, 1, 2)

    def test_make_depth_first_custom_leaf_orders(self, tree):
        sched = make_depth_first(tree, [0, 1, 2], [[1, 0], [0], [1, 0]])
        assert sched == (1, 0, 2, 4, 3)
        assert is_depth_first(tree, sched)

    def test_make_depth_first_validates_and_order(self, tree):
        with pytest.raises(InvalidScheduleError):
            make_depth_first(tree, [0, 1])
        with pytest.raises(InvalidScheduleError):
            make_depth_first(tree, [0, 0, 1])

    def test_make_depth_first_validates_leaf_orders(self, tree):
        with pytest.raises(InvalidScheduleError):
            make_depth_first(tree, [0, 1, 2], [[0, 0], [0], [0, 1]])

    def test_round_trip(self, tree):
        sched = make_depth_first(tree, [2, 0, 1], [[1, 0], [0], [0, 1]])
        and_order, leaf_orders = as_depth_first_orders(tree, sched)
        assert and_order == [2, 0, 1]
        assert leaf_orders[2] == [0, 1] and leaf_orders[0] == [1, 0]
        assert make_depth_first(tree, and_order, leaf_orders) == sched

    def test_single_and_always_depth_first(self):
        tree = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5), Leaf("A", 2, 0.5)]])
        for perm in [(0, 1, 2), (2, 1, 0), (1, 0, 2)]:
            assert is_depth_first(tree, perm)
