"""Tests for decision-tree (non-linear) strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DnfTree, Leaf, dnf_schedule_cost
from repro.core.dnf_optimal import optimal_any_order
from repro.core.nonlinear import (
    StrategyNode,
    find_nonlinear_gap,
    linear_as_strategy,
    optimal_nonlinear,
    strategy_cost,
    strategy_size,
)
from repro.errors import BudgetExceededError


class TestLinearEmbedding:
    def test_equals_prop2_cost(self, rng):
        from tests.conftest import random_small_dnf

        for _ in range(40):
            tree = random_small_dnf(rng)
            schedule = tuple(int(x) for x in rng.permutation(tree.size))
            strategy = linear_as_strategy(tree, schedule)
            assert strategy_cost(tree, strategy) == pytest.approx(
                dnf_schedule_cost(tree, schedule), rel=1e-9, abs=1e-12
            )

    def test_single_leaf_strategy_shape(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]])
        strategy = linear_as_strategy(tree, (0,))
        assert strategy is not None
        assert strategy.leaf == 0
        assert strategy.on_true is None and strategy.on_false is None
        assert strategy_size(strategy) == 1

    def test_skipping_encoded_in_structure(self):
        # AND(a, b): after a FALSE, b must not be evaluated.
        tree = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]])
        strategy = linear_as_strategy(tree, (0, 1))
        assert strategy.on_false is None  # AND dead -> query FALSE
        assert strategy.on_true is not None and strategy.on_true.leaf == 1


class TestStrategyCost:
    def test_rejects_early_termination(self):
        tree = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]])
        bad = StrategyNode(leaf=0, on_true=None, on_false=None)  # on_true unresolved
        with pytest.raises(ValueError):
            strategy_cost(tree, bad)

    def test_rejects_evaluating_dead_leaf(self):
        tree = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]])
        bad = StrategyNode(
            leaf=0,
            on_true=StrategyNode(1, None, None),
            on_false=StrategyNode(1, None, None),  # AND already FALSE
        )
        with pytest.raises(ValueError):
            strategy_cost(tree, bad)

    def test_rejects_overlong_strategy(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]])
        bad = StrategyNode(0, StrategyNode(0, None, None), None)
        with pytest.raises(ValueError):
            strategy_cost(tree, bad)


class TestOptimalNonlinear:
    def test_never_worse_than_optimal_linear(self, rng):
        from tests.conftest import random_small_dnf

        for _ in range(15):
            tree = random_small_dnf(rng, max_ands=2, max_per_and=2)
            linear = optimal_any_order(tree)
            _, nonlinear_cost = optimal_nonlinear(tree)
            assert nonlinear_cost <= linear.cost + 1e-9

    def test_strict_gap_instance(self, nonlinear_gap_tree):
        linear = optimal_any_order(nonlinear_gap_tree)
        strategy, nonlinear_cost = optimal_nonlinear(nonlinear_gap_tree)
        assert nonlinear_cost < linear.cost - 1e-6
        # the returned strategy really achieves the DP value
        assert strategy_cost(nonlinear_gap_tree, strategy) == pytest.approx(nonlinear_cost)

    def test_read_once_has_no_gap(self, rng):
        """Greiner et al.: linear strategies are dominant in the read-once case."""
        for _ in range(15):
            n_ands = int(rng.integers(1, 3))
            groups = []
            counter = 0
            for _ in range(n_ands):
                group = []
                for _ in range(int(rng.integers(1, 3))):
                    counter += 1
                    group.append(
                        Leaf(f"S{counter}", int(rng.integers(1, 3)), float(rng.random()))
                    )
                groups.append(group)
            used = {leaf.stream for group in groups for leaf in group}
            tree = DnfTree(groups, {name: float(rng.uniform(0.5, 5)) for name in used})
            linear = optimal_any_order(tree)
            _, nonlinear_cost = optimal_nonlinear(tree)
            assert nonlinear_cost == pytest.approx(linear.cost, rel=1e-9, abs=1e-12)

    def test_budget_guard(self):
        groups = [[Leaf(f"S{k}", 1, 0.5) for k in range(3)] for _ in range(3)]
        tree = DnfTree(groups)
        with pytest.raises(BudgetExceededError):
            optimal_nonlinear(tree, max_states=2)

    def test_single_leaf(self):
        tree = DnfTree([[Leaf("A", 3, 0.5)]], {"A": 2.0})
        strategy, cost = optimal_nonlinear(tree)
        assert cost == pytest.approx(6.0)
        assert strategy.leaf == 0


class TestGapSearch:
    def test_finds_gaps_in_shared_case(self):
        gaps = find_nonlinear_gap(n_trials=120, seed=1)
        assert gaps, "shared instances with a linear/non-linear gap must exist (§V)"
        for gap in gaps:
            assert gap.nonlinear_cost < gap.linear_cost
            assert 0.0 < gap.improvement < 1.0
