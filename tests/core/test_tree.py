"""Unit tests for :mod:`repro.core.tree`."""

from __future__ import annotations

import pytest

from repro import (
    AndNode,
    AndTree,
    BudgetExceededError,
    DnfTree,
    InvalidTreeError,
    Leaf,
    LeafNode,
    OrNode,
    QueryTree,
)


def leaf(stream="A", items=1, prob=0.5, label=""):
    return Leaf(stream, items, prob, label)


class TestAndTree:
    def test_basic_shape(self):
        tree = AndTree([leaf("A"), leaf("B", 2), leaf("A", 3)], {"A": 1.0, "B": 2.0})
        assert tree.m == len(tree) == 3
        assert tree.streams == ("A", "B")
        assert tree.sharing_ratio == pytest.approx(1.5)
        assert not tree.is_read_once
        assert tree.max_items == 3

    def test_read_once_detection(self):
        tree = AndTree([leaf("A"), leaf("B")])
        assert tree.is_read_once
        assert tree.sharing_ratio == 1.0

    def test_default_costs(self):
        tree = AndTree([leaf("A")], default_cost=3.0)
        assert tree.costs["A"] == 3.0

    def test_missing_cost_rejected(self):
        with pytest.raises(InvalidTreeError):
            AndTree([leaf("A"), leaf("B")], {"A": 1.0})

    def test_negative_cost_rejected(self):
        with pytest.raises(InvalidTreeError):
            AndTree([leaf("A")], {"A": -1.0})

    def test_empty_rejected(self):
        with pytest.raises(InvalidTreeError):
            AndTree([])

    def test_non_leaf_rejected(self):
        with pytest.raises(InvalidTreeError):
            AndTree(["not a leaf"])  # type: ignore[list-item]

    def test_leaves_by_stream_sorted_by_items(self):
        tree = AndTree([leaf("A", 3), leaf("A", 1), leaf("B", 2), leaf("A", 2)])
        groups = tree.leaves_by_stream()
        assert groups["A"] == [1, 3, 0]
        assert groups["B"] == [2]

    def test_success_prob(self):
        tree = AndTree([leaf(prob=0.5), leaf("B", prob=0.4)])
        assert tree.success_prob == pytest.approx(0.2)

    def test_to_dnf_preserves_leaves_and_costs(self):
        tree = AndTree([leaf("A"), leaf("B")], {"A": 1.5, "B": 2.5})
        dnf = tree.to_dnf()
        assert dnf.n_ands == 1
        assert dnf.leaves == tree.leaves
        assert dict(dnf.costs) == dict(tree.costs)

    def test_describe_lists_every_leaf(self):
        tree = AndTree([leaf("A"), leaf("B")])
        text = tree.describe()
        assert "A[1]" in text and "B[1]" in text


class TestDnfTree:
    @pytest.fixture
    def tree(self):
        return DnfTree(
            [
                [leaf("A", 1), leaf("B", 2)],
                [leaf("C", 1)],
                [leaf("A", 3), leaf("C", 2), leaf("B", 1)],
            ],
            {"A": 1.0, "B": 2.0, "C": 3.0},
        )

    def test_shape(self, tree):
        assert tree.n_ands == 3
        assert tree.size == len(tree) == 6
        assert tree.and_sizes == (2, 1, 3)
        assert tree.max_items == 3
        assert tree.streams == ("A", "B", "C")

    def test_global_index_round_trip(self, tree):
        for g in range(tree.size):
            i, j = tree.ref(g)
            assert tree.gindex(i, j) == g
            assert tree.and_of(g) == i
            assert tree.leaf(g) is tree.ands[i][j]

    def test_gindex_bounds_checked(self, tree):
        with pytest.raises(InvalidTreeError):
            tree.gindex(3, 0)
        with pytest.raises(InvalidTreeError):
            tree.gindex(0, 2)

    def test_and_leaf_gindices(self, tree):
        assert list(tree.and_leaf_gindices(0)) == [0, 1]
        assert list(tree.and_leaf_gindices(2)) == [3, 4, 5]

    def test_and_tree_view(self, tree):
        sub = tree.and_tree(2)
        assert isinstance(sub, AndTree)
        assert sub.leaves == tree.ands[2]
        assert dict(sub.costs) == dict(tree.costs)

    def test_and_success_prob(self, tree):
        assert tree.and_success_prob(0) == pytest.approx(0.25)

    def test_or_success_prob(self):
        tree = DnfTree([[leaf(prob=0.5)], [leaf("B", prob=0.5)]])
        assert tree.success_prob == pytest.approx(0.75)

    def test_empty_and_rejected(self):
        with pytest.raises(InvalidTreeError):
            DnfTree([[leaf()], []])

    def test_no_ands_rejected(self):
        with pytest.raises(InvalidTreeError):
            DnfTree([])

    def test_to_query_tree_round_trip(self, tree):
        qtree = tree.to_query_tree()
        assert qtree.is_dnf()
        back = qtree.as_dnf()
        assert back.ands == tree.ands
        assert dict(back.costs) == dict(tree.costs)

    def test_sharing_ratio(self, tree):
        assert tree.sharing_ratio == pytest.approx(2.0)
        assert not tree.is_read_once


class TestQueryTree:
    def make(self):
        root = OrNode(
            [
                AndNode([LeafNode(leaf("A", 5)), LeafNode(leaf("B", 4))]),
                AndNode([LeafNode(leaf("C", 1)), LeafNode(leaf("A", 10))]),
            ]
        )
        return QueryTree(root, {"A": 1.0, "B": 1.0, "C": 1.0})

    def test_leaves_depth_first_order(self):
        tree = self.make()
        assert [l.stream for l in tree.leaves] == ["A", "B", "C", "A"]

    def test_shape_metrics(self):
        tree = self.make()
        assert tree.size == 4
        assert tree.depth == 2
        assert tree.num_nodes == 7
        assert not tree.is_read_once

    def test_is_dnf_and_as_dnf(self):
        tree = self.make()
        assert tree.is_dnf()
        dnf = tree.as_dnf()
        assert dnf.n_ands == 2
        assert dnf.and_sizes == (2, 2)

    def test_is_and_tree(self):
        tree = QueryTree(AndNode([LeafNode(leaf()), LeafNode(leaf("B"))]))
        assert tree.is_and_tree()
        and_tree = tree.as_and_tree()
        assert isinstance(and_tree, AndTree)
        assert and_tree.m == 2

    def test_bare_leaf_tree(self):
        tree = QueryTree(LeafNode(leaf()))
        assert tree.is_and_tree() and tree.is_dnf()
        assert tree.depth == 0
        assert tree.as_dnf().n_ands == 1

    def test_deep_tree_not_dnf(self):
        root = AndNode(
            [LeafNode(leaf()), OrNode([LeafNode(leaf("B")), LeafNode(leaf("C"))])]
        )
        tree = QueryTree(root)
        assert not tree.is_dnf()
        with pytest.raises(InvalidTreeError):
            tree.as_dnf()

    def test_expand_to_dnf_distributes(self):
        # AND(a, OR(b, c)) -> OR(AND(a,b), AND(a,c))
        root = AndNode(
            [LeafNode(leaf("A")), OrNode([LeafNode(leaf("B")), LeafNode(leaf("C"))])]
        )
        dnf = QueryTree(root).expand_to_dnf()
        assert dnf.n_ands == 2
        assert [tuple(l.stream for l in g) for g in dnf.ands] == [("A", "B"), ("A", "C")]

    def test_expand_to_dnf_budget(self):
        # OR of k ANDs of ORs -> exponential blowup; budget must trip.
        ors = [OrNode([LeafNode(leaf("A")), LeafNode(leaf("B"))]) for _ in range(12)]
        tree = QueryTree(AndNode(ors))
        with pytest.raises(BudgetExceededError):
            tree.expand_to_dnf(max_terms=64)

    def test_success_prob_nested(self):
        # AND(p=0.5, OR(0.5, 0.5)) -> 0.5 * 0.75
        root = AndNode(
            [
                LeafNode(leaf(prob=0.5)),
                OrNode([LeafNode(leaf("B", prob=0.5)), LeafNode(leaf("C", prob=0.5))]),
            ]
        )
        assert QueryTree(root).success_prob == pytest.approx(0.375)

    def test_simplified_collapses_nesting(self):
        inner = AndNode([LeafNode(leaf("A")), LeafNode(leaf("B"))])
        root = AndNode([inner, LeafNode(leaf("C"))])
        simplified = root.simplified()
        assert isinstance(simplified, AndNode)
        assert len(simplified.children) == 3

    def test_simplified_unwraps_single_child(self):
        root = OrNode([AndNode([LeafNode(leaf("A"))])])
        assert isinstance(root.simplified(), LeafNode)

    def test_operator_nodes_immutable_and_comparable(self):
        a = AndNode([LeafNode(leaf("A"))])
        b = AndNode([LeafNode(leaf("A"))])
        assert a == b and hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.children = ()  # type: ignore[misc]

    def test_empty_operator_rejected(self):
        with pytest.raises(InvalidTreeError):
            AndNode([])

    def test_describe_renders_operators(self):
        text = self.make().describe()
        assert "OR" in text and "AND" in text
