"""Tests for the exhaustive DNF optimizer and the decision problem."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import BudgetExceededError, DnfTree, Leaf, dnf_schedule_cost, is_depth_first
from repro.core.dnf_optimal import dnf_decision, optimal_any_order, optimal_depth_first
from repro.core.heuristics import make_paper_heuristics
from tests.strategies import dnf_trees


class TestOptimalDepthFirst:
    def test_returns_depth_first_schedule(self, rng):
        from tests.conftest import random_small_dnf

        for _ in range(20):
            tree = random_small_dnf(rng)
            result = optimal_depth_first(tree)
            assert is_depth_first(tree, result.schedule)
            assert result.complete
            assert dnf_schedule_cost(tree, result.schedule) == pytest.approx(result.cost)

    def test_unpacking_convenience(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]])
        schedule, cost = optimal_depth_first(tree)
        assert schedule == (0,)
        assert cost == pytest.approx(1.0)

    @settings(max_examples=60, deadline=None)
    @given(tree=dnf_trees(max_ands=3, max_per_and=2))
    def test_theorem2_depth_first_matches_any_order(self, tree):
        """Theorem 2: the depth-first optimum is the global optimum."""
        df = optimal_depth_first(tree)
        any_order = optimal_any_order(tree)
        assert df.cost == pytest.approx(any_order.cost, rel=1e-9, abs=1e-12)

    def test_never_above_heuristics(self, rng):
        from tests.conftest import random_small_dnf

        heuristics = make_paper_heuristics(seed=3)
        for _ in range(25):
            tree = random_small_dnf(rng)
            optimum = optimal_depth_first(tree)
            for heuristic in heuristics.values():
                assert optimum.cost <= heuristic.cost(tree) + 1e-9

    def test_warm_start_prunes(self, rng):
        from tests.conftest import random_small_dnf

        tree = random_small_dnf(rng, max_ands=3, max_per_and=3)
        warm = optimal_depth_first(tree, warm_start=True)
        cold = optimal_depth_first(tree, warm_start=False)
        assert warm.cost == pytest.approx(cold.cost)
        assert warm.nodes_explored <= cold.nodes_explored

    def test_node_budget(self):
        groups = [
            [Leaf(f"S{k}", k + 1, 0.3 + 0.05 * k) for k in range(4)] for _ in range(4)
        ]
        tree = DnfTree(groups)
        with pytest.raises(BudgetExceededError):
            optimal_depth_first(tree, node_budget=10)

    def test_identical_and_dedup_sound(self):
        group = [Leaf("A", 1, 0.4), Leaf("B", 2, 0.6)]
        tree = DnfTree([list(group), list(group), list(group)], {"A": 1.0, "B": 2.0})
        result = optimal_depth_first(tree)
        # identical ANDs: the identity depth-first order is optimal
        reference = min(
            dnf_schedule_cost(tree, (0, 1, 2, 3, 4, 5)),
            dnf_schedule_cost(tree, (1, 0, 3, 2, 5, 4)),
        )
        assert result.cost == pytest.approx(reference)

    def test_single_and_matches_algorithm1(self, rng):
        from repro import AndTree, algorithm1_order, and_tree_cost

        for _ in range(20):
            m = int(rng.integers(1, 6))
            leaves = [
                Leaf(f"S{int(rng.integers(1, 3))}", int(rng.integers(1, 4)), float(rng.random()))
                for _ in range(m)
            ]
            used = {leaf.stream for leaf in leaves}
            costs = {name: float(rng.uniform(1, 5)) for name in used}
            and_tree = AndTree(leaves, costs)
            dnf = and_tree.to_dnf()
            result = optimal_depth_first(dnf)
            assert result.cost == pytest.approx(
                and_tree_cost(and_tree, algorithm1_order(and_tree)), rel=1e-9
            )


class TestDnfDecision:
    @pytest.fixture
    def tree(self, rng):
        from tests.conftest import random_small_dnf

        return random_small_dnf(rng)

    def test_accepts_at_optimum(self, tree):
        optimum = optimal_depth_first(tree)
        assert dnf_decision(tree, optimum.cost) is True

    def test_accepts_above_optimum(self, tree):
        optimum = optimal_depth_first(tree)
        assert dnf_decision(tree, optimum.cost * 1.25 + 1.0) is True

    def test_rejects_below_optimum(self, tree):
        optimum = optimal_depth_first(tree)
        if optimum.cost > 0:
            assert dnf_decision(tree, optimum.cost * 0.99) is False

    def test_rejects_zero_when_positive(self, tree):
        optimum = optimal_depth_first(tree)
        if optimum.cost > 0:
            assert dnf_decision(tree, 0.0) is False

    def test_zero_bound_with_free_tree(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]], {"A": 0.0})
        assert dnf_decision(tree, 0.0) is True
