"""Tests for Algorithm 1, Smith's rule, and the AND-tree brute force."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (
    AndTree,
    BudgetExceededError,
    Leaf,
    algorithm1_order,
    and_tree_cost,
    brute_force_and_tree,
    read_once_order,
)
from repro.core.andtree_optimal import smith_ratio
from tests.strategies import and_trees


class TestSmithRule:
    def test_ratio_formula(self):
        assert smith_ratio(Leaf("A", 4, 0.5), {"A": 2.0}) == pytest.approx(16.0)

    def test_certain_leaf_goes_last(self):
        tree = AndTree([Leaf("A", 1, 1.0), Leaf("B", 1, 0.5)], {"A": 1.0, "B": 1.0})
        assert read_once_order(tree) == (1, 0)

    def test_certain_free_leaf_ratio_zero(self):
        assert smith_ratio(Leaf("A", 1, 1.0), {"A": 0.0}) == 0.0

    def test_sorted_by_ratio_then_index(self):
        tree = AndTree(
            [Leaf("A", 2, 0.5), Leaf("B", 1, 0.5), Leaf("C", 2, 0.5)],
            {"A": 1.0, "B": 1.0, "C": 1.0},
        )
        # ratios: 4, 2, 4 -> B first, then A before C (index tie-break)
        assert read_once_order(tree) == (1, 0, 2)

    @settings(max_examples=50, deadline=None)
    @given(tree=and_trees(min_leaves=2, max_leaves=6))
    def test_optimal_on_read_once_trees(self, tree):
        # Project the tree onto distinct synthetic streams (read-once view)
        # while keeping each leaf's (d, c, p); Smith must be optimal there.
        renamed = [
            Leaf(f"S{idx}", leaf.items, leaf.prob)
            for idx, leaf in enumerate(tree.leaves)
        ]
        costs = {f"S{idx}": tree.costs[leaf.stream] for idx, leaf in enumerate(tree.leaves)}
        read_once = AndTree(renamed, costs)
        order = read_once_order(read_once)
        best = min(
            and_tree_cost(read_once, perm)
            for perm in itertools.permutations(range(read_once.m))
        )
        assert and_tree_cost(read_once, order) == pytest.approx(best, rel=1e-9)


class TestAlgorithm1:
    @settings(max_examples=120, deadline=None)
    @given(tree=and_trees(min_leaves=2, max_leaves=6))
    def test_optimal_on_shared_trees(self, tree):
        """Theorem 1: Algorithm 1 matches the brute-force optimum."""
        order = algorithm1_order(tree)
        assert sorted(order) == list(range(tree.m))
        _, best_cost = brute_force_and_tree(tree)
        assert and_tree_cost(tree, order) == pytest.approx(best_cost, rel=1e-9, abs=1e-12)

    def test_reduces_to_smith_on_read_once(self, rng):
        for _ in range(30):
            m = int(rng.integers(2, 7))
            leaves = [
                Leaf(f"S{k}", int(rng.integers(1, 5)), float(rng.random()))
                for k in range(m)
            ]
            costs = {f"S{k}": float(rng.uniform(1, 10)) for k in range(m)}
            tree = AndTree(leaves, costs)
            alg1_cost = and_tree_cost(tree, algorithm1_order(tree))
            smith_cost = and_tree_cost(tree, read_once_order(tree))
            assert alg1_cost == pytest.approx(smith_cost, rel=1e-9)

    def test_same_stream_leaves_scheduled_in_increasing_d(self, rng):
        """Proposition 1 holds within Algorithm 1's output."""
        for _ in range(30):
            m = int(rng.integers(2, 8))
            leaves = [
                Leaf(
                    f"S{int(rng.integers(0, 2)) + 1}",
                    int(rng.integers(1, 5)),
                    float(rng.random()),
                )
                for _ in range(m)
            ]
            tree = AndTree(leaves, {"S1": 1.0, "S2": 2.0})
            order = algorithm1_order(tree)
            position = {idx: pos for pos, idx in enumerate(order)}
            for i, j in itertools.combinations(range(m), 2):
                a, b = tree.leaves[i], tree.leaves[j]
                if a.stream == b.stream and a.items < b.items:
                    assert position[i] < position[j]

    def test_paper_example_trace(self, paper_and_tree):
        # Round 1 picks the A-prefix (l1, l2): ratio 1.75/0.925 < 2 (= B's).
        assert algorithm1_order(paper_and_tree) == (0, 1, 2)

    def test_initial_items_make_leaves_free(self):
        tree = AndTree(
            [Leaf("A", 2, 0.5), Leaf("B", 1, 0.1)], {"A": 1.0, "B": 1.0}
        )
        # With A fully cached, the A-leaf is free and must come first despite
        # B's far better shortcut power.
        order = algorithm1_order(tree, initial_items={"A": 2})
        assert order == (0, 1)

    def test_all_certain_leaves_still_scheduled(self):
        tree = AndTree(
            [Leaf("A", 2, 1.0), Leaf("B", 1, 1.0)], {"A": 1.0, "B": 1.0}
        )
        order = algorithm1_order(tree)
        assert sorted(order) == [0, 1]

    def test_zero_cost_stream_first(self):
        tree = AndTree(
            [Leaf("A", 5, 0.2), Leaf("B", 1, 0.9)], {"A": 0.0, "B": 10.0}
        )
        assert algorithm1_order(tree)[0] == 0

    def test_single_leaf(self):
        tree = AndTree([Leaf("A", 3, 0.5)])
        assert algorithm1_order(tree) == (0,)

    def test_beats_or_ties_smith_everywhere(self, rng):
        """Figure 4's headline: Algorithm 1 <= read-once greedy, always."""
        from repro.generators import random_and_tree

        for _ in range(200):
            tree = random_and_tree(rng, int(rng.integers(2, 12)), float(rng.choice([1, 1.5, 2, 3, 5])))
            alg1 = and_tree_cost(tree, algorithm1_order(tree), validate=False)
            smith = and_tree_cost(tree, read_once_order(tree), validate=False)
            assert alg1 <= smith + 1e-9


class TestBruteForce:
    def test_budget_guard(self):
        tree = AndTree([Leaf("A", 1, 0.5)] * 10)
        with pytest.raises(BudgetExceededError):
            brute_force_and_tree(tree, max_leaves=9)

    def test_identical_leaf_dedup_is_sound(self):
        # 5 identical leaves: only one distinct schedule cost.
        tree = AndTree([Leaf("A", 2, 0.5)] * 5, {"A": 1.0})
        schedule, cost = brute_force_and_tree(tree)
        assert cost == pytest.approx(and_tree_cost(tree, tuple(range(5))))

    def test_returns_valid_schedule(self):
        tree = AndTree([Leaf("A", 1, 0.3), Leaf("B", 2, 0.6), Leaf("A", 2, 0.9)])
        schedule, cost = brute_force_and_tree(tree)
        assert sorted(schedule) == [0, 1, 2]
        assert and_tree_cost(tree, schedule) == pytest.approx(cost)
