"""Tests for the §IV-D heuristics (all three families + registry)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro import DnfTree, Leaf, dnf_schedule_cost, is_depth_first, validate_schedule
from repro.core.heuristics import (
    AndOrderedIncreasingCOverPDynamic,
    LeafOrderedDecreasingQ,
    LeafOrderedIncreasingCost,
    LeafOrderedIncreasingCostOverQ,
    LeafOrderedRandom,
    StreamOrdered,
    and_block_plan,
    available_schedulers,
    get_scheduler,
    leaf_full_cost,
    make_paper_heuristics,
    paper_heuristic_names,
    stream_metric,
)
from repro.errors import ReproError
from tests.strategies import dnf_trees


def simple_tree():
    return DnfTree(
        [
            [Leaf("A", 2, 0.9), Leaf("B", 1, 0.2)],
            [Leaf("C", 3, 0.5)],
            [Leaf("A", 1, 0.4), Leaf("C", 1, 0.8)],
        ],
        {"A": 1.0, "B": 4.0, "C": 2.0},
    )


class TestRegistry:
    def test_all_paper_heuristics_registered(self):
        names = set(available_schedulers())
        assert set(paper_heuristic_names()) <= names

    def test_get_scheduler_unknown_name(self):
        with pytest.raises(ReproError):
            get_scheduler("definitely-not-a-heuristic")

    def test_make_paper_heuristics_instantiates_all_ten(self):
        heuristics = make_paper_heuristics(seed=0)
        assert len(heuristics) == 10

    def test_paper_labels_present(self):
        for name, heuristic in make_paper_heuristics(seed=0).items():
            assert heuristic.paper_label, name

    def test_every_scheduler_produces_valid_schedules(self, rng):
        from tests.conftest import random_small_dnf

        heuristics = make_paper_heuristics(seed=1)
        for _ in range(10):
            tree = random_small_dnf(rng)
            for name, heuristic in heuristics.items():
                schedule = heuristic.schedule(tree)
                validate_schedule(tree, schedule)

    def test_cost_shortcut_matches_schedule(self):
        tree = simple_tree()
        heuristic = get_scheduler("leaf-inc-c")
        assert heuristic.cost(tree) == pytest.approx(
            dnf_schedule_cost(tree, heuristic.schedule(tree))
        )


class TestLeafOrdered:
    def test_increasing_cost_order(self):
        tree = simple_tree()
        # full costs: A2=2, B1=4, C3=6, A1=1, C1=2 -> order 3,0,4,1,2
        assert LeafOrderedIncreasingCost().schedule(tree) == (3, 0, 4, 1, 2)

    def test_decreasing_q_order(self):
        tree = simple_tree()
        # q: 0.1, 0.8, 0.5, 0.6, 0.2 -> order 1,3,2,4,0
        assert LeafOrderedDecreasingQ().schedule(tree) == (1, 3, 2, 4, 0)

    def test_cost_over_q_handles_certain_leaves(self):
        tree = DnfTree([[Leaf("A", 1, 1.0), Leaf("B", 1, 0.5)]], {"A": 1.0, "B": 1.0})
        # q=0 -> infinite key -> last
        assert LeafOrderedIncreasingCostOverQ().schedule(tree) == (1, 0)

    def test_random_is_seeded(self):
        tree = simple_tree()
        a = LeafOrderedRandom(seed=5).schedule(tree)
        b = LeafOrderedRandom(seed=5).schedule(tree)
        assert a == b

    def test_random_varies_across_draws(self):
        tree = simple_tree()
        sched = LeafOrderedRandom(seed=5)
        draws = {sched.schedule(tree) for _ in range(16)}
        assert len(draws) > 1

    def test_leaf_full_cost_helper(self):
        assert leaf_full_cost(Leaf("A", 3, 0.5), {"A": 2.0}) == pytest.approx(6.0)


class TestAndOrdered:
    def test_blocks_are_contiguous(self, rng):
        from tests.conftest import random_small_dnf

        for name in (
            "and-dec-p",
            "and-inc-c-static",
            "and-inc-c-dynamic",
            "and-inc-c-over-p-static",
            "and-inc-c-over-p-dynamic",
        ):
            heuristic = get_scheduler(name)
            for _ in range(5):
                tree = random_small_dnf(rng)
                assert is_depth_first(tree, heuristic.schedule(tree)), name

    def test_and_block_plan_uses_algorithm1(self):
        tree = simple_tree()
        gindices, cost, prob = and_block_plan(tree, 0)
        # AND 0 = {A[2] p0.9, B[1] p0.2}; Algorithm 1 picks B first
        # (ratio B: 4/0.8 = 5; A: 2/0.1 = 20; A-then-B prefix: (2+0.9*4)/0.82 ≈ 6.8)
        assert gindices == [1, 0]
        assert prob == pytest.approx(0.18)
        assert cost == pytest.approx(4.0 + 0.2 * 2.0)

    def test_static_inc_c_orders_by_isolated_cost(self):
        tree = simple_tree()
        sched = get_scheduler("and-inc-c-static").schedule(tree)
        # isolated costs: AND0 = 4.4, AND1 = 6.0, AND2: alg1 order [A1,C1]
        # cost = 1 + 0.4*2 = 1.8 -> block order AND2, AND0, AND1
        assert sched == (3, 4, 1, 0, 2)

    def test_dec_p_orders_by_success_probability(self):
        tree = simple_tree()
        sched = get_scheduler("and-dec-p").schedule(tree)
        # p: AND0 = 0.18, AND1 = 0.5, AND2 = 0.32 -> AND1, AND2, AND0
        assert sched[0] == 2

    def test_dynamic_accounts_for_shared_items(self):
        # Two ANDs on the same stream: after scheduling AND0 (A[3]), AND1's
        # A[2] is probably cached -> marginal cost far below isolated cost.
        tree = DnfTree(
            [[Leaf("A", 3, 0.5)], [Leaf("A", 2, 0.5)], [Leaf("B", 2, 0.5)]],
            {"A": 1.0, "B": 1.2},
        )
        dynamic = get_scheduler("and-inc-c-dynamic").schedule(tree)
        # isolated costs: 3, 2, 2.4 -> static order AND1, AND2, AND0.
        static = get_scheduler("and-inc-c-static").schedule(tree)
        assert static == (1, 2, 0)
        # dynamic: after AND1, AND0's items 1-2 are surely cached, so its
        # marginal (0.5) beats AND2's (1.2) -> AND0 second.
        assert dynamic == (1, 0, 2)
        # and the dynamic cost can never exceed the static cost here
        assert dnf_schedule_cost(tree, dynamic) <= dnf_schedule_cost(tree, static) + 1e-12

    @settings(max_examples=40, deadline=None)
    @given(tree=dnf_trees(max_ands=3, max_per_and=3))
    def test_dynamic_never_invalid(self, tree):
        heuristic = AndOrderedIncreasingCOverPDynamic()
        validate_schedule(tree, heuristic.schedule(tree))


class TestStreamOrdered:
    def test_metric_formula(self):
        tree = simple_tree()
        # Stream A: leaves (AND0, m=2, q=0.1) and (AND2, m=2, q=0.6)
        # power = 0.1*1 + 0.6*1 = 0.7; max cost = 2*1 = 2 -> R = 0.35
        assert stream_metric(tree, "A") == pytest.approx(0.35)
        # Stream B: power 0.8*1, max cost 4 -> 0.2
        assert stream_metric(tree, "B") == pytest.approx(0.2)

    def test_groups_leaves_by_stream(self):
        tree = simple_tree()
        sched = StreamOrdered().schedule(tree)
        streams = [tree.leaves[g].stream for g in sched]
        # all occurrences of each stream are contiguous
        seen = []
        for s in streams:
            if not seen or seen[-1] != s:
                seen.append(s)
        assert len(seen) == len(set(seen))

    def test_increasing_d_within_stream_by_default(self):
        tree = simple_tree()
        sched = StreamOrdered().schedule(tree)
        by_stream: dict[str, list[int]] = {}
        for g in sched:
            by_stream.setdefault(tree.leaves[g].stream, []).append(tree.leaves[g].items)
        for items in by_stream.values():
            assert items == sorted(items)

    def test_original_decreasing_d_variant(self):
        tree = simple_tree()
        sched = StreamOrdered(original_decreasing_d=True).schedule(tree)
        by_stream: dict[str, list[int]] = {}
        for g in sched:
            by_stream.setdefault(tree.leaves[g].stream, []).append(tree.leaves[g].items)
        for items in by_stream.values():
            assert items == sorted(items, reverse=True)

    def test_literal_increasing_r_reverses_stream_order(self):
        tree = simple_tree()
        default = StreamOrdered().schedule(tree)
        literal = StreamOrdered(literal_increasing_r=True).schedule(tree)
        default_streams = [tree.leaves[g].stream for g in default]
        literal_streams = [tree.leaves[g].stream for g in literal]
        # stream blocks appear in opposite orders
        def block_order(seq):
            out = []
            for s in seq:
                if not out or out[-1] != s:
                    out.append(s)
            return out

        assert block_order(default_streams) == list(reversed(block_order(literal_streams)))

    def test_free_stream_prioritized(self):
        tree = DnfTree(
            [[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]], {"A": 0.0, "B": 5.0}
        )
        assert StreamOrdered().schedule(tree)[0] == 0

    def test_improved_beats_original_in_vast_majority(self, rng):
        """Paper: the increasing-d version wins 'in the vast majority of the
        cases, with all remaining cases being ties'."""
        from tests.conftest import random_small_dnf

        improved = StreamOrdered()
        original = StreamOrdered(original_decreasing_d=True)
        better_or_tie = 0
        total = 0
        for _ in range(60):
            tree = random_small_dnf(rng, max_ands=3, max_per_and=3, max_items=4)
            a = improved.cost(tree)
            b = original.cost(tree)
            total += 1
            if a <= b + 1e-9:
                better_or_tie += 1
        assert better_or_tie / total >= 0.9
