"""Unit + property tests for the analytic cost evaluators (Prop. 2 etc.)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (
    AndTree,
    DnfPrefixCost,
    DnfTree,
    Leaf,
    and_tree_cost,
    dnf_schedule_cost,
    exact_schedule_cost,
    schedule_cost,
)
from tests.strategies import and_trees, dnf_trees_with_schedule


class TestAndTreeCost:
    def test_single_leaf(self):
        tree = AndTree([Leaf("A", 3, 0.5)], {"A": 2.0})
        assert and_tree_cost(tree, (0,)) == pytest.approx(6.0)

    def test_read_once_two_leaves(self):
        tree = AndTree([Leaf("A", 1, 0.5), Leaf("B", 2, 0.3)], {"A": 1.0, "B": 2.0})
        # evaluate A then B: 1 + 0.5 * 4
        assert and_tree_cost(tree, (0, 1)) == pytest.approx(3.0)
        assert and_tree_cost(tree, (1, 0)) == pytest.approx(4.0 + 0.3 * 1.0)

    def test_shared_items_are_free(self):
        tree = AndTree([Leaf("A", 3, 0.5), Leaf("A", 3, 0.9)], {"A": 1.0})
        # second leaf reuses all three items
        assert and_tree_cost(tree, (0, 1)) == pytest.approx(3.0)

    def test_partial_share_pays_margin(self):
        tree = AndTree([Leaf("A", 2, 0.5), Leaf("A", 5, 0.9)], {"A": 1.0})
        assert and_tree_cost(tree, (0, 1)) == pytest.approx(2.0 + 0.5 * 3.0)

    def test_shared_false_disables_cache(self):
        tree = AndTree([Leaf("A", 2, 0.5), Leaf("A", 5, 0.9)], {"A": 1.0})
        assert and_tree_cost(tree, (0, 1), shared=False) == pytest.approx(2.0 + 0.5 * 5.0)

    def test_zero_probability_prefix_truncates(self):
        tree = AndTree([Leaf("A", 1, 0.0), Leaf("B", 9, 0.5)], {"A": 1.0, "B": 1.0})
        assert and_tree_cost(tree, (0, 1)) == pytest.approx(1.0)

    def test_order_independent_total_when_all_certain(self):
        leaves = [Leaf("A", 2, 1.0), Leaf("A", 4, 1.0), Leaf("B", 1, 1.0)]
        tree = AndTree(leaves, {"A": 1.0, "B": 3.0})
        costs = [and_tree_cost(tree, perm) for perm in [(0, 1, 2), (2, 1, 0), (1, 0, 2)]]
        # all leaves always evaluated: total = max-d per stream = 4 + 3
        assert costs == pytest.approx([7.0, 7.0, 7.0])

    def test_validates_schedule(self):
        tree = AndTree([Leaf("A", 1, 0.5)])
        with pytest.raises(Exception):
            and_tree_cost(tree, (0, 1))

    @settings(max_examples=60, deadline=None)
    @given(tree=and_trees(max_leaves=5))
    def test_matches_exact_evaluator(self, tree):
        schedule = tuple(range(tree.m))
        assert and_tree_cost(tree, schedule) == pytest.approx(
            exact_schedule_cost(tree, schedule), rel=1e-9, abs=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(tree=and_trees(min_leaves=2, max_leaves=5))
    def test_nonnegative_and_bounded(self, tree):
        schedule = tuple(range(tree.m))
        cost = and_tree_cost(tree, schedule)
        upper = sum(leaf.items * tree.costs[leaf.stream] for leaf in tree.leaves)
        assert 0.0 <= cost <= upper + 1e-9


class TestDnfScheduleCost:
    def test_single_and_equals_and_tree_cost(self):
        leaves = [Leaf("A", 2, 0.4), Leaf("A", 3, 0.6), Leaf("B", 1, 0.7)]
        and_tree = AndTree(leaves, {"A": 1.5, "B": 2.0})
        dnf = and_tree.to_dnf()
        for perm in [(0, 1, 2), (2, 0, 1), (1, 2, 0)]:
            assert dnf_schedule_cost(dnf, perm) == pytest.approx(
                and_tree_cost(and_tree, perm)
            )

    def test_read_once_dnf_closed_form(self):
        # Two independent single-leaf ANDs: cost = c1 + q1 * c2.
        dnf = DnfTree(
            [[Leaf("A", 2, 0.3)], [Leaf("B", 1, 0.8)]], {"A": 1.0, "B": 5.0}
        )
        assert dnf_schedule_cost(dnf, (0, 1)) == pytest.approx(2.0 + 0.7 * 5.0)
        assert dnf_schedule_cost(dnf, (1, 0)) == pytest.approx(5.0 + 0.2 * 2.0)

    def test_second_and_reuses_first_ands_items(self):
        # Same stream+depth in both ANDs: the second AND's leaf is free when
        # the first AND evaluated its leaf.
        dnf = DnfTree([[Leaf("A", 1, 0.5)], [Leaf("A", 1, 0.5)]], {"A": 4.0})
        # first leaf always costs 4; second evaluated only if AND0 FALSE but
        # the item is then already cached -> free.
        assert dnf_schedule_cost(dnf, (0, 1)) == pytest.approx(4.0)

    def test_deeper_window_pays_difference(self):
        dnf = DnfTree([[Leaf("A", 1, 0.5)], [Leaf("A", 3, 0.5)]], {"A": 1.0})
        # AND1 evaluated only when AND0 fails (prob 0.5); 2 more items needed.
        assert dnf_schedule_cost(dnf, (0, 1)) == pytest.approx(1.0 + 0.5 * 2.0)

    def test_validate_flag(self):
        dnf = DnfTree([[Leaf("A", 1, 0.5)]])
        with pytest.raises(Exception):
            dnf_schedule_cost(dnf, (0, 0))

    @settings(max_examples=100, deadline=None)
    @given(pair=dnf_trees_with_schedule(max_ands=3, max_per_and=3))
    def test_matches_exact_evaluator(self, pair):
        tree, schedule = pair
        analytic = dnf_schedule_cost(tree, schedule)
        reference = exact_schedule_cost(tree, schedule)
        assert analytic == pytest.approx(reference, rel=1e-9, abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(pair=dnf_trees_with_schedule(max_ands=3, max_per_and=2))
    def test_nonnegative(self, pair):
        tree, schedule = pair
        assert dnf_schedule_cost(tree, schedule) >= 0.0


class TestDnfPrefixCost:
    def test_incremental_total_matches_full_eval(self, rng):
        from tests.conftest import random_small_dnf

        for _ in range(30):
            tree = random_small_dnf(rng)
            schedule = tuple(int(x) for x in rng.permutation(tree.size))
            state = DnfPrefixCost(tree)
            partial_totals = []
            for g in schedule:
                state.push(g)
                partial_totals.append(state.total)
            assert partial_totals[-1] == pytest.approx(dnf_schedule_cost(tree, schedule))
            # prefix totals are monotone (non-negative marginal costs)
            assert all(b >= a - 1e-12 for a, b in zip(partial_totals, partial_totals[1:]))

    def test_push_undo_restores_state(self, rng):
        from tests.conftest import random_small_dnf

        for _ in range(20):
            tree = random_small_dnf(rng)
            schedule = list(rng.permutation(tree.size))
            state = DnfPrefixCost(tree)
            cut = len(schedule) // 2
            for g in schedule[:cut]:
                state.push(g)
            snapshot = (
                state.total,
                list(state.placed_count),
                list(state.prefix_prob),
                dict(state.not_acquired),
                {k: set(v) for k, v in state.claimed.items()},
                [dict(d) for d in state.claim_depth],
                list(state.completed),
            )
            tokens = [state.push(g) for g in schedule[cut:]]
            for token in reversed(tokens):
                state.undo(token)
            assert state.total == pytest.approx(snapshot[0])
            assert list(state.placed_count) == snapshot[1]
            assert state.prefix_prob == pytest.approx(snapshot[2])
            got_not_acq = {k: v for k, v in state.not_acquired.items()}
            for key in set(snapshot[3]) | set(got_not_acq):
                assert got_not_acq.get(key, 1.0) == pytest.approx(snapshot[3].get(key, 1.0))
            got_claimed = {k: v for k, v in state.claimed.items() if v}
            want_claimed = {k: v for k, v in snapshot[4].items() if v}
            assert got_claimed == want_claimed
            assert state.claim_depth == snapshot[5]
            assert state.completed == snapshot[6]

    def test_peek_block_leaves_state_unchanged(self):
        tree = DnfTree(
            [[Leaf("A", 2, 0.5), Leaf("B", 1, 0.4)], [Leaf("A", 3, 0.7)]],
            {"A": 1.0, "B": 2.0},
        )
        state = DnfPrefixCost(tree)
        state.push(0)
        before = state.total
        marginal = state.peek_block([1, 2])
        assert state.total == pytest.approx(before)
        assert state.pushed == 1
        # pushing for real adds exactly the peeked marginal
        state.push(1)
        state.push(2)
        assert state.total == pytest.approx(before + marginal)


class TestScheduleCostDispatch:
    def test_dispatches_and_tree(self):
        tree = AndTree([Leaf("A", 1, 0.5)])
        assert schedule_cost(tree, (0,)) == pytest.approx(1.0)

    def test_dispatches_dnf(self):
        tree = DnfTree([[Leaf("A", 1, 0.5)]])
        assert schedule_cost(tree, (0,)) == pytest.approx(1.0)

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            schedule_cost("nope", (0,))  # type: ignore[arg-type]
