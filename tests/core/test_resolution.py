"""Tests for the shared short-circuit resolution machinery."""

from __future__ import annotations

import pytest

from repro import AndNode, AndTree, DnfTree, Leaf, LeafNode, OrNode, QueryTree
from repro.core.resolution import FALSE, TRUE, UNRESOLVED, ResolutionState, TreeIndex


def build_dnf():
    return DnfTree(
        [[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)], [Leaf("C", 1, 0.5)]],
        {"A": 1.0, "B": 1.0, "C": 1.0},
    )


class TestTreeIndex:
    def test_accepts_all_tree_types(self):
        and_tree = AndTree([Leaf("A", 1, 0.5)])
        dnf = build_dnf()
        qtree = dnf.to_query_tree()
        for tree in (and_tree, dnf, qtree):
            index = TreeIndex(tree)
            assert index.n_nodes >= 1

    def test_leaf_order_matches_dnf_gindices(self):
        dnf = build_dnf()
        index = TreeIndex(dnf)
        assert len(index.leaf_node_ids) == dnf.size
        # leaf ancestors: AND node + OR root for each leaf
        for ancestors in index.leaf_ancestors:
            assert ancestors[-1] == 0  # root last in upward path

    def test_bare_leaf_tree(self):
        tree = QueryTree(LeafNode(Leaf("A", 1, 0.5)))
        index = TreeIndex(tree)
        assert index.n_nodes == 1
        assert index.leaf_ancestors == ((),)


class TestResolutionState:
    def test_and_resolves_false_on_first_false(self):
        dnf = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]])
        state = TreeIndex(dnf).new_state()
        state.set_leaf(0, False)
        assert state.root_value is False
        assert state.is_skipped(1)

    def test_and_resolves_true_when_all_true(self):
        dnf = DnfTree([[Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]])
        state = TreeIndex(dnf).new_state()
        state.set_leaf(0, True)
        assert state.root_value is None
        state.set_leaf(1, True)
        assert state.root_value is True

    def test_or_short_circuit(self):
        dnf = build_dnf()
        state = TreeIndex(dnf).new_state()
        state.set_leaf(0, True)
        state.set_leaf(1, True)  # AND 0 TRUE -> OR TRUE
        assert state.root_value is True
        assert state.is_skipped(2)

    def test_all_ands_false_resolves_false(self):
        dnf = build_dnf()
        state = TreeIndex(dnf).new_state()
        state.set_leaf(0, False)
        assert state.root_value is None
        state.set_leaf(2, False)
        assert state.root_value is False

    def test_dead_and_skips_only_its_leaves(self):
        dnf = build_dnf()
        state = TreeIndex(dnf).new_state()
        state.set_leaf(0, False)
        assert state.is_skipped(1)
        assert not state.is_skipped(2)

    def test_copy_is_independent(self):
        dnf = build_dnf()
        state = TreeIndex(dnf).new_state()
        clone = state.copy()
        clone.set_leaf(0, False)
        assert state.root_value is None
        assert clone.values != state.values

    def test_signature_distinguishes_states(self):
        dnf = build_dnf()
        index = TreeIndex(dnf)
        a = index.new_state()
        b = index.new_state()
        assert a.signature() == b.signature()
        b.set_leaf(0, True)
        assert a.signature() != b.signature()

    def test_nested_propagation(self):
        # OR( AND(a, OR(b, c)), d )
        root = OrNode(
            [
                AndNode(
                    [
                        LeafNode(Leaf("A", 1, 0.5)),
                        OrNode([LeafNode(Leaf("B", 1, 0.5)), LeafNode(Leaf("C", 1, 0.5))]),
                    ]
                ),
                LeafNode(Leaf("D", 1, 0.5)),
            ]
        )
        tree = QueryTree(root)
        state = TreeIndex(tree).new_state()
        state.set_leaf(0, True)   # a TRUE: AND still open
        assert state.root_value is None
        state.set_leaf(1, False)  # b FALSE: inner OR open
        assert state.root_value is None
        state.set_leaf(2, True)   # c TRUE -> inner OR TRUE -> AND TRUE -> root TRUE
        assert state.root_value is True
        assert state.is_skipped(3)

    def test_values_constants(self):
        assert UNRESOLVED == 0 and TRUE == 1 and FALSE == 2
