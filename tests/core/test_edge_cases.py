"""Edge-case and adversarial-instance tests across the core algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AndTree,
    DnfPrefixCost,
    DnfTree,
    Leaf,
    algorithm1_order,
    and_tree_cost,
    brute_force_and_tree,
    dnf_schedule_cost,
    exact_schedule_cost,
)
from repro.core.dnf_optimal import optimal_any_order, optimal_depth_first


class TestDegenerateTrees:
    def test_single_leaf_everything_agrees(self):
        tree = DnfTree([[Leaf("A", 4, 0.37)]], {"A": 2.5})
        assert dnf_schedule_cost(tree, (0,)) == pytest.approx(10.0)
        assert exact_schedule_cost(tree, (0,)) == pytest.approx(10.0)
        assert optimal_depth_first(tree).cost == pytest.approx(10.0)

    def test_all_probabilities_zero(self):
        # Every leaf fails: each AND dies at its first leaf; all first leaves
        # of all ANDs are evaluated.
        tree = DnfTree(
            [[Leaf("A", 1, 0.0), Leaf("B", 5, 0.0)], [Leaf("C", 2, 0.0)]],
            {"A": 1.0, "B": 1.0, "C": 1.0},
        )
        assert dnf_schedule_cost(tree, (0, 1, 2)) == pytest.approx(1.0 + 2.0)

    def test_all_probabilities_one(self):
        # First AND surely TRUE: nothing else is ever touched.
        tree = DnfTree(
            [[Leaf("A", 2, 1.0), Leaf("B", 1, 1.0)], [Leaf("C", 9, 1.0)]],
            {"A": 1.0, "B": 1.0, "C": 1.0},
        )
        assert dnf_schedule_cost(tree, (0, 1, 2)) == pytest.approx(3.0)
        assert optimal_depth_first(tree).cost == pytest.approx(3.0)

    def test_every_leaf_same_stream_same_window(self):
        leaves = [[Leaf("A", 3, 0.5)] for _ in range(4)]
        tree = DnfTree(leaves, {"A": 2.0})
        # first leaf pays 6; every later leaf reuses the cached items
        assert dnf_schedule_cost(tree, (0, 1, 2, 3)) == pytest.approx(6.0)

    def test_zero_cost_everything(self):
        tree = DnfTree(
            [[Leaf("A", 5, 0.3), Leaf("B", 2, 0.6)]], {"A": 0.0, "B": 0.0}
        )
        assert dnf_schedule_cost(tree, (0, 1)) == 0.0
        assert optimal_depth_first(tree).cost == 0.0

    def test_huge_windows(self):
        tree = AndTree(
            [Leaf("A", 10_000, 0.5), Leaf("A", 20_000, 0.5)], {"A": 0.001}
        )
        cost = and_tree_cost(tree, (0, 1))
        assert cost == pytest.approx(10_000 * 0.001 + 0.5 * 10_000 * 0.001)

    def test_many_identical_ands_search_stays_small(self):
        group = [Leaf("A", 1, 0.5), Leaf("B", 1, 0.5)]
        tree = DnfTree([list(group) for _ in range(6)], {"A": 1.0, "B": 1.0})
        result = optimal_depth_first(tree)
        # symmetry elimination: identical ANDs and identical leaves collapse
        assert result.nodes_explored < 2_000
        assert result.complete


class TestAdversarialAlgorithm1:
    def test_long_prefix_beats_each_individual_leaf(self):
        # Stream A's leaves individually look bad but the full prefix is a
        # near-certain cheap kill; Algorithm 1 must take the whole prefix.
        leaves = [
            Leaf("A", 1, 0.9),
            Leaf("A", 1, 0.9),
            Leaf("A", 1, 0.9),
            Leaf("A", 1, 0.9),
            Leaf("B", 1, 0.45),
        ]
        tree = AndTree(leaves, {"A": 1.0, "B": 1.0})
        order = algorithm1_order(tree)
        _, best = brute_force_and_tree(tree)
        assert and_tree_cost(tree, order) == pytest.approx(best, rel=1e-9)

    def test_mixed_probability_extremes(self):
        leaves = [
            Leaf("A", 2, 1.0),
            Leaf("A", 3, 0.0),
            Leaf("B", 1, 0.5),
            Leaf("B", 4, 1.0),
        ]
        tree = AndTree(leaves, {"A": 3.0, "B": 1.0})
        order = algorithm1_order(tree)
        _, best = brute_force_and_tree(tree)
        assert and_tree_cost(tree, order) == pytest.approx(best, rel=1e-9)

    def test_extreme_cost_asymmetry(self):
        leaves = [Leaf("A", 1, 0.01), Leaf("B", 5, 0.99), Leaf("B", 1, 0.5)]
        tree = AndTree(leaves, {"A": 1e6, "B": 1e-6})
        order = algorithm1_order(tree)
        _, best = brute_force_and_tree(tree)
        assert and_tree_cost(tree, order) == pytest.approx(best, rel=1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_probability_boundary_instances(self, seed):
        rng = np.random.default_rng(seed)
        choices = [0.0, 1.0, 0.5]
        leaves = [
            Leaf(
                f"S{int(rng.integers(1, 3))}",
                int(rng.integers(1, 4)),
                float(rng.choice(choices)),
            )
            for _ in range(int(rng.integers(2, 6)))
        ]
        used = {leaf.stream for leaf in leaves}
        tree = AndTree(leaves, {name: float(rng.uniform(0, 3)) for name in used})
        order = algorithm1_order(tree)
        _, best = brute_force_and_tree(tree)
        assert and_tree_cost(tree, order) == pytest.approx(best, rel=1e-9, abs=1e-12)


class TestPrefixCostStress:
    def test_interleaved_push_undo_random_walk(self, rng):
        """Random push/undo walks must keep the evaluator consistent."""
        from tests.conftest import random_small_dnf

        for _ in range(10):
            tree = random_small_dnf(rng, max_ands=3, max_per_and=3)
            state = DnfPrefixCost(tree)
            stack: list = []
            available = list(range(tree.size))
            for _ in range(200):
                if stack and (not available or rng.random() < 0.45):
                    g, token = stack.pop()
                    state.undo(token)
                    available.append(g)
                elif available:
                    g = available.pop(int(rng.integers(0, len(available))))
                    stack.append((g, state.push(g)))
            # drain and compare against a fresh evaluation of the same prefix
            prefix = [g for g, _ in stack]
            fresh = DnfPrefixCost(tree)
            for g in prefix:
                fresh.push(g)
            assert state.total == pytest.approx(fresh.total, rel=1e-9, abs=1e-12)

    def test_peek_block_idempotent(self, rng):
        from tests.conftest import random_small_dnf

        tree = random_small_dnf(rng)
        state = DnfPrefixCost(tree)
        block = list(range(tree.size))
        first = state.peek_block(block)
        second = state.peek_block(block)
        assert first == pytest.approx(second)
        assert state.pushed == 0


class TestAnyOrderVsDepthFirstOnEdgeCases:
    @pytest.mark.parametrize("seed", range(6))
    def test_boundary_probability_dnfs(self, seed):
        rng = np.random.default_rng(100 + seed)
        groups = []
        for _ in range(2):
            groups.append(
                [
                    Leaf(
                        f"S{int(rng.integers(1, 3))}",
                        int(rng.integers(1, 3)),
                        float(rng.choice([0.0, 1.0, 0.5])),
                    )
                    for _ in range(int(rng.integers(1, 3)))
                ]
            )
        used = {leaf.stream for group in groups for leaf in group}
        tree = DnfTree(groups, {name: float(rng.uniform(0.5, 2)) for name in used})
        df = optimal_depth_first(tree)
        ao = optimal_any_order(tree)
        assert df.cost == pytest.approx(ao.cost, rel=1e-9, abs=1e-12)
