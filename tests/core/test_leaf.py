"""Unit tests for :mod:`repro.core.leaf`."""

from __future__ import annotations

import math

import pytest

from repro import InvalidLeafError, Leaf


class TestConstruction:
    def test_basic_fields(self):
        leaf = Leaf("A", 5, 0.75, "l1")
        assert leaf.stream == "A"
        assert leaf.items == 5
        assert leaf.prob == 0.75
        assert leaf.label == "l1"

    def test_prob_is_coerced_to_float(self):
        assert isinstance(Leaf("A", 1, 1).prob, float)

    def test_label_defaults_empty(self):
        assert Leaf("A", 1, 0.5).label == ""

    @pytest.mark.parametrize("items", [0, -1, 1.5, True])
    def test_rejects_bad_items(self, items):
        with pytest.raises(InvalidLeafError):
            Leaf("A", items, 0.5)

    @pytest.mark.parametrize("prob", [-0.01, 1.01, math.nan, "0.5", True])
    def test_rejects_bad_prob(self, prob):
        with pytest.raises(InvalidLeafError):
            Leaf("A", 1, prob)

    @pytest.mark.parametrize("stream", ["", None, 7])
    def test_rejects_bad_stream(self, stream):
        with pytest.raises(InvalidLeafError):
            Leaf(stream, 1, 0.5)

    @pytest.mark.parametrize("prob", [0.0, 1.0])
    def test_boundary_probs_allowed(self, prob):
        assert Leaf("A", 1, prob).prob == prob


class TestBehaviour:
    def test_fail_is_complement(self):
        assert Leaf("A", 1, 0.3).fail == pytest.approx(0.7)

    def test_acquisition_cost(self):
        assert Leaf("A", 4, 0.5).acquisition_cost({"A": 2.5}) == pytest.approx(10.0)

    def test_marginal_cost_with_cache(self):
        leaf = Leaf("A", 4, 0.5)
        assert leaf.marginal_cost({"A": 2.0}, cached_items=1) == pytest.approx(6.0)
        assert leaf.marginal_cost({"A": 2.0}, cached_items=4) == 0.0
        assert leaf.marginal_cost({"A": 2.0}, cached_items=9) == 0.0

    def test_with_prob_returns_new_leaf(self):
        leaf = Leaf("A", 2, 0.5, "x")
        other = leaf.with_prob(0.9)
        assert other.prob == 0.9
        assert other.stream == "A" and other.items == 2 and other.label == "x"
        assert leaf.prob == 0.5  # unchanged

    def test_equality_ignores_label(self):
        assert Leaf("A", 1, 0.5, "x") == Leaf("A", 1, 0.5, "y")
        assert Leaf("A", 1, 0.5) != Leaf("A", 2, 0.5)

    def test_hashable(self):
        assert len({Leaf("A", 1, 0.5), Leaf("A", 1, 0.5, "other-label")}) == 1

    def test_describe_mentions_stream_items_prob(self):
        text = Leaf("HR", 5, 0.25, "AVG(HR,5) > 100").describe()
        assert "HR[5]" in text and "0.25" in text and "AVG(HR,5) > 100" in text
