"""Sanity checks on the package's public surface."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.heuristics",
            "repro.core.nonlinear",
            "repro.core.multistream",
            "repro.streams",
            "repro.predicates",
            "repro.engine",
            "repro.service",
            "repro.adaptive",
            "repro.cluster",
            "repro.lang",
            "repro.generators",
            "repro.experiments",
            "repro.parallel",
            "repro.obs",
            "repro.errors",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_quickstart_docstring_example(self):
        """The __init__ docstring's example must actually work."""
        from repro import AndTree, Leaf, algorithm1_order, and_tree_cost

        tree = AndTree(
            [Leaf("A", 1, 0.75), Leaf("A", 2, 0.1), Leaf("B", 1, 0.5)],
            costs={"A": 1.0, "B": 1.0},
        )
        order = algorithm1_order(tree)
        assert and_tree_cost(tree, order) == pytest.approx(1.825)

    def test_errors_share_base_class(self):
        from repro.errors import (
            BudgetExceededError,
            InvalidLeafError,
            InvalidScheduleError,
            InvalidTreeError,
            ParseError,
            ReproError,
            StreamError,
        )

        for exc in (
            InvalidLeafError,
            InvalidTreeError,
            InvalidScheduleError,
            BudgetExceededError,
            ParseError,
            StreamError,
        ):
            assert issubclass(exc, ReproError)
