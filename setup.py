"""Legacy setuptools shim.

The offline build environment lacks the `wheel` package, so PEP 517/660
editable installs cannot build a wheel; this shim lets
``pip install -e . --no-build-isolation`` (and plain ``pip install -e .``)
fall back to the classic ``setup.py develop`` path. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
