"""Random PAOTR instance generators reproducing the paper's workloads."""

from repro.generators.configs import (
    FIG4_LEAF_COUNTS,
    FIG4_SHARING_RATIOS,
    FIG5_MAX_LEAVES,
    FIG5_MAX_PER_AND_CHOICES,
    FIG5_N_ANDS,
    FIG6_LEAVES_PER_AND,
    FIG6_N_ANDS,
    AndTreeConfig,
    DnfConfig,
    fig4_configs,
    fig5_configs,
    fig6_configs,
)
from repro.generators.churn import ChurnEvent, churn_schedule, events_by_batch
from repro.generators.overlap_populations import (
    clustered_registry,
    clustered_stream_groups,
    overlap_clustered_population,
)
from repro.generators.drift_scenarios import (
    ramp_drift_by_stream,
    random_step_drift,
    step_drift_by_stream,
    tree_base_probs,
)
from repro.generators.random_trees import (
    random_and_tree,
    random_dnf_tree,
    random_query_tree,
    sample_and_tree,
    sample_dnf_tree,
    stream_names,
)

__all__ = [
    "AndTreeConfig",
    "DnfConfig",
    "fig4_configs",
    "fig5_configs",
    "fig6_configs",
    "FIG4_LEAF_COUNTS",
    "FIG4_SHARING_RATIOS",
    "FIG5_N_ANDS",
    "FIG5_MAX_PER_AND_CHOICES",
    "FIG5_MAX_LEAVES",
    "FIG6_N_ANDS",
    "FIG6_LEAVES_PER_AND",
    "random_and_tree",
    "random_dnf_tree",
    "random_query_tree",
    "sample_and_tree",
    "sample_dnf_tree",
    "stream_names",
    "tree_base_probs",
    "step_drift_by_stream",
    "ramp_drift_by_stream",
    "random_step_drift",
    "clustered_stream_groups",
    "clustered_registry",
    "overlap_clustered_population",
    "ChurnEvent",
    "churn_schedule",
    "events_by_batch",
]
