"""Random tree generators implementing the paper's instance distributions.

All generators are deterministic given a :class:`numpy.random.Generator`.
Per the paper (§III-B): leaf success probabilities ~ U[0, 1], items needed
per leaf ~ U{d_min..d_max} (paper: 1..5), per-item stream costs
~ U[c_min, c_max] (paper: 1..10). The *sharing ratio* rho controls how many
streams exist: ``s = max(1, round(m / rho))`` streams, each leaf drawing its
stream uniformly, so the expected number of leaves per stream is ~rho.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.leaf import Leaf
from repro.core.tree import AndNode, AndTree, DnfTree, LeafNode, OrNode, QueryTree
from repro.generators.configs import AndTreeConfig, DnfConfig

__all__ = [
    "stream_names",
    "random_and_tree",
    "random_dnf_tree",
    "random_query_tree",
    "sample_and_tree",
    "sample_dnf_tree",
]


def stream_names(count: int) -> list[str]:
    """Canonical stream names ``S1..S<count>``."""
    return [f"S{i + 1}" for i in range(count)]


def _stream_table(
    rng: np.random.Generator, n_streams: int, c_range: tuple[float, float]
) -> dict[str, float]:
    lo, hi = c_range
    return {name: float(rng.uniform(lo, hi)) for name in stream_names(n_streams)}


def _random_leaf(
    rng: np.random.Generator,
    streams: Sequence[str],
    d_range: tuple[int, int],
) -> Leaf:
    stream = streams[int(rng.integers(0, len(streams)))]
    items = int(rng.integers(d_range[0], d_range[1] + 1))
    prob = float(rng.random())
    return Leaf(stream=stream, items=items, prob=prob)


def random_and_tree(
    rng: np.random.Generator,
    m: int,
    rho: float,
    *,
    d_range: tuple[int, int] = (1, 5),
    c_range: tuple[float, float] = (1.0, 10.0),
) -> AndTree:
    """A random shared AND-tree with ``m`` leaves and sharing ratio ``rho``."""
    n_streams = max(1, round(m / rho))
    costs = _stream_table(rng, n_streams, c_range)
    names = list(costs)
    leaves = [_random_leaf(rng, names, d_range) for _ in range(m)]
    used = {leaf.stream for leaf in leaves}
    return AndTree(leaves, {name: costs[name] for name in used})


def random_dnf_tree(
    rng: np.random.Generator,
    n_ands: int,
    leaves_per_and: int | Sequence[int],
    rho: float,
    *,
    sampled: bool = False,
    max_leaves: int | None = None,
    d_range: tuple[int, int] = (1, 5),
    c_range: tuple[float, float] = (1.0, 10.0),
) -> DnfTree:
    """A random shared DNF tree.

    Parameters
    ----------
    leaves_per_and:
        Either one int for every AND node, or a sequence of per-AND sizes.
        With ``sampled=True`` (Figure 5 style) an int is treated as a *cap*:
        each AND's size is drawn from U{1..cap}.
    max_leaves:
        Optional total-leaf cap; AND sizes are re-drawn (then clipped) so the
        total never exceeds it, mirroring the paper's "up to at most 20
        leaves" constraint.
    rho:
        Sharing ratio over the whole tree: the number of streams is
        ``max(1, round(total_leaves / rho))``.
    """
    if isinstance(leaves_per_and, int):
        if sampled:
            sizes = _sample_sizes(rng, n_ands, leaves_per_and, max_leaves)
        else:
            sizes = [leaves_per_and] * n_ands
    else:
        sizes = [int(size) for size in leaves_per_and]
        if len(sizes) != n_ands:
            raise ValueError(f"expected {n_ands} AND sizes, got {len(sizes)}")
    total = sum(sizes)
    n_streams = max(1, round(total / rho))
    costs = _stream_table(rng, n_streams, c_range)
    names = list(costs)
    groups = [[_random_leaf(rng, names, d_range) for _ in range(size)] for size in sizes]
    used = {leaf.stream for group in groups for leaf in group}
    return DnfTree(groups, {name: costs[name] for name in used})


def _sample_sizes(
    rng: np.random.Generator, n_ands: int, cap: int, max_leaves: int | None
) -> list[int]:
    """Per-AND sizes ~ U{1..cap}, re-drawn (bounded retries) to fit ``max_leaves``."""
    for _ in range(64):
        sizes = [int(rng.integers(1, cap + 1)) for _ in range(n_ands)]
        if max_leaves is None or sum(sizes) <= max_leaves:
            return sizes
    # Infeasible-ish grid cell (e.g. 9 ANDs, cap 8, max 20): clip greedily.
    sizes = [1] * n_ands
    budget = (max_leaves or n_ands) - n_ands
    while budget > 0:
        i = int(rng.integers(0, n_ands))
        if sizes[i] < cap:
            sizes[i] += 1
            budget -= 1
        elif all(size >= cap for size in sizes):
            break
    return sizes


def random_query_tree(
    rng: np.random.Generator,
    *,
    depth: int = 3,
    fanout: tuple[int, int] = (2, 3),
    rho: float = 2.0,
    leaf_prob: float = 0.4,
    d_range: tuple[int, int] = (1, 5),
    c_range: tuple[float, float] = (1.0, 10.0),
    _estimated_leaves: int = 16,
) -> QueryTree:
    """A random general AND-OR tree (beyond the paper's AND/DNF scope).

    Operators alternate AND/OR by level starting from a random root type;
    each internal node has U{fanout} children, each child being a leaf with
    probability ``leaf_prob`` (always a leaf at ``depth`` 0).
    """
    n_streams = max(1, round(_estimated_leaves / rho))
    costs = _stream_table(rng, n_streams, c_range)
    names = list(costs)

    def build(level: int, want_and: bool):
        if level == 0 or rng.random() < leaf_prob:
            return LeafNode(_random_leaf(rng, names, d_range))
        k = int(rng.integers(fanout[0], fanout[1] + 1))
        children = [build(level - 1, not want_and) for _ in range(k)]
        return AndNode(children) if want_and else OrNode(children)

    root = build(depth, bool(rng.integers(0, 2)))
    if isinstance(root, LeafNode):
        root = AndNode([root])
    tree_root = root.simplified()
    leaves = tuple(tree_root.iter_leaves())
    used = {leaf.stream for leaf in leaves}
    return QueryTree(tree_root, {name: costs[name] for name in used})


def sample_and_tree(rng: np.random.Generator, config: AndTreeConfig) -> AndTree:
    """Draw one AND-tree instance from a Figure 4 grid cell."""
    return random_and_tree(
        rng, config.m, config.rho, d_range=config.d_range, c_range=config.c_range
    )


def sample_dnf_tree(rng: np.random.Generator, config: DnfConfig) -> DnfTree:
    """Draw one DNF instance from a Figure 5 / Figure 6 grid cell."""
    return random_dnf_tree(
        rng,
        config.n_ands,
        config.leaves_per_and,
        config.rho,
        sampled=config.sampled,
        max_leaves=config.max_leaves,
        d_range=config.d_range,
        c_range=config.c_range,
    )
