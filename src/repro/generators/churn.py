"""Churn-over-time populations: queries that arrive, live and depart.

The elastic serving layer's whole job is coping with a population that is
never static — dashboards open and close, alert packs deploy and retire.
This module turns an overlap-clustered population
(:func:`~repro.generators.overlap_populations.overlap_clustered_population`)
into a *schedule* of admissions and departures over a run of serving
batches: each query draws an arrival batch and a geometric lifetime, and
the resulting :class:`ChurnEvent` stream (departures before arrivals within
a batch, both in deterministic order) drives
:func:`~repro.experiments.cluster.run_elastic_sim` and the
``repro cluster-sim --elastic`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.tree import DnfTree
from repro.errors import StreamError
from repro.generators.overlap_populations import overlap_clustered_population
from repro.streams.registry import StreamRegistry

__all__ = ["ChurnEvent", "churn_schedule", "events_by_batch"]


@dataclass(frozen=True)
class ChurnEvent:
    """One population change, applied just before its batch runs."""

    batch: int
    #: "admit" or "depart".
    action: str
    name: str
    #: The query tree for admissions; ``None`` for departures.
    tree: DnfTree | None = None


def churn_schedule(
    n_queries: int,
    registry: StreamRegistry,
    n_clusters: int,
    streams_per_cluster: int,
    *,
    batches: int = 12,
    arrival_fraction: float = 0.75,
    mean_lifetime: float = 6.0,
    seed: int = 0,
    **population_kwargs,
) -> list[ChurnEvent]:
    """Draw a churn-over-time schedule over an overlap-clustered population.

    Parameters
    ----------
    batches:
        Length of the serving run, in batches.
    arrival_fraction:
        Arrivals are spread uniformly over the first ``arrival_fraction`` of
        the run (late arrivals would never be observed serving).
    mean_lifetime:
        Mean of the geometric lifetime (in batches) drawn per query; queries
        outliving the run simply never depart.
    population_kwargs:
        Forwarded to :func:`overlap_clustered_population` (templates,
        cross-cluster noise, tree shape ranges).

    The first query always arrives at batch 0, so the run starts non-empty.
    Events are ordered by batch, departures before arrivals, then by query
    name — fully deterministic per seed.
    """
    if batches < 1:
        raise StreamError(f"need at least one batch, got {batches}")
    if not 0.0 < arrival_fraction <= 1.0:
        raise StreamError(
            f"arrival_fraction must be in (0, 1], got {arrival_fraction}"
        )
    if mean_lifetime < 1.0:
        raise StreamError(f"mean_lifetime must be >= 1 batch, got {mean_lifetime}")
    population = overlap_clustered_population(
        n_queries,
        registry,
        n_clusters,
        streams_per_cluster,
        seed=seed,
        **population_kwargs,
    )
    rng = np.random.default_rng(seed + 0x5EED)
    span = max(1, int(round(arrival_fraction * batches)))
    events: list[ChurnEvent] = []
    for index, (name, tree) in enumerate(population):
        arrival = 0 if index == 0 else int(rng.integers(0, span))
        # numpy's geometric has support {1, 2, ...} and mean exactly
        # mean_lifetime — every query serves at least one batch.
        lifetime = int(rng.geometric(1.0 / mean_lifetime))
        events.append(ChurnEvent(batch=arrival, action="admit", name=name, tree=tree))
        departure = arrival + lifetime
        if departure < batches:
            events.append(ChurnEvent(batch=departure, action="depart", name=name))
    events.sort(key=lambda e: (e.batch, 0 if e.action == "depart" else 1, e.name))
    return events


def events_by_batch(events: list[ChurnEvent]) -> dict[int, list[ChurnEvent]]:
    """Group a churn schedule by batch (preserving the schedule's order)."""
    grouped: dict[int, list[ChurnEvent]] = {}
    for event in events:
        grouped.setdefault(event.batch, []).append(event)
    return grouped
