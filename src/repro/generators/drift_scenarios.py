"""Drift scenario builders: turn trees into time-varying ground truths.

A drift scenario pairs a query tree (whose leaf probabilities are the
*admission-time* estimates) with a :class:`~repro.streams.drift.DriftSchedule`
describing how the true selectivities move afterwards. Targeting leaves *by
stream name* makes scenarios robust to isomorphic shuffling — every isomorph
of a template drifts the same way, which is exactly the situation a shared
canonical plan must adapt to.
"""

from __future__ import annotations

from typing import Mapping, Union

import numpy as np

from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.errors import StreamError
from repro.streams.drift import DriftSchedule, RampDrift, StepDrift

__all__ = [
    "tree_base_probs",
    "step_drift_by_stream",
    "ramp_drift_by_stream",
    "random_step_drift",
]

TreeLike = Union[AndTree, DnfTree, QueryTree]


def tree_base_probs(tree: TreeLike) -> tuple[float, ...]:
    """Per-global-leaf admission probabilities (a drift schedule's round 0)."""
    return tuple(leaf.prob for leaf in tree.leaves)


def _targets_by_stream(
    tree: TreeLike, new_probs: Mapping[str, float]
) -> dict[int, float]:
    targets: dict[int, float] = {}
    streams = {leaf.stream for leaf in tree.leaves}
    for stream in new_probs:
        if stream not in streams:
            raise StreamError(
                f"drift targets stream {stream!r}, which the tree never reads"
            )
    for gindex, leaf in enumerate(tree.leaves):
        if leaf.stream in new_probs:
            targets[gindex] = float(new_probs[leaf.stream])
    return targets


def step_drift_by_stream(
    tree: TreeLike, at: int, new_probs: Mapping[str, float]
) -> DriftSchedule:
    """A regime change: every leaf on a targeted stream jumps at round ``at``."""
    return DriftSchedule(
        tree_base_probs(tree),
        [StepDrift(at=at, targets=_targets_by_stream(tree, new_probs))],
    )


def ramp_drift_by_stream(
    tree: TreeLike, start: int, end: int, new_probs: Mapping[str, float]
) -> DriftSchedule:
    """A gradual change: targeted streams' leaves glide over ``(start, end]``."""
    return DriftSchedule(
        tree_base_probs(tree),
        [RampDrift(start=start, end=end, targets=_targets_by_stream(tree, new_probs))],
    )


def random_step_drift(
    rng: np.random.Generator,
    tree: TreeLike,
    at: int,
    *,
    fraction: float = 0.5,
    p_range: tuple[float, float] = (0.05, 0.95),
) -> DriftSchedule:
    """Step a random subset of leaves to fresh uniform probabilities.

    ``fraction`` of the leaves (at least one) are redrawn from
    ``U[p_range]`` at round ``at`` — an unstructured stress drift for
    robustness tests, complementing the stream-targeted builders.
    """
    if not 0.0 < fraction <= 1.0:
        raise StreamError(f"fraction must be in (0, 1], got {fraction}")
    n_leaves = len(tree.leaves)
    count = max(1, round(fraction * n_leaves))
    chosen = rng.choice(n_leaves, size=count, replace=False)
    low, high = p_range
    targets = {int(g): float(rng.uniform(low, high)) for g in chosen}
    return DriftSchedule(tree_base_probs(tree), [StepDrift(at=at, targets=targets)])
