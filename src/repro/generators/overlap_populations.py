"""Overlap-structured serving populations for the cluster experiments.

A fleet's query population is not a uniform blob over all streams: traffic
arrives in *interest groups* — dashboards over one building's sensors, alert
packs over one patient's vitals — whose queries overlap heavily with each
other and barely at all across groups. This module generates exactly that
structure: ``n_clusters`` disjoint stream groups, each serving its own pool
of query templates, with an optional ``cross_cluster_prob`` that rewires
individual leaves across group boundaries (the noise that turns clean
components into a partitioning problem).

With ``cross_cluster_prob=0.0`` the overlap graph's connected components are
exactly the clusters, which is what the cluster parity tests rely on: a
stream-disjoint partition makes sharded execution probe-for-probe identical
to the unsharded server.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.errors import StreamError
from repro.service.simulate import shuffled_isomorph
from repro.streams.registry import StreamRegistry
from repro.streams.sources import GaussianSource
from repro.streams.stream import StreamSpec

__all__ = [
    "clustered_stream_groups",
    "clustered_registry",
    "overlap_clustered_population",
]


def clustered_stream_groups(
    n_clusters: int, streams_per_cluster: int
) -> list[list[str]]:
    """Stream names of each cluster: ``C<i>S<k>``, disjoint across clusters."""
    if n_clusters < 1:
        raise StreamError(f"need at least one cluster, got {n_clusters}")
    if streams_per_cluster < 1:
        raise StreamError(
            f"need at least one stream per cluster, got {streams_per_cluster}"
        )
    return [
        [f"C{ci}S{k}" for k in range(streams_per_cluster)]
        for ci in range(n_clusters)
    ]


def clustered_registry(
    n_clusters: int,
    streams_per_cluster: int,
    *,
    seed: int = 0,
    c_range: tuple[float, float] = (0.5, 4.0),
) -> StreamRegistry:
    """A registry holding every cluster's Gaussian streams with random costs."""
    rng = np.random.default_rng(seed)
    registry = StreamRegistry()
    for group in clustered_stream_groups(n_clusters, streams_per_cluster):
        for name in group:
            registry.add(
                StreamSpec(name, float(rng.uniform(*c_range))),
                GaussianSource(
                    mean=0.0,
                    std=1.0,
                    seed=seed * 7919 + zlib.crc32(name.encode("utf-8")) % 65536,
                ),
            )
    return registry


def overlap_clustered_population(
    n_queries: int,
    registry: StreamRegistry,
    n_clusters: int,
    streams_per_cluster: int,
    *,
    templates_per_cluster: int = 3,
    cross_cluster_prob: float = 0.0,
    seed: int = 0,
    n_ands: tuple[int, int] = (1, 3),
    leaves_per_and: tuple[int, int] = (1, 4),
    d_range: tuple[int, int] = (1, 6),
    p_range: tuple[float, float] = (0.05, 0.95),
) -> list[tuple[str, DnfTree]]:
    """Draw ``n_queries`` queries, each anchored to one stream cluster.

    Queries are dealt to clusters round-robin (balanced groups) and emitted
    as isomorphic shuffles of their cluster's templates. With
    ``cross_cluster_prob > 0`` each leaf independently rewires to a uniform
    random stream of a *different* cluster — cut edges for the partitioner
    to cope with (the rewiring also breaks template isomorphism, so the plan
    cache sees realistic long-tail shapes).
    """
    if n_queries < 1:
        raise StreamError(f"need at least one query, got {n_queries}")
    if templates_per_cluster < 1:
        raise StreamError(
            f"need at least one template per cluster, got {templates_per_cluster}"
        )
    if not 0.0 <= cross_cluster_prob <= 1.0:
        raise StreamError(
            f"cross_cluster_prob must be in [0, 1], got {cross_cluster_prob}"
        )
    groups = clustered_stream_groups(n_clusters, streams_per_cluster)
    costs = registry.cost_table()
    for group in groups:
        for name in group:
            if name not in registry:
                raise StreamError(
                    f"registry is missing clustered stream {name!r}; build it "
                    "with clustered_registry(n_clusters, streams_per_cluster)"
                )
    rng = np.random.default_rng(seed)
    all_names = [name for group in groups for name in group]

    def random_template(group: list[str]) -> DnfTree:
        ands = []
        for _ in range(int(rng.integers(n_ands[0], n_ands[1] + 1))):
            leaves = []
            for _ in range(int(rng.integers(leaves_per_and[0], leaves_per_and[1] + 1))):
                stream = group[int(rng.integers(len(group)))]
                leaves.append(
                    Leaf(
                        stream,
                        int(rng.integers(d_range[0], d_range[1] + 1)),
                        float(rng.uniform(*p_range)),
                    )
                )
            ands.append(leaves)
        used = {leaf.stream for leaves in ands for leaf in leaves}
        return DnfTree(ands, {name: costs[name] for name in used})

    def rewire(tree: DnfTree, home: int) -> DnfTree:
        """Independently send each leaf to a random foreign stream."""
        foreign = [name for name in all_names if name not in set(groups[home])]
        ands = []
        changed = False
        for group_leaves in tree.ands:
            leaves = []
            for leaf in group_leaves:
                if foreign and rng.random() < cross_cluster_prob:
                    stream = foreign[int(rng.integers(len(foreign)))]
                    leaves.append(Leaf(stream, leaf.items, leaf.prob))
                    changed = True
                else:
                    leaves.append(leaf)
            ands.append(leaves)
        if not changed:
            return tree
        used = {leaf.stream for leaves in ands for leaf in leaves}
        return DnfTree(ands, {name: costs[name] for name in used})

    templates = [
        [random_template(group) for _ in range(templates_per_cluster)]
        for group in groups
    ]
    population: list[tuple[str, DnfTree]] = []
    for q in range(n_queries):
        home = q % n_clusters
        template = templates[home][int(rng.integers(templates_per_cluster))]
        tree = shuffled_isomorph(template, rng)
        if cross_cluster_prob > 0.0:
            tree = rewire(tree, home)
        population.append((f"q{q:04d}", tree))
    return population
