"""Experiment configuration grids matching the paper's instance families.

The paper's random instances (§III-B for AND-trees, §IV-D for DNF trees) are
parameterized by:

* ``m`` — number of leaves (AND-trees) / per-AND leaf counts (DNF trees);
* ``rho`` — the *sharing ratio*: expected number of leaves per stream
  (``rho = 1`` is the classical read-once case);
* per-leaf distributions: success probability ~ U[0, 1], items needed
  ~ U{1..5}, per-item stream cost ~ U[1, 10].

Figure 4 uses m = 2..20 and rho in {1, 5/4, 4/3, 3/2, 2, 3, 4, 5, 10}
(1,000 trees per valid combination -> 157,000 instances).

Figure 5 uses "small" DNF trees: N = 2..9 AND nodes, at most 20 leaves and at
most 8 leaves per AND, 21,600 instances = 216 configurations x 100. The paper
does not spell the 216 out; 216 = 8 (N) x 9 (rho) x 3 factors exactly, so we
interpret the third axis as a per-AND size cap in {2, 5, 8} with per-instance
AND sizes ~ U{1..cap}, total clipped at 20 (documented in EXPERIMENTS.md).

Figure 6 uses "large" DNF trees: N = 2..10 and m in {5, 10, 15, 20} leaves
per AND; 32,400 instances = 9 (N) x 4 (m) x 9 (rho) x 100.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

__all__ = [
    "AndTreeConfig",
    "DnfConfig",
    "FIG4_LEAF_COUNTS",
    "FIG4_SHARING_RATIOS",
    "FIG5_N_ANDS",
    "FIG5_MAX_PER_AND_CHOICES",
    "FIG5_MAX_LEAVES",
    "FIG6_N_ANDS",
    "FIG6_LEAVES_PER_AND",
    "fig4_configs",
    "fig5_configs",
    "fig6_configs",
]

#: Paper §III-B leaf counts for Figure 4.
FIG4_LEAF_COUNTS: tuple[int, ...] = tuple(range(2, 21))
#: Paper §III-B sharing ratios (shared by all three figures).
FIG4_SHARING_RATIOS: tuple[float, ...] = (1.0, 5 / 4, 4 / 3, 3 / 2, 2.0, 3.0, 4.0, 5.0, 10.0)

#: Paper §IV-D "small" DNF grid (Figure 5).
FIG5_N_ANDS: tuple[int, ...] = tuple(range(2, 10))
FIG5_MAX_PER_AND_CHOICES: tuple[int, ...] = (2, 5, 8)
FIG5_MAX_LEAVES: int = 20

#: Paper §IV-D "large" DNF grid (Figure 6).
FIG6_N_ANDS: tuple[int, ...] = tuple(range(2, 11))
FIG6_LEAVES_PER_AND: tuple[int, ...] = (5, 10, 15, 20)


@dataclass(frozen=True, slots=True)
class AndTreeConfig:
    """One (m, rho) cell of the Figure 4 sweep."""

    m: int
    rho: float
    d_range: tuple[int, int] = (1, 5)
    c_range: tuple[float, float] = (1.0, 10.0)

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        if self.rho < 1.0:
            raise ValueError(f"sharing ratio must be >= 1, got {self.rho}")


@dataclass(frozen=True, slots=True)
class DnfConfig:
    """One cell of the Figure 5 / Figure 6 DNF sweeps.

    ``leaves_per_and`` is either an exact per-AND leaf count (Figure 6) or,
    when ``sampled=True``, the *cap* of a U{1..cap} per-AND draw (Figure 5).
    """

    n_ands: int
    leaves_per_and: int
    rho: float
    sampled: bool = False
    max_leaves: int | None = None
    d_range: tuple[int, int] = (1, 5)
    c_range: tuple[float, float] = (1.0, 10.0)

    def __post_init__(self) -> None:
        if self.n_ands < 1:
            raise ValueError(f"n_ands must be >= 1, got {self.n_ands}")
        if self.leaves_per_and < 1:
            raise ValueError(f"leaves_per_and must be >= 1, got {self.leaves_per_and}")
        if self.rho < 1.0:
            raise ValueError(f"sharing ratio must be >= 1, got {self.rho}")


def fig4_configs(
    leaf_counts: Sequence[int] = FIG4_LEAF_COUNTS,
    rhos: Sequence[float] = FIG4_SHARING_RATIOS,
) -> Iterator[AndTreeConfig]:
    """The Figure 4 grid, skipping cells where rho exceeds the leaf count."""
    for m in leaf_counts:
        for rho in rhos:
            if rho > m:
                continue
            yield AndTreeConfig(m=m, rho=rho)


def fig5_configs(
    n_ands: Sequence[int] = FIG5_N_ANDS,
    caps: Sequence[int] = FIG5_MAX_PER_AND_CHOICES,
    rhos: Sequence[float] = FIG4_SHARING_RATIOS,
    max_leaves: int = FIG5_MAX_LEAVES,
) -> Iterator[DnfConfig]:
    """The "small" DNF grid of Figure 5 (216 cells at paper scale)."""
    for n in n_ands:
        for cap in caps:
            for rho in rhos:
                yield DnfConfig(
                    n_ands=n,
                    leaves_per_and=cap,
                    rho=rho,
                    sampled=True,
                    max_leaves=max_leaves,
                )


def fig6_configs(
    n_ands: Sequence[int] = FIG6_N_ANDS,
    leaves_per_and: Sequence[int] = FIG6_LEAVES_PER_AND,
    rhos: Sequence[float] = FIG4_SHARING_RATIOS,
) -> Iterator[DnfConfig]:
    """The "large" DNF grid of Figure 6 (324 cells at paper scale)."""
    for n in n_ands:
        for m in leaves_per_and:
            for rho in rhos:
                yield DnfConfig(n_ands=n, leaves_per_and=m, rho=rho, sampled=False)
