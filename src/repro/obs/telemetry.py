"""The telemetry facade: one registry + one tracer behind a cheap guard.

:class:`Telemetry` is what the serving stack passes around — a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.trace.Tracer` with an ``enabled`` switch. The hot-path
contract: instrumented code holds a local reference and guards with
``if tel is not None and tel.enabled:``, so a server constructed without
telemetry (the default) pays one pointer comparison per round and nothing
per probe, and a configured-but-disabled telemetry costs the same (the
overhead micro-benchmark asserts both stay within 3% of the bare loop).

One Telemetry instance is safely shared across every shard of a cluster:
both halves are internally locked, and shard identity rides on metric
labels / span attributes rather than separate registries — which is exactly
what makes per-shard histograms roll up into cluster-level distributions
(:meth:`MetricsRegistry.merged_histogram`).
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import ContextManager

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SinkLike, Tracer

__all__ = ["Telemetry"]


class Telemetry:
    """Bundled metrics registry + tracer with an on/off switch.

    Parameters
    ----------
    sink:
        Optional JSONL sink (path or open text file) for trace records and
        snapshots; ``None`` keeps everything in the bounded in-memory ring.
    capacity:
        Trace ring size.
    registry, tracer:
        Prebuilt halves (tests, or sharing a registry across telemetries);
        fresh ones are created by default.
    enabled:
        When False, every ``span``/``event``/``observe`` entry point is a
        no-op — the switch the disabled-overhead benchmark flips.
    detail:
        Opt-in high-cardinality tracing (per-query resolution events each
        round). Off by default: detail events are for debugging sessions,
        not production rings.
    """

    def __init__(
        self,
        *,
        sink: SinkLike = None,
        capacity: int = 4096,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        enabled: bool = True,
        detail: bool = False,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(capacity, sink)
        self.enabled = enabled
        self.detail = detail
        self._trace_drops_synced = 0

    # -- tracing --------------------------------------------------------

    def span(self, name: str, **attrs) -> ContextManager[dict]:
        if not self.enabled:
            return nullcontext(attrs)
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        if self.enabled:
            self.tracer.event(name, **attrs)

    # -- metrics --------------------------------------------------------

    def counter(self, name: str, **labels: str):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: str):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels: str):
        return self.registry.histogram(name, **labels)

    def sync_trace_drops(self) -> int:
        """Mirror the tracer's ring-drop count into the metrics registry.

        Tracks the lifetime count already synced and increments
        ``repro_trace_dropped_total`` by the delta, so the call is
        idempotent per drop and stays correct even when the registry is
        swapped out between calls (the worker delta-shipping pattern —
        each registry receives exactly the drops that happened on its
        watch). The counter cell is created eagerly so ``repro metrics``
        always shows the drop count, zero included. Returns the tracer's
        lifetime drop count.
        """
        dropped = self.tracer.dropped
        if not self.enabled and not dropped:
            # A disabled telemetry records nothing — don't create cells.
            return dropped
        cell = self.registry.counter("repro_trace_dropped_total")
        delta = dropped - self._trace_drops_synced
        if delta > 0:
            cell.inc(delta)
            self._trace_drops_synced = dropped
        return dropped

    # -- snapshots / lifecycle ------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready snapshot record of every metric cell."""
        self.sync_trace_drops()
        return {"type": "snapshot", "metrics": self.registry.snapshot()}

    def write_snapshot(self) -> dict:
        """Append the current snapshot to the ring/sink; returns it."""
        record = self.snapshot()
        self.tracer.emit(record)
        return record

    def flush(self) -> None:
        self.tracer.flush()

    def close(self) -> None:
        self.tracer.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @contextmanager
    def finally_snapshot(self):
        """Context manager: on exit, write a final snapshot and close."""
        try:
            yield self
        finally:
            self.write_snapshot()
            self.close()
