"""Trace analysis: span trees, critical paths, latency attribution, Chrome export.

The causal ids on every record (``trace_id``/``span_id``/``parent_id``,
:mod:`repro.obs.trace`) make a ``--telemetry`` JSONL sink more than a flat
log — it is a forest of span trees spanning threads and worker processes.
This module turns the raw records back into that structure and answers the
operator questions the flat log could not:

* :func:`build_forest` — reconstruct every trace's span tree (and surface
  *orphans*: records whose ``parent_id`` names a span missing from the
  file, the signature of a broken roll-up or an overflowed ring);
* :func:`critical_path` — the chain of spans that bounded a root's wall
  time (greedy descent into the latest-finishing child at each level);
* :func:`attribute` — bucket a batch's wall time into acquisition /
  evaluation / plan-cache upcalls / migration / elastic actions /
  telemetry self-observation / untraced residue, combining span durations
  with the per-phase accounting the server attaches to its batch spans;
* :func:`to_chrome_trace` — export records as Chrome ``trace_event`` JSON,
  loadable in ``chrome://tracing`` or https://ui.perfetto.dev.

Everything operates on plain record dicts (the :func:`repro.obs.read_jsonl`
output), so any sink — live ring snapshot, merged parent+worker file, the
SLO bench artifacts — is analyzable without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "ATTRIBUTION_BUCKETS",
    "Attribution",
    "SpanNode",
    "TraceForest",
    "attribute",
    "build_forest",
    "critical_path",
    "to_chrome_trace",
]

Record = dict[str, Any]

#: Span names that map 1:1 onto an attribution bucket. Time inside these
#: spans is credited to the bucket once (nested mapped spans do not double
#: count — only the outermost mapped span on any path is credited).
SPAN_BUCKETS: Mapping[str, str] = {
    "migration": "migration",
    "elastic": "elastic",
    "plan-cache-upcall": "plan_cache",
}

#: Bucket order for reports; ``residue`` is the wall time the trace could
#: not explain (untraced code, scheduling gaps, span bookkeeping).
ATTRIBUTION_BUCKETS: tuple[str, ...] = (
    "acquisition",
    "evaluation",
    "plan_cache",
    "migration",
    "elastic",
    "telemetry",
    "residue",
)

#: Names a batch-like root span may carry (single server, shard, cluster).
BATCH_SPAN_NAMES: tuple[str, ...] = ("cluster-batch", "shard-batch", "batch")


@dataclass
class SpanNode:
    """One span record plus its reconstructed children and events."""

    record: Record
    children: list["SpanNode"] = field(default_factory=list)
    events: list[Record] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.record.get("name", ""))

    @property
    def span_id(self) -> str | None:
        value = self.record.get("span_id")
        return None if value is None else str(value)

    @property
    def parent_id(self) -> str | None:
        value = self.record.get("parent_id")
        return None if value is None else str(value)

    @property
    def trace_id(self) -> str | None:
        value = self.record.get("trace_id")
        return None if value is None else str(value)

    @property
    def start(self) -> float:
        """Wall-clock start (the ``ts`` field is recorded at span entry)."""
        return float(self.record.get("ts", 0.0))

    @property
    def dur(self) -> float:
        return float(self.record.get("dur", 0.0))

    @property
    def end(self) -> float:
        return self.start + self.dur

    @property
    def pid(self) -> int:
        return int(self.record.get("pid", 0))

    @property
    def attrs(self) -> Mapping[str, Any]:
        attrs = self.record.get("attrs")
        return attrs if isinstance(attrs, Mapping) else {}

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class TraceForest:
    """Every span tree reconstructed from one record stream.

    ``orphans`` holds the records (spans *and* events) whose ``parent_id``
    names a span absent from the stream — zero on a healthy merged sink;
    non-zero means a roll-up went missing or the ring evicted a parent.
    """

    roots: list[SpanNode]
    spans: dict[str, SpanNode]
    orphans: list[Record]
    n_records: int

    @property
    def trace_ids(self) -> list[str]:
        """Distinct trace ids among spans, in first-seen order."""
        seen: dict[str, None] = {}
        for root in self.roots:
            for node in root.walk():
                trace = node.trace_id
                if trace is not None:
                    seen.setdefault(trace, None)
        return list(seen)

    def batch_roots(self) -> list[SpanNode]:
        """Top-level batch-like spans (the attribution subjects)."""
        return [root for root in self.roots if root.name in BATCH_SPAN_NAMES]


def build_forest(records: Iterable[Record]) -> TraceForest:
    """Reconstruct the span forest from raw records (any order).

    Linking is order-independent — a child may precede its parent in the
    file, which is exactly what a merged parent+worker sink looks like
    (worker deltas are ingested before the dispatching span closes).
    Children are sorted by start time within each parent.
    """
    spans: dict[str, SpanNode] = {}
    span_records: list[SpanNode] = []
    events: list[Record] = []
    n_records = 0
    for record in records:
        n_records += 1
        rtype = record.get("type")
        if rtype == "span":
            node = SpanNode(record)
            span_records.append(node)
            if node.span_id is not None:
                spans[node.span_id] = node
        elif rtype == "event":
            events.append(record)
    roots: list[SpanNode] = []
    orphans: list[Record] = []
    for node in span_records:
        parent_id = node.parent_id
        if parent_id is None:
            roots.append(node)
        else:
            parent = spans.get(parent_id)
            if parent is None:
                orphans.append(node.record)
                roots.append(node)  # still analyzable, just disconnected
            else:
                parent.children.append(node)
    for record in events:
        parent_id = record.get("parent_id")
        if parent_id is None:
            continue  # events outside any span are legal, not orphans
        parent = spans.get(str(parent_id))
        if parent is None:
            orphans.append(record)
        else:
            parent.events.append(record)
    for node in spans.values():
        node.children.sort(key=lambda child: child.start)
    return TraceForest(
        roots=sorted(roots, key=lambda node: node.start),
        spans=spans,
        orphans=orphans,
        n_records=n_records,
    )


def critical_path(root: SpanNode) -> list[SpanNode]:
    """The chain of spans bounding ``root``'s wall time, root first.

    Greedy descent: at each level, follow the child that *finished last* —
    for fork/join structures (a cluster batch fanned out over shards, each
    shard joined before the batch closes) the latest-finishing child is the
    one the join waited on, so the chain is the batch's critical path.
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: child.end)
        path.append(node)
    return path


@dataclass(frozen=True)
class Attribution:
    """Where one batch-like span's wall time went.

    ``buckets`` holds busy-seconds per named bucket
    (:data:`ATTRIBUTION_BUCKETS` minus ``residue``); ``residue`` is the
    wall time no bucket explains. For concurrent traces (a cluster batch
    with shards in parallel) the bucket sum is *busy* time and may exceed
    ``wall_seconds`` — :attr:`coverage` then exceeds 1.0, which simply
    means the trace explains the wall many times over.
    """

    name: str
    wall_seconds: float
    buckets: dict[str, float]
    residue: float

    @property
    def busy_seconds(self) -> float:
        return sum(self.buckets.values())

    @property
    def coverage(self) -> float:
        """Fraction of wall time attributed to named buckets (may be > 1)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.busy_seconds / self.wall_seconds


def attribute(node: SpanNode) -> Attribution:
    """Bucket ``node``'s wall time per :data:`ATTRIBUTION_BUCKETS`.

    Two complementary sources are combined:

    * **phase accounting** — the server's round loops time their own
      acquisition / evaluation / telemetry segments with paired
      ``perf_counter`` reads and attach the totals as a
      ``phase_seconds`` attribute on each ``batch`` span (cheap enough to
      survive microsecond vectorized rounds, where per-round spans would
      cost more than the work they measure);
    * **mapped spans** — migration, elastic and plan-cache-upcall spans
      contribute their durations directly; only the outermost mapped span
      on any path counts, and phase accounting nested under a mapped span
      is skipped, so no second is credited twice.
    """
    buckets: dict[str, float] = {
        bucket: 0.0 for bucket in ATTRIBUTION_BUCKETS if bucket != "residue"
    }

    def visit(current: SpanNode, in_mapped: bool) -> None:
        mapped = SPAN_BUCKETS.get(current.name)
        if mapped is not None and current is not node and not in_mapped:
            buckets[mapped] += current.dur
            in_mapped = True
        if not in_mapped:
            phases = current.attrs.get("phase_seconds")
            if isinstance(phases, Mapping):
                for phase, seconds in phases.items():
                    if phase in buckets:
                        buckets[phase] += float(seconds)
        for child in current.children:
            visit(child, in_mapped)

    visit(node, False)
    residue = max(0.0, node.dur - sum(buckets.values()))
    return Attribution(
        name=node.name, wall_seconds=node.dur, buckets=buckets, residue=residue
    )


def to_chrome_trace(records: Iterable[Record]) -> dict[str, Any]:
    """Records as a Chrome ``trace_event`` JSON object.

    Spans become complete (``ph: "X"``) events, trace events become
    instants (``ph: "i"``); timestamps and durations are microseconds per
    the format. Load the dumped JSON in ``chrome://tracing`` or
    https://ui.perfetto.dev — rows group by pid/thread, so a process-mode
    cluster renders one lane per worker.
    """
    trace_events: list[dict[str, Any]] = []
    for record in records:
        rtype = record.get("type")
        if rtype not in ("span", "event"):
            continue
        attrs = record.get("attrs")
        args: dict[str, Any] = dict(attrs) if isinstance(attrs, Mapping) else {}
        for key in ("trace_id", "span_id", "parent_id"):
            value = record.get(key)
            if value is not None:
                args[key] = value
        entry: dict[str, Any] = {
            "name": str(record.get("name", rtype)),
            "cat": "repro",
            "ts": float(record.get("ts", 0.0)) * 1e6,
            "pid": int(record.get("pid", 0)),
            "tid": int(record.get("thread", 0)),
            "args": args,
        }
        if rtype == "span":
            entry["ph"] = "X"
            entry["dur"] = float(record.get("dur", 0.0)) * 1e6
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
