"""Causal tracing: linked spans and events into a bounded ring + JSONL sink.

A :class:`Tracer` records two kinds of structured records:

* **spans** — ``with tracer.span("batch", rounds=10) as attrs: ...`` times a
  region (wall-clock start, monotonic duration) and captures attributes; the
  body may add attributes to ``attrs`` (e.g. a result count known only at
  the end);
* **events** — ``tracer.event("replan", key=..., reason=...)`` are
  zero-duration marks for discrete happenings (re-plans, migrations,
  elastic actions).

Every span carries a causal identity — ``trace_id``/``span_id``/
``parent_id`` — propagated through a :mod:`contextvars` variable so nesting
is automatic within a thread: a span opened while another span is running
records the enclosing span as its parent and inherits its trace. Events
attach to the enclosing span the same way. Crossing an execution boundary
(a pool thread, a spawned worker process) requires carrying the
:class:`SpanContext` explicitly: capture it with :func:`current_context`
on the near side and re-establish it with :func:`attach_context` on the
far side. ``SpanContext`` is a frozen picklable dataclass precisely so it
can ride the cluster worker pipe protocol.

Records land in a bounded in-memory ring (a ``deque(maxlen=...)``, so a
long-running server never grows without bound) and, when a sink is
configured, are appended to a JSON-lines file as they complete — one JSON
object per line, replayable by ``repro metrics`` / ``repro trace`` and
``examples/telemetry_dashboard.py``. Ring overflow is counted (``dropped``)
rather than silent. All entry points are thread-safe: the ring and the sink
share one lock, so concurrent shard threads can never interleave partial
lines.
"""

from __future__ import annotations

import io
import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Union

__all__ = [
    "SpanContext",
    "Tracer",
    "attach_context",
    "current_context",
    "read_jsonl",
]

SinkLike = Union[str, Path, IO[str], None]


@dataclass(frozen=True)
class SpanContext:
    """Causal position of an open span: which trace, which span.

    Frozen and picklable on purpose — this is the token that crosses
    thread pools and the cluster worker pipe so remote spans parent
    correctly under the span that dispatched them.
    """

    trace_id: str
    span_id: str


_CURRENT_SPAN: ContextVar[SpanContext | None] = ContextVar(
    "repro_obs_current_span", default=None
)

# Process-unique id source. itertools.count.__next__ is atomic in CPython,
# and prefixing the pid keeps ids unique across spawned workers without
# reaching for RNG or wall-clock entropy.
_IDS = itertools.count(1)


def _new_id() -> str:
    return f"{os.getpid():x}-{next(_IDS):x}"


def current_context() -> SpanContext | None:
    """The innermost open span's context in this execution context."""
    return _CURRENT_SPAN.get()


@contextmanager
def attach_context(ctx: SpanContext | None) -> Iterator[None]:
    """Re-establish a captured :class:`SpanContext` across a boundary.

    New threads and spawned processes start with a fresh contextvar
    context, so spans opened there would begin new traces; wrapping the
    far-side work in ``attach_context(ctx)`` parents them under the
    near-side span instead.
    """
    token = _CURRENT_SPAN.set(ctx)
    try:
        yield
    finally:
        _CURRENT_SPAN.reset(token)


class Tracer:
    """Thread-safe span/event recorder with a bounded ring and JSONL sink.

    Parameters
    ----------
    capacity:
        Ring size: only the most recent ``capacity`` records stay in memory
        (the sink, when set, still receives every record). Evictions are
        counted in :attr:`dropped`.
    sink:
        ``None`` (in-memory only), a path (opened for writing, owned and
        closed by the tracer) or an open text file object (borrowed).
    """

    def __init__(self, capacity: int = 4096, sink: SinkLike = None) -> None:
        if capacity < 1:
            from repro.errors import TelemetryError

            raise TelemetryError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._dropped = 0
        self._owns_sink = False
        self._sink: IO[str] | None = None
        if isinstance(sink, (str, Path)):
            self._sink = open(sink, "w", encoding="utf-8")
            self._owns_sink = True
        elif sink is not None:
            self._sink = sink

    def __getstate__(self) -> dict:
        # RPR001: explicit pickle contract. A tracer is process-local by
        # design — it holds a live lock and (possibly) an open sink file.
        # Workers ship their *records* (take_records() over the pipe, or
        # the JSONL sink) and registry deltas, never the tracer object
        # itself; fail loudly at pickle time instead of cryptically at
        # send time.
        raise TypeError(
            "Tracer is process-local (live lock + open sink); ship its "
            "records via take_records()/the JSONL sink, not the tracer"
        )

    # -- recording ------------------------------------------------------

    def _record(self, record: dict) -> None:
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            if len(self._ring) == self.capacity:
                self._dropped += 1
            self._ring.append(record)
            if self._sink is not None:
                self._sink.write(json.dumps(record, default=str) + "\n")

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[dict]:
        """Time a region; yields the mutable attribute dict.

        The span inherits the enclosing span's trace (or starts a new
        trace at a root) and becomes the current context for its body, so
        spans and events opened inside parent to it automatically.
        """
        parent = _CURRENT_SPAN.get()
        trace_id = parent.trace_id if parent is not None else _new_id()
        span_id = _new_id()
        token = _CURRENT_SPAN.set(SpanContext(trace_id=trace_id, span_id=span_id))
        wall = time.time()
        start = time.perf_counter()
        try:
            yield attrs
        finally:
            _CURRENT_SPAN.reset(token)
            self._record(
                {
                    "type": "span",
                    "name": name,
                    "ts": wall,
                    "dur": time.perf_counter() - start,
                    "thread": threading.get_ident(),
                    "pid": os.getpid(),
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "parent_id": parent.span_id if parent is not None else None,
                    "attrs": attrs,
                }
            )

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration mark, attached to the enclosing span."""
        ctx = _CURRENT_SPAN.get()
        self._record(
            {
                "type": "event",
                "name": name,
                "ts": time.time(),
                "dur": 0.0,
                "thread": threading.get_ident(),
                "pid": os.getpid(),
                "trace_id": ctx.trace_id if ctx is not None else None,
                "parent_id": ctx.span_id if ctx is not None else None,
                "attrs": attrs,
            }
        )

    def emit(self, record: dict) -> None:
        """Append an arbitrary record (e.g. a final metrics snapshot)."""
        self._record(dict(record))

    def ingest(self, records: Iterable[dict]) -> None:
        """Re-record foreign records (e.g. a worker's trace delta).

        Each record gets a fresh local ``seq`` (so a merged sink stays
        monotone) but keeps its causal ids, timestamps and pid — the
        parent's sink ends up holding one merged, well-formed trace.
        """
        for record in records:
            merged = dict(record)
            merged.pop("seq", None)
            self._record(merged)

    # -- reading / lifecycle --------------------------------------------

    def records(self) -> list[dict]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def take_records(self) -> list[dict]:
        """Drain the ring, returning its records oldest first.

        This is the worker-side half of trace roll-up: each batch/step
        reply ships the records accumulated since the previous drain, so
        nothing is lost to ring eviction between replies as long as a
        batch emits fewer than ``capacity`` records.
        """
        with self._lock:
            records = list(self._ring)
            self._ring.clear()
            return records

    def spans(self, name: str | None = None) -> list[dict]:
        return [
            r
            for r in self.records()
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: str | None = None) -> list[dict]:
        return [
            r
            for r in self.records()
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    @property
    def emitted(self) -> int:
        """Lifetime record count (the ring keeps only the newest)."""
        with self._lock:
            return self._seq

    @property
    def dropped(self) -> int:
        """Lifetime count of records evicted from the ring by overflow."""
        with self._lock:
            return self._dropped

    def flush(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        """Flush and, when the tracer opened the sink itself, close it."""
        with self._lock:
            if self._sink is None:
                return
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None


def read_jsonl(source: str | Path | IO[str]) -> list[dict]:
    """Parse a JSON-lines telemetry sink back into records."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]
    if isinstance(source, io.TextIOBase):
        return [json.loads(line) for line in source if line.strip()]
    return [json.loads(line) for line in source if line.strip()]
