"""Lightweight tracing: spans and events into a bounded ring + JSONL sink.

A :class:`Tracer` records two kinds of structured records:

* **spans** — ``with tracer.span("batch", rounds=10) as attrs: ...`` times a
  region (wall-clock start, monotonic duration) and captures attributes; the
  body may add attributes to ``attrs`` (e.g. a result count known only at
  the end);
* **events** — ``tracer.event("replan", key=..., reason=...)`` are
  zero-duration marks for discrete happenings (re-plans, migrations,
  elastic actions).

Records land in a bounded in-memory ring (a ``deque(maxlen=...)``, so a
long-running server never grows without bound) and, when a sink is
configured, are appended to a JSON-lines file as they complete — one JSON
object per line, replayable by ``repro metrics`` and
``examples/telemetry_dashboard.py``. All entry points are thread-safe: the
ring and the sink share one lock, so concurrent shard threads can never
interleave partial lines.
"""

from __future__ import annotations

import io
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator, Union

__all__ = ["Tracer", "read_jsonl"]

SinkLike = Union[str, Path, IO[str], None]


class Tracer:
    """Thread-safe span/event recorder with a bounded ring and JSONL sink.

    Parameters
    ----------
    capacity:
        Ring size: only the most recent ``capacity`` records stay in memory
        (the sink, when set, still receives every record).
    sink:
        ``None`` (in-memory only), a path (opened for writing, owned and
        closed by the tracer) or an open text file object (borrowed).
    """

    def __init__(self, capacity: int = 4096, sink: SinkLike = None) -> None:
        if capacity < 1:
            from repro.errors import TelemetryError

            raise TelemetryError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._owns_sink = False
        self._sink: IO[str] | None = None
        if isinstance(sink, (str, Path)):
            self._sink = open(sink, "w", encoding="utf-8")
            self._owns_sink = True
        elif sink is not None:
            self._sink = sink

    def __getstate__(self) -> dict:
        # RPR001: explicit pickle contract. A tracer is process-local by
        # design — it holds a live lock and (possibly) an open sink file.
        # Workers ship their *records* (JSONL) and registry deltas, never
        # the tracer object itself; fail loudly at pickle time instead of
        # cryptically at send time.
        raise TypeError(
            "Tracer is process-local (live lock + open sink); ship its "
            "records via the JSONL sink or read_jsonl(), not the tracer"
        )

    # -- recording ------------------------------------------------------

    def _record(self, record: dict) -> None:
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._ring.append(record)
            if self._sink is not None:
                self._sink.write(json.dumps(record, default=str) + "\n")

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[dict]:
        """Time a region; yields the mutable attribute dict."""
        wall = time.time()
        start = time.perf_counter()
        try:
            yield attrs
        finally:
            self._record(
                {
                    "type": "span",
                    "name": name,
                    "ts": wall,
                    "dur": time.perf_counter() - start,
                    "thread": threading.get_ident(),
                    "attrs": attrs,
                }
            )

    def event(self, name: str, **attrs) -> None:
        """Record a zero-duration mark."""
        self._record(
            {
                "type": "event",
                "name": name,
                "ts": time.time(),
                "dur": 0.0,
                "thread": threading.get_ident(),
                "attrs": attrs,
            }
        )

    def emit(self, record: dict) -> None:
        """Append an arbitrary record (e.g. a final metrics snapshot)."""
        self._record(dict(record))

    # -- reading / lifecycle --------------------------------------------

    def records(self) -> list[dict]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def spans(self, name: str | None = None) -> list[dict]:
        return [
            r
            for r in self.records()
            if r["type"] == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: str | None = None) -> list[dict]:
        return [
            r
            for r in self.records()
            if r["type"] == "event" and (name is None or r["name"] == name)
        ]

    @property
    def emitted(self) -> int:
        """Lifetime record count (the ring keeps only the newest)."""
        with self._lock:
            return self._seq

    def flush(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.flush()

    def close(self) -> None:
        """Flush and, when the tracer opened the sink itself, close it."""
        with self._lock:
            if self._sink is None:
                return
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None


def read_jsonl(source: str | Path | IO[str]) -> list[dict]:
    """Parse a JSON-lines telemetry sink back into records."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            return [json.loads(line) for line in handle if line.strip()]
    if isinstance(source, io.TextIOBase):
        return [json.loads(line) for line in source if line.strip()]
    return [json.loads(line) for line in source if line.strip()]
