"""SLO burn-rate monitoring over the registry's mergeable histograms.

An :class:`SloObjective` declares a latency target against a histogram
metric: "``objective`` of observations complete within ``threshold``
seconds" (e.g. 99% of shard batches under 250 ms). The
:class:`SloMonitor` evaluates a set of objectives against a
:class:`~repro.obs.metrics.MetricsRegistry` at checkpoints (one per
cluster batch, typically) and derives **burn rates** the way production
alerting does (the Google SRE workbook's multi-window scheme):

* the *error budget* is ``1 - objective`` — the tolerable bad fraction;
* the *burn rate* over a window is ``bad_fraction / error_budget`` —
  1.0 means spending the budget exactly as fast as allowed, 14.4 means
  a 30-day budget gone in ~2 days;
* a breach requires **both** the fast window (recent, catches active
  incidents) and the slow window (sustained, filters blips) to exceed
  their thresholds — the standard page condition.

Cumulative good/total counts come from
:meth:`~repro.obs.metrics.Histogram.count_below` on the merged histogram,
so windowed rates are exact checkpoint deltas — no sampling, no separate
bookkeeping on the hot path. Each check writes its verdicts back into the
registry as gauges (``repro_slo_burn_rate{slo=,window=}``,
``repro_slo_good_fraction{slo=}``, ``repro_slo_breached{slo=}``), which
puts them in every snapshot and the Prometheus export for free; they also
surface on :class:`~repro.cluster.cluster.ClusterReport`.

The monitor is not internally locked: callers evaluate it from one place
(the cluster's batch path, under the cluster lock).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Sequence

from repro.errors import TelemetryError
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SloMonitor",
    "SloObjective",
    "SloStatus",
]


@dataclass(frozen=True)
class SloObjective:
    """A latency objective against one histogram metric.

    ``metric`` names a histogram in the registry (all labelled cells are
    merged before evaluation); an observation is *good* when it is at most
    ``threshold``; ``objective`` is the target good fraction.
    """

    name: str
    metric: str
    threshold: float
    objective: float = 0.99

    def __post_init__(self) -> None:
        if not self.name:
            raise TelemetryError("SLO objective needs a non-empty name")
        if not self.metric:
            raise TelemetryError(f"SLO {self.name!r} needs a metric name")
        if self.threshold <= 0.0:
            raise TelemetryError(
                f"SLO {self.name!r} threshold must be > 0, got {self.threshold}"
            )
        if not 0.0 < self.objective < 1.0:
            raise TelemetryError(
                f"SLO {self.name!r} objective must be in (0, 1), got {self.objective}"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


@dataclass(frozen=True)
class SloStatus:
    """One objective's verdict at one checkpoint."""

    objective: SloObjective
    total: float
    good: float
    fast_burn: float
    slow_burn: float
    breached: bool

    @property
    def good_fraction(self) -> float:
        """Lifetime good fraction (1.0 while there are no observations)."""
        if self.total <= 0.0:
            return 1.0
        return self.good / self.total

    def describe(self) -> str:
        state = "BREACH" if self.breached else "ok"
        return (
            f"{self.objective.name}: {state} "
            f"good={self.good_fraction * 100.0:.2f}% "
            f"(target {self.objective.objective * 100.0:.2f}% "
            f"<= {self.objective.threshold:g}s) "
            f"burn fast={self.fast_burn:.2f} slow={self.slow_burn:.2f}"
        )


#: One cumulative checkpoint: (monotonic seconds, good count, total count).
_Checkpoint = tuple[float, float, float]


@dataclass
class _History:
    points: Deque[_Checkpoint] = field(default_factory=deque)


class SloMonitor:
    """Multi-window burn-rate evaluation of latency objectives.

    Parameters
    ----------
    objectives:
        The latency objectives to track.
    fast_window, slow_window:
        Lookback horizons in seconds (defaults 300 / 3600 — the classic
        5-minute / 1-hour pair, scaled down for simulation workloads via
        the constructor).
    fast_burn_threshold, slow_burn_threshold:
        Burn rates both windows must exceed to report a breach. The
        defaults (14.4 / 6.0) are the SRE-workbook page thresholds for a
        30-day budget.
    """

    def __init__(
        self,
        objectives: Sequence[SloObjective],
        *,
        fast_window: float = 300.0,
        slow_window: float = 3600.0,
        fast_burn_threshold: float = 14.4,
        slow_burn_threshold: float = 6.0,
    ) -> None:
        if not objectives:
            raise TelemetryError("SloMonitor needs at least one objective")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise TelemetryError(f"duplicate SLO objective names: {names}")
        if fast_window <= 0.0 or slow_window <= 0.0:
            raise TelemetryError("SLO windows must be > 0 seconds")
        if fast_window > slow_window:
            raise TelemetryError(
                f"fast window ({fast_window}s) must not exceed "
                f"slow window ({slow_window}s)"
            )
        if fast_burn_threshold <= 0.0 or slow_burn_threshold <= 0.0:
            raise TelemetryError("burn thresholds must be > 0")
        self.objectives = tuple(objectives)
        self.fast_window = float(fast_window)
        self.slow_window = float(slow_window)
        self.fast_burn_threshold = float(fast_burn_threshold)
        self.slow_burn_threshold = float(slow_burn_threshold)
        self._histories: dict[str, _History] = {
            objective.name: _History() for objective in self.objectives
        }

    def check(
        self,
        registry: MetricsRegistry,
        *,
        now: float | None = None,
        record: bool = True,
    ) -> list[SloStatus]:
        """Evaluate every objective at a new checkpoint.

        ``now`` overrides the monotonic clock (tests, replay). When
        ``record`` is true (the default) the verdicts are written back
        into ``registry`` as gauges, flowing into snapshots and the
        Prometheus export.
        """
        timestamp = time.monotonic() if now is None else float(now)
        statuses: list[SloStatus] = []
        for objective in self.objectives:
            merged = registry.merged_histogram(objective.metric)
            if merged is None:
                good, total = 0.0, 0.0
            else:
                good = merged.count_below(objective.threshold)
                total = float(merged.count)
            history = self._histories[objective.name]
            self._append(history, (timestamp, good, total))
            fast = self._burn(history, timestamp, self.fast_window, objective)
            slow = self._burn(history, timestamp, self.slow_window, objective)
            breached = (
                fast >= self.fast_burn_threshold and slow >= self.slow_burn_threshold
            )
            status = SloStatus(
                objective=objective,
                total=total,
                good=good,
                fast_burn=fast,
                slow_burn=slow,
                breached=breached,
            )
            statuses.append(status)
            if record:
                self._record(registry, status)
        return statuses

    def _append(self, history: _History, point: _Checkpoint) -> None:
        points = history.points
        if points and point[0] < points[-1][0]:
            raise TelemetryError(
                f"SLO checkpoints must not go back in time: "
                f"{point[0]} < {points[-1][0]}"
            )
        points.append(point)
        # Keep one point at-or-before the slow-window edge as the baseline
        # for the oldest delta, drop everything staler.
        horizon = point[0] - self.slow_window
        while len(points) >= 2 and points[1][0] <= horizon:
            points.popleft()

    def _burn(
        self,
        history: _History,
        now: float,
        window: float,
        objective: SloObjective,
    ) -> float:
        """Burn rate over ``[now - window, now]`` from checkpoint deltas.

        The baseline is the newest checkpoint at or before the window
        start; if the whole history is younger than the window, counts
        are taken from zero (everything observed so far is in-window).
        """
        points = history.points
        if not points:
            return 0.0
        horizon = now - window
        base_good = 0.0
        base_total = 0.0
        for timestamp, good, total in points:
            if timestamp <= horizon:
                base_good, base_total = good, total
            else:
                break
        _, latest_good, latest_total = points[-1]
        delta_total = latest_total - base_total
        if delta_total <= 0.0:
            return 0.0
        delta_bad = delta_total - (latest_good - base_good)
        bad_fraction = min(1.0, max(0.0, delta_bad / delta_total))
        return bad_fraction / objective.error_budget

    def _record(self, registry: MetricsRegistry, status: SloStatus) -> None:
        name = status.objective.name
        registry.gauge("repro_slo_good_fraction", slo=name).set(status.good_fraction)
        registry.gauge("repro_slo_burn_rate", slo=name, window="fast").set(
            status.fast_burn
        )
        registry.gauge("repro_slo_burn_rate", slo=name, window="slow").set(
            status.slow_burn
        )
        registry.gauge("repro_slo_breached", slo=name).set(
            1.0 if status.breached else 0.0
        )
        if status.breached:
            registry.counter("repro_slo_breach_checks_total", slo=name).inc()
