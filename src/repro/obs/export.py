"""Exporters: Prometheus text format and JSONL snapshot helpers.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.MetricsRegistry`
(or a snapshot dict previously produced by ``registry.snapshot()`` /
``Telemetry.snapshot()``) into the Prometheus text exposition format:
counters and gauges as single samples, histograms as cumulative
``_bucket{le="..."}`` series plus ``_sum`` and ``_count``. The renderer is
pure — it never touches the network — so ``repro metrics --format
prometheus`` can replay a JSONL sink offline into something a Prometheus
``textfile`` collector (or a human) can read.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import TelemetryError
from repro.obs.metrics import MetricsRegistry

__all__ = ["render_prometheus", "latest_snapshot"]


def _fmt_value(value: float) -> str:
    """Render a float the way Prometheus expects (integers without .0 noise)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape(str(val))}"' for key, val in sorted(merged.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(source: MetricsRegistry | dict) -> str:
    """Render a registry or snapshot dict as Prometheus exposition text."""
    if isinstance(source, MetricsRegistry):
        snap = source.snapshot()
    elif isinstance(source, dict):
        snap = source.get("metrics", source)
    else:
        raise TelemetryError(
            f"expected MetricsRegistry or snapshot dict, got {type(source).__name__}"
        )
    if not isinstance(snap, dict) or not {"counters", "gauges", "histograms"} <= set(
        snap
    ):
        raise TelemetryError("not a metrics snapshot: missing counters/gauges/histograms")

    lines: list[str] = []
    seen_types: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for cell in snap["counters"]:
        header(cell["name"], "counter")
        lines.append(
            f"{cell['name']}{_fmt_labels(cell['labels'])} {_fmt_value(cell['value'])}"
        )
    for cell in snap["gauges"]:
        header(cell["name"], "gauge")
        lines.append(
            f"{cell['name']}{_fmt_labels(cell['labels'])} {_fmt_value(cell['value'])}"
        )
    for cell in snap["histograms"]:
        name = cell["name"]
        header(name, "histogram")
        labels = cell["labels"]
        cumulative = 0
        for bound, count in zip(cell["bounds"], cell["counts"]):
            cumulative += count
            lines.append(
                f"{name}_bucket{_fmt_labels(labels, {'le': _fmt_value(bound)})}"
                f" {cumulative}"
            )
        # The +Inf bucket includes the overflow count beyond the last bound.
        lines.append(
            f"{name}_bucket{_fmt_labels(labels, {'le': '+Inf'})} {cell['count']}"
        )
        lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_value(cell['sum'])}")
        lines.append(f"{name}_count{_fmt_labels(labels)} {cell['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def latest_snapshot(records: Iterable[dict]) -> dict | None:
    """Return the last ``type == "snapshot"`` record from a JSONL replay."""
    found: dict | None = None
    for record in records:
        if isinstance(record, dict) and record.get("type") == "snapshot":
            found = record
    return found
