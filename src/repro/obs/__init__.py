"""Zero-dependency observability: metrics, tracing, and exporters.

The package has three layers, each usable on its own:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges, and fixed-bucket mergeable histograms (percentiles by
  bucket interpolation, exact merge across shards);
* :mod:`repro.obs.trace` — a :class:`Tracer` recording spans and events
  into a bounded ring and an optional JSON-lines sink;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the serving
  stack passes around, with an ``enabled`` switch that makes every entry
  point a no-op (the hot paths guard on it so disabled telemetry is free).

:mod:`repro.obs.export` renders snapshots as Prometheus exposition text and
replays JSONL sinks (``repro metrics``).
"""

from repro.obs.export import latest_snapshot, render_prometheus
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Tracer, read_jsonl

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "Tracer",
    "exponential_buckets",
    "latest_snapshot",
    "read_jsonl",
    "render_prometheus",
]
