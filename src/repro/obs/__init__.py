"""Zero-dependency observability: metrics, tracing, analysis, and SLOs.

The package has five layers, each usable on its own:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges, and fixed-bucket mergeable histograms (percentiles by
  bucket interpolation, exact merge across shards), with a per-name label
  cardinality cap;
* :mod:`repro.obs.trace` — a :class:`Tracer` recording causally linked
  spans (``trace_id``/``span_id``/``parent_id``) and events into a bounded
  ring and an optional JSON-lines sink; :class:`SpanContext` +
  :func:`current_context`/:func:`attach_context` carry the causal chain
  across threads and worker processes;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the serving
  stack passes around, with an ``enabled`` switch that makes every entry
  point a no-op (the hot paths guard on it so disabled telemetry is free);
* :mod:`repro.obs.analyze` — span-tree reconstruction, critical-path
  extraction, latency attribution, and a Chrome/Perfetto exporter over any
  recorded sink (``repro trace``);
* :mod:`repro.obs.slo` — declared latency objectives evaluated against the
  registry histograms with multi-window burn rates
  (:class:`SloMonitor`), surfaced in ``ClusterReport`` and the exports.

:mod:`repro.obs.export` renders snapshots as Prometheus exposition text and
replays JSONL sinks (``repro metrics``).
"""

from repro.obs.analyze import (
    Attribution,
    SpanNode,
    TraceForest,
    attribute,
    build_forest,
    critical_path,
    to_chrome_trace,
)
from repro.obs.export import latest_snapshot, render_prometheus
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from repro.obs.slo import SloMonitor, SloObjective, SloStatus
from repro.obs.telemetry import Telemetry
from repro.obs.trace import (
    SpanContext,
    Tracer,
    attach_context,
    current_context,
    read_jsonl,
)

__all__ = [
    "Attribution",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SloMonitor",
    "SloObjective",
    "SloStatus",
    "SpanContext",
    "SpanNode",
    "Telemetry",
    "TraceForest",
    "Tracer",
    "attach_context",
    "attribute",
    "build_forest",
    "critical_path",
    "current_context",
    "exponential_buckets",
    "latest_snapshot",
    "read_jsonl",
    "render_prometheus",
]
