"""Lock-safe metrics primitives: counters, gauges and mergeable histograms.

The registry is the cluster's single source of numeric truth: every
subsystem (server round loop, shard batches, elastic policy, migrations)
records into one :class:`MetricsRegistry`, and every consumer — the
``repro metrics`` CLI, the Prometheus exporter, :class:`ClusterReport` —
reads the *same* cells, so a report and an export can never disagree.

Histograms use fixed bucket boundaries shared by construction, which makes
them **mergeable**: two histograms over the same bounds combine by adding
bucket counts (exactly associative), so per-shard latency distributions roll
up into a cluster distribution without approximation beyond the bucket
resolution already paid at observe time. Percentiles (p50/p95/p99) come from
linear interpolation inside the covering bucket, clamped to the observed
min/max — accurate to one bucket width by construction.

Everything here is dependency-free and thread-safe: each metric carries its
own small lock (observations from concurrent shard threads may target the
same cell), and the registry serializes get-or-create.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterator, Mapping, Sequence, Union

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricKey",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_CELLS_PER_NAME",
    "OVERFLOW_LABEL_VALUE",
    "exponential_buckets",
]


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric bucket upper bounds: start, start*factor, ..."""
    if start <= 0.0:
        raise TelemetryError(f"bucket start must be > 0, got {start}")
    if factor <= 1.0:
        raise TelemetryError(f"bucket factor must be > 1, got {factor}")
    if count < 1:
        raise TelemetryError(f"need at least one bucket, got {count}")
    bounds = []
    edge = float(start)
    for _ in range(count):
        bounds.append(edge)
        edge *= factor
    return tuple(bounds)


#: Default latency/cost bucket bounds: 5 per decade from 1e-6 to 1e6 —
#: wide enough for sub-microsecond wall clocks and thousand-unit round
#: costs alike, at <=~58% relative error per bucket (10^(1/5)).
DEFAULT_BUCKETS = exponential_buckets(1e-6, 10.0 ** 0.2, 61)

#: A metric cell's identity: (name, sorted (label, value) pairs).
MetricKey = tuple[str, tuple[tuple[str, str], ...]]

#: Default per-name cap on distinct label-sets. Generous for legitimate
#: dimensions (shards, schedulers) while bounding per-query metrics — at
#: millions of registered queries an uncapped ``{query=...}`` label would
#: otherwise grow the registry (and every snapshot/export) without limit.
DEFAULT_MAX_CELLS_PER_NAME = 1024

#: Label value that every dimension collapses to once a name is at its cap.
OVERFLOW_LABEL_VALUE = "overflow"

#: Counter (labelled ``{metric=<name>}``) bumped whenever an observation is
#: redirected into the overflow cell — the operator-visible signal that a
#: label dimension blew past the cap.
OVERFLOW_COUNTER = "repro_metric_label_overflow_total"


class Counter:
    """A monotonically increasing float cell."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(f"counters only increase; got {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> float:
        with self._lock:
            return self.value

    def __getstate__(self) -> float:
        return self.snapshot()

    def __setstate__(self, state: float) -> None:
        self._lock = threading.Lock()
        self.value = float(state)


class Gauge:
    """A set-to-current-value cell (cluster width, resident queries, ...)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> float:
        with self._lock:
            return self.value

    def __getstate__(self) -> float:
        return self.snapshot()

    def __setstate__(self, state: float) -> None:
        self._lock = threading.Lock()
        self.value = float(state)


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles, mergeable.

    ``bounds`` are the buckets' inclusive upper edges; one implicit overflow
    bucket catches everything above the last edge. Two histograms with equal
    bounds merge by adding counts — an exactly associative and commutative
    operation (the property suite asserts it), which is what lets per-shard
    distributions roll up into cluster distributions losslessly.
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax", "_lock")

    def __init__(self, bounds: Sequence[float] | None = None) -> None:
        chosen = tuple(float(b) for b in (DEFAULT_BUCKETS if bounds is None else bounds))
        if not chosen:
            raise TelemetryError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(chosen, chosen[1:])):
            raise TelemetryError(f"bucket bounds must strictly increase: {chosen}")
        self.bounds = chosen
        self.counts = [0] * (len(chosen) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self._lock = threading.Lock()

    # -- recording ------------------------------------------------------

    def _bucket_index(self, value: float) -> int:
        # First bound >= value (the overflow bucket when none is). C-level
        # bisect keeps observe() cheap enough for per-round hot paths.
        return bisect.bisect_left(self.bounds, value)

    def observe(self, value: float) -> None:
        value = float(value)
        index = self._bucket_index(value)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value

    # -- derived --------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Interpolated ``q``-th percentile (``q`` in [0, 100]); 0.0 when empty.

        The covering bucket is found by cumulative count; the value is
        linearly interpolated inside it between the bucket's edges (the
        observed min/max stand in for the open outer edges), so the result
        always lies in the same bucket as the exact nearest-rank value.
        """
        if not 0.0 <= q <= 100.0:
            raise TelemetryError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if not self.count:
                return 0.0
            rank = q / 100.0 * self.count
            if rank <= 0.0:
                return self.vmin
            cumulative = 0
            for index, bucket_count in enumerate(self.counts):
                if not bucket_count:
                    continue
                if cumulative + bucket_count >= rank:
                    lo = self.vmin if index == 0 else self.bounds[index - 1]
                    hi = (
                        self.vmax
                        if index == len(self.bounds)
                        else min(self.bounds[index], self.vmax)
                    )
                    lo = max(lo, self.vmin)
                    if hi <= lo:
                        return min(max(lo, self.vmin), self.vmax)
                    fraction = (rank - cumulative) / bucket_count
                    value = lo + fraction * (hi - lo)
                    return min(max(value, self.vmin), self.vmax)
                cumulative += bucket_count
            return self.vmax  # pragma: no cover - cumulative always covers

    def count_below(self, value: float) -> float:
        """Estimated number of observations ``<= value``.

        The dual of :meth:`percentile`, and the primitive SLO evaluation
        needs: "how many rounds met the latency objective?". Counts whole
        buckets below the covering bucket exactly, then linearly
        interpolates inside it (between the bucket's edges, with the
        observed min/max standing in for the open outer edges) — accurate
        to one bucket width, same contract as the percentiles.
        """
        with self._lock:
            if not self.count:
                return 0.0
            if value >= self.vmax:
                return float(self.count)
            if value < self.vmin:
                return 0.0
            index = self._bucket_index(value)
            below = float(sum(self.counts[:index]))
            bucket_count = self.counts[index]
            if not bucket_count:
                return min(below, float(self.count))
            lo = max(self.vmin if index == 0 else self.bounds[index - 1], self.vmin)
            hi = (
                self.vmax
                if index == len(self.bounds)
                else min(self.bounds[index], self.vmax)
            )
            if hi <= lo:
                fraction = 1.0 if value >= hi else 0.0
            else:
                fraction = min(1.0, max(0.0, (value - lo) / (hi - lo)))
            return min(below + fraction * bucket_count, float(self.count))

    def quantiles(self) -> dict[str, float]:
        """The standard serving-team trio (plus mean), JSON-ready."""
        return {
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "mean": self.mean,
        }

    # -- merging --------------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram holding both operands' observations."""
        if self.bounds != other.bounds:
            raise TelemetryError(
                "cannot merge histograms with different bucket bounds"
            )
        merged = Histogram(self.bounds)
        # Lock in id order (and only once for a self-merge) so two threads
        # merging the same pair in opposite directions cannot deadlock.
        if other is self:
            locks = (self._lock,)
        else:
            first, second = sorted((self, other), key=id)
            locks = (first._lock, second._lock)
        for lock in locks:
            lock.acquire()
        try:
            merged.counts = [a + b for a, b in zip(self.counts, other.counts)]
            merged.count = self.count + other.count
            merged.total = self.total + other.total
            merged.vmin = min(self.vmin, other.vmin)
            merged.vmax = max(self.vmax, other.vmax)
        finally:
            for lock in reversed(locks):
                lock.release()
        return merged

    def absorb(self, other: "Histogram") -> None:
        """Fold ``other``'s observations into this histogram in place.

        The in-place counterpart of :meth:`merge`, used when rolling worker
        registry deltas up into the parent registry: the parent cell must
        *accumulate* (callers hold references to it), not be replaced.
        """
        if self.bounds != other.bounds:
            raise TelemetryError(
                "cannot merge histograms with different bucket bounds"
            )
        if other is self:
            raise TelemetryError("cannot absorb a histogram into itself")
        first, second = sorted((self, other), key=id)
        with first._lock, second._lock:
            self.counts = [a + b for a, b in zip(self.counts, other.counts)]
            self.count += other.count
            self.total += other.total
            self.vmin = min(self.vmin, other.vmin)
            self.vmax = max(self.vmax, other.vmax)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "counts": list(self.counts),
                "count": self.count,
                "sum": self.total,
                "min": self.vmin if self.count else 0.0,
                "max": self.vmax if self.count else 0.0,
            }

    @classmethod
    def from_snapshot(cls, record: Mapping) -> "Histogram":
        histogram = cls(record["bounds"])
        histogram.counts = list(record["counts"])
        histogram.count = int(record["count"])
        histogram.total = float(record["sum"])
        if histogram.count:
            histogram.vmin = float(record["min"])
            histogram.vmax = float(record["max"])
        return histogram

    # Locks are not picklable; a pickled histogram rehydrates a fresh one
    # (the planned process-mode cluster ships snapshots between workers).
    def __getstate__(self) -> dict:
        return self.snapshot()

    def __setstate__(self, state: dict) -> None:
        restored = Histogram.from_snapshot(state)
        for slot in ("bounds", "counts", "count", "total", "vmin", "vmax"):
            setattr(self, slot, getattr(restored, slot))
        self._lock = threading.Lock()


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create store of named, labelled metric cells.

    A cell's identity is ``(name, sorted label items)``; asking for an
    existing cell with a different metric type raises
    :class:`~repro.errors.TelemetryError` (one name, one type). All methods
    are thread-safe; the returned cells carry their own locks, so hot paths
    may cache them and record without touching the registry again.

    **Label cardinality is capped.** Each metric name may hold at most
    ``max_cells_per_name`` distinct label-sets (default
    :data:`DEFAULT_MAX_CELLS_PER_NAME`; ``None`` disables the cap). Once a
    name is full, requests for *new* label-sets are redirected to a
    catch-all cell whose every label value is
    :data:`OVERFLOW_LABEL_VALUE`, and the
    ``repro_metric_label_overflow_total{metric=<name>}`` counter is bumped
    — observations are never silently dropped, they just lose per-label
    resolution past the cap. Existing cells keep working; unlabelled cells
    are never capped. Reads (:meth:`value`, :meth:`get_histogram`) of a
    redirected label-set report the absent original cell, by design.
    """

    def __init__(
        self, max_cells_per_name: int | None = DEFAULT_MAX_CELLS_PER_NAME
    ) -> None:
        if max_cells_per_name is not None and max_cells_per_name < 1:
            raise TelemetryError(
                f"max_cells_per_name must be >= 1 or None, got {max_cells_per_name}"
            )
        self._lock = threading.Lock()
        self._metrics: dict[MetricKey, Metric] = {}
        self._max_cells_per_name = max_cells_per_name
        self._cells_per_name: dict[str, int] = {}

    @staticmethod
    def _key(name: str, labels: Mapping[str, str]) -> MetricKey:
        if not name:
            raise TelemetryError("metric name must be non-empty")
        return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))

    def _get_or_create(self, key: MetricKey, kind: type, factory) -> Metric:
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                key = self._admit(key)
                metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
                name = key[0]
                self._cells_per_name[name] = self._cells_per_name.get(name, 0) + 1
            elif not isinstance(metric, kind):
                raise TelemetryError(
                    f"metric {key[0]!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def _admit(self, key: MetricKey) -> MetricKey:
        """Decide the cell key for a not-yet-existing label-set (lock held).

        Returns ``key`` unchanged while the name is under its cap (or the
        set is unlabelled, or the cap is off); past the cap, redirects to
        the overflow catch-all key and records the collapse. The catch-all
        itself is always admitted, one slot past the cap.
        """
        name, label_items = key
        cap = self._max_cells_per_name
        if cap is None or not label_items:
            return key
        if self._cells_per_name.get(name, 0) < cap:
            return key
        overflow_key: MetricKey = (
            name,
            tuple((label, OVERFLOW_LABEL_VALUE) for label, _ in label_items),
        )
        if overflow_key == key:
            return key
        # The warning counter is maintained inline (the registry lock is
        # already held); its own label space is bounded by the number of
        # metric *names*, so it cannot itself overflow meaningfully.
        warn_key: MetricKey = (OVERFLOW_COUNTER, (("metric", name),))
        warn = self._metrics.get(warn_key)
        if warn is None:
            warn = Counter()
            self._metrics[warn_key] = warn
            self._cells_per_name[OVERFLOW_COUNTER] = (
                self._cells_per_name.get(OVERFLOW_COUNTER, 0) + 1
            )
        elif not isinstance(warn, Counter):
            raise TelemetryError(
                f"{OVERFLOW_COUNTER!r} is reserved for the cardinality-cap "
                f"warning counter but is registered as {type(warn).__name__}"
            )
        warn.inc()
        return overflow_key

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(self._key(name, labels), Counter, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(self._key(name, labels), Gauge, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] | None = None, **labels: str
    ) -> Histogram:
        return self._get_or_create(
            self._key(name, labels), Histogram, lambda: Histogram(bounds)
        )

    # -- reading --------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def collect(self) -> Iterator[tuple[str, dict[str, str], Metric]]:
        """Every cell as ``(name, labels, metric)``, sorted by identity."""
        with self._lock:
            items = sorted(self._metrics.items())
        for (name, labels), metric in items:
            yield name, dict(labels), metric

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter/gauge cell; 0.0 when absent."""
        key = self._key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise TelemetryError(f"{name!r} is a histogram; use get_histogram")
        return metric.snapshot()

    def get_histogram(self, name: str, **labels: str) -> Histogram | None:
        key = self._key(name, labels)
        with self._lock:
            metric = self._metrics.get(key)
        if metric is None:
            return None
        if not isinstance(metric, Histogram):
            raise TelemetryError(f"{name!r} is not a histogram")
        return metric

    def merged_histogram(self, name: str) -> Histogram | None:
        """All of ``name``'s labelled cells merged into one distribution."""
        cells = [
            metric
            for cell_name, _, metric in self.collect()
            if cell_name == name and isinstance(metric, Histogram)
        ]
        if not cells:
            return None
        merged = cells[0]
        for cell in cells[1:]:
            merged = merged.merge(cell)
        return merged

    def snapshot(self) -> dict:
        """One JSON-ready record of every cell (histograms with quantiles)."""
        counters: list[dict] = []
        gauges: list[dict] = []
        histograms: list[dict] = []
        for name, labels, metric in self.collect():
            if isinstance(metric, Counter):
                counters.append(
                    {"name": name, "labels": labels, "value": metric.snapshot()}
                )
            elif isinstance(metric, Gauge):
                gauges.append(
                    {"name": name, "labels": labels, "value": metric.snapshot()}
                )
            else:
                record = metric.snapshot()
                record.update(metric.quantiles())
                record["name"] = name
                record["labels"] = labels
                histograms.append(record)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    # -- merging --------------------------------------------------------

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's cells into this one losslessly.

        The process-mode cluster's roll-up: each worker ships a pickled
        registry *delta* (its cells since the last ship) and the parent
        absorbs it here. Counters add (two deltas commute), gauges take the
        incoming value (last writer wins — gauges are set-to-current by
        contract), histograms absorb bucket-wise (exactly associative).
        Cells new to this registry are created on demand; a name registered
        with a different metric type raises
        :class:`~repro.errors.TelemetryError`, same as direct use.
        """
        if other is self:
            raise TelemetryError("cannot merge a registry into itself")
        with other._lock:
            incoming = list(other._metrics.items())
        for (name, label_items), metric in incoming:
            if isinstance(metric, Counter):
                mine = self._get_or_create((name, label_items), Counter, Counter)
                mine.inc(metric.snapshot())
            elif isinstance(metric, Gauge):
                mine = self._get_or_create((name, label_items), Gauge, Gauge)
                mine.set(metric.snapshot())
            else:
                mine = self._get_or_create(
                    (name, label_items), Histogram, lambda m=metric: Histogram(m.bounds)
                )
                mine.absorb(metric)

    # The cells rehydrate their own locks on unpickle; the registry only
    # needs to hand over the cell table and rebuild its table lock plus the
    # per-name cardinality bookkeeping. The cap itself intentionally resets
    # to the default: a worker's shipped delta is data, and the *receiving*
    # registry's cap governs admission during merge_from.
    def __getstate__(self) -> dict:
        with self._lock:
            return {"metrics": dict(self._metrics)}

    def __setstate__(self, state: dict) -> None:
        self._lock = threading.Lock()
        self._metrics = dict(state["metrics"])
        self._max_cells_per_name = DEFAULT_MAX_CELLS_PER_NAME
        self._cells_per_name = {}
        for name, _ in self._metrics:
            self._cells_per_name[name] = self._cells_per_name.get(name, 0) + 1
