"""Text query language for building AND-OR trees.

Grammar (case-insensitive keywords, ``OR`` binds loosest)::

    query     := or_expr
    or_expr   := and_expr ( OR and_expr )*
    and_expr  := unit ( AND unit )*
    unit      := '(' or_expr ')' | leaf
    leaf      := predicate [ 'p' '=' NUMBER ]
               | abstract  [ 'p' '=' NUMBER ]
    predicate := IDENT '(' IDENT ',' INT ')' CMP NUMBER   -- AVG(A,5) < 70
               | IDENT CMP NUMBER                          -- C < 3
    abstract  := IDENT '[' INT ']'                         -- A[5]
    CMP       := < | <= | > | >= | == | !=

Two leaf forms:

* **predicate leaves** carry real semantics (window operator + comparison)
  and get a bound :class:`~repro.predicates.predicate.Predicate`;
* **abstract leaves** (``A[5] p=0.75``) only carry the scheduling data
  (stream, items, probability) — handy for writing paper instances directly.

The optional ``p=<prob>`` annotation sets the leaf's success probability
(default 0.5 — refine it later from traces or profiling).

Example::

    parse_query("(AVG(A,5) < 70 AND MAX(B,4) > 100) OR C < 3")
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.leaf import Leaf
from repro.core.tree import AndNode, DnfTree, LeafNode, Node, OrNode, QueryTree
from repro.errors import ParseError
from repro.predicates.predicate import COMPARATORS, Predicate
from repro.predicates.windows import WINDOW_OPS

__all__ = ["ParsedQuery", "parse_query"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<cmp><=|>=|==|!=|<|>)
  | (?P<sym>[()\[\],=])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # "number" | "ident" | "cmp" | "sym" | "eof"
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind=kind, text=match.group(), pos=pos))
        pos = match.end()
    tokens.append(_Token(kind="eof", text="", pos=len(text)))
    return tokens


@dataclass(frozen=True)
class ParsedQuery:
    """Result of :func:`parse_query`.

    ``predicates`` maps global leaf indices (in :attr:`QueryTree.leaves`
    order) to bound predicates; abstract leaves have no entry.
    """

    tree: QueryTree
    predicates: Mapping[int, Predicate] = field(default_factory=dict)

    def as_dnf(self) -> DnfTree:
        """The query as a :class:`DnfTree` (raises if not in DNF shape)."""
        return self.tree.as_dnf()


class _Parser:
    def __init__(self, tokens: list[_Token], default_prob: float) -> None:
        self.tokens = tokens
        self.cursor = 0
        self.default_prob = default_prob
        self.leaf_predicates: list[Predicate | None] = []

    # -- token helpers ---------------------------------------------------

    def peek(self, ahead: int = 0) -> _Token:
        return self.tokens[min(self.cursor + ahead, len(self.tokens) - 1)]

    def advance(self) -> _Token:
        token = self.tokens[self.cursor]
        if token.kind != "eof":
            self.cursor += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r} at position {token.pos}, got {token.text!r}")
        return self.advance()

    def _is_keyword(self, token: _Token, word: str) -> bool:
        return token.kind == "ident" and token.text.upper() == word

    # -- grammar ----------------------------------------------------------

    def parse(self) -> Node:
        node = self.or_expr()
        tail = self.peek()
        if tail.kind != "eof":
            raise ParseError(f"trailing input at position {tail.pos}: {tail.text!r}")
        return node

    def or_expr(self) -> Node:
        terms = [self.and_expr()]
        while self._is_keyword(self.peek(), "OR"):
            self.advance()
            terms.append(self.and_expr())
        return terms[0] if len(terms) == 1 else OrNode(terms)

    def and_expr(self) -> Node:
        units = [self.unit()]
        while self._is_keyword(self.peek(), "AND"):
            self.advance()
            units.append(self.unit())
        return units[0] if len(units) == 1 else AndNode(units)

    def unit(self) -> Node:
        token = self.peek()
        if token.kind == "sym" and token.text == "(":
            self.advance()
            node = self.or_expr()
            self.expect("sym", ")")
            return node
        return self.leaf()

    def leaf(self) -> Node:
        head = self.expect("ident")
        follow = self.peek()
        if follow.kind == "sym" and follow.text == "(":
            node = self._predicate_with_op(head)
        elif follow.kind == "sym" and follow.text == "[":
            node = self._abstract_leaf(head)
        elif follow.kind == "cmp":
            node = self._bare_predicate(head)
        else:
            raise ParseError(
                f"expected '(', '[' or a comparator after {head.text!r} "
                f"at position {follow.pos}"
            )
        return node

    def _prob_annotation(self) -> float:
        token = self.peek()
        if (
            token.kind == "ident"
            and token.text.lower() == "p"
            and self.peek(1).kind == "sym"
            and self.peek(1).text == "="
        ):
            self.advance()  # p
            self.advance()  # =
            number = self.expect("number")
            prob = float(number.text)
            if not 0.0 <= prob <= 1.0:
                raise ParseError(f"probability {prob} out of [0, 1] at position {number.pos}")
            return prob
        return self.default_prob

    def _finish_predicate(self, predicate: Predicate) -> Node:
        prob = self._prob_annotation()
        self.leaf_predicates.append(predicate)
        return LeafNode(predicate.to_leaf(prob))

    def _predicate_with_op(self, head: _Token) -> Node:
        op = head.text.upper()
        if op not in WINDOW_OPS:
            known = ", ".join(sorted(WINDOW_OPS))
            raise ParseError(
                f"unknown window operator {head.text!r} at position {head.pos}; known: {known}"
            )
        self.expect("sym", "(")
        stream = self.expect("ident").text
        self.expect("sym", ",")
        window_token = self.expect("number")
        window = self._as_int(window_token)
        self.expect("sym", ")")
        cmp_token = self.expect("cmp")
        threshold = float(self.expect("number").text)
        predicate = Predicate(
            stream=stream, op=op, window=window, cmp=cmp_token.text, threshold=threshold
        )
        return self._finish_predicate(predicate)

    def _bare_predicate(self, head: _Token) -> Node:
        cmp_token = self.expect("cmp")
        threshold = float(self.expect("number").text)
        predicate = Predicate(
            stream=head.text, op="LAST", window=1, cmp=cmp_token.text, threshold=threshold
        )
        return self._finish_predicate(predicate)

    def _abstract_leaf(self, head: _Token) -> Node:
        self.expect("sym", "[")
        items = self._as_int(self.expect("number"))
        self.expect("sym", "]")
        prob = self._prob_annotation()
        self.leaf_predicates.append(None)
        return LeafNode(Leaf(stream=head.text, items=items, prob=prob))

    @staticmethod
    def _as_int(token: _Token) -> int:
        value = float(token.text)
        if value != int(value) or value < 1:
            raise ParseError(f"expected a positive integer at position {token.pos}")
        return int(value)

    def __init_subclass__(cls) -> None:  # pragma: no cover - no subclasses expected
        raise TypeError("_Parser is not designed for subclassing")


def parse_query(
    text: str,
    *,
    costs: Mapping[str, float] | None = None,
    default_cost: float = 1.0,
    default_prob: float = 0.5,
) -> ParsedQuery:
    """Parse a query expression into a :class:`ParsedQuery`.

    Parameters
    ----------
    costs:
        Per-item stream costs; defaults to ``default_cost`` everywhere.
    default_prob:
        Success probability for leaves without a ``p=`` annotation.
    """
    if not text or not text.strip():
        raise ParseError("empty query")
    parser = _Parser(_tokenize(text), default_prob)
    root = parser.parse()
    tree = QueryTree(root, costs, default_cost=default_cost)
    predicates = {
        g: predicate
        for g, predicate in enumerate(parser.leaf_predicates)
        if predicate is not None
    }
    return ParsedQuery(tree=tree, predicates=predicates)
