"""Serialization: trees <-> dicts / JSON / DSL expressions.

* :func:`tree_to_dict` / :func:`tree_from_dict` — loss-free structured form
  for all three tree types (costs included);
* :func:`tree_to_json` / :func:`tree_from_json` — the same through JSON;
* :func:`to_expression` — render any tree in the query DSL's *abstract leaf*
  syntax (``A[5] p=0.75``), re-parseable with
  :func:`repro.lang.parser.parse_query` (structure, probabilities and items
  round-trip; predicate labels do not).
"""

from __future__ import annotations

import json
from typing import Any, Union

from repro.core.leaf import Leaf
from repro.core.tree import AndNode, AndTree, DnfTree, LeafNode, Node, OrNode, QueryTree
from repro.errors import ParseError

__all__ = [
    "leaf_to_dict",
    "leaf_from_dict",
    "tree_to_dict",
    "tree_from_dict",
    "tree_to_json",
    "tree_from_json",
    "tree_to_canonical_json",
    "to_expression",
]

TreeLike = Union[AndTree, DnfTree, QueryTree]


def leaf_to_dict(leaf: Leaf) -> dict[str, Any]:
    out: dict[str, Any] = {"stream": leaf.stream, "items": leaf.items, "prob": leaf.prob}
    if leaf.label:
        out["label"] = leaf.label
    return out


def leaf_from_dict(data: dict[str, Any]) -> Leaf:
    try:
        return Leaf(
            stream=data["stream"],
            items=int(data["items"]),
            prob=float(data["prob"]),
            label=str(data.get("label", "")),
        )
    except KeyError as exc:
        raise ParseError(f"leaf dict missing key {exc}") from None


def _node_to_dict(node: Node) -> dict[str, Any]:
    if isinstance(node, LeafNode):
        return {"leaf": leaf_to_dict(node.leaf)}
    if not isinstance(node, (AndNode, OrNode)):
        raise ParseError(f"cannot serialize node of type {type(node).__name__}")
    op = "and" if isinstance(node, AndNode) else "or"
    return {"op": op, "children": [_node_to_dict(child) for child in node.children]}


def _node_from_dict(data: dict[str, Any]) -> Node:
    if "leaf" in data:
        return LeafNode(leaf_from_dict(data["leaf"]))
    try:
        op = data["op"]
        children = [_node_from_dict(child) for child in data["children"]]
    except KeyError as exc:
        raise ParseError(f"node dict missing key {exc}") from None
    if op == "and":
        return AndNode(children)
    if op == "or":
        return OrNode(children)
    raise ParseError(f"unknown operator {op!r}")


def tree_to_dict(tree: TreeLike) -> dict[str, Any]:
    """Structured representation with a ``type`` tag and the cost table."""
    costs = dict(tree.costs)
    if isinstance(tree, AndTree):
        return {
            "type": "and-tree",
            "leaves": [leaf_to_dict(leaf) for leaf in tree.leaves],
            "costs": costs,
        }
    if isinstance(tree, DnfTree):
        return {
            "type": "dnf-tree",
            "ands": [[leaf_to_dict(leaf) for leaf in group] for group in tree.ands],
            "costs": costs,
        }
    if isinstance(tree, QueryTree):
        return {"type": "query-tree", "root": _node_to_dict(tree.root), "costs": costs}
    raise TypeError(f"cannot serialize {type(tree).__name__}")


def tree_from_dict(data: dict[str, Any]) -> TreeLike:
    """Inverse of :func:`tree_to_dict`."""
    kind = data.get("type")
    costs = data.get("costs")
    if kind == "and-tree":
        return AndTree([leaf_from_dict(leaf) for leaf in data["leaves"]], costs)
    if kind == "dnf-tree":
        return DnfTree(
            [[leaf_from_dict(leaf) for leaf in group] for group in data["ands"]], costs
        )
    if kind == "query-tree":
        return QueryTree(_node_from_dict(data["root"]), costs)
    raise ParseError(f"unknown tree type {kind!r}")


def tree_to_json(tree: TreeLike, **json_kwargs: Any) -> str:
    """JSON form of :func:`tree_to_dict` (kwargs forwarded to ``json.dumps``)."""
    return json.dumps(tree_to_dict(tree), **json_kwargs)


def tree_from_json(text: str) -> TreeLike:
    """Inverse of :func:`tree_to_json`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ParseError(f"invalid JSON: {exc}") from None
    return tree_from_dict(data)


def _leaf_sort_key(leaf: Leaf) -> tuple[str, int, float]:
    return (leaf.stream, leaf.items, leaf.prob)


def tree_to_canonical_json(tree: TreeLike) -> str:
    """Deterministic JSON usable as a structural identity for a tree.

    Two trees that are *isomorphic* — equal up to the declaration order of
    leaves within AND nodes, of AND nodes under an OR, and of operator
    children in a general tree — produce the same string; structurally or
    probabilistically distinct trees (including distinct cost tables) do not.
    Normalization rules:

    * leaf ``label`` is dropped (it never affects cost or semantics);
    * sibling leaves/children are sorted by a canonical key;
    * the cost table is restricted to the streams the tree actually uses and
      emitted with sorted keys;
    * an :class:`AndTree` is emitted as its one-AND DNF form, so an AND-tree
      and its ``to_dnf()`` view share an identity.

    The service layer's plan cache keys build on this
    (:mod:`repro.service.canonical` adds leaf deduplication on top).
    """
    used = set()
    for leaf in tree.leaves:
        used.add(leaf.stream)
    costs = {name: float(cost) for name, cost in tree.costs.items() if name in used}
    if isinstance(tree, AndTree):
        tree = tree.to_dnf()
    if isinstance(tree, DnfTree):
        groups = sorted(
            tuple(sorted(((leaf.stream, leaf.items, leaf.prob) for leaf in group)))
            for group in tree.ands
        )
        payload: dict[str, Any] = {"type": "dnf-tree", "ands": groups, "costs": costs}
    elif isinstance(tree, QueryTree):

        def node_key(node: Node) -> Any:
            if isinstance(node, LeafNode):
                return ["leaf", list(_leaf_sort_key(node.leaf))]
            if not isinstance(node, (AndNode, OrNode)):
                raise ParseError(
                    f"cannot canonicalize node of type {type(node).__name__}"
                )
            op = "and" if isinstance(node, AndNode) else "or"
            children = sorted(
                (node_key(child) for child in node.children),
                key=lambda key: json.dumps(key, sort_keys=True),
            )
            return [op, children]

        payload = {"type": "query-tree", "root": node_key(tree.root.simplified()), "costs": costs}
    else:
        raise TypeError(f"cannot canonicalize {type(tree).__name__}")
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _leaf_expression(leaf: Leaf) -> str:
    return f"{leaf.stream}[{leaf.items}] p={leaf.prob:g}"


def _node_expression(node: Node, *, parent: str) -> str:
    if isinstance(node, LeafNode):
        return _leaf_expression(node.leaf)
    if isinstance(node, AndNode):
        body = " AND ".join(_node_expression(child, parent="and") for child in node.children)
        return body
    body = " OR ".join(_node_expression(child, parent="or") for child in node.children)
    # OR under AND needs parentheses (AND binds tighter in the grammar).
    return f"({body})" if parent == "and" else body


def to_expression(tree: TreeLike) -> str:
    """Render in the DSL's abstract-leaf syntax (re-parseable)."""
    if isinstance(tree, AndTree):
        return " AND ".join(_leaf_expression(leaf) for leaf in tree.leaves)
    if isinstance(tree, DnfTree):
        groups = []
        for group in tree.ands:
            body = " AND ".join(_leaf_expression(leaf) for leaf in group)
            groups.append(f"({body})" if len(group) > 1 and tree.n_ands > 1 else body)
        return " OR ".join(groups)
    if isinstance(tree, QueryTree):
        return _node_expression(tree.root, parent="top")
    raise TypeError(f"cannot render {type(tree).__name__}")
