"""Query language: DSL parser and tree serialization."""

from repro.lang.parser import ParsedQuery, parse_query
from repro.lang.serialize import (
    leaf_from_dict,
    leaf_to_dict,
    to_expression,
    tree_from_dict,
    tree_from_json,
    tree_to_canonical_json,
    tree_to_dict,
    tree_to_json,
)

__all__ = [
    "parse_query",
    "ParsedQuery",
    "tree_to_dict",
    "tree_from_dict",
    "tree_to_json",
    "tree_from_json",
    "tree_to_canonical_json",
    "leaf_to_dict",
    "leaf_from_dict",
    "to_expression",
]
