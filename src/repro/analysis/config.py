"""Configuration for the invariant linter.

Defaults encode this repository's conventions (blessed multi-lock helpers,
the cluster worker as the spawn-safety root, which packages are determinism
hot paths). Projects — and the fixture tests — override them either
programmatically or through a ``[tool.repro-lint]`` table in
``pyproject.toml``::

    [tool.repro-lint]
    ignore = ["RPR005"]
    blessed-multilock = ["merge", "absorb"]

Unknown keys and unknown rule ids raise :class:`~repro.errors.AnalysisError`
so a typo in CI config fails loudly instead of silently disabling a rule.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import AnalysisError

__all__ = ["LintConfig", "load_pyproject_config", "ALL_RULES"]

ALL_RULES: tuple[str, ...] = (
    "RPR001",
    "RPR002",
    "RPR003",
    "RPR004",
    "RPR005",
    "RPR006",
    "RPR007",
)

# pyproject key (kebab-case) -> LintConfig field.
_PYPROJECT_KEYS: dict[str, str] = {
    "select": "select",
    "ignore": "ignore",
    "blessed-multilock": "blessed_multilock",
    "worker-root": "worker_root",
    "determinism-scope": "determinism_scope",
    "except-scope": "except_scope",
    "interned-classes": "interned_classes",
    "interned-store-modules": "interned_store_modules",
}


@dataclass(frozen=True)
class LintConfig:
    """Knobs for one lint run.

    Parameters
    ----------
    select:
        Rule ids to run; empty means all registered rules.
    ignore:
        Rule ids to skip (applied after ``select``).
    blessed_multilock:
        Function names allowed to hold two locks at once because they use
        the id-ordered acquisition idiom (RPR003).
    worker_root:
        Dotted module whose transitive imports must be free of import-time
        thread/lock/pool creation (RPR004). Skipped when the module is not
        part of the linted tree.
    determinism_scope:
        Dotted-module prefixes treated as determinism hot paths (RPR005).
        Empty means every linted module.
    except_scope:
        Dotted-module prefixes where a swallowed ``except Exception: pass``
        is an error (RPR006). Bare ``except:`` is flagged everywhere
        regardless. Empty means every linted module.
    interned_classes:
        Class names whose instances are hash-consed (RPR007): attribute
        writes and ``object.__setattr__``/``setattr`` on values bound to
        these classes are flagged anywhere outside the store modules.
    interned_store_modules:
        Dotted-module prefixes exempt from RPR007 — the intern stores
        themselves, which legitimately write slots during construction.
    """

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    blessed_multilock: tuple[str, ...] = ("merge", "absorb", "merge_from")
    worker_root: str = "repro.cluster.worker"
    determinism_scope: tuple[str, ...] = (
        "repro.adaptive",
        "repro.cluster",
        "repro.core",
        "repro.engine",
        "repro.service",
        "repro.streams",
    )
    except_scope: tuple[str, ...] = ()
    interned_classes: tuple[str, ...] = (
        "InternedLeaf",
        "InternedClause",
        "InternedTree",
    )
    interned_store_modules: tuple[str, ...] = ("repro.service.substore",)

    def __post_init__(self) -> None:
        for rule in (*self.select, *self.ignore):
            if rule not in ALL_RULES:
                raise AnalysisError(
                    f"unknown rule {rule!r}; expected one of {', '.join(ALL_RULES)}"
                )

    def enabled_rules(self) -> tuple[str, ...]:
        chosen = self.select or ALL_RULES
        return tuple(rule for rule in chosen if rule not in self.ignore)

    def with_overrides(self, overrides: Mapping[str, object]) -> "LintConfig":
        """A copy with ``overrides`` (LintConfig field name -> value) applied."""
        known = {f.name for f in fields(self)}
        cleaned: dict[str, Any] = {}
        for key, value in overrides.items():
            if key not in known:
                raise AnalysisError(f"unknown lint config key {key!r}")
            if isinstance(value, list):
                value = tuple(value)
            cleaned[key] = value
        return replace(self, **cleaned)


def _coerce(key: str, value: object) -> object:
    if key in ("worker_root",):
        if not isinstance(value, str):
            raise AnalysisError(f"lint config {key!r} must be a string")
        return value
    if isinstance(value, str):
        return (value,)
    if isinstance(value, Iterable):
        items = tuple(value)
        if not all(isinstance(item, str) for item in items):
            raise AnalysisError(f"lint config {key!r} must be a list of strings")
        return items
    raise AnalysisError(f"lint config {key!r} must be a string or list of strings")


def load_pyproject_config(
    start: str | Path | None = None, base: LintConfig | None = None
) -> LintConfig:
    """``base`` updated from the nearest ``pyproject.toml``'s ``[tool.repro-lint]``.

    Searches ``start`` (a file or directory; default: the current working
    directory) and its ancestors. Missing file, missing table, or a Python
    without :mod:`tomllib` (< 3.11) all return ``base`` unchanged — the
    linter stays zero-dependency and zero-config by default.
    """
    config = base if base is not None else LintConfig()
    if sys.version_info < (3, 11):  # pragma: no cover - tomllib is 3.11+
        return config
    import tomllib

    path = Path(start) if start is not None else Path.cwd()
    if path.is_file():
        path = path.parent
    for directory in (path, *path.parents):
        candidate = directory / "pyproject.toml"
        if not candidate.is_file():
            continue
        try:
            data = tomllib.loads(candidate.read_text(encoding="utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise AnalysisError(f"cannot parse {candidate}: {exc}") from None
        table = data.get("tool", {}).get("repro-lint")
        if table is None:
            return config
        overrides: dict[str, object] = {}
        for key, value in table.items():
            field_name = _PYPROJECT_KEYS.get(key)
            if field_name is None:
                raise AnalysisError(
                    f"unknown [tool.repro-lint] key {key!r} in {candidate}; "
                    f"expected one of {', '.join(sorted(_PYPROJECT_KEYS))}"
                )
            overrides[field_name] = _coerce(field_name, value)
        return config.with_overrides(overrides)
    return config
