"""The lint engine: discovery, parsing, suppression, rendering.

Entry points:

* :func:`lint_paths` — lint files/directories on disk (what ``repro lint``
  calls).
* :func:`lint_sources` — lint in-memory ``{path: source}`` mappings; the
  self-test corpus and the ``PlanCache`` mutation check use this to lint
  code that never touches disk.

Suppression is inline and per-line::

    self._rng = np.random.default_rng()  # repro-lint: disable=RPR005
    risky()  # repro-lint: disable=RPR003,RPR005
    legacy()  # repro-lint: disable=all

Suppressed findings are not dropped silently: they are collected on
:attr:`LintResult.suppressed` and counted in both output formats, so a
``disable=`` creeping into a diff is visible in CI logs.
"""

from __future__ import annotations

import ast
import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.analysis.base import Checker, Finding, ModuleInfo, ProjectInfo
from repro.analysis.checkers import REGISTRY, checker_classes
from repro.analysis.config import LintConfig
from repro.errors import AnalysisError

__all__ = ["LintResult", "lint_paths", "lint_sources", "module_name_for"]

_PRAGMA = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+)")


@dataclass
class LintResult:
    """Outcome of one lint pass."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    errors: list[tuple[str, str]] = field(default_factory=list)
    files: int = 0
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the tree is clean: no findings and no unparseable files."""
        return not self.findings and not self.errors

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def rules_fired(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def render_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        for path, message in self.errors:
            lines.append(f"{path}: error: {message}")
        summary = (
            f"{len(self.findings)} finding(s), {len(self.suppressed)} "
            f"suppressed, {self.files} file(s) in {self.elapsed * 1000:.0f} ms"
        )
        lines.append(summary if lines else f"clean: {summary}")
        return "\n".join(lines)

    def render_json(self) -> str:
        payload = {
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": [finding.to_json() for finding in self.suppressed],
            "errors": [
                {"path": path, "message": message} for path, message in self.errors
            ],
            "files": self.files,
            "elapsed_seconds": self.elapsed,
            "rules_fired": self.rules_fired(),
            "ok": self.ok,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, walking up through ``__init__.py``.

    ``src/repro/cluster/worker.py`` -> ``repro.cluster.worker`` because
    ``src/repro/__init__.py`` exists but ``src/__init__.py`` does not. A
    file outside any package is its own bare module name; underivable
    paths yield ``""``.
    """
    path = Path(path)
    if path.suffix != ".py":
        return ""
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    if not parts:
        parts = [path.parent.name or path.stem]
    return ".".join(reversed(parts))


def _discover(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise AnalysisError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                files.append(candidate)
    return files


def _suppressions(source: str) -> dict[int, set[str]]:
    """Line number -> rule ids disabled on that line ({"all"} disables all)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        rules = {
            token.strip().upper() if token.strip().lower() != "all" else "all"
            for token in match.group(1).split(",")
            if token.strip()
        }
        if rules:
            out[lineno] = rules
    return out


def _run(
    sources: Mapping[str, tuple[str, str]], config: LintConfig
) -> LintResult:
    """Core pass over ``{path: (module_name, source)}``."""
    start = time.perf_counter()
    result = LintResult()
    modules: list[ModuleInfo] = []
    suppression_maps: dict[str, dict[int, set[str]]] = {}
    for path, (name, source) in sources.items():
        result.files += 1
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            result.errors.append(
                (path, f"cannot parse: {exc.msg} (line {exc.lineno})")
            )
            continue
        modules.append(ModuleInfo(path=path, name=name, source=source, tree=tree))
        suppression_maps[path] = _suppressions(source)

    project = ProjectInfo(modules)
    checkers: list[Checker] = [
        cls(config) for cls in checker_classes(config.enabled_rules())
    ]

    def emit(findings: Iterator[Finding]) -> None:
        for finding in findings:
            disabled = suppression_maps.get(finding.path, {}).get(finding.line, set())
            if "all" in disabled or finding.rule in disabled:
                result.suppressed.append(finding)
            else:
                result.findings.append(finding)

    for checker in checkers:
        for module in modules:
            emit(checker.check_module(module))
        emit(checker.check_project(project))

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.suppressed.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    result.errors.sort()
    result.elapsed = time.perf_counter() - start
    return result


def lint_paths(
    paths: Sequence[str | Path], config: LintConfig | None = None
) -> LintResult:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    config = config if config is not None else LintConfig()
    files = _discover(paths)
    sources: dict[str, tuple[str, str]] = {}
    for file in files:
        try:
            text = file.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {file}: {exc}") from None
        sources[str(file)] = (module_name_for(file), text)
    return _run(sources, config)


def lint_sources(
    sources: Mapping[str, str],
    config: LintConfig | None = None,
    module_names: Mapping[str, str] | None = None,
) -> LintResult:
    """Lint in-memory sources: ``{path: source_text}``.

    Module names derive from each path exactly as on-disk linting would
    (so a mutated copy of a real file keeps its real module name);
    ``module_names`` overrides per path for fully virtual files.
    """
    config = config if config is not None else LintConfig()
    prepared: dict[str, tuple[str, str]] = {}
    for path, text in sources.items():
        if module_names is not None and path in module_names:
            name = module_names[path]
        else:
            name = module_name_for(Path(path))
        prepared[path] = (name, text)
    return _run(prepared, config)


def rule_listing() -> str:
    """One line per registered rule, for ``repro lint --list-rules``."""
    lines = []
    for rule, cls in sorted(REGISTRY.items()):
        lines.append(f"{rule}  {cls.title}")
    return "\n".join(lines)


__all__.append("rule_listing")
