"""repro.analysis — AST-based invariant linting for the serving stack.

Zero-dependency static analysis enforcing the concurrency/determinism
invariants this project learned the hard way (see README, "Static analysis
& invariants"):

========  ============================================================
RPR001    lock-bearing classes must define pickle state hooks
RPR002    ``__slots__`` + guarded ``__setattr__`` needs explicit hooks
RPR003    multi-lock acquisition only via blessed id-ordered helpers
RPR004    spawn-context multiprocessing; import-clean worker deps
RPR005    no unseeded RNG / wall-clock logic in determinism hot paths
RPR006    no bare ``except`` / swallowed errors in worker hot loops
RPR007    interned canonical nodes are immutable outside their store
========  ============================================================

Run it as ``repro lint [paths]`` or programmatically::

    from repro.analysis import lint_paths
    result = lint_paths(["src"])
    assert result.ok, result.render_text()

Suppress a single line with ``# repro-lint: disable=RPR005`` (or
``disable=all``); suppressed findings stay counted in the output.
"""

from __future__ import annotations

from repro.analysis.base import Checker, Finding, ModuleInfo, ProjectInfo
from repro.analysis.checkers import REGISTRY, rule_titles
from repro.analysis.checkers.pickle_locks import LOCK_CONSTRUCTORS, lock_fields
from repro.analysis.config import ALL_RULES, LintConfig, load_pyproject_config
from repro.analysis.engine import (
    LintResult,
    lint_paths,
    lint_sources,
    module_name_for,
    rule_listing,
)

__all__ = [
    "ALL_RULES",
    "Checker",
    "Finding",
    "LOCK_CONSTRUCTORS",
    "LintConfig",
    "LintResult",
    "ModuleInfo",
    "ProjectInfo",
    "REGISTRY",
    "lint_paths",
    "lint_sources",
    "lock_fields",
    "load_pyproject_config",
    "module_name_for",
    "rule_listing",
    "rule_titles",
]
