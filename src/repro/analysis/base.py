"""Checker framework for :mod:`repro.analysis`.

The linter is a thin orchestration layer over small, single-invariant
*checkers*. Each checker owns one rule id (``RPR001`` .. ``RPR007``), walks
pre-parsed module ASTs and yields :class:`Finding` records; the engine
handles discovery, suppression pragmas and rendering.

Two levels of context are provided:

* :class:`ModuleInfo` — one parsed file: its path, dotted module name,
  source lines and AST. Most checkers are purely per-module.
* :class:`ProjectInfo` — every module of one lint run plus the internal
  import graph, for whole-program invariants (RPR004's "no import-time side
  effects in anything the cluster worker imports" needs reachability).

The shared AST helpers here (:class:`ImportMap`, :func:`dotted_name`,
:func:`resolve_call`) answer the one question almost every rule asks:
*which fully-qualified name does this expression refer to?* — so individual
checkers can match on ``"threading.Lock"`` or ``"numpy.random.rand"``
regardless of how the module spelled its imports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Finding",
    "Checker",
    "ModuleInfo",
    "ProjectInfo",
    "ImportMap",
    "dotted_name",
    "resolve_call",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """The canonical ``file:line:col: RPRxxx message`` text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    This is purely syntactic: ``self._lock`` becomes ``"self._lock"``,
    ``np.random.rand`` becomes ``"np.random.rand"``. Call/subscript chains
    (``get_context().Pool``) yield ``None`` — checkers treat those as
    unresolvable rather than guessing.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Alias table for one module: local name -> fully-qualified module path.

    Collects every ``import``/``from .. import`` in the module (at any
    depth — function-local imports are common in this codebase to break
    cycles) and resolves expression heads through it::

        import numpy as np          ->  np        => numpy
        from threading import Lock  ->  Lock      => threading.Lock
        from . import worker        ->  worker    => <package>.worker

    Relative imports are resolved against the module's own dotted name.
    """

    def __init__(self, nodes: Sequence[ast.AST], module_name: str = "") -> None:
        self._aliases: dict[str, str] = {}
        self._module_name = module_name
        for node in nodes:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{base}.{alias.name}" if base else alias.name

    def _resolve_from(self, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module or ""
        # Relative: strip `level` trailing components off this module's
        # package path. A module name of "" (unknown) cannot anchor one.
        if not self._module_name:
            return None
        parts = self._module_name.split(".")
        # `from . import x` inside package module a.b.c means package a.b;
        # inside a package __init__ the module name *is* the package.
        if len(parts) < node.level:
            return None
        base_parts = parts[: len(parts) - node.level]
        base = ".".join(base_parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base

    def resolve(self, expr: ast.expr) -> str | None:
        """Fully-qualified dotted path for ``expr``, or ``None``.

        ``self.x`` style chains resolve to ``None`` (heads bound to local
        objects, not imports).
        """
        name = dotted_name(expr)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        target = self._aliases.get(head)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def imported_modules(self) -> set[str]:
        """Every module path this module imports (best effort, absolute)."""
        return set(self._aliases.values())


def resolve_call(node: ast.Call, imports: ImportMap) -> str | None:
    """Fully-qualified name of a call's target, or ``None`` if unresolvable."""
    return imports.resolve(node.func)


@dataclass
class ModuleInfo:
    """One parsed source file presented to the checkers."""

    path: str
    name: str  # dotted module name, "" when underivable
    source: str
    tree: ast.Module
    # One flat pre-order walk, shared by every checker: walking the AST once
    # instead of once per rule is what keeps a full-tree lint under ~200 ms.
    nodes: list[ast.AST] = field(init=False)
    imports: ImportMap = field(init=False)

    def __post_init__(self) -> None:
        self.nodes = list(ast.walk(self.tree))
        self.imports = ImportMap(self.nodes, self.name)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )

    def in_scope(self, prefixes: Sequence[str]) -> bool:
        """True when this module's dotted name falls under any prefix.

        An empty prefix tuple means "everything is in scope" — fixture
        tests use that to point a scoped rule at bare top-level modules.
        """
        if not prefixes:
            return True
        return any(
            self.name == prefix or self.name.startswith(prefix + ".")
            for prefix in prefixes
        )


class ProjectInfo:
    """All modules of one lint run, plus the internal import graph."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules = list(modules)
        self.by_name: Mapping[str, ModuleInfo] = {
            m.name: m for m in self.modules if m.name
        }

    def reachable_from(self, root: str) -> set[str]:
        """Module names transitively imported by ``root`` (inclusive).

        Only edges between modules *in this lint run* are followed; imports
        of the stdlib or third-party packages terminate. ``from pkg import
        name`` resolves to ``pkg.name`` when that is a known module, else to
        ``pkg`` when known (importing a name from a package still executes
        the package and everything its ``__init__`` pulls in).
        """
        if root not in self.by_name:
            return set()
        seen: set[str] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            module = self.by_name.get(current)
            if module is None:
                continue
            for target in module.imports.imported_modules():
                for candidate in self._known_prefixes(target):
                    if candidate not in seen:
                        stack.append(candidate)
        return seen

    def _known_prefixes(self, target: str) -> Iterator[str]:
        """Known modules a raw import target maps onto (longest first).

        Importing ``a.b.c`` executes ``a``, ``a.b`` and ``a.b.c``; package
        ``__init__`` modules in between run their import-time code too, so
        every known prefix is an edge.
        """
        parts = target.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.by_name:
                yield candidate


class Checker:
    """Base class for one lint rule.

    Subclasses set ``rule``/``title`` and override :meth:`check_module`;
    whole-program rules may also override :meth:`check_project`, which runs
    once per lint pass after every module has been parsed.
    """

    rule: str = "RPR000"
    title: str = ""

    def __init__(self, config: "LintConfig") -> None:  # noqa: F821 - forward ref
        self.config = config

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectInfo) -> Iterator[Finding]:
        return iter(())
