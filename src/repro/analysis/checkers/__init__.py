"""Checker registry: rule id -> checker class.

Adding a rule is one entry here plus one module; the engine, CLI
``--select/--ignore`` filters, suppression pragmas and JSON output all pick
it up from the registry.
"""

from __future__ import annotations

from repro.analysis.base import Checker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.exceptions import ExceptionHygieneChecker
from repro.analysis.checkers.immutable_interned import ImmutableInternedChecker
from repro.analysis.checkers.lock_order import LockOrderChecker
from repro.analysis.checkers.pickle_locks import PickleLockChecker
from repro.analysis.checkers.slots_pickle import SlotsPickleChecker
from repro.analysis.checkers.spawn_safety import SpawnSafetyChecker

__all__ = ["REGISTRY", "checker_classes", "rule_titles"]

REGISTRY: dict[str, type[Checker]] = {
    PickleLockChecker.rule: PickleLockChecker,
    SlotsPickleChecker.rule: SlotsPickleChecker,
    LockOrderChecker.rule: LockOrderChecker,
    SpawnSafetyChecker.rule: SpawnSafetyChecker,
    DeterminismChecker.rule: DeterminismChecker,
    ExceptionHygieneChecker.rule: ExceptionHygieneChecker,
    ImmutableInternedChecker.rule: ImmutableInternedChecker,
}


def checker_classes(rules: tuple[str, ...]) -> list[type[Checker]]:
    return [REGISTRY[rule] for rule in rules if rule in REGISTRY]


def rule_titles() -> dict[str, str]:
    return {rule: cls.title for rule, cls in REGISTRY.items()}
