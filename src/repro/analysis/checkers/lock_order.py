"""RPR003 — multi-lock acquisition only via the blessed id-ordered helpers.

Holding two locks at once is how the telemetry layer deadlocked in
development: ``Histogram.merge(a, b)`` racing ``merge(b, a)`` acquired the
same pair in opposite orders. The fix was the id-ordered idiom — order the
pair by ``id()`` before acquiring — and the project rule is that *only*
functions written in that idiom (by convention ``merge``/``absorb``/
``merge_from``, configurable) may hold more than one lock.

Statically we flag, outside those blessed functions:

* a single ``with`` statement acquiring two lock-like context managers
  (``with a._lock, b._lock:``), and
* a ``with <lock>`` nested anywhere inside the body of another
  ``with <lock>`` in the same function.

"Lock-like" is a naming heuristic: the final attribute/name component
contains ``lock``, ``mutex`` or ``sem`` — which matches this codebase's
universal ``self._lock`` convention. Cross-function nesting (method A
calling method B under A's lock) is invisible to the AST; the RLock
convention plus the runtime chaos tests cover that half.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, Finding, ModuleInfo, dotted_name

__all__ = ["LockOrderChecker", "is_lockish"]

_LOCKISH_FRAGMENTS = ("lock", "mutex", "sem")


def is_lockish(expr: ast.expr) -> bool:
    """Heuristic: does this context-manager expression look like a lock?"""
    name = dotted_name(expr)
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1].lower()
    return any(fragment in tail for fragment in _LOCKISH_FRAGMENTS)


class LockOrderChecker(Checker):
    rule = "RPR003"
    title = "nested multi-lock acquisition outside the id-ordered helpers"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        # Cheap pre-scan on the flat node list: a module with at most one
        # lock-like `with` (and no multi-item one) cannot nest acquisitions,
        # so the per-function recursion below never needs to run.
        lockish_withs = 0
        for node in module.nodes:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                count = sum(1 for item in node.items if is_lockish(item.context_expr))
                lockish_withs += count
                if count >= 2:
                    break
        else:
            if lockish_withs < 2:
                return
        blessed = set(self.config.blessed_multilock)
        for node in module.nodes:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in blessed:
                continue
            yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleInfo, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, held: int) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
                return  # nested defs are their own scope (checked separately)
            acquiring = 0
            if isinstance(node, (ast.With, ast.AsyncWith)):
                locks = [item for item in node.items if is_lockish(item.context_expr)]
                acquiring = len(locks)
                if acquiring >= 2:
                    names = ", ".join(
                        dotted_name(item.context_expr) or "?" for item in locks
                    )
                    findings.append(
                        module.finding(
                            self.rule,
                            node,
                            f"{func.name} acquires {acquiring} locks in one "
                            f"with statement ({names}); multi-lock acquisition "
                            "must use the id-ordered idiom inside a blessed "
                            f"helper ({', '.join(sorted(self.config.blessed_multilock))})",
                        )
                    )
                elif acquiring == 1 and held > 0:
                    name = dotted_name(locks[0].context_expr) or "?"
                    findings.append(
                        module.finding(
                            self.rule,
                            node,
                            f"{func.name} acquires {name} while already "
                            "holding a lock; nested acquisition risks "
                            "lock-order inversion — use the id-ordered idiom "
                            "in a blessed helper "
                            f"({', '.join(sorted(self.config.blessed_multilock))})",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, held + acquiring)

        visit(func, 0)
        yield from findings
