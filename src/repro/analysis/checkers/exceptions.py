"""RPR006 — no bare ``except`` / silently swallowed exceptions in hot loops.

A worker command loop that swallows an exception turns a crashed shard into
a hung cluster: the parent waits forever for a reply that died in a
``pass``. Elastic actions are worse — a half-applied split that swallows
its failure leaves the topology inconsistent with the router's picture of
it. Two patterns are flagged:

* **Bare ``except:``** — everywhere. It catches ``KeyboardInterrupt`` and
  ``SystemExit``, making workers unkillable; there is no scope where that
  is acceptable.
* **Swallowed broad handlers** — ``except Exception:`` (or
  ``BaseException``, alone or in a tuple) whose body does nothing but
  ``pass``/``continue``/``...``, in modules under ``config.except_scope``
  (default: everywhere linted). Catching broadly to *translate, log or
  ship* the error is fine; catching broadly to discard it is not. The one
  legitimate discard (``__del__`` during interpreter shutdown) carries an
  inline ``# repro-lint: disable=RPR006`` pragma instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, Finding, ModuleInfo

__all__ = ["ExceptionHygieneChecker"]

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler_type: ast.expr | None) -> bool:
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(element) for element in handler_type.elts)
    return False


def _is_swallow(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / `...`
        return False
    return True


class ExceptionHygieneChecker(Checker):
    rule = "RPR006"
    title = "bare except / swallowed broad exception handler"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        in_scope = module.in_scope(self.config.except_scope)
        for node in module.nodes:
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    self.rule,
                    node,
                    "bare except: catches KeyboardInterrupt/SystemExit and "
                    "makes the worker unkillable; name the exceptions "
                    "(except Exception at the broadest)",
                )
            elif in_scope and _is_broad(node.type) and _is_swallow(node.body):
                yield module.finding(
                    self.rule,
                    node,
                    "broad exception handler silently swallows the error; a "
                    "failed command or elastic action must surface "
                    "(translate, log or re-raise) or the cluster hangs on a "
                    "silent shard",
                )
