"""RPR007 — interned canonical nodes are immutable outside their store.

Hash-consing (:mod:`repro.service.substore`) only works if interned nodes
never change after construction: pointer equality *is* canonical identity,
``_hash`` is precomputed, and every holder of a node shares the one
instance. A mutation anywhere corrupts every query that interned the same
structure — silently, because the node still compares equal to itself.

The interned classes freeze themselves with a raising ``__setattr__``, so a
plain ``leaf.prob = x`` fails loudly at runtime. This rule catches the two
escapes the runtime guard cannot: ``object.__setattr__(node, ...)`` /
``setattr(node, ...)``, which bypass the guard entirely, and attribute
writes on values the code merely *annotates* as interned (caught before any
test exercises the path). Binding is inferred statically: a name is
"interned-bound" when it is assigned from an interned-class constructor or
annotated with an interned class (variable annotations and function
parameters alike).

The store module itself (``interned_store_modules``) is exempt — it is the
one place allowed to touch slots, via ``object.__setattr__`` during
``__init__``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.base import Checker, Finding, ModuleInfo, dotted_name

__all__ = ["ImmutableInternedChecker"]

_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


class ImmutableInternedChecker(Checker):
    rule = "RPR007"
    title = "interned canonical nodes mutated outside the store"

    def _terminal_matches(self, node: ast.expr | None) -> str | None:
        """The configured interned class ``node`` refers to, or ``None``.

        Matches on the terminal name (``InternedLeaf``,
        ``substore.InternedLeaf``) so the rule is import-style agnostic, and
        scans string annotations word-wise so ``"InternedTree | None"``
        counts too.
        """
        if node is None:
            return None
        classes = set(self.config.interned_classes)
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            for word in _WORD.findall(node.value):
                if word in classes:
                    return word
            return None
        if isinstance(node, ast.BinOp):  # InternedTree | None
            return self._terminal_matches(node.left) or self._terminal_matches(
                node.right
            )
        if isinstance(node, ast.Subscript):  # Optional[InternedTree]
            return self._terminal_matches(node.slice)
        name = dotted_name(node)
        if name is None:
            return None
        terminal = name.rsplit(".", 1)[-1]
        return terminal if terminal in classes else None

    def _bound_names(self, module: ModuleInfo) -> dict[str, str]:
        """name -> interned class, for every statically inferable binding."""
        bound: dict[str, str] = {}
        for node in module.nodes:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                cls = self._terminal_matches(node.value.func)
                if cls is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bound[target.id] = cls
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                cls = self._terminal_matches(node.annotation)
                if cls is not None:
                    bound[node.target.id] = cls
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (
                    *args.posonlyargs,
                    *args.args,
                    *args.kwonlyargs,
                    *filter(None, (args.vararg, args.kwarg)),
                ):
                    cls = self._terminal_matches(arg.annotation)
                    if cls is not None:
                        bound[arg.arg] = cls
        return bound

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        store_modules = self.config.interned_store_modules
        if store_modules and module.in_scope(store_modules):
            return  # the store is the one sanctioned mutation site
        bound = self._bound_names(module)
        if not bound:
            return
        for node in module.nodes:
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in bound
                    ):
                        yield module.finding(
                            self.rule,
                            node,
                            f"attribute write to {target.value.id!r} "
                            f"(interned {bound[target.value.id]}); interned "
                            "nodes are shared canonical identity — build a "
                            "new node through the store instead of mutating",
                        )
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee not in ("object.__setattr__", "setattr"):
                    continue
                if not node.args:
                    continue
                first = node.args[0]
                if isinstance(first, ast.Name) and first.id in bound:
                    yield module.finding(
                        self.rule,
                        node,
                        f"{callee} on {first.id!r} (interned "
                        f"{bound[first.id]}) bypasses the immutability "
                        "guard; only the store module may touch interned "
                        "slots",
                    )
