"""RPR004 — explicit spawn contexts, and import-clean worker dependencies.

Two statically checkable halves of the same hazard:

**(a) No fork-default multiprocessing.** ``fork`` clones the parent's
memory — including locks currently held by *other* threads, which stay
locked forever in the child (the ``pmap`` deadlock fixed in PR 7). Every
process/pool creation must go through an explicit spawn context::

    ctx = multiprocessing.get_context("spawn")
    ctx.Process(...)                      # ok
    ProcessPoolExecutor(mp_context=ctx)   # ok

Flagged: ``multiprocessing.Process/Pool/Manager(...)`` on the bare module,
``get_context()`` with no or a non-spawn argument, ``set_start_method``
with anything but ``"spawn"``, ``os.fork``, and a ``ProcessPoolExecutor``
without an ``mp_context=`` keyword.

**(b) No import-time side effects below the worker.** A spawned worker
re-imports every module the worker module depends on; module-scope code
that creates threads, locks or pools runs *once per worker process*, and
anything stateful it builds silently diverges from the parent's copy.
Module-level (or class-body) creation of threads/locks/executors in any
module transitively imported by ``config.worker_root`` is flagged.
``if __name__ == "__main__"`` and ``if TYPE_CHECKING`` blocks are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import (
    Checker,
    Finding,
    ModuleInfo,
    ProjectInfo,
    dotted_name,
)
from repro.analysis.checkers.pickle_locks import LOCK_CONSTRUCTORS

__all__ = ["SpawnSafetyChecker"]

_BARE_PROCESS_CREATORS = {
    "multiprocessing.Process",
    "multiprocessing.Pool",
    "multiprocessing.Manager",
}
_SIDE_EFFECT_CONSTRUCTORS = LOCK_CONSTRUCTORS | {
    "threading.Thread",
    "threading.Timer",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "multiprocessing.Process",
    "multiprocessing.Pool",
    "multiprocessing.Manager",
    "multiprocessing.Queue",
    "multiprocessing.Pipe",
}


def _literal_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class SpawnSafetyChecker(Checker):
    rule = "RPR004"
    title = "fork-default multiprocessing / import-time side effects"

    # -- half (a): per-module spawn discipline ---------------------------

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in module.nodes:
            if not isinstance(node, ast.Call):
                continue
            target = module.imports.resolve(node.func)
            if target is None:
                continue
            if target in _BARE_PROCESS_CREATORS:
                yield module.finding(
                    self.rule,
                    node,
                    f"{target.rsplit('.', 1)[-1]} created on the bare "
                    "multiprocessing module uses the platform default start "
                    'method; use multiprocessing.get_context("spawn") — fork '
                    "clones held locks into the child",
                )
            elif target in ("multiprocessing.get_context", "multiprocessing.context.get_context"):
                method = _literal_str(node.args[0]) if node.args else None
                if method != "spawn":
                    yield module.finding(
                        self.rule,
                        node,
                        f"get_context({method!r}) does not pin the spawn "
                        'start method; use get_context("spawn")',
                    )
            elif target == "multiprocessing.set_start_method":
                method = _literal_str(node.args[0]) if node.args else None
                if method != "spawn":
                    yield module.finding(
                        self.rule,
                        node,
                        f"set_start_method({method!r}) selects a fork-family "
                        'start method; only "spawn" is fork-safe here',
                    )
            elif target == "os.fork":
                yield module.finding(
                    self.rule,
                    node,
                    "os.fork() clones held locks into the child; use a "
                    "spawn-context multiprocessing primitive",
                )
            elif target == "concurrent.futures.ProcessPoolExecutor":
                keywords = {kw.arg for kw in node.keywords}
                if "mp_context" not in keywords:
                    yield module.finding(
                        self.rule,
                        node,
                        "ProcessPoolExecutor without mp_context= uses the "
                        "platform default start method; pass "
                        'mp_context=multiprocessing.get_context("spawn")',
                    )

    # -- half (b): import-reachability side-effect scan ------------------

    def check_project(self, project: ProjectInfo) -> Iterator[Finding]:
        root = self.config.worker_root
        reachable = project.reachable_from(root)
        for name in sorted(reachable):
            module = project.by_name[name]
            yield from self._module_side_effects(module, root)

    def _module_side_effects(
        self, module: ModuleInfo, root: str
    ) -> Iterator[Finding]:
        for stmt in self._import_time_statements(module.tree, module):
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                target = module.imports.resolve(node.func)
                if target in _SIDE_EFFECT_CONSTRUCTORS:
                    yield module.finding(
                        self.rule,
                        node,
                        f"import-time {target} in a module imported by "
                        f"{root}: every spawned worker re-runs this at "
                        "import and builds its own divergent copy; create "
                        "it lazily inside a function or method",
                    )

    def _import_time_statements(
        self, tree: ast.Module, module: ModuleInfo
    ) -> Iterator[ast.AST]:
        """AST regions that execute when the module is imported.

        Module scope plus class bodies (which run at import), skipping
        function/method bodies, ``if __name__ == "__main__"`` guards and
        ``if TYPE_CHECKING`` blocks. Compound statements contribute their
        executed expression parts (the ``if`` test, ``with`` items) and
        their inner bodies — but never statements nested inside a function
        they happen to contain.
        """

        def walk(body: list[ast.stmt]) -> Iterator[ast.AST]:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(stmt, ast.ClassDef):
                    yield from walk(stmt.body)
                    continue
                if isinstance(stmt, ast.If):
                    if self._is_exempt_guard(stmt, module):
                        continue
                    yield stmt.test
                    for body_list in self._inner_bodies(stmt):
                        yield from walk(body_list)
                    continue
                if isinstance(stmt, (ast.Try, ast.With, ast.AsyncWith)):
                    for item in getattr(stmt, "items", ()):
                        yield item.context_expr
                    for body_list in self._inner_bodies(stmt):
                        yield from walk(body_list)
                    continue
                yield stmt

        yield from walk(tree.body)

    @staticmethod
    def _inner_bodies(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
        for field_name in ("body", "orelse", "finalbody"):
            body = getattr(stmt, field_name, None)
            if body:
                yield body
        for handler in getattr(stmt, "handlers", ()):
            yield handler.body

    @staticmethod
    def _is_exempt_guard(stmt: ast.If, module: ModuleInfo) -> bool:
        test = stmt.test
        if isinstance(test, ast.Compare):
            left = dotted_name(test.left)
            if left == "__name__":
                return True
        resolved = module.imports.resolve(test) if isinstance(test, (ast.Name, ast.Attribute)) else None
        return resolved == "typing.TYPE_CHECKING" or dotted_name(test) == "TYPE_CHECKING"
