"""RPR005 — no hidden entropy or wall-clock logic in determinism hot paths.

The differential harnesses (scalar-vs-vectorized, sharded-vs-unsharded,
thread-vs-process) only prove anything because a seed pins every outcome
bit-for-bit. One call into the process-global RNG — or one branch on the
wall clock — and "parity" becomes "parity on the machine where we ran it".

In modules under ``config.determinism_scope`` we flag:

* calls through the *global* ``random`` module (``random.random()``,
  ``random.shuffle()``, even ``random.seed()`` — seeding shared global
  state is still shared global state);
* the legacy global numpy RNG (``numpy.random.rand``, ``numpy.random.seed``
  and friends);
* *unseeded* construction of the blessed RNG types —
  ``random.Random()``, ``numpy.random.default_rng()``,
  ``numpy.random.SeedSequence()`` etc. with no arguments draw OS entropy;
* wall-clock reads that can steer logic: ``time.time``/``time.time_ns``,
  ``datetime.datetime.now``/``utcnow``, ``datetime.date.today``.

Explicitly allowed: seeded RNG instances (``default_rng(seed)``,
``Random(seed)``, ``SeedSequence(seed)``) and the monotonic timers
(``time.perf_counter``/``monotonic``/``process_time``), which feed
telemetry but never outcomes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, Finding, ModuleInfo

__all__ = ["DeterminismChecker"]

# Constructors that are fine *when given an explicit seed argument*.
_SEEDABLE = {
    "random.Random",
    "random.SystemRandom",  # never acceptable, but flagged via the seeded check below
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
}
# numpy.random attributes that are types/helpers, not global-RNG draws.
_NUMPY_NON_DRAWS = {
    "numpy.random.Generator",
    "numpy.random.BitGenerator",
} | _SEEDABLE
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}
# SystemRandom is OS entropy by definition; a seed argument does not help.
_NEVER = {"random.SystemRandom"}


class DeterminismChecker(Checker):
    rule = "RPR005"
    title = "unseeded randomness / wall-clock logic in a hot path"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_scope(self.config.determinism_scope):
            return
        for node in module.nodes:
            if not isinstance(node, ast.Call):
                continue
            target = module.imports.resolve(node.func)
            if target is None:
                continue
            finding = self._classify(module, node, target)
            if finding is not None:
                yield finding

    def _classify(
        self, module: ModuleInfo, node: ast.Call, target: str
    ) -> Finding | None:
        if target in _NEVER:
            return module.finding(
                self.rule,
                node,
                f"{target} draws OS entropy and can never reproduce; use "
                "random.Random(seed) or numpy.random.default_rng(seed)",
            )
        if target in _SEEDABLE:
            if not node.args and not node.keywords:
                return module.finding(
                    self.rule,
                    node,
                    f"{target}() without a seed draws fresh OS entropy; pass "
                    "an explicit seed so runs reproduce",
                )
            return None
        if target in _WALL_CLOCK:
            return module.finding(
                self.rule,
                node,
                f"{target}() reads the wall clock in a determinism hot path; "
                "thread round-clocks/seeds through arguments, or use "
                "time.perf_counter() for telemetry-only timing",
            )
        if target.startswith("random.") and target.count(".") == 1:
            return module.finding(
                self.rule,
                node,
                f"{target}() uses the process-global RNG; hot paths must "
                "draw from an explicitly seeded random.Random or "
                "numpy Generator instance",
            )
        if target.startswith("numpy.random.") and target not in _NUMPY_NON_DRAWS:
            return module.finding(
                self.rule,
                node,
                f"{target}() uses numpy's legacy global RNG; hot paths must "
                "draw from an explicitly seeded numpy.random.default_rng "
                "Generator",
            )
        return None
