"""RPR001 — lock-bearing classes must control their pickle protocol.

The PR-7 bug class: ``PlanCache``, the stream sources and the metrics cells
all held a ``threading.Lock`` and crossed process boundaries inside
``QuerySnapshot``/telemetry payloads; default pickling walks ``__dict__``
and dies on the lock (``TypeError: cannot pickle '_thread.lock' object``)
— at *send* time, deep inside a worker pipe, long after the class was
written. The invariant: any class that stores a lock (directly or via a
field assigned in any of its methods) must say what pickling means for it
by defining ``__getstate__`` (with ``__setstate__`` to rebuild the lock) or
``__reduce__``/``__reduce_ex__``. Deliberately process-local classes
satisfy the rule with a ``__getstate__`` that raises a clear ``TypeError``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, Finding, ModuleInfo

__all__ = ["PickleLockChecker", "lock_fields", "LOCK_CONSTRUCTORS"]

# Fully-qualified constructors whose instances do not pickle. Condition and
# friends wrap a lock, so they are just as lethal to default pickling.
LOCK_CONSTRUCTORS: frozenset[str] = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Event",
        "multiprocessing.Lock",
        "multiprocessing.RLock",
    }
)

_PICKLE_HOOKS = ("__getstate__", "__reduce__", "__reduce_ex__")


def _method_defs(cls: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def lock_fields(cls: ast.ClassDef, module: ModuleInfo) -> dict[str, int]:
    """``self.<field> = <lock constructor>()`` assignments in ``cls``.

    Returns field name -> line of the first assigning statement. Only
    direct construction counts; a field assigned from a parameter could be
    anything, and flagging it would drown the rule in false positives.
    """
    fields: dict[str, int] = {}
    for method in _method_defs(cls):
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            target_path = module.imports.resolve(node.value.func)
            if target_path not in LOCK_CONSTRUCTORS:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    fields.setdefault(target.attr, node.lineno)
    return fields


def has_pickle_hook(cls: ast.ClassDef) -> bool:
    names = {method.name for method in _method_defs(cls)}
    return any(hook in names for hook in _PICKLE_HOOKS)


class PickleLockChecker(Checker):
    rule = "RPR001"
    title = "lock-bearing class without pickle state hooks"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in module.nodes:
            if not isinstance(node, ast.ClassDef):
                continue
            if has_pickle_hook(node):  # cheap check first; skips the walk
                continue
            fields = lock_fields(node, module)
            if not fields:
                continue
            names = ", ".join(sorted(fields))
            yield module.finding(
                self.rule,
                node,
                f"class {node.name} stores a lock in self.{{{names}}} but "
                "defines no __getstate__/__setstate__ (or __reduce__); "
                "default pickling will fail at send time — drop and "
                "recreate the lock, or raise TypeError explicitly for "
                "process-local classes",
            )
