"""RPR002 — ``__slots__`` + guarded ``__setattr__`` needs explicit pickle state.

The PR-7 crash: ``AndNode``/``OrNode`` declare ``__slots__`` and freeze
themselves with a raising ``__setattr__``. Default unpickling of a slotted
class restores state via ``setattr`` — which the guard rejects — so the
first ``QuerySnapshot`` carrying a query tree across a process boundary
blew up with the class's own "is immutable" error. Any class combining an
explicit ``__slots__`` with a custom ``__setattr__`` must define *both*
``__getstate__`` and ``__setstate__`` (rebuilding state through
``object.__setattr__``), or ``__reduce__``.

Frozen/slotted *dataclasses* are exempt: the decorator generates working
pickle hooks itself.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, Finding, ModuleInfo

__all__ = ["SlotsPickleChecker"]


def _class_member_names(cls: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _is_dataclass_decorated(cls: ast.ClassDef, module: ModuleInfo) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        resolved = module.imports.resolve(target)
        if resolved in ("dataclasses.dataclass",):
            return True
    return False


class SlotsPickleChecker(Checker):
    rule = "RPR002"
    title = "__slots__ class with guarded __setattr__ lacks pickle hooks"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in module.nodes:
            if not isinstance(node, ast.ClassDef):
                continue
            members = _class_member_names(node)
            if "__slots__" not in members or "__setattr__" not in members:
                continue
            if _is_dataclass_decorated(node, module):
                continue
            if "__reduce__" in members or "__reduce_ex__" in members:
                continue
            if "__getstate__" in members and "__setstate__" in members:
                continue
            yield module.finding(
                self.rule,
                node,
                f"class {node.name} declares __slots__ and a custom "
                "__setattr__ but not both __getstate__ and __setstate__; "
                "default unpickling restores slots via setattr and will hit "
                "the guard — rebuild state through object.__setattr__ in "
                "explicit pickle hooks",
            )
