"""Pull-model schedule execution.

:class:`ScheduleExecutor` runs a linear schedule against a cache, with the
paper's semantics: evaluate leaves in order, skip any leaf whose AND (or any
ancestor) is already resolved, stop when the root resolves, and charge only
for data items not already cached.

Leaf truth values come from a :class:`LeafOracle`:

* :class:`BernoulliOracle` — draw each outcome from the leaf's probability
  (pure simulation; measured mean cost converges to the analytic expected
  cost, which the test-suite verifies);
* :class:`PredicateOracle` — evaluate a real
  :class:`~repro.predicates.predicate.Predicate` on the fetched window
  values (the full data path; probabilities are emergent from the data);
* :class:`PrecomputedOracle` — replay a fixed outcome per leaf (one row of
  a drawn outcome matrix). This is the scalar reference point of the
  vectorized engine's equivalence guarantee: a
  :class:`~repro.engine.vectorized.VectorizedExecutor` batch equals N
  scalar runs, each replaying one row of the same matrix.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Union

import numpy as np

from repro.core.leaf import Leaf
from repro.core.resolution import TreeIndex
from repro.core.schedule import validate_schedule
from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.errors import StreamError
from repro.predicates.predicate import Predicate
from repro.streams.cache import CountingCache, DataItemCache
from repro.streams.drift import DriftSchedule

__all__ = [
    "ExecutionResult",
    "LeafOracle",
    "BernoulliOracle",
    "DriftingBernoulliOracle",
    "PredicateOracle",
    "PrecomputedOracle",
    "ScheduleExecutor",
]


@dataclass(frozen=True, slots=True)
class ExecutionResult:
    """Outcome of one query execution."""

    value: bool
    cost: float
    evaluated: tuple[int, ...]
    skipped: tuple[int, ...]
    outcomes: Mapping[int, bool] = field(default_factory=dict)

    @property
    def n_evaluated(self) -> int:
        return len(self.evaluated)


class LeafOracle(abc.ABC):
    """Supplies the truth value of an evaluated leaf."""

    @abc.abstractmethod
    def outcome(self, gindex: int, leaf: Leaf, values: np.ndarray | None) -> bool:
        """Truth value of leaf ``gindex``; ``values`` is its fetched window (may be None)."""


class BernoulliOracle(LeafOracle):
    """Independent draws from each leaf's success probability."""

    def __init__(self, rng: np.random.Generator | None = None, seed: int | None = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def outcome(self, gindex: int, leaf: Leaf, values: np.ndarray | None) -> bool:
        return bool(self.rng.random() < leaf.prob)


class DriftingBernoulliOracle(LeafOracle):
    """Draws from a :class:`~repro.streams.drift.DriftSchedule` instead of leaf probs.

    The ground truth of an adaptivity scenario: the leaf's *declared*
    probability (what the scheduler planned for) stays at its admission
    value, while the outcomes this oracle produces follow
    ``schedule.probs_at(round)`` — so a plan goes stale exactly the way a
    production plan would.

    The oracle draws one full row of outcomes per round (lazily, at the first
    ``outcome`` call of the round) and the per-round clock advances only via
    :meth:`advance`, which the serving layer calls after every executed
    round. Drawing whole rows makes the random-stream consumption identical
    to the vectorized engine's single ``rng.random((rounds, n_leaves))``
    draw (see :meth:`draw_matrix`), so the scalar and vectorized round loops
    see bit-identical outcomes per seed.

    Leaf outcomes are keyed by *global leaf index in one query's tree*, so a
    drifting oracle is per-query: sharing one instance between queries means
    sharing outcome rows (perfectly correlated queries).
    """

    def __init__(
        self,
        schedule: DriftSchedule,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
    ) -> None:
        self.schedule = schedule
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self._round = 0
        self._row: np.ndarray | None = None

    @property
    def round_index(self) -> int:
        """The round the next ``outcome`` call draws for."""
        return self._round

    def current_probs(self) -> np.ndarray:
        """True per-leaf success probabilities at the current round."""
        return self.schedule.probs_at(self._round)

    def outcome(self, gindex: int, leaf: Leaf, values: np.ndarray | None) -> bool:
        if gindex >= self.schedule.n_leaves:
            raise StreamError(
                f"drift schedule covers {self.schedule.n_leaves} leaves; "
                f"leaf {gindex} was probed"
            )
        if self._row is None:
            self._row = self.rng.random(self.schedule.n_leaves) < self.current_probs()
        return bool(self._row[gindex])

    def advance(self, rounds: int = 1) -> None:
        """Move the drift clock forward; the next round re-draws its outcome row.

        Rounds whose row was never drawn (no leaf probed) still consume their
        slice of the generator, keeping the random tape aligned with
        :meth:`draw_matrix` regardless of how many probes each round needed.
        """
        if rounds < 0:
            raise StreamError(f"cannot advance by {rounds} rounds")
        for _ in range(rounds):
            if self._row is None:
                self.rng.random(self.schedule.n_leaves)
            self._row = None
            self._round += 1

    def draw_matrix(self, rounds: int, n_leaves: int) -> np.ndarray:
        """Draw ``rounds`` outcome rows at once and advance past them.

        Consumes the generator exactly like ``rounds`` successive scalar
        rows, so a vectorized batch and a scalar round loop with the same
        seed replay the same ground truth.
        """
        if rounds < 1:
            raise StreamError(f"need at least one round, got {rounds}")
        if n_leaves != self.schedule.n_leaves:
            raise StreamError(
                f"drift schedule covers {self.schedule.n_leaves} leaves, "
                f"the query has {n_leaves}"
            )
        if self._row is not None:
            raise StreamError(
                "cannot batch-draw mid-round: the current round's outcomes "
                "were already partially served"
            )
        probs = self.schedule.prob_matrix(self._round, rounds)
        outcomes = self.rng.random((rounds, n_leaves)) < probs
        self._round += rounds
        self._row = None
        return outcomes


class PredicateOracle(LeafOracle):
    """Evaluate real predicates on the fetched window values."""

    def __init__(self, predicates: Mapping[int, Predicate]) -> None:
        self.predicates = dict(predicates)

    def outcome(self, gindex: int, leaf: Leaf, values: np.ndarray | None) -> bool:
        predicate = self.predicates.get(gindex)
        if predicate is None:
            raise StreamError(f"no predicate bound to leaf {gindex}")
        if values is None:
            raise StreamError(
                "PredicateOracle needs data values; use a DataItemCache, not a CountingCache"
            )
        return predicate.evaluate(values)


class PrecomputedOracle(LeafOracle):
    """Replay fixed truth values, one per global leaf index.

    ``outcomes`` may be any indexable of booleans keyed by ``gindex`` — a
    dict, a list, or one row of an ``(n_trials, n_leaves)`` outcome matrix.
    Unlike :class:`BernoulliOracle` it consumes no randomness, so the same
    row always reproduces the same execution.
    """

    def __init__(self, outcomes) -> None:
        self.outcomes = outcomes

    def outcome(self, gindex: int, leaf: Leaf, values: np.ndarray | None) -> bool:
        return bool(self.outcomes[gindex])


class ScheduleExecutor:
    """Executes linear schedules on a tree with short-circuiting and caching."""

    def __init__(
        self,
        tree: Union[QueryTree, AndTree, DnfTree],
        cache: Union[DataItemCache, CountingCache],
        oracle: LeafOracle,
    ) -> None:
        self.tree = tree
        self.cache = cache
        self.oracle = oracle
        self._index = TreeIndex(tree)
        self._leaves = self._index.tree.leaves

    def run(self, schedule) -> ExecutionResult:
        """Execute one query evaluation along ``schedule``."""
        schedule = validate_schedule(self.tree, schedule)
        state = self._index.new_state()
        cost = 0.0
        evaluated: list[int] = []
        skipped: list[int] = []
        outcomes: dict[int, bool] = {}
        for g in schedule:
            if state.root_value is not None or state.is_skipped(g):
                skipped.append(g)
                continue
            leaf = self._leaves[g]
            fetch = self.cache.fetch_window(leaf.stream, leaf.items)
            cost += fetch.cost
            outcome = self.oracle.outcome(g, leaf, fetch.values)
            outcomes[g] = outcome
            evaluated.append(g)
            state.set_leaf(g, outcome)
        value = state.root_value
        assert value is not None, "a full schedule always resolves the root"
        return ExecutionResult(
            value=value,
            cost=cost,
            evaluated=tuple(evaluated),
            skipped=tuple(skipped),
            outcomes=outcomes,
        )
