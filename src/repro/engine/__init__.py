"""Execution engine: pull-model executor, continuous sessions, battery model."""

from repro.engine.battery import Battery
from repro.engine.executor import (
    BernoulliOracle,
    ExecutionResult,
    LeafOracle,
    PredicateOracle,
    ScheduleExecutor,
)
from repro.engine.nonlinear_executor import StrategyExecutor
from repro.engine.session import ContinuousQuerySession, SessionReport
from repro.engine.workload import (
    QueryWorkload,
    WorkloadQuery,
    WorkloadReport,
    compute_max_windows,
)

__all__ = [
    "ScheduleExecutor",
    "StrategyExecutor",
    "ExecutionResult",
    "LeafOracle",
    "BernoulliOracle",
    "PredicateOracle",
    "ContinuousQuerySession",
    "SessionReport",
    "Battery",
    "QueryWorkload",
    "WorkloadQuery",
    "WorkloadReport",
    "compute_max_windows",
]
