"""Execution engine: scalar and vectorized executors, sessions, batteries.

Two interchangeable trial engines implement the same execution semantics:

* :class:`ScheduleExecutor` — the scalar pull-model reference, one leaf at
  a time (the only engine for real-data :class:`PredicateOracle` runs);
* :class:`VectorizedExecutor` — N trials at once over a compiled numpy
  program, bit-for-bit equivalent per trial (see
  :mod:`repro.engine.vectorized` for the contract).

:func:`run_battery` / :func:`estimate_schedule_cost` select between them by
name; the experiment drivers, serving layer and CLI expose the choice as
``engine="scalar" | "vectorized"``.
"""

from repro.engine.battery import (
    TRIAL_ENGINES,
    Battery,
    TrialBatteryResult,
    estimate_schedule_cost,
    run_battery,
)
from repro.engine.executor import (
    BernoulliOracle,
    DriftingBernoulliOracle,
    ExecutionResult,
    LeafOracle,
    PrecomputedOracle,
    PredicateOracle,
    ScheduleExecutor,
)
from repro.engine.nonlinear_executor import StrategyExecutor
from repro.engine.session import ContinuousQuerySession, SessionReport
from repro.engine.vectorized import BatchResult, VectorizedExecutor
from repro.engine.workload import (
    QueryWorkload,
    WorkloadQuery,
    WorkloadReport,
    compute_max_windows,
)

__all__ = [
    "ScheduleExecutor",
    "StrategyExecutor",
    "VectorizedExecutor",
    "BatchResult",
    "ExecutionResult",
    "LeafOracle",
    "BernoulliOracle",
    "DriftingBernoulliOracle",
    "PredicateOracle",
    "PrecomputedOracle",
    "ContinuousQuerySession",
    "SessionReport",
    "Battery",
    "TrialBatteryResult",
    "run_battery",
    "estimate_schedule_cost",
    "TRIAL_ENGINES",
    "QueryWorkload",
    "WorkloadQuery",
    "WorkloadReport",
    "compute_max_windows",
]
