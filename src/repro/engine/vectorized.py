"""Vectorized trial engine: N independent executions as one numpy program.

:class:`~repro.engine.executor.ScheduleExecutor` interprets a schedule one
leaf at a time; estimating an expected cost from 10k trials therefore costs
10k Python walks. :class:`VectorizedExecutor` lowers the (tree, schedule)
pair once through :func:`repro.core.compile.compile_schedule` and then
evaluates an entire ``trials x leaves`` outcome matrix with array
operations: per-trial stop points, short-circuit skips, cache-aware charged
cost and root truth values all fall out of whole-column masks.

Equivalence contract (enforced by the differential test-suite): a batch is
**bit-for-bit** equal to running the scalar executor once per trial, with a
fresh :class:`~repro.streams.cache.CountingCache` and a
:class:`~repro.engine.executor.PrecomputedOracle` replaying the same row of
the outcome matrix. When the matrix is drawn internally it consumes the
generator exactly like :func:`repro.core.montecarlo.monte_carlo_cost`
(one ``rng.random((n, L))`` draw), so ``seed`` fully determines a batch.

The engine covers Bernoulli-style trials (outcomes drawn from leaf
probabilities or supplied as a matrix). Real-data predicate evaluation
(:class:`~repro.engine.executor.PredicateOracle` over a
:class:`~repro.streams.cache.DataItemCache`) stays on the scalar path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.core.compile import CompiledSchedule, compile_schedule
from repro.core.resolution import FALSE, KIND_AND, TRUE, TreeIndex, UNRESOLVED
from repro.core.schedule import Schedule
from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.engine.executor import ExecutionResult
from repro.errors import StreamError

__all__ = ["BatchResult", "VectorizedExecutor"]


@dataclass(frozen=True)
class BatchResult:
    """Per-trial outcome of one vectorized batch.

    Row ``i`` of every array describes trial ``i``; columns of the
    ``(n_trials, n_leaves)`` matrices are indexed by *global leaf index*,
    not schedule position.
    """

    schedule: Schedule
    #: Root truth value per trial.
    values: np.ndarray
    #: Charged acquisition cost per trial.
    costs: np.ndarray
    #: ``evaluated[i, g]`` — leaf ``g`` was actually probed in trial ``i``.
    evaluated: np.ndarray
    #: The full outcome matrix the batch was evaluated over.
    outcomes: np.ndarray

    @property
    def n_trials(self) -> int:
        return int(self.costs.size)

    @property
    def n_leaves(self) -> int:
        return int(self.outcomes.shape[1])

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean())

    @property
    def std_error(self) -> float:
        if self.n_trials < 2:
            return 0.0
        return float(self.costs.std(ddof=1) / math.sqrt(self.n_trials))

    @property
    def true_rate(self) -> float:
        return float(self.values.mean())

    def n_evaluated(self) -> np.ndarray:
        """Number of probed leaves per trial."""
        return self.evaluated.sum(axis=1)

    def skipped_mask(self) -> np.ndarray:
        """Complement of :attr:`evaluated` (every leaf is one or the other)."""
        return ~self.evaluated

    def result_for(self, trial: int) -> ExecutionResult:
        """Trial ``trial`` as a scalar :class:`ExecutionResult`.

        Field-for-field identical to what the scalar executor returns for
        the same outcome row (the differential harness' comparison unit).
        """
        mask = self.evaluated[trial]
        return ExecutionResult(
            value=bool(self.values[trial]),
            cost=float(self.costs[trial]),
            evaluated=tuple(g for g in self.schedule if mask[g]),
            skipped=tuple(g for g in self.schedule if not mask[g]),
            outcomes={
                int(g): bool(self.outcomes[trial, g]) for g in self.schedule if mask[g]
            },
        )


class VectorizedExecutor:
    """Batched short-circuit execution of linear schedules.

    Compiles each distinct schedule once (cached) and evaluates batches of
    independent trials against it. Every trial starts from an empty item
    cache — the independent-trials model of the analytic evaluators — so
    batches estimate the same quantity as
    :func:`~repro.core.cost.dnf_schedule_cost`.
    """

    def __init__(
        self,
        tree: Union[QueryTree, AndTree, DnfTree],
        *,
        index: TreeIndex | None = None,
    ) -> None:
        self.tree = tree
        self._index = index if index is not None else TreeIndex(tree)
        self._programs: dict[Schedule, CompiledSchedule] = {}

    def compile(self, schedule: Sequence[int]) -> CompiledSchedule:
        """The compiled program for ``schedule`` (memoized per schedule)."""
        key = tuple(int(g) for g in schedule)
        program = self._programs.get(key)
        if program is None:
            program = compile_schedule(self.tree, key, index=self._index)
            self._programs[key] = program
        return program

    def run_batch(
        self,
        schedule: Sequence[int],
        n_trials: int | None = None,
        *,
        rng: np.random.Generator | None = None,
        seed: int | None = None,
        outcomes: np.ndarray | None = None,
    ) -> BatchResult:
        """Evaluate ``n_trials`` independent executions of ``schedule``.

        Parameters
        ----------
        outcomes:
            Optional pre-drawn ``(n_trials, n_leaves)`` boolean matrix; when
            omitted the batch draws ``rng.random((n_trials, L)) < probs``
            from ``rng`` (or a fresh generator from ``seed``).
        """
        program = self.compile(schedule)
        n_leaves = program.n_leaves
        if outcomes is None:
            if n_trials is None or n_trials < 1:
                raise StreamError(f"need n_trials >= 1, got {n_trials}")
            if rng is None:
                rng = np.random.default_rng(seed)
            outcomes = rng.random((n_trials, n_leaves)) < program.probs
        else:
            outcomes = np.asarray(outcomes, dtype=bool)
            if outcomes.ndim != 2 or outcomes.shape[1] != n_leaves:
                raise StreamError(
                    f"outcome matrix must be (n_trials, {n_leaves}), got {outcomes.shape}"
                )
            if n_trials is not None and n_trials != outcomes.shape[0]:
                raise StreamError(
                    f"n_trials={n_trials} disagrees with outcome matrix rows {outcomes.shape[0]}"
                )
            if outcomes.shape[0] < 1:
                raise StreamError("outcome matrix needs at least one trial row")
            n_trials = outcomes.shape[0]
        return self._evaluate(program, outcomes)

    def _evaluate(self, program: CompiledSchedule, outcomes: np.ndarray) -> BatchResult:
        n = outcomes.shape[0]
        # Node-major state so values[node] is one contiguous per-trial row.
        values = np.full((program.n_nodes, n), UNRESOLVED, dtype=np.int8)
        resolved_children = np.zeros((program.n_nodes, n), dtype=np.int64)
        held = np.zeros((program.n_slots, n), dtype=np.int64)
        costs = np.zeros(n, dtype=np.float64)
        evaluated = np.zeros((n, program.n_leaves), dtype=bool)

        parent = program.parent
        kinds = program.kinds
        n_children = program.n_children

        for g in program.order:
            chain = program.chains[g]
            chain = chain[chain >= 0]
            # Active = root unresolved, no ancestor resolved, leaf unprobed.
            active = ~(values[chain] != UNRESOLVED).any(axis=0)
            if not active.any():
                continue
            evaluated[:, g] = active

            # Charge for the items the trial's cache does not hold yet; the
            # accumulation order per trial matches the scalar executor's, so
            # float sums agree bit-for-bit.
            slot = program.stream_slots[g]
            want = program.items[g]
            slot_held = held[slot]
            missing = want - slot_held
            charge = active & (missing > 0)
            if charge.any():
                costs[charge] += missing[charge] * program.unit_costs[g]
                slot_held[charge] = want

            # Resolve the leaf and propagate along its ancestor chain — a
            # vectorized transcript of ResolutionState._resolve.
            col = outcomes[:, g]
            child_value = np.where(col, TRUE, FALSE).astype(np.int8)
            node = program.leaf_node_ids[g]
            values[node][active] = child_value[active]
            newly = active
            cur = node
            while True:
                p = parent[cur]
                if p < 0 or not newly.any():
                    break
                parent_row = values[p]
                unresolved = parent_row == UNRESOLVED
                counts = resolved_children[p]
                counts[newly] += 1
                full = counts == n_children[p]
                if kinds[p] == KIND_AND:
                    newly_false = newly & unresolved & (child_value == FALSE)
                    newly_true = newly & unresolved & (child_value == TRUE) & full
                else:
                    newly_true = newly & unresolved & (child_value == TRUE)
                    newly_false = newly & unresolved & (child_value == FALSE) & full
                parent_row[newly_false] = FALSE
                parent_row[newly_true] = TRUE
                newly = newly_true | newly_false
                child_value = np.where(newly_true, TRUE, FALSE).astype(np.int8)
                cur = p

        root = values[0]
        assert (root != UNRESOLVED).all(), "a full schedule always resolves the root"
        return BatchResult(
            schedule=program.schedule,
            values=root == TRUE,
            costs=costs,
            evaluated=evaluated,
            outcomes=outcomes,
        )
