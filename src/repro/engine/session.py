"""Continuous query processing sessions.

The paper's setting is *continuous*: the same boolean query is re-evaluated
round after round as sensors produce new data, and the scheduler's job is to
minimize the cumulative acquisition energy. :class:`ContinuousQuerySession`
wires the pieces together:

1. each round, device time advances and stale items are evicted (the cache
   keeps items still inside their stream's maximum window — so consecutive
   rounds also share items, an effect the one-shot analytic model ignores);
2. the configured scheduler orders the leaves (optionally re-planning every
   round from re-estimated probabilities);
3. the executor runs the schedule, charging only missing items;
4. outcomes and costs are recorded into a trace, from which leaf
   probabilities are (re-)estimated.

The session reports per-round costs, total energy, trace-based probability
estimates, and optional battery projections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.heuristics.base import Scheduler
from repro.core.schedule import Schedule, validate_schedule
from repro.core.tree import DnfTree
from repro.core.leaf import Leaf
from repro.engine.battery import Battery
from repro.engine.executor import ExecutionResult, LeafOracle, PredicateOracle, ScheduleExecutor
from repro.errors import StreamError
from repro.predicates.predicate import Predicate
from repro.streams.registry import StreamRegistry
from repro.streams.traces import TraceRecorder

__all__ = ["SessionReport", "ContinuousQuerySession"]


@dataclass(slots=True)
class SessionReport:
    """Aggregate results of a session run."""

    rounds: int
    round_costs: list[float]
    true_rate: float
    total_cost: float
    mean_cost: float
    estimated_probs: dict[int, float]
    battery: Battery | None = None

    def summary(self) -> str:
        lines = [
            f"rounds:      {self.rounds}",
            f"total cost:  {self.total_cost:.6g}",
            f"mean cost:   {self.mean_cost:.6g} per round",
            f"TRUE rate:   {self.true_rate:.3f}",
        ]
        if self.battery is not None:
            lines.append(
                f"battery:     {self.battery.fraction_remaining * 100:.1f}% remaining"
            )
        return "\n".join(lines)


class ContinuousQuerySession:
    """Repeated evaluation of one DNF query over live (simulated) streams.

    Parameters
    ----------
    tree:
        The query. Leaf probabilities are *planning estimates*; real outcomes
        come from the oracle.
    registry:
        Stream specs + sources for every stream the tree references.
    scheduler:
        Any :class:`~repro.core.heuristics.base.Scheduler`; used to (re)plan.
    predicates:
        Optional mapping of global leaf index -> :class:`Predicate`. When
        given, outcomes are computed from the data (PredicateOracle);
        otherwise an explicit ``oracle`` must be supplied.
    oracle:
        Alternative oracle (e.g. Bernoulli) when no predicates are bound.
    replan_every:
        Re-run the scheduler every k rounds with trace-updated probability
        estimates (0 = plan once with the tree's probabilities).
    battery:
        Optional battery to drain with each round's acquisition energy.
    """

    def __init__(
        self,
        tree: DnfTree,
        registry: StreamRegistry,
        scheduler: Scheduler,
        *,
        predicates: Mapping[int, Predicate] | None = None,
        oracle: LeafOracle | None = None,
        replan_every: int = 0,
        battery: Battery | None = None,
        warmup: int | None = None,
    ) -> None:
        registry.validate_tree_streams(tree.streams)
        if predicates is None and oracle is None:
            raise StreamError("need either bound predicates or an explicit oracle")
        self.tree = tree
        self.registry = registry
        self.scheduler = scheduler
        self.replan_every = replan_every
        self.battery = battery
        self.trace = TraceRecorder()
        max_window = max(leaf.items for leaf in tree.leaves)
        self._max_windows = self._per_stream_windows(tree)
        now = warmup if warmup is not None else max(64, max_window)
        self.cache = registry.build_cache(now=now)
        if predicates is not None:
            self.oracle: LeafOracle = PredicateOracle(predicates)
        elif oracle is not None:
            self.oracle = oracle
        else:  # unreachable: guarded at the top of __init__
            raise StreamError("need either bound predicates or an explicit oracle")
        self.executor = ScheduleExecutor(tree, self.cache, self.oracle)
        self._schedule: Schedule = validate_schedule(tree, scheduler.schedule(tree))
        self._round = 0

    @staticmethod
    def _per_stream_windows(tree: DnfTree) -> dict[str, int]:
        out: dict[str, int] = {}
        for leaf in tree.leaves:
            out[leaf.stream] = max(out.get(leaf.stream, 0), leaf.items)
        return out

    @property
    def current_schedule(self) -> Schedule:
        return self._schedule

    def _replan(self) -> None:
        estimates = self.trace.estimates()
        groups: list[list[Leaf]] = []
        for i, group in enumerate(self.tree.ands):
            new_group = []
            for j, leaf in enumerate(group):
                g = self.tree.gindex(i, j)
                prob = estimates.get(g, leaf.prob)
                new_group.append(leaf.with_prob(prob))
            groups.append(new_group)
        updated = DnfTree(groups, self.tree.costs)
        self._schedule = validate_schedule(updated, self.scheduler.schedule(updated))

    def step(self) -> ExecutionResult:
        """Run one round: advance time, (maybe) replan, execute, record."""
        self.cache.advance(1, max_windows=self._max_windows)
        if self.replan_every and self._round > 0 and self._round % self.replan_every == 0:
            self._replan()
        result = self.executor.run(self._schedule)
        for g, outcome in result.outcomes.items():
            self.trace.record_outcome(g, outcome)
        self.trace.end_round()
        if self.battery is not None:
            self.battery.drain(result.cost)
        self._round += 1
        return result

    def run(self, rounds: int) -> SessionReport:
        """Run ``rounds`` rounds and aggregate."""
        if rounds < 1:
            raise StreamError(f"need at least one round, got {rounds}")
        costs: list[float] = []
        true_count = 0
        for _ in range(rounds):
            result = self.step()
            costs.append(result.cost)
            if result.value:
                true_count += 1
        total = float(np.sum(costs))
        return SessionReport(
            rounds=rounds,
            round_costs=costs,
            true_rate=true_count / rounds,
            total_cost=total,
            mean_cost=total / rounds,
            estimated_probs=self.trace.estimates(),
            battery=self.battery,
        )
