"""Executing non-linear (decision-tree) strategies against live streams.

The §V extension's runtime counterpart: where
:class:`~repro.engine.executor.ScheduleExecutor` walks a fixed leaf order,
:class:`StrategyExecutor` walks a :class:`~repro.core.nonlinear.StrategyNode`
decision tree — the next leaf depends on the truth values observed so far.
Costs are charged through the same caches, so measured energy is directly
comparable between linear and non-linear execution (the test-suite checks
the measured means against `strategy_cost`).
"""

from __future__ import annotations

from typing import Union

from repro.core.nonlinear import StrategyNode, _initial_state, _apply, _resolved
from repro.core.tree import DnfTree
from repro.engine.executor import ExecutionResult, LeafOracle
from repro.errors import StreamError
from repro.streams.cache import CountingCache, DataItemCache

__all__ = ["StrategyExecutor"]


class StrategyExecutor:
    """Executes decision-tree strategies with short-circuiting and caching."""

    def __init__(
        self,
        tree: DnfTree,
        cache: Union[DataItemCache, CountingCache],
        oracle: LeafOracle,
    ) -> None:
        self.tree = tree
        self.cache = cache
        self.oracle = oracle

    def run(self, strategy: StrategyNode | None) -> ExecutionResult:
        """Execute one query evaluation following ``strategy``."""
        tree = self.tree
        state = _initial_state(tree)
        node = strategy
        cost = 0.0
        evaluated: list[int] = []
        outcomes: dict[int, bool] = {}
        while node is not None:
            resolved = _resolved(state)
            if resolved is not None:
                raise StreamError("strategy keeps evaluating after the query resolved")
            g = node.leaf
            i, _ = tree.ref(g)
            remaining = state[i]
            if remaining is None or g not in remaining:
                raise StreamError(f"strategy evaluates unavailable leaf {g}")
            leaf = tree.leaves[g]
            fetch = self.cache.fetch_window(leaf.stream, leaf.items)
            cost += fetch.cost
            outcome = self.oracle.outcome(g, leaf, fetch.values)
            outcomes[g] = outcome
            evaluated.append(g)
            state = _apply(state, i, g, outcome)
            node = node.on_true if outcome else node.on_false
        value = _resolved(state)
        if value is None:
            raise StreamError("strategy terminated before the query was resolved")
        skipped = tuple(g for g in range(tree.size) if g not in outcomes)
        return ExecutionResult(
            value=value,
            cost=cost,
            evaluated=tuple(evaluated),
            skipped=skipped,
            outcomes=outcomes,
        )
