"""A simple battery model for the paper's motivating scenario.

The paper's motivation is battery life: "continuous processing of streams
... can cause commercial smartphone batteries to be depleted in a few hours".
:class:`Battery` converts accumulated acquisition energy into remaining
charge and an estimated lifetime, so examples can report scheduler quality
in user-facing terms (hours of battery) rather than abstract cost units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import StreamError

__all__ = ["Battery"]


@dataclass(slots=True)
class Battery:
    """Energy budget with draw accounting.

    Parameters
    ----------
    capacity_joules:
        Full-charge energy. (A typical smartphone battery is ~10 Wh = 36 kJ;
        only a share of it is available to sensing.)
    """

    capacity_joules: float
    drained_joules: float = 0.0

    def __post_init__(self) -> None:
        if not self.capacity_joules > 0.0:
            raise StreamError(f"capacity must be > 0, got {self.capacity_joules}")

    def drain(self, joules: float) -> None:
        if joules < 0.0:
            raise StreamError(f"cannot drain a negative amount ({joules})")
        self.drained_joules += joules

    @property
    def remaining_joules(self) -> float:
        return max(0.0, self.capacity_joules - self.drained_joules)

    @property
    def fraction_remaining(self) -> float:
        return self.remaining_joules / self.capacity_joules

    @property
    def depleted(self) -> bool:
        return self.drained_joules >= self.capacity_joules

    def rounds_until_empty(self, joules_per_round: float) -> float:
        """Projected further rounds at the given per-round draw (inf if free)."""
        if joules_per_round <= 0.0:
            return math.inf
        return self.remaining_joules / joules_per_round
