"""Battery models: the device's energy budget, and batteries of trials.

The paper's motivation is battery life: "continuous processing of streams
... can cause commercial smartphone batteries to be depleted in a few hours".
:class:`Battery` converts accumulated acquisition energy into remaining
charge and an estimated lifetime, so examples can report scheduler quality
in user-facing terms (hours of battery) rather than abstract cost units.

The second half of the module runs *batteries of trials* — the repeated
independent executions every empirical cost estimate is averaged from:

* :func:`run_battery` evaluates ``n_trials`` executions of one schedule
  with a selectable engine: ``"vectorized"`` (the
  :class:`~repro.engine.vectorized.VectorizedExecutor` fast path, default)
  or ``"scalar"`` (one :class:`~repro.engine.executor.ScheduleExecutor`
  walk per trial). Both engines replay the *same* drawn outcome matrix, so
  for a given seed their results are identical — the vectorized engine is
  purely a speedup. ``workers`` composes with
  :func:`repro.parallel.pmap` for process-level fan-out on top of the
  in-process vectorization.
* :func:`estimate_schedule_cost` is the experiment drivers' uniform entry
  point: ``engine="analytic"`` returns the closed-form expected cost, the
  other engines return a trial-battery mean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.core.schedule import validate_schedule
from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.errors import StreamError

__all__ = [
    "Battery",
    "TrialBatteryResult",
    "run_battery",
    "estimate_schedule_cost",
    "TRIAL_ENGINES",
]


@dataclass(slots=True)
class Battery:
    """Energy budget with draw accounting.

    Parameters
    ----------
    capacity_joules:
        Full-charge energy. (A typical smartphone battery is ~10 Wh = 36 kJ;
        only a share of it is available to sensing.)
    """

    capacity_joules: float
    drained_joules: float = 0.0

    def __post_init__(self) -> None:
        if not self.capacity_joules > 0.0:
            raise StreamError(f"capacity must be > 0, got {self.capacity_joules}")

    def drain(self, joules: float) -> None:
        if joules < 0.0:
            raise StreamError(f"cannot drain a negative amount ({joules})")
        self.drained_joules += joules

    @property
    def remaining_joules(self) -> float:
        return max(0.0, self.capacity_joules - self.drained_joules)

    @property
    def fraction_remaining(self) -> float:
        return self.remaining_joules / self.capacity_joules

    @property
    def depleted(self) -> bool:
        return self.drained_joules >= self.capacity_joules

    def rounds_until_empty(self, joules_per_round: float) -> float:
        """Projected further rounds at the given per-round draw (inf if free)."""
        if joules_per_round <= 0.0:
            return math.inf
        return self.remaining_joules / joules_per_round


# ---------------------------------------------------------------------------
# Batteries of trials
# ---------------------------------------------------------------------------

_TreeLike = Union[AndTree, DnfTree, QueryTree]

#: Engines :func:`run_battery` accepts.
TRIAL_ENGINES = ("scalar", "vectorized")


@dataclass(frozen=True)
class TrialBatteryResult:
    """Aggregate of ``n_trials`` independent executions of one schedule."""

    engine: str
    n_trials: int
    costs: np.ndarray
    values: np.ndarray

    @property
    def mean_cost(self) -> float:
        return float(self.costs.mean())

    @property
    def std_error(self) -> float:
        if self.n_trials < 2:
            return 0.0
        return float(self.costs.std(ddof=1) / math.sqrt(self.n_trials))

    @property
    def true_rate(self) -> float:
        return float(self.values.mean())

    @property
    def ci95(self) -> tuple[float, float]:
        half = 1.96 * self.std_error
        return (self.mean_cost - half, self.mean_cost + half)


def _run_battery_chunk(
    args: tuple[_TreeLike, tuple[int, ...], int, np.random.SeedSequence, str]
) -> tuple[np.ndarray, np.ndarray]:
    """One worker's share of a battery (top-level for pickling)."""
    tree, schedule, n_trials, seed_seq, engine = args
    rng = np.random.default_rng(seed_seq)
    result = run_battery(tree, schedule, n_trials, engine=engine, rng=rng)
    return result.costs, result.values


def run_battery(
    tree: _TreeLike,
    schedule: Sequence[int],
    n_trials: int,
    *,
    engine: str = "vectorized",
    rng: np.random.Generator | None = None,
    seed: int | None = None,
    workers: int | None = None,
) -> TrialBatteryResult:
    """Run ``n_trials`` independent executions of ``schedule`` on ``tree``.

    Every trial starts from an empty item cache (the independent-trials
    model of the analytic evaluators), draws its leaf outcomes from the
    tree's probabilities, and pays the cache-aware short-circuited cost.
    Both engines replay the same ``rng.random((n, L))`` outcome matrix, so
    for a fixed seed the result is engine-independent; ``"vectorized"`` is
    simply much faster.

    ``workers > 1`` splits the battery into per-worker chunks (seeded
    independently via :func:`repro.parallel.spawn_seeds`) and fans out with
    :func:`repro.parallel.pmap`; results are deterministic for a fixed
    worker count. ``rng`` cannot be combined with ``workers`` — give a
    ``seed`` instead so chunks can be seeded independently.
    """
    from repro.engine.vectorized import VectorizedExecutor
    from repro.parallel import pmap, spawn_seeds

    if engine not in TRIAL_ENGINES:
        raise StreamError(f"unknown trial engine {engine!r}; expected one of {TRIAL_ENGINES}")
    if n_trials < 1:
        raise StreamError(f"need n_trials >= 1, got {n_trials}")
    schedule = validate_schedule(tree, schedule)

    if workers is not None and workers > 1 and n_trials > 1:
        if rng is not None:
            raise StreamError("run_battery(workers=...) needs a seed, not a live rng")
        chunks = min(workers, n_trials)
        per_chunk = [n_trials // chunks] * chunks
        for i in range(n_trials % chunks):
            per_chunk[i] += 1
        seeds = spawn_seeds(seed, chunks)
        parts = pmap(
            _run_battery_chunk,
            [(tree, schedule, per_chunk[i], seeds[i], engine) for i in range(chunks)],
            workers=workers,
        )
        return TrialBatteryResult(
            engine=engine,
            n_trials=n_trials,
            costs=np.concatenate([costs for costs, _ in parts]),
            values=np.concatenate([values for _, values in parts]),
        )

    if rng is None:
        rng = np.random.default_rng(seed)
    leaves = tree.leaves
    probs = np.array([leaf.prob for leaf in leaves])
    outcomes = rng.random((n_trials, len(leaves))) < probs

    if engine == "vectorized":
        batch = VectorizedExecutor(tree).run_batch(schedule, outcomes=outcomes)
        return TrialBatteryResult(
            engine=engine, n_trials=n_trials, costs=batch.costs, values=batch.values
        )

    from repro.engine.executor import PrecomputedOracle, ScheduleExecutor
    from repro.streams.cache import CountingCache

    costs = np.empty(n_trials, dtype=np.float64)
    values = np.empty(n_trials, dtype=bool)
    cache = CountingCache(tree.costs)
    oracle = PrecomputedOracle(outcomes[0])
    executor = ScheduleExecutor(tree, cache, oracle)
    for trial in range(n_trials):
        cache.clear()
        oracle.outcomes = outcomes[trial]
        result = executor.run(schedule)
        costs[trial] = result.cost
        values[trial] = result.value
    return TrialBatteryResult(engine=engine, n_trials=n_trials, costs=costs, values=values)


def estimate_schedule_cost(
    tree: _TreeLike,
    schedule: Sequence[int],
    *,
    engine: str = "analytic",
    n_trials: int = 4000,
    rng: np.random.Generator | None = None,
    seed: int | None = None,
) -> float:
    """Expected cost of ``schedule`` by the chosen engine.

    ``"analytic"`` dispatches to the closed-form evaluators
    (:func:`repro.core.cost.schedule_cost`); ``"scalar"`` and
    ``"vectorized"`` average a :func:`run_battery` of simulated trials.
    """
    if engine == "analytic":
        from repro.core.cost import schedule_cost

        return schedule_cost(tree, schedule, validate=False)
    return run_battery(
        tree, schedule, n_trials, engine=engine, rng=rng, seed=seed
    ).mean_cost
