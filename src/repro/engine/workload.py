"""Multi-query workloads sharing one device cache.

The paper's motivating device (a smartphone doing continuous sensing) rarely
runs a single query: social-networking, health and context queries execute
side by side over the *same* sensors. Items fetched for one query are then
available to the others for free — sharing happens not only across leaves of
one tree but across trees.

:class:`QueryWorkload` runs several DNF queries per round against one
:class:`~repro.streams.cache.DataItemCache`:

* each query has its own scheduler (heuristics can be mixed);
* per-round query execution order is configurable (``"round-robin"``
  rotates which query goes first, so no query systematically free-rides);
* energy is accounted per query *and* for the workload as a whole, so the
  cross-query sharing benefit is measurable: the workload's total is
  typically well below the sum of the queries run in isolation (a fact the
  test-suite asserts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.heuristics.base import Scheduler
from repro.core.schedule import Schedule, validate_schedule
from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.engine.executor import ExecutionResult, LeafOracle, ScheduleExecutor
from repro.errors import StreamError
from repro.streams.registry import StreamRegistry

__all__ = ["WorkloadQuery", "WorkloadReport", "QueryWorkload", "compute_max_windows"]


def compute_max_windows(
    trees: Sequence[AndTree | DnfTree | QueryTree],
) -> dict[str, int]:
    """Per-stream relevance horizon of a query population.

    ``max_windows[stream]`` is the largest window any leaf of any tree applies
    to the stream — the paper's "no longer relevant" eviction horizon, and the
    minimum device time a cache needs before the population can run.
    """
    windows: dict[str, int] = {}
    for tree in trees:
        for leaf in tree.leaves:
            current = windows.get(leaf.stream, 0)
            if leaf.items > current:
                windows[leaf.stream] = leaf.items
    return windows


@dataclass(frozen=True)
class WorkloadQuery:
    """One named query of a workload with its scheduler."""

    name: str
    tree: DnfTree
    scheduler: Scheduler


@dataclass
class WorkloadReport:
    """Per-query and aggregate energy of a workload run."""

    rounds: int
    per_query_cost: dict[str, float]
    per_query_true_rate: dict[str, float]
    total_cost: float

    def mean_cost(self, name: str) -> float:
        return self.per_query_cost[name] / self.rounds

    @property
    def mean_total_cost(self) -> float:
        return self.total_cost / self.rounds

    def summary(self) -> str:
        lines = [f"workload: {self.rounds} rounds, total {self.total_cost:.6g}"]
        for name, cost in self.per_query_cost.items():
            lines.append(
                f"  {name}: {cost / self.rounds:.6g}/round, "
                f"TRUE rate {self.per_query_true_rate[name]:.3f}"
            )
        return "\n".join(lines)


class QueryWorkload:
    """Several continuous DNF queries over one shared device cache."""

    def __init__(
        self,
        queries: Sequence[WorkloadQuery],
        registry: StreamRegistry,
        oracle: LeafOracle,
        *,
        order: str = "round-robin",
        warmup: int | None = None,
    ) -> None:
        if not queries:
            raise StreamError("a workload needs at least one query")
        names = [query.name for query in queries]
        if len(set(names)) != len(names):
            raise StreamError(f"duplicate query names in {names!r}")
        if order not in ("round-robin", "fixed"):
            raise StreamError(f"unknown execution order {order!r}")
        for query in queries:
            registry.validate_tree_streams(query.tree.streams)
        self.queries = list(queries)
        self.order = order
        self._max_windows = compute_max_windows([query.tree for query in queries])
        max_window = max(self._max_windows.values())
        self.cache = registry.build_cache(
            now=warmup if warmup is not None else max(64, max_window)
        )
        self.oracle = oracle
        self._schedules: dict[str, Schedule] = {
            query.name: validate_schedule(query.tree, query.scheduler.schedule(query.tree))
            for query in queries
        }
        self._executors = {
            query.name: ScheduleExecutor(query.tree, self.cache, oracle)
            for query in queries
        }
        self._round = 0

    def step(self) -> dict[str, ExecutionResult]:
        """Advance one time step and evaluate every query once."""
        self.cache.advance(1, max_windows=self._max_windows)
        ordering = list(self.queries)
        if self.order == "round-robin" and ordering:
            shift = self._round % len(ordering)
            ordering = ordering[shift:] + ordering[:shift]
        results: dict[str, ExecutionResult] = {}
        for query in ordering:
            results[query.name] = self._executors[query.name].run(
                self._schedules[query.name]
            )
        self._round += 1
        return results

    def run(self, rounds: int) -> WorkloadReport:
        if rounds < 1:
            raise StreamError(f"need at least one round, got {rounds}")
        per_query_cost = {query.name: 0.0 for query in self.queries}
        true_counts = {query.name: 0 for query in self.queries}
        for _ in range(rounds):
            for name, result in self.step().items():
                per_query_cost[name] += result.cost
                if result.value:
                    true_counts[name] += 1
        return WorkloadReport(
            rounds=rounds,
            per_query_cost=per_query_cost,
            per_query_true_rate={
                name: true_counts[name] / rounds for name in true_counts
            },
            total_cost=sum(per_query_cost.values()),
        )
