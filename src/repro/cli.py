"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``schedule``
    Parse a query (DSL text or JSON file), run one or all schedulers, print
    each schedule with its expected cost.
``evaluate``
    Expected cost (Proposition 2) of an explicit schedule, with optional
    Monte-Carlo verification (``--engine {scalar,vectorized}`` selects the
    trial engine; both give identical estimates per seed).
``optimal``
    Exhaustive optimum (budget-guarded) with search statistics.
``decide``
    The NP-complete DNF-Decision problem: is there a schedule with cost <= K?
``experiment``
    Regenerate a figure (fig4 / fig5 / fig6) at a chosen scale; prints the
    summary table and optionally writes per-instance CSV.
    ``--engine {analytic,scalar,vectorized}`` switches between the closed
    form and simulated trial batteries (``--trials`` per schedule).
``serve-sim``
    Simulate the multi-tenant serving layer on a synthetic query population:
    prints aggregate cost, plan-cache hit rate and sharing statistics, with
    an optional isolated (no sharing) baseline comparison.
    ``--engine vectorized`` runs the bulk-resolved round loop.
``drift``
    Selectivity-drift experiment: a step change in leaf selectivities
    mid-run, comparing static plans, adaptive re-planning
    (``QueryServer(adaptive=...)``) and an oracle re-plan at the exact drift
    round. Prints per-mode cost, detection lag and replan counts.
``cluster-sim``
    Sharded cluster serving on an overlap-clustered population: one
    population served unsharded, on K stream-overlap shards (concurrent) and
    on K random shards, with the partition report and throughput/cost
    comparison. ``--verify`` runs the sharded-vs-unsharded differential
    parity check first. ``--elastic`` instead serves a churn-over-time
    population on a self-managing elastic cluster (auto split/drain/
    rebalance); combined with ``--verify`` it first runs the elastic
    differential gauntlet (split/drain/resize with auto-rebalance enabled
    vs the unsharded server, bit-identical per-query costs).
``metrics``
    Replay a ``--telemetry`` JSONL file (written by ``serve-sim``, ``drift``
    or ``cluster-sim``) into a metrics report: span/event counts, counters,
    gauges and histogram percentiles — or the raw snapshot as Prometheus
    text exposition (``--format prometheus``) / JSON (``--format json``).
``trace``
    Causal trace analysis of a ``--telemetry`` JSONL file: reconstruct the
    span forest (``summary``), attribute each batch root's wall time into
    acquisition / evaluation / plan-cache / migration / elastic / telemetry
    buckets and print its critical path (``--format critical-path``), or
    export Chrome ``trace_event`` JSON for chrome://tracing / Perfetto
    (``--format chrome [--out FILE]``).
``lint``
    AST-based invariant linter (:mod:`repro.analysis`): checks the
    concurrency/determinism rules RPR001-RPR007 (lock pickling, slots
    state hooks, id-ordered multi-lock acquisition, spawn safety, seeded
    randomness, exception hygiene) over source trees. Exits 1 on findings;
    ``--format json`` emits a machine-readable report.

Examples
--------

::

    python -m repro schedule "(A[2] p=0.3 AND B[1] p=0.5) OR C[1] p=0.2"
    python -m repro schedule query.json --scheduler and-inc-c-over-p-dynamic
    python -m repro evaluate "A[2] p=0.3 AND A[3] p=0.5" --order 1,0 --monte-carlo
    python -m repro optimal "(A[1] p=0.5 AND B[2] p=0.1) OR B[1] p=0.9"
    python -m repro decide "A[5] p=0.5" --bound 4.9
    python -m repro experiment fig4 --scale 50
    python -m repro serve-sim --queries 100 --rounds 50 --compare-isolated
    python -m repro drift --rounds 360 --drift-round 120 --queries 12
    python -m repro cluster-sim --queries 300 --clusters 8 --rounds 10 --verify
    python -m repro cluster-sim --elastic --telemetry out.jsonl
    python -m repro metrics out.jsonl --format prometheus
    python -m repro trace out.jsonl --format critical-path
    python -m repro trace out.jsonl --format chrome --out trace.json
    python -m repro lint src --format json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Sequence

from repro.core.cost import dnf_schedule_cost
from repro.core.dnf_optimal import dnf_decision, optimal_depth_first
from repro.core.heuristics import (
    get_scheduler,
    make_paper_heuristics,
    paper_heuristic_names,
)
from repro.core.montecarlo import monte_carlo_cost
from repro.core.tree import AndTree, DnfTree
from repro.errors import ReproError
from repro.experiments import ascii_table, run_fig4, run_fig5, run_fig6, write_csv
from repro.lang import parse_query, tree_from_json

__all__ = ["main", "build_parser"]


def _load_tree(spec: str) -> DnfTree:
    """Load a DNF tree from a DSL string or a JSON file path."""
    path = Path(spec)
    if path.suffix == ".json" and path.exists():
        tree = tree_from_json(path.read_text())
        if isinstance(tree, DnfTree):
            return tree
        if isinstance(tree, AndTree):
            return tree.to_dnf()
        return tree.as_dnf()
    return parse_query(spec).as_dnf()


def _open_telemetry(args: argparse.Namespace):
    """Build a Telemetry when ``--telemetry PATH`` was given, else ``None``."""
    path = getattr(args, "telemetry", None)
    if path is None:
        return None
    from repro.obs import Telemetry

    return Telemetry(sink=path)


def _finish_telemetry(tel, args: argparse.Namespace) -> None:
    """Append the final metrics snapshot to the sink and close it."""
    if tel is None:
        return
    tel.write_snapshot()
    tel.close()
    print(f"telemetry written to {args.telemetry} ({tel.tracer.emitted} records)")


def _parse_order(text: str, size: int) -> tuple[int, ...]:
    try:
        order = tuple(int(part) for part in text.replace(" ", "").split(","))
    except ValueError:
        raise ReproError(f"cannot parse schedule {text!r}; expected e.g. '0,2,1'") from None
    if sorted(order) != list(range(size)):
        raise ReproError(f"schedule {order} is not a permutation of 0..{size - 1}")
    return order


def cmd_schedule(args: argparse.Namespace) -> int:
    tree = _load_tree(args.query)
    if args.scheduler == "all":
        schedulers = make_paper_heuristics(seed=args.seed)
        schedulers["optimal"] = get_scheduler("optimal")
    else:
        schedulers = {
            args.scheduler: (
                get_scheduler(args.scheduler, seed=args.seed)
                if args.scheduler == "leaf-random"
                else get_scheduler(args.scheduler)
            )
        }
    rows = []
    for name, scheduler in schedulers.items():
        schedule = scheduler.schedule(tree)
        cost = dnf_schedule_cost(tree, schedule, validate=False)
        rows.append((name, cost, ",".join(map(str, schedule))))
    rows.sort(key=lambda row: row[1])
    print(ascii_table(("scheduler", "expected cost", "schedule"), rows))
    if args.explain:
        from repro.core.explain import ScheduleExplanation, explain_schedule

        best_name = rows[0][0]
        scheduler = (
            get_scheduler(best_name, seed=args.seed)
            if best_name == "leaf-random"
            else get_scheduler(best_name)
        )
        explanation = explain_schedule(tree, scheduler.schedule(tree))
        print(f"\nbreakdown of {best_name}'s schedule:")
        print(
            ascii_table(
                ScheduleExplanation.table_headers(), explanation.to_table_rows()
            )
        )
        print(f"dominant stream: {explanation.dominant_stream()}")
        per_stream = [
            (stream, explanation.stream_items.get(stream, 0.0), cost)
            for stream, cost in sorted(explanation.stream_cost.items())
        ]
        print(ascii_table(("stream", "E[items]", "E[cost]"), per_stream))
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    tree = _load_tree(args.query)
    order = _parse_order(args.order, tree.size)
    cost = dnf_schedule_cost(tree, order)
    print(f"expected cost (Proposition 2): {cost:.6g}")
    if args.monte_carlo:
        result = monte_carlo_cost(
            tree, order, n_samples=args.samples, seed=args.seed, engine=args.engine
        )
        print(
            f"Monte-Carlo ({result.n_samples} runs, {args.engine} engine): "
            f"{result.mean:.6g} +/- {result.std_error:.2g}"
        )
    return 0


def cmd_optimal(args: argparse.Namespace) -> int:
    tree = _load_tree(args.query)
    result = optimal_depth_first(tree, node_budget=args.budget)
    print(f"optimal schedule: {','.join(map(str, result.schedule))}")
    print(f"expected cost:    {result.cost:.6g}")
    print(f"search nodes:     {result.nodes_explored}")
    return 0


def cmd_decide(args: argparse.Namespace) -> int:
    tree = _load_tree(args.query)
    answer = dnf_decision(tree, args.bound, node_budget=args.budget)
    print("YES" if answer else "NO")
    return 0 if answer else 1


def cmd_experiment(args: argparse.Namespace) -> int:
    engine_kwargs = {"engine": args.engine, "trials_per_instance": args.trials}
    if args.figure == "fig4":
        result = run_fig4(
            trees_per_config=args.scale, seed=args.seed, workers=args.workers, **engine_kwargs
        )
        rows = result.summary().rows()
        print(ascii_table(("statistic", "value"), rows))
        if args.csv:
            write_csv(
                args.csv,
                ("optimal_cost", "read_once_cost", "m", "rho"),
                zip(result.optimal_costs, result.read_once_costs, result.leaf_counts, result.rhos),
            )
    elif args.figure == "fig5":
        result = run_fig5(
            instances_per_config=args.scale, seed=args.seed, workers=args.workers, **engine_kwargs
        )
        print(ascii_table(result.summary_headers(), result.summary_rows()))
        if args.csv:
            names = list(result.heuristic_costs)
            write_csv(
                args.csv,
                ["optimal", *names],
                zip(result.optimal_costs, *(result.heuristic_costs[n] for n in names)),
            )
    elif args.figure == "fig6":
        result = run_fig6(
            instances_per_config=args.scale, seed=args.seed, workers=args.workers, **engine_kwargs
        )
        print(ascii_table(result.summary_headers(), result.summary_rows()))
        if args.csv:
            names = list(result.heuristic_costs)
            write_csv(args.csv, names, zip(*(result.heuristic_costs[n] for n in names)))
    else:  # pragma: no cover - argparse choices guard this
        raise ReproError(f"unknown figure {args.figure!r}")
    if args.csv:
        print(f"per-instance data written to {args.csv}")
    return 0


def cmd_serve_sim(args: argparse.Namespace) -> int:
    from repro.engine import BernoulliOracle
    from repro.service import (
        QueryServer,
        run_isolated,
        synthetic_population,
        synthetic_registry,
    )

    registry = synthetic_registry(args.streams, seed=args.seed)
    population = synthetic_population(
        args.queries,
        registry,
        n_templates=args.templates,
        seed=args.seed + 1,
    )
    telemetry = _open_telemetry(args)
    server = QueryServer(
        registry,
        BernoulliOracle(seed=args.seed),
        scheduler=args.scheduler,
        plan_cache=0 if args.no_plan_cache else args.plan_cache_capacity,
        shared_plan=not args.no_shared_plan,
        telemetry=telemetry,
    )
    for name, tree in population:
        server.register(name, tree)
    report = server.run_batch(args.rounds, engine=args.engine)
    print(
        f"served {args.queries} queries ({len({q.canonical.key for q in map(server.query, server.registered)})}"
        f" distinct shapes) for {args.rounds} rounds on {args.streams} streams"
    )
    rows = [
        ("total cost", f"{report.total_cost:.6g}"),
        ("cost/round", f"{report.mean_round_cost:.6g}"),
        ("p50 round cost", f"{server.metrics.p50_round_cost:.6g}"),
        ("p95 round cost", f"{server.metrics.p95_round_cost:.6g}"),
        ("probes", str(report.probes)),
        ("free probes (shared)", f"{report.free_probes} ({server.metrics.free_probe_rate:.1%})"),
        ("items fetched / saved", f"{report.items_fetched} / {report.items_saved}"),
        ("plan-cache hit rate", f"{report.plan_cache_hit_rate:.1%}"),
    ]
    if args.compare_isolated:
        isolated = run_isolated(
            registry, population, args.rounds, scheduler=args.scheduler
        )
        isolated_sum = sum(isolated.values())
        rows.append(("isolated-sum cost", f"{isolated_sum:.6g}"))
        if isolated_sum > 0:
            rows.append(("sharing speedup", f"{isolated_sum / max(report.total_cost, 1e-12):.2f}x"))
    print(ascii_table(("metric", "value"), rows))
    _finish_telemetry(telemetry, args)
    return 0


def cmd_drift(args: argparse.Namespace) -> int:
    from repro.adaptive import AdaptivePolicy
    from repro.experiments.drift import run_drift

    policy = AdaptivePolicy(
        window=args.window,
        threshold=args.threshold,
        min_samples=args.min_samples,
        cooldown=args.cooldown,
    )
    telemetry = _open_telemetry(args)
    report = run_drift(
        n_queries=args.queries,
        cluster_size=args.cluster_size,
        rounds=args.rounds,
        drift_round=args.drift_round,
        seed=args.seed,
        engine=args.engine,
        scheduler=args.scheduler,
        policy=policy,
        telemetry=telemetry,
    )
    print(report.describe())
    print(ascii_table(report.summary_headers(), report.summary_rows()))
    lag = report.detection_lag
    print(
        f"post-drift cost vs oracle replan: adaptive {report.adaptive_vs_oracle:.3f}x,"
        f" static {report.static_vs_oracle:.3f}x"
        f" (detection lag {lag if lag is not None else 'n/a'} rounds)"
    )
    _finish_telemetry(telemetry, args)
    return 0


def cmd_cluster_sim(args: argparse.Namespace) -> int:
    from repro.experiments.cluster import run_cluster_compare, verify_cluster_parity

    if args.elastic:
        return _cmd_cluster_sim_elastic(args)
    if args.verify:
        deltas = verify_cluster_parity(
            n_queries=min(args.queries, 80),
            n_clusters=args.clusters,
            streams_per_cluster=args.streams_per_cluster,
            rounds=min(args.rounds, 10),
            engine=args.engine,
            executor=args.executor,
            seed=args.seed,
        )
        print(
            f"parity: {len(deltas)} queries identical between sharded and "
            f"unsharded serving (max cost delta {max(deltas.values()):.3g})"
        )
    telemetry = _open_telemetry(args)
    report = run_cluster_compare(
        n_queries=args.queries,
        n_clusters=args.clusters,
        n_shards=args.shards,
        streams_per_cluster=args.streams_per_cluster,
        rounds=args.rounds,
        cross_cluster_prob=args.cross_overlap,
        workers=args.workers,
        executor=args.executor,
        scheduler=args.scheduler,
        engine=args.engine,
        seed=args.seed,
        telemetry=telemetry,
    )
    sharded = report.result("overlap-sharded")
    print(
        f"served {report.n_queries} queries ({report.n_clusters} stream clusters, "
        f"cross-overlap {report.cross_cluster_prob:.0%}) for {report.rounds} rounds"
    )
    print(ascii_table(report.summary_headers(), report.summary_rows()))
    print(
        f"overlap-sharded vs single-shard: {report.speedup('overlap-sharded'):.2f}x "
        f"throughput on {sharded.n_shards} shards ({sharded.workers} workers); "
        f"random partition: {report.speedup('random-sharded'):.2f}x"
    )
    _finish_telemetry(telemetry, args)
    return 0


def _cmd_cluster_sim_elastic(args: argparse.Namespace) -> int:
    from repro.adaptive import ElasticPolicy
    from repro.experiments.cluster import run_elastic_sim, verify_elastic_parity

    target = max(8, args.queries // max(1, args.clusters))
    policy = ElasticPolicy(
        target_shard_queries=target,
        min_split_size=max(4, target // 2),
        churn_every=max(1, args.queries // 2),
    )
    if args.verify:
        deltas = verify_elastic_parity(
            n_queries=min(args.queries, 60),
            n_clusters=args.clusters,
            streams_per_cluster=args.streams_per_cluster,
            rounds=min(args.rounds, 6),
            engine=args.engine,
            executor=args.executor,
            seed=args.seed,
            elastic=policy,
        )
        print(
            f"elastic parity: {len(deltas)} queries bit-identical to the "
            f"unsharded server across the split/drain/resize gauntlet "
            f"with auto-rebalance enabled (max cost delta "
            f"{max(deltas.values()):.3g})"
        )
    telemetry = _open_telemetry(args)
    report = run_elastic_sim(
        n_queries=args.queries,
        n_clusters=args.clusters,
        streams_per_cluster=args.streams_per_cluster,
        batches=args.batches,
        rounds_per_batch=args.rounds,
        policy=policy,
        start_shards=args.shards if args.shards is not None else 2,
        workers=args.workers,
        executor=args.executor,
        scheduler=args.scheduler,
        engine=args.engine,
        seed=args.seed,
        telemetry=telemetry,
    )
    print(
        f"elastic serving: {report.batches} batches x {report.rounds_per_batch} "
        f"rounds under churn (peak width {report.peak_width})"
    )
    print(ascii_table(report.summary_headers(), report.summary_rows()))
    print(
        f"total cost {report.total_cost:.6g}, {report.throughput:,.0f} evals/s, "
        f"{report.splits} splits / {report.drains} drains / "
        f"{report.rebalances} rebalances"
    )
    if report.final_partition is not None:
        print(report.final_partition.describe())
    _finish_telemetry(telemetry, args)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import latest_snapshot, read_jsonl, render_prometheus

    try:
        records = read_jsonl(args.path)
    except OSError as exc:
        raise ReproError(f"cannot read telemetry file: {exc}") from None
    except ValueError as exc:
        raise ReproError(f"not a JSONL telemetry file: {exc}") from None
    snapshot = latest_snapshot(records)
    if snapshot is None:
        raise ReproError(
            f"{args.path} holds no metrics snapshot; re-run the producing "
            "command with --telemetry (snapshots are appended at exit)"
        )
    if args.format == "json":
        print(json.dumps(snapshot["metrics"], indent=2, sort_keys=True))
        return 0
    if args.format == "prometheus":
        sys.stdout.write(render_prometheus(snapshot))
        return 0
    # summary: traced activity, then the registry's cells.
    spans: dict[str, int] = {}
    events: dict[str, int] = {}
    for record in records:
        if record.get("type") == "span":
            spans[record["name"]] = spans.get(record["name"], 0) + 1
        elif record.get("type") == "event":
            events[record["name"]] = events.get(record["name"], 0) + 1
    print(f"{args.path}: {len(records)} records")
    if spans:
        print("  spans:  " + ", ".join(f"{k} x{v}" for k, v in sorted(spans.items())))
    if events:
        print("  events: " + ", ".join(f"{k} x{v}" for k, v in sorted(events.items())))
    metrics = snapshot["metrics"]
    rows = []
    for cell in metrics["counters"]:
        labels = ",".join(f"{k}={v}" for k, v in sorted(cell["labels"].items()))
        rows.append((f"{cell['name']}{{{labels}}}" if labels else cell["name"], f"{cell['value']:.6g}"))
    for cell in metrics["gauges"]:
        labels = ",".join(f"{k}={v}" for k, v in sorted(cell["labels"].items()))
        rows.append((f"{cell['name']}{{{labels}}}" if labels else cell["name"], f"{cell['value']:.6g}"))
    if rows:
        print(ascii_table(("metric", "value"), rows))
    hist_rows = []
    for cell in metrics["histograms"]:
        labels = ",".join(f"{k}={v}" for k, v in sorted(cell["labels"].items()))
        name = f"{cell['name']}{{{labels}}}" if labels else cell["name"]
        hist_rows.append(
            (
                name,
                str(cell["count"]),
                f"{cell['mean']:.6g}",
                f"{cell['p50']:.6g}",
                f"{cell['p95']:.6g}",
                f"{cell['p99']:.6g}",
                f"{cell['max']:.6g}",
            )
        )
    if hist_rows:
        print(ascii_table(("histogram", "count", "mean", "p50", "p95", "p99", "max"), hist_rows))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        attribute,
        build_forest,
        critical_path,
        read_jsonl,
        to_chrome_trace,
    )
    from repro.obs.analyze import ATTRIBUTION_BUCKETS

    try:
        records = read_jsonl(args.path)
    except OSError as exc:
        raise ReproError(f"cannot read telemetry file: {exc}") from None
    except ValueError as exc:
        raise ReproError(f"not a JSONL telemetry file: {exc}") from None
    if args.format == "chrome":
        payload = json.dumps(to_chrome_trace(records), indent=2, sort_keys=True)
        if args.out is not None:
            args.out.write_text(payload + "\n")
            print(
                f"chrome trace written to {args.out} "
                "(load in chrome://tracing or https://ui.perfetto.dev)"
            )
        else:
            print(payload)
        return 0
    forest = build_forest(records)
    if not forest.roots:
        raise ReproError(
            f"{args.path} holds no spans; re-run the producing command "
            "with --telemetry"
        )
    if args.format == "critical-path":
        batches = forest.batch_roots()
        if not batches:
            raise ReproError(
                "no batch-like root spans (cluster-batch / shard-batch / "
                "batch) in the trace"
            )
        for root in batches:
            att = attribute(root)
            print(f"{root.name} (pid {root.pid}, wall {root.dur * 1e3:.4g} ms)")
            rows = []
            for bucket in ATTRIBUTION_BUCKETS:
                seconds = att.residue if bucket == "residue" else att.buckets[bucket]
                share = seconds / att.wall_seconds if att.wall_seconds > 0 else 0.0
                rows.append((bucket, f"{seconds * 1e3:.4g}", f"{share:.1%}"))
            print(ascii_table(("bucket", "ms", "share of wall"), rows))
            print(f"  coverage (busy/wall): {att.coverage:.1%}")
            chain = " -> ".join(
                f"{node.name}[pid {node.pid}, {node.dur * 1e3:.4g} ms]"
                for node in critical_path(root)
            )
            print(f"  critical path: {chain}")
        return 0
    # summary: forest shape, then per-name span statistics.
    pids = sorted({node.pid for root in forest.roots for node in root.walk()})
    print(
        f"{args.path}: {forest.n_records} records, "
        f"{len(forest.trace_ids)} traces, {len(forest.roots)} roots, "
        f"{len(forest.orphans)} orphans, pids {','.join(map(str, pids))}"
    )
    stats: dict[str, list[float]] = {}
    n_events: dict[str, int] = {}
    for root in forest.roots:
        for node in root.walk():
            stats.setdefault(node.name, []).append(node.dur)
            for event in node.events:
                name = str(event.get("name", "event"))
                n_events[name] = n_events.get(name, 0) + 1
    rows = [
        (
            name,
            str(len(durs)),
            f"{sum(durs) * 1e3:.4g}",
            f"{sum(durs) / len(durs) * 1e3:.4g}",
            f"{max(durs) * 1e3:.4g}",
        )
        for name, durs in sorted(stats.items())
    ]
    print(ascii_table(("span", "count", "total ms", "mean ms", "max ms"), rows))
    if n_events:
        print(
            "  events: "
            + ", ".join(f"{k} x{v}" for k, v in sorted(n_events.items()))
        )
    if forest.orphans:
        names = sorted({str(r.get("name", "?")) for r in forest.orphans})
        print(
            f"  warning: {len(forest.orphans)} orphaned records "
            f"(parent_id missing from file): {', '.join(names)}"
        )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        LintConfig,
        lint_paths,
        load_pyproject_config,
        rule_listing,
    )

    if args.list_rules:
        print(rule_listing())
        return 0
    config = LintConfig(
        select=tuple(args.select.split(",")) if args.select else (),
        ignore=tuple(args.ignore.split(",")) if args.ignore else (),
    )
    if not args.no_config:
        config = load_pyproject_config(args.paths[0] if args.paths else None, config)
    result = lint_paths(args.paths or ["src"], config)
    if args.format == "json":
        print(result.render_json())
    else:
        print(result.render_text())
    return result.exit_code()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cost-optimal execution of boolean query trees with shared streams "
        "(Casanova et al., IPDPS 2014).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    names = ", ".join(["all", *paper_heuristic_names(), "optimal"])
    p_schedule = sub.add_parser("schedule", help="order a query's leaves")
    p_schedule.add_argument("query", help="DSL text or path to a tree .json")
    p_schedule.add_argument(
        "--scheduler", default="all", help=f"one of: {names} (default: all)"
    )
    p_schedule.add_argument("--seed", type=int, default=0)
    p_schedule.add_argument(
        "--explain",
        action="store_true",
        help="print the best schedule's per-leaf cost breakdown",
    )
    p_schedule.set_defaults(func=cmd_schedule)

    p_eval = sub.add_parser("evaluate", help="expected cost of an explicit schedule")
    p_eval.add_argument("query")
    p_eval.add_argument("--order", required=True, help="comma-separated leaf indices")
    p_eval.add_argument("--monte-carlo", action="store_true")
    p_eval.add_argument("--samples", type=int, default=20_000)
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.add_argument(
        "--engine",
        choices=("scalar", "vectorized"),
        default="vectorized",
        help="Monte-Carlo trial engine (both give identical results per seed)",
    )
    p_eval.set_defaults(func=cmd_evaluate)

    p_opt = sub.add_parser("optimal", help="exhaustive optimum (exponential)")
    p_opt.add_argument("query")
    p_opt.add_argument("--budget", type=int, default=5_000_000)
    p_opt.set_defaults(func=cmd_optimal)

    p_dec = sub.add_parser("decide", help="DNF-Decision: schedule with cost <= bound?")
    p_dec.add_argument("query")
    p_dec.add_argument("--bound", type=float, required=True)
    p_dec.add_argument("--budget", type=int, default=5_000_000)
    p_dec.set_defaults(func=cmd_decide)

    p_exp = sub.add_parser("experiment", help="regenerate a figure")
    p_exp.add_argument("figure", choices=("fig4", "fig5", "fig6"))
    p_exp.add_argument("--scale", type=int, default=20, help="instances per grid cell")
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument("--workers", type=int, default=None)
    p_exp.add_argument("--csv", type=Path, default=None, help="write per-instance CSV")
    p_exp.add_argument(
        "--engine",
        choices=("analytic", "scalar", "vectorized"),
        default="analytic",
        help="cost evaluator: closed form, or a simulated trial battery per schedule",
    )
    p_exp.add_argument(
        "--trials",
        type=int,
        default=2000,
        help="trials per schedule when --engine is scalar/vectorized",
    )
    p_exp.set_defaults(func=cmd_experiment)

    p_serve = sub.add_parser(
        "serve-sim", help="simulate the multi-tenant serving layer"
    )
    p_serve.add_argument("--queries", type=int, default=100, help="population size")
    p_serve.add_argument("--rounds", type=int, default=50, help="batched rounds to run")
    p_serve.add_argument("--streams", type=int, default=8, help="shared streams")
    p_serve.add_argument(
        "--templates",
        type=int,
        default=None,
        help="distinct query shapes (default: queries // 10)",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--scheduler", default="and-inc-c-over-p-dynamic", help="admission scheduler"
    )
    p_serve.add_argument("--plan-cache-capacity", type=int, default=256)
    p_serve.add_argument(
        "--no-plan-cache", action="store_true", help="schedule every admission from scratch"
    )
    p_serve.add_argument(
        "--no-shared-plan",
        action="store_true",
        help="run queries back-to-back instead of the merged global probe order",
    )
    p_serve.add_argument(
        "--compare-isolated",
        action="store_true",
        help="also run every query on a private cache and report the cost ratio",
    )
    p_serve.add_argument(
        "--engine",
        choices=("scalar", "vectorized"),
        default="scalar",
        help="round loop: per-probe scalar walk, or bulk-resolved vectorized batches",
    )
    p_serve.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSONL trace (spans, events, final metrics snapshot) to PATH",
    )
    p_serve.set_defaults(func=cmd_serve_sim)

    p_drift = sub.add_parser(
        "drift", help="static vs adaptive vs oracle replan under selectivity drift"
    )
    p_drift.add_argument("--queries", type=int, default=12, help="population size")
    p_drift.add_argument(
        "--cluster-size",
        type=int,
        default=4,
        help="isomorphic queries sharing one stream pair (and one canonical plan)",
    )
    p_drift.add_argument("--rounds", type=int, default=360, help="total rounds")
    p_drift.add_argument(
        "--drift-round", type=int, default=120, help="round of the selectivity step"
    )
    p_drift.add_argument("--seed", type=int, default=0)
    p_drift.add_argument(
        "--scheduler", default="and-inc-c-over-p-dynamic", help="admission scheduler"
    )
    p_drift.add_argument(
        "--engine", choices=("scalar", "vectorized"), default="vectorized"
    )
    p_drift.add_argument(
        "--window", type=int, default=64, help="posterior sliding-window size"
    )
    p_drift.add_argument(
        "--threshold", type=float, default=0.25, help="drift divergence threshold"
    )
    p_drift.add_argument(
        "--min-samples", type=int, default=24, help="evidence needed to declare drift"
    )
    p_drift.add_argument(
        "--cooldown", type=int, default=16, help="min rounds between replans per shape"
    )
    p_drift.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the adaptive mode's JSONL trace (replan events included) to PATH",
    )
    p_drift.set_defaults(func=cmd_drift)

    p_cluster = sub.add_parser(
        "cluster-sim",
        help="sharded cluster serving: overlap partition vs random vs unsharded",
    )
    p_cluster.add_argument("--queries", type=int, default=300, help="population size")
    p_cluster.add_argument(
        "--clusters", type=int, default=8, help="stream interest groups in the population"
    )
    p_cluster.add_argument(
        "--shards", type=int, default=None, help="cluster width (default: --clusters)"
    )
    p_cluster.add_argument(
        "--streams-per-cluster", type=int, default=4, help="streams per interest group"
    )
    p_cluster.add_argument("--rounds", type=int, default=10, help="batched rounds")
    p_cluster.add_argument(
        "--cross-overlap",
        type=float,
        default=0.0,
        help="per-leaf probability of rewiring to a foreign cluster's stream",
    )
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument(
        "--workers", type=int, default=None, help="shard thread pool width"
    )
    p_cluster.add_argument(
        "--scheduler", default="and-inc-c-over-p-dynamic", help="admission scheduler"
    )
    p_cluster.add_argument(
        "--engine", choices=("scalar", "vectorized"), default="scalar"
    )
    p_cluster.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="shard execution mode: threads in-process (default) or one "
        "spawned worker process per shard (GIL-free CPU scaling)",
    )
    p_cluster.add_argument(
        "--verify",
        action="store_true",
        help="first run the sharded-vs-unsharded differential parity check",
    )
    p_cluster.add_argument(
        "--elastic",
        action="store_true",
        help="serve a churn-over-time population on a self-managing elastic "
        "cluster (auto split/drain/rebalance) instead of the static comparison",
    )
    p_cluster.add_argument(
        "--batches",
        type=int,
        default=12,
        help="churn batches for --elastic (each runs --rounds rounds)",
    )
    p_cluster.add_argument(
        "--telemetry",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a JSONL trace (batch/shard spans, elastic-action events, "
        "final metrics snapshot) to PATH",
    )
    p_cluster.set_defaults(func=cmd_cluster_sim)

    p_metrics = sub.add_parser(
        "metrics", help="replay a --telemetry JSONL file into a metrics report"
    )
    p_metrics.add_argument("path", type=Path, help="JSONL file written by --telemetry")
    p_metrics.add_argument(
        "--format",
        choices=("summary", "prometheus", "json"),
        default="summary",
        help="summary table (default), Prometheus text exposition, or raw JSON",
    )
    p_metrics.set_defaults(func=cmd_metrics)

    p_trace = sub.add_parser(
        "trace", help="causal trace analysis of a --telemetry JSONL file"
    )
    p_trace.add_argument("path", type=Path, help="JSONL file written by --telemetry")
    p_trace.add_argument(
        "--format",
        choices=("summary", "critical-path", "chrome"),
        default="summary",
        help="span forest summary (default), per-batch latency attribution "
        "with the critical path, or Chrome trace_event JSON for Perfetto",
    )
    p_trace.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="with --format chrome: write the JSON here instead of stdout",
    )
    p_trace.set_defaults(func=cmd_trace)

    p_lint = sub.add_parser(
        "lint", help="AST-based invariant linter (rules RPR001-RPR007)"
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="finding report format (default: text)",
    )
    p_lint.add_argument(
        "--select",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    p_lint.add_argument(
        "--ignore",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    p_lint.add_argument(
        "--no-config",
        action="store_true",
        help="skip [tool.repro-lint] discovery in pyproject.toml",
    )
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed early (e.g. `repro metrics ... | head`): not an
        # error. Detach stdout so interpreter shutdown doesn't re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141  # 128 + SIGPIPE, the shell convention


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
