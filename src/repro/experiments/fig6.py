"""Figure 6: heuristics on "large" DNF trees, relative to the best heuristic.

Paper setup (§IV-D): 32,400 large instances (N = 2..10 ANDs, m in
{5, 10, 15, 20} leaves per AND, all sharing ratios, 100 per cell). Optima
are intractable here, so every heuristic is scored by its cost ratio to the
**AND-ordered increasing C/p dynamic** heuristic (the best on small
instances). Paper finding: that reference is the best heuristic on 94.5% of
the large instances, and the small-instance ranking carries over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.heuristics.base import make_paper_heuristics
from repro.experiments.profiles import PerformanceProfile, best_fractions, performance_profile
from repro.generators.configs import DnfConfig, fig6_configs
from repro.generators.random_trees import sample_dnf_tree
from repro.parallel import pmap, spawn_seeds

__all__ = ["Fig6Result", "run_fig6", "default_large_configs", "REFERENCE_HEURISTIC"]

#: The reference everything is normalized to (best heuristic of Figure 5).
REFERENCE_HEURISTIC = "and-inc-c-over-p-dynamic"


def default_large_configs() -> list[DnfConfig]:
    """A laptop-scale trim of the paper's large grid (same generators)."""
    return list(
        fig6_configs(
            n_ands=(2, 4, 6, 8, 10),
            leaves_per_and=(5, 10),
            rhos=(1.0, 1.5, 2.0, 3.0, 5.0, 10.0),
        )
    )


@dataclass(frozen=True)
class Fig6Result:
    """Costs per heuristic (including the reference), per instance."""

    heuristic_costs: Mapping[str, np.ndarray]

    @property
    def n_instances(self) -> int:
        return int(next(iter(self.heuristic_costs.values())).size)

    def ratios(self, name: str) -> np.ndarray:
        """Cost ratio of ``name`` to the reference heuristic (1.0 on 0/0)."""
        reference = self.heuristic_costs[REFERENCE_HEURISTIC]
        costs = self.heuristic_costs[name]
        out = np.ones_like(costs)
        positive = reference > 0
        out[positive] = costs[positive] / reference[positive]
        return out

    def profiles(self) -> dict[str, PerformanceProfile]:
        return {
            name: performance_profile(name, self.ratios(name))
            for name in self.heuristic_costs
            if name != REFERENCE_HEURISTIC
        }

    def best_fractions(self) -> dict[str, float]:
        """Fraction of instances where each heuristic is (tied-)best overall."""
        return best_fractions(self.heuristic_costs)

    def summary_rows(self) -> list[tuple[object, ...]]:
        profiles = self.profiles()
        wins = self.best_fractions()
        rows = [
            (
                REFERENCE_HEURISTIC + " (ref)",
                100.0,
                100.0,
                100.0,
                1.0,
                wins[REFERENCE_HEURISTIC] * 100.0,
            )
        ]
        for name, profile in profiles.items():
            rows.append(
                (
                    name,
                    profile.fraction_within(1.0 + 1e-9) * 100.0,
                    profile.fraction_within(1.1) * 100.0,
                    profile.fraction_within(2.0) * 100.0,
                    profile.max_ratio,
                    wins[name] * 100.0,
                )
            )
        rows[1:] = sorted(rows[1:], key=lambda row: (-row[2], row[4]))
        return rows

    @staticmethod
    def summary_headers() -> tuple[str, ...]:
        return ("heuristic", "%<=1.0", "%<=1.1", "%<=2.0", "max ratio", "%best")


def _run_cell(
    args: tuple[DnfConfig, int, np.random.SeedSequence, str, int]
) -> dict[str, list[float]]:
    """One grid cell (top-level for pickling)."""
    config, n_instances, seed_seq, engine, trials = args
    rng = np.random.default_rng(seed_seq)
    trial_rng = None if engine == "analytic" else np.random.default_rng(seed_seq.spawn(1)[0])
    if engine != "analytic":
        # Lazy import (engine builds on core/experiments' level, not the reverse).
        from repro.engine.battery import estimate_schedule_cost
    heuristics = make_paper_heuristics(seed=int(rng.integers(0, 2**31)))
    per_heuristic: dict[str, list[float]] = {name: [] for name in heuristics}
    for _ in range(n_instances):
        tree = sample_dnf_tree(rng, config)
        for name, heuristic in heuristics.items():
            if engine == "analytic":
                per_heuristic[name].append(heuristic.cost(tree))
            else:
                per_heuristic[name].append(
                    estimate_schedule_cost(
                        tree,
                        heuristic.schedule(tree),
                        engine=engine,
                        n_trials=trials,
                        rng=trial_rng,
                    )
                )
    return per_heuristic


def run_fig6(
    *,
    instances_per_config: int = 10,
    configs: Sequence[DnfConfig] | None = None,
    seed: int | None = 0,
    workers: int | None = None,
    engine: str = "analytic",
    trials_per_instance: int = 2000,
) -> Fig6Result:
    """Run the Figure 6 sweep (paper scale: 100 per cell on the full grid).

    ``engine="vectorized"`` / ``"scalar"`` replaces the Proposition-2
    closed form with a ``trials_per_instance``-trial simulated battery per
    heuristic schedule (composing with ``workers`` for process fan-out).
    """
    if configs is None:
        configs = default_large_configs()
    seeds = spawn_seeds(seed, len(configs))
    cells = pmap(
        _run_cell,
        [
            (config, instances_per_config, seeds[i], engine, trials_per_instance)
            for i, config in enumerate(configs)
        ],
        workers=workers,
    )
    merged: dict[str, list[float]] = {}
    for per_heuristic in cells:
        for name, costs in per_heuristic.items():
            merged.setdefault(name, []).extend(costs)
    return Fig6Result(
        heuristic_costs={name: np.asarray(costs) for name, costs in merged.items()}
    )
