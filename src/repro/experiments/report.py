"""Plain-text reporting: tables, ASCII profile plots, CSV output.

The offline environment has no plotting stack, so the figure benchmarks
render their results as aligned text tables and ASCII curve plots — enough
to read off the *shape* the paper reports (who wins, by what factor, where
curves cross).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.experiments.profiles import PerformanceProfile

__all__ = ["ascii_table", "ascii_profile_plot", "ascii_cost_scatter", "write_csv"]


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned monospace table."""
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    sep = "  ".join("-" * widths[i] for i in range(len(headers)))
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rendered
    ]
    return "\n".join([line, sep, *body])


def ascii_profile_plot(
    profiles: Mapping[str, PerformanceProfile],
    *,
    width: int = 72,
    height: int = 18,
    max_ratio: float = 10.0,
) -> str:
    """Ratio-vs-fraction curves as an ASCII grid (mirrors Figures 5/6).

    The x axis is the percentage of instances, the y axis the ratio (clamped
    at ``max_ratio`` like the paper's plots). Each heuristic gets a letter;
    later heuristics overwrite earlier ones where curves overlap.
    """
    grid = [[" "] * width for _ in range(height)]
    letters = "abcdefghijklmnopqrstuvwxyz"
    legend: list[str] = []
    for idx, (name, profile) in enumerate(profiles.items()):
        symbol = letters[idx % len(letters)]
        legend.append(f"  {symbol} = {name}")
        for col in range(width):
            fraction = (col + 1) / width
            ratio = min(profile.ratio_at_fraction(fraction), max_ratio)
            # ratio 1 -> bottom row, max_ratio -> top row
            rel = (ratio - 1.0) / max(max_ratio - 1.0, 1e-9)
            row = height - 1 - int(round(rel * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][col] = symbol
    lines = []
    for row in range(height):
        ratio_label = max_ratio - (max_ratio - 1.0) * row / (height - 1)
        lines.append(f"{ratio_label:5.1f} |" + "".join(grid[row]))
    lines.append("      +" + "-" * width)
    ticks = "       "
    for pct in (0, 25, 50, 75, 100):
        pos = int(pct / 100 * (width - 1))
        ticks = ticks[: 7 + pos] + f"{pct}".ljust(4)
    lines.append(f"       0%{' ' * (width // 4 - 4)}25%{' ' * (width // 4 - 4)}50%"
                 f"{' ' * (width // 4 - 4)}75%{' ' * (width // 4 - 5)}100%")
    lines.append("       (fraction of instances with ratio below the curve's y)")
    lines.extend(legend)
    return "\n".join(lines)


def ascii_cost_scatter(
    baseline: np.ndarray,
    comparison: np.ndarray,
    *,
    width: int = 72,
    height: int = 18,
    baseline_symbol: str = ".",
    comparison_symbol: str = "x",
) -> str:
    """The Figure 4 rendering: both cost series over instances sorted by the
    baseline (the baseline appears as a curve, the comparison as a cloud)."""
    baseline = np.asarray(baseline, dtype=float)
    comparison = np.asarray(comparison, dtype=float)
    if baseline.shape != comparison.shape or baseline.size == 0:
        raise ValueError("need two equal-length non-empty cost arrays")
    order = np.argsort(baseline, kind="stable")
    baseline = baseline[order]
    comparison = comparison[order]
    top = max(float(comparison.max()), float(baseline.max()), 1e-9)
    grid = [[" "] * width for _ in range(height)]

    def mark(col: int, value: float, symbol: str) -> None:
        rel = min(value / top, 1.0)
        row = height - 1 - int(round(rel * (height - 1)))
        grid[row][col] = symbol

    n = baseline.size
    for col in range(width):
        # bucket of instances mapped to this column
        lo = col * n // width
        hi = max(lo + 1, (col + 1) * n // width)
        mark(col, float(comparison[lo:hi].max()), comparison_symbol)
        mark(col, float(baseline[lo:hi].mean()), baseline_symbol)
    lines = []
    for row in range(height):
        value = top * (height - 1 - row) / (height - 1)
        lines.append(f"{value:9.3g} |" + "".join(grid[row]))
    lines.append("          +" + "-" * width)
    lines.append("           instances sorted by increasing optimal cost ->")
    lines.append(f"           {baseline_symbol} = optimal   {comparison_symbol} = read-once greedy (bucket max)")
    return "\n".join(lines)


def write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence[object]]) -> Path:
    """Write rows to a CSV file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path
