"""Figure 5: heuristics vs exhaustive optimum on "small" DNF trees.

Paper setup (§IV-D): 21,600 small instances (N = 2..9 ANDs, at most 20
leaves, at most 8 per AND, all sharing ratios), optimal schedules computed by
exhaustive search over depth-first schedules (sound by Theorem 2), and each
of the 10 heuristics scored by its ratio to optimal. Findings the harness
checks for:

* AND-ordered heuristics (except decreasing p) dominate;
* increasing C/p dynamic is best (best-or-tied on 83.8% of instances in the
  paper), increasing C second;
* the stream-ordered heuristic [4] is worse than the best leaf-ordered
  heuristic; leaf-ordered random is worst.

The exhaustive search is exponential: the default grid below trims the paper
grid to exhaustive-feasible sizes (the full grid remains available through
``configs=list(fig5_configs())``); ratios, rankings and profile shapes are
unaffected by the trim (same generators, smaller N and per-AND caps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.dnf_optimal import optimal_depth_first
from repro.core.heuristics.base import make_paper_heuristics
from repro.errors import BudgetExceededError
from repro.experiments.profiles import PerformanceProfile, best_fractions, performance_profile
from repro.generators.configs import DnfConfig, fig5_configs
from repro.generators.random_trees import sample_dnf_tree
from repro.parallel import pmap, spawn_seeds

__all__ = ["Fig5Result", "run_fig5", "default_small_configs"]


def default_small_configs() -> list[DnfConfig]:
    """Exhaustive-search-feasible trim of the paper's small grid."""
    return list(
        fig5_configs(
            n_ands=(2, 3, 4),
            caps=(2, 3),
            rhos=(1.0, 1.5, 2.0, 3.0, 5.0),
            max_leaves=12,
        )
    )


@dataclass(frozen=True)
class Fig5Result:
    """Costs per heuristic plus the exhaustive optimum, per instance."""

    heuristic_costs: Mapping[str, np.ndarray]
    optimal_costs: np.ndarray
    skipped_budget: int

    @property
    def n_instances(self) -> int:
        return int(self.optimal_costs.size)

    def ratios(self, name: str) -> np.ndarray:
        """Heuristic-to-optimal cost ratios (1.0 where the optimum is 0)."""
        costs = self.heuristic_costs[name]
        out = np.ones_like(costs)
        positive = self.optimal_costs > 0
        out[positive] = costs[positive] / self.optimal_costs[positive]
        return out

    def profiles(self) -> dict[str, PerformanceProfile]:
        return {
            name: performance_profile(name, self.ratios(name)) for name in self.heuristic_costs
        }

    def best_fractions(self) -> dict[str, float]:
        """Fraction of instances where each heuristic matches the best heuristic."""
        return best_fractions(self.heuristic_costs)

    def optimal_fractions(self, rel_tol: float = 1e-9) -> dict[str, float]:
        """Fraction of instances where each heuristic actually attains the optimum."""
        out: dict[str, float] = {}
        for name, costs in self.heuristic_costs.items():
            hits = costs <= self.optimal_costs * (1.0 + rel_tol) + 1e-15
            out[name] = float(np.mean(hits))
        return out

    def summary_rows(self) -> list[tuple[object, ...]]:
        """One row per heuristic: profile landmarks + win rates (sorted, best first)."""
        profiles = self.profiles()
        wins = self.best_fractions()
        optimal_hits = self.optimal_fractions()
        rows = []
        for name, profile in profiles.items():
            rows.append(
                (
                    name,
                    profile.fraction_within(1.0 + 1e-9) * 100.0,
                    profile.fraction_within(1.1) * 100.0,
                    profile.fraction_within(2.0) * 100.0,
                    profile.max_ratio,
                    wins[name] * 100.0,
                    optimal_hits[name] * 100.0,
                )
            )
        rows.sort(key=lambda row: (-row[2], row[4]))
        return rows

    @staticmethod
    def summary_headers() -> tuple[str, ...]:
        return ("heuristic", "%<=1.0", "%<=1.1", "%<=2.0", "max ratio", "%best", "%optimal")


def _run_cell(
    args: tuple[DnfConfig, int, np.random.SeedSequence, int, str, int]
) -> tuple[dict[str, list[float]], list[float], int]:
    """One grid cell (top-level for pickling)."""
    config, n_instances, seed_seq, node_budget, engine, trials = args
    rng = np.random.default_rng(seed_seq)
    trial_rng = None if engine == "analytic" else np.random.default_rng(seed_seq.spawn(1)[0])
    if engine != "analytic":
        # Lazy import (engine builds on core/experiments' level, not the reverse).
        from repro.engine.battery import estimate_schedule_cost
    heuristics = make_paper_heuristics(seed=int(rng.integers(0, 2**31)))
    per_heuristic: dict[str, list[float]] = {name: [] for name in heuristics}
    optima: list[float] = []
    skipped = 0
    for _ in range(n_instances):
        tree = sample_dnf_tree(rng, config)
        try:
            optimum = optimal_depth_first(tree, node_budget=node_budget)
        except BudgetExceededError:
            skipped += 1
            continue
        optima.append(optimum.cost)
        for name, heuristic in heuristics.items():
            if engine == "analytic":
                per_heuristic[name].append(heuristic.cost(tree))
            else:
                per_heuristic[name].append(
                    estimate_schedule_cost(
                        tree,
                        heuristic.schedule(tree),
                        engine=engine,
                        n_trials=trials,
                        rng=trial_rng,
                    )
                )
    return per_heuristic, optima, skipped


def run_fig5(
    *,
    instances_per_config: int = 20,
    configs: Sequence[DnfConfig] | None = None,
    seed: int | None = 0,
    node_budget: int = 2_000_000,
    workers: int | None = None,
    engine: str = "analytic",
    trials_per_instance: int = 2000,
) -> Fig5Result:
    """Run the Figure 5 sweep.

    Paper scale: ``instances_per_config=100, configs=list(fig5_configs())``
    (expect hours — the optimum search is exponential); the default trimmed
    grid finishes in minutes on one core. ``engine="vectorized"`` (or
    ``"scalar"``) scores each *heuristic* schedule by a simulated trial
    battery of ``trials_per_instance`` executions instead of the closed
    form; the exhaustive optimum is analytic by definition either way.
    """
    if configs is None:
        configs = default_small_configs()
    seeds = spawn_seeds(seed, len(configs))
    cells = pmap(
        _run_cell,
        [
            (config, instances_per_config, seeds[i], node_budget, engine, trials_per_instance)
            for i, config in enumerate(configs)
        ],
        workers=workers,
    )
    merged: dict[str, list[float]] = {}
    optima: list[float] = []
    skipped = 0
    for per_heuristic, cell_optima, cell_skipped in cells:
        skipped += cell_skipped
        optima.extend(cell_optima)
        for name, costs in per_heuristic.items():
            merged.setdefault(name, []).extend(costs)
    return Fig5Result(
        heuristic_costs={name: np.asarray(costs) for name, costs in merged.items()},
        optimal_costs=np.asarray(optima),
        skipped_budget=skipped,
    )
