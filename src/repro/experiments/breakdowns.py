"""Win-rate breakdowns across instance parameters.

The paper reports single aggregate win rates ("best in 94.5% of the
cases"); this module slices them by instance size and sharing ratio to show
*where* the best heuristic's advantage lives. It explains the dependence of
the aggregate number on the grid: on tiny/low-sharing cells many heuristics
tie, while on large shared instances the dynamic C/p ordering pulls away —
so any aggregate win rate is a property of the grid mix as much as of the
heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.heuristics.base import make_paper_heuristics
from repro.experiments.profiles import best_fractions
from repro.generators.random_trees import random_dnf_tree

__all__ = ["BreakdownCell", "win_rate_breakdown", "breakdown_matrix"]


@dataclass(frozen=True, slots=True)
class BreakdownCell:
    """Per-(m, rho) cell: the reference heuristic's win rate."""

    leaves_per_and: int
    rho: float
    win_rate: float
    tie_rate: float
    n_instances: int


def win_rate_breakdown(
    *,
    reference: str = "and-inc-c-over-p-dynamic",
    n_ands: int = 6,
    leaves_per_and_values: Sequence[int] = (2, 5, 10, 15),
    rhos: Sequence[float] = (1.0, 2.0, 5.0, 10.0),
    instances_per_cell: int = 30,
    seed: int | None = 0,
) -> list[BreakdownCell]:
    """Reference-heuristic win rate per (leaves-per-AND, rho) cell.

    ``win_rate``: fraction of instances where the reference attains the
    minimum cost among all ten heuristics. ``tie_rate``: fraction where at
    least one *other* heuristic attains it too.
    """
    rng = np.random.default_rng(seed)
    heuristics = make_paper_heuristics(seed=int(rng.integers(0, 2**31)))
    cells: list[BreakdownCell] = []
    for m in leaves_per_and_values:
        for rho in rhos:
            costs: dict[str, list[float]] = {name: [] for name in heuristics}
            for _ in range(instances_per_cell):
                tree = random_dnf_tree(rng, n_ands, m, rho)
                for name, heuristic in heuristics.items():
                    costs[name].append(heuristic.cost(tree))
            matrix = np.asarray([costs[name] for name in heuristics])
            names = list(heuristics)
            ref_row = names.index(reference)
            mins = matrix.min(axis=0)
            ref_wins = matrix[ref_row] <= mins * (1 + 1e-9) + 1e-15
            others = np.delete(matrix, ref_row, axis=0)
            other_ties = (others <= mins * (1 + 1e-9) + 1e-15).any(axis=0)
            cells.append(
                BreakdownCell(
                    leaves_per_and=m,
                    rho=rho,
                    win_rate=float(ref_wins.mean()),
                    tie_rate=float((ref_wins & other_ties).mean()),
                    n_instances=instances_per_cell,
                )
            )
    return cells


def breakdown_matrix(cells: Sequence[BreakdownCell]) -> str:
    """Render cells as a (leaves-per-AND x rho) win-rate matrix."""
    ms = sorted({cell.leaves_per_and for cell in cells})
    rhos = sorted({cell.rho for cell in cells})
    lookup = {(cell.leaves_per_and, cell.rho): cell for cell in cells}
    header = "m\\rho " + " ".join(f"{rho:>8g}" for rho in rhos)
    lines = [header, "-" * len(header)]
    for m in ms:
        row = [f"{m:<5}"]
        for rho in rhos:
            cell = lookup.get((m, rho))
            row.append(f"{cell.win_rate * 100:7.1f}%" if cell else "     -")
        lines.append(" ".join(row))
    lines.append(
        "(reference heuristic win rate; near-total at low sharing, eroded at "
        "extreme rho where cache reuse flattens every heuristic's cost)"
    )
    return "\n".join(lines)
