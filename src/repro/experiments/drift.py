"""Selectivity-drift experiment: static plans vs adaptive vs oracle re-planning.

The scenario: a population of isomorphic queries is admitted with accurate
selectivity estimates, then the ground truth steps at a known round (a cheap
stream's predicate flips from almost-never-true to almost-always-true, which
inverts the cost-optimal probe order). Three servers run the identical
ground truth — per-query :class:`~repro.engine.executor.DriftingBernoulliOracle`
instances with the same seeds draw the *same outcome tape* regardless of the
plan, so every cost difference is attributable to planning alone:

* **static** — the admission plan forever (what `repro.service` did before
  adaptivity);
* **adaptive** — ``QueryServer(adaptive=AdaptivePolicy(...))``: posteriors
  pooled per canonical leaf, drift detection, automatic re-plan;
* **oracle** — a forced :meth:`~repro.service.server.QueryServer.replan_query`
  with the *true* post-drift probabilities at the exact drift round (no
  detection lag, no estimation noise): the upper baseline adaptivity is
  measured against.

The headline number is the post-drift mean round cost: adaptive should land
within a few percent of the oracle (its only handicap is detection lag),
while static pays the stale plan's full price every round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.adaptive import AdaptivePolicy
from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.engine.executor import DriftingBernoulliOracle
from repro.errors import StreamError
from repro.generators.drift_scenarios import step_drift_by_stream
from repro.obs import Telemetry
from repro.service.server import DEFAULT_SCHEDULER, QueryServer
from repro.service.simulate import shuffled_isomorph
from repro.streams.drift import DriftSchedule
from repro.streams.registry import StreamRegistry
from repro.streams.sources import GaussianSource
from repro.streams.stream import StreamSpec

__all__ = ["DriftModeResult", "DriftReport", "default_drift_population", "run_drift"]

#: Stream-name stems of the default scenario: per cluster ``c`` the drifting
#: stream ``drifty{c}`` is cheap and ``steady{c}`` expensive — so the drifted
#: regime flips the cost-optimal probe order inside every cluster.
_CHEAP, _EXPENSIVE = "drifty", "steady"


@dataclass(frozen=True)
class DriftModeResult:
    """One serving mode's cost trajectory over the drift scenario."""

    mode: str
    round_costs: tuple[float, ...]
    replans: int
    replan_rounds: tuple[int, ...]

    @property
    def total_cost(self) -> float:
        return float(sum(self.round_costs))

    @property
    def mean_round_cost(self) -> float:
        return self.total_cost / len(self.round_costs) if self.round_costs else 0.0

    def mean_cost(self, start: int = 0, end: int | None = None) -> float:
        """Mean round cost over rounds ``[start, end)``."""
        window = self.round_costs[start:end]
        return float(np.mean(window)) if window else 0.0


@dataclass(frozen=True)
class DriftReport:
    """Static vs adaptive vs oracle over one drift schedule."""

    rounds: int
    drift_round: int
    n_queries: int
    seed: int
    engine: str
    static: DriftModeResult
    adaptive: DriftModeResult
    oracle: DriftModeResult

    @property
    def modes(self) -> tuple[DriftModeResult, DriftModeResult, DriftModeResult]:
        return (self.static, self.adaptive, self.oracle)

    def post_drift_mean(self, mode: DriftModeResult) -> float:
        return mode.mean_cost(self.drift_round)

    @property
    def detection_lag(self) -> int | None:
        """Rounds between the drift and the adaptive server's first re-plan
        at or after it (None when it never re-planned)."""
        for round_index in self.adaptive.replan_rounds:
            if round_index >= self.drift_round:
                return round_index - self.drift_round
        return None

    @property
    def adaptive_vs_oracle(self) -> float:
        """Post-drift mean-cost ratio, adaptive / oracle."""
        oracle = self.post_drift_mean(self.oracle)
        return self.post_drift_mean(self.adaptive) / oracle if oracle else 1.0

    @property
    def static_vs_oracle(self) -> float:
        """Post-drift mean-cost ratio, static / oracle."""
        oracle = self.post_drift_mean(self.oracle)
        return self.post_drift_mean(self.static) / oracle if oracle else 1.0

    def summary_headers(self) -> tuple[str, ...]:
        return ("mode", "total cost", "pre-drift /round", "post-drift /round", "replans")

    def summary_rows(self) -> list[tuple[str, str, str, str, str]]:
        rows = []
        for mode in self.modes:
            rows.append(
                (
                    mode.mode,
                    f"{mode.total_cost:.6g}",
                    f"{mode.mean_cost(0, self.drift_round):.6g}",
                    f"{self.post_drift_mean(mode):.6g}",
                    str(mode.replans),
                )
            )
        return rows

    def describe(self) -> str:
        lag = self.detection_lag
        return (
            f"drift at round {self.drift_round}/{self.rounds}, {self.n_queries} queries"
            f" ({self.engine} engine): adaptive/oracle = {self.adaptive_vs_oracle:.3f},"
            f" static/oracle = {self.static_vs_oracle:.3f},"
            f" detection lag = {lag if lag is not None else 'n/a'} rounds"
        )


def _n_clusters(n_queries: int, cluster_size: int) -> int:
    return (n_queries + cluster_size - 1) // cluster_size


def _drift_registry(
    seed: int, cheap_cost: float, expensive_cost: float, n_clusters: int
) -> StreamRegistry:
    registry = StreamRegistry()
    for c in range(n_clusters):
        registry.add(
            StreamSpec(f"{_CHEAP}{c}", cheap_cost),
            GaussianSource(seed=seed * 7919 + 2 * c + 1),
        )
        registry.add(
            StreamSpec(f"{_EXPENSIVE}{c}", expensive_cost),
            GaussianSource(seed=seed * 7919 + 2 * c + 2),
        )
    return registry


def default_drift_population(
    n_queries: int,
    *,
    seed: int = 0,
    cluster_size: int = 4,
    pre_prob: float = 0.05,
    post_prob: float = 0.9,
    steady_prob: float = 0.6,
    drift_round: int = 120,
) -> list[tuple[str, DnfTree, DriftSchedule]]:
    """Clusters of isomorphs of an order-flipping template, plus their drifts.

    Each cluster ``c`` runs ``OR(drifty{c}[2] p=pre, steady{c}[3] p=steady)``
    on its own stream pair: with the admission probabilities the
    expensive-but-likely leaf resolves the OR cheapest in expectation, but
    once the cheap leaf's selectivity steps to ``post_prob`` the optimal
    order inverts — exactly the regime change a static plan cannot follow.
    Isomorphs inside a cluster share a canonical key, so the adaptive server
    pools their probe outcomes; separate clusters keep the shared item cache
    from flattening the cost contrast between plans.
    """
    if n_queries < 1:
        raise StreamError(f"need at least one query, got {n_queries}")
    if cluster_size < 1:
        raise StreamError(f"cluster size must be >= 1, got {cluster_size}")
    rng = np.random.default_rng(seed)
    population = []
    for q in range(n_queries):
        c = q // cluster_size
        cheap, expensive = f"{_CHEAP}{c}", f"{_EXPENSIVE}{c}"
        template = DnfTree(
            [[Leaf(cheap, 2, pre_prob)], [Leaf(expensive, 3, steady_prob)]],
            costs={cheap: 1.0, expensive: 5.0},
        )
        tree = shuffled_isomorph(template, rng)
        schedule = step_drift_by_stream(tree, drift_round, {cheap: post_prob})
        population.append((f"q{q:03d}", tree, schedule))
    return population


def _serve(
    population: Sequence[tuple[str, DnfTree, DriftSchedule]],
    registry_seed: int,
    oracle_seed: int,
    *,
    scheduler: str,
    engine: str,
    rounds: int,
    adaptive: AdaptivePolicy | None,
    cheap_cost: float,
    expensive_cost: float,
    n_clusters: int,
    oracle_replan_round: int | None = None,
    telemetry: Telemetry | None = None,
) -> tuple[QueryServer, DriftModeResult, str]:
    registry = _drift_registry(registry_seed, cheap_cost, expensive_cost, n_clusters)
    server = QueryServer(
        registry, scheduler=scheduler, adaptive=adaptive, telemetry=telemetry
    )
    for ordinal, (name, tree, drift) in enumerate(population):
        server.register(
            name,
            tree,
            oracle=DriftingBernoulliOracle(drift, seed=oracle_seed * 100_003 + ordinal),
        )
    mode = "adaptive" if adaptive is not None else "static"
    if oracle_replan_round is None:
        report = server.run_batch(rounds, engine=engine)
        round_costs = tuple(report.round_costs)
    else:
        mode = "oracle"
        first = server.run_batch(oracle_replan_round, engine=engine)
        replanned: set[str] = set()
        for name, _, drift in population:
            key = server.query(name).canonical.key
            if key in replanned:
                continue
            replanned.add(key)
            truth = drift.probs_at(drift.settled_after())
            server.replan_query(name, {g: float(p) for g, p in enumerate(truth)})
        second = server.run_batch(rounds - oracle_replan_round, engine=engine)
        round_costs = tuple(first.round_costs) + tuple(second.round_costs)
    return (
        server,
        DriftModeResult(
            mode=mode,
            round_costs=round_costs,
            replans=len(server.replan_log),
            replan_rounds=tuple(event.round_index for event in server.replan_log),
        ),
        mode,
    )


def run_drift(
    *,
    n_queries: int = 12,
    cluster_size: int = 4,
    rounds: int = 360,
    drift_round: int = 120,
    seed: int = 0,
    engine: str = "vectorized",
    scheduler: str = DEFAULT_SCHEDULER,
    policy: AdaptivePolicy | None = None,
    pre_prob: float = 0.05,
    post_prob: float = 0.9,
    steady_prob: float = 0.6,
    cheap_cost: float = 1.0,
    expensive_cost: float = 5.0,
    telemetry: Telemetry | None = None,
) -> DriftReport:
    """Run the three serving modes over one identical drift scenario.

    All three populations draw their outcomes from per-query drifting
    oracles seeded identically, and a drifting oracle's random-tape
    consumption is independent of the executing plan — so the three cost
    trajectories are exactly comparable, round by round.

    ``telemetry`` instruments the *adaptive* mode only — the mode whose
    replan events the trace is for; the static and oracle baselines run
    untraced so the timeline stays a single coherent story.
    """
    if not 0 < drift_round < rounds:
        raise StreamError(
            f"drift round must fall inside the run, got {drift_round}/{rounds}"
        )
    if policy is None:
        policy = AdaptivePolicy(window=64, threshold=0.25, min_samples=24, cooldown=16)
    population = default_drift_population(
        n_queries,
        seed=seed,
        cluster_size=cluster_size,
        pre_prob=pre_prob,
        post_prob=post_prob,
        steady_prob=steady_prob,
        drift_round=drift_round,
    )
    common = dict(
        scheduler=scheduler,
        engine=engine,
        rounds=rounds,
        cheap_cost=cheap_cost,
        expensive_cost=expensive_cost,
        n_clusters=_n_clusters(n_queries, cluster_size),
    )
    _, static, _ = _serve(population, seed, seed, adaptive=None, **common)
    _, adaptive, _ = _serve(
        population, seed, seed, adaptive=policy, telemetry=telemetry, **common
    )
    _, oracle, _ = _serve(
        population, seed, seed, adaptive=None, oracle_replan_round=drift_round, **common
    )
    return DriftReport(
        rounds=rounds,
        drift_round=drift_round,
        n_queries=n_queries,
        seed=seed,
        engine=engine,
        static=static,
        adaptive=adaptive,
        oracle=oracle,
    )
