"""Experiment drivers regenerating the paper's figures and statistics."""

from repro.experiments.ablations import (
    PairwiseComparison,
    compare_dynamic_vs_static,
    compare_stream_ordered_d_direction,
    compare_stream_ordered_r_direction,
    shared_cache_savings,
)
from repro.experiments.cluster import (
    ClusterCompareReport,
    ClusterModeResult,
    run_cluster_compare,
    verify_cluster_parity,
)
from repro.experiments.drift import (
    DriftModeResult,
    DriftReport,
    default_drift_population,
    run_drift,
)
from repro.experiments.fig4 import Fig4Result, Fig4Summary, run_fig4
from repro.experiments.fig5 import Fig5Result, default_small_configs, run_fig5
from repro.experiments.fig6 import REFERENCE_HEURISTIC, Fig6Result, default_large_configs, run_fig6
from repro.experiments.profiles import (
    PerformanceProfile,
    best_fractions,
    fraction_within,
    performance_profile,
)
from repro.experiments.report import ascii_profile_plot, ascii_table, write_csv
from repro.experiments.runtime import (
    RuntimePoint,
    ThroughputPoint,
    execution_throughput,
    paper_runtime_claim,
    runtime_grid,
)
from repro.experiments.sensitivity import (
    SensitivityPoint,
    perturb_probabilities,
    probability_sensitivity,
)
from repro.experiments.breakdowns import BreakdownCell, breakdown_matrix, win_rate_breakdown

__all__ = [
    "run_cluster_compare",
    "verify_cluster_parity",
    "ClusterCompareReport",
    "ClusterModeResult",
    "run_drift",
    "DriftReport",
    "DriftModeResult",
    "default_drift_population",
    "run_fig4",
    "Fig4Result",
    "Fig4Summary",
    "run_fig5",
    "Fig5Result",
    "default_small_configs",
    "run_fig6",
    "Fig6Result",
    "default_large_configs",
    "REFERENCE_HEURISTIC",
    "PerformanceProfile",
    "performance_profile",
    "fraction_within",
    "best_fractions",
    "ascii_table",
    "ascii_profile_plot",
    "write_csv",
    "runtime_grid",
    "paper_runtime_claim",
    "RuntimePoint",
    "ThroughputPoint",
    "execution_throughput",
    "PairwiseComparison",
    "compare_stream_ordered_d_direction",
    "compare_stream_ordered_r_direction",
    "compare_dynamic_vs_static",
    "shared_cache_savings",
    "SensitivityPoint",
    "perturb_probabilities",
    "probability_sensitivity",
    "BreakdownCell",
    "win_rate_breakdown",
    "breakdown_matrix",
]
