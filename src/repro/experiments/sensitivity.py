"""Sensitivity of the schedulers to probability-estimation error.

The paper assumes leaf success probabilities are *known* ("estimated based
on historical traces"); in a deployment they are noisy. This experiment
quantifies the regret: perturb every leaf probability by truncated-Gaussian
noise of scale ``epsilon``, let the scheduler plan on the perturbed tree,
then evaluate its schedule on the *true* tree and compare to planning with
exact probabilities.

Findings we assert in the bench: regret grows with epsilon, and the ranking
of heuristics is stable under realistic noise (the paper's conclusions do
not hinge on perfect estimates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.cost import dnf_schedule_cost
from repro.core.heuristics.base import Scheduler, get_scheduler
from repro.core.leaf import Leaf
from repro.core.tree import DnfTree
from repro.generators.random_trees import random_dnf_tree

__all__ = ["SensitivityPoint", "perturb_probabilities", "probability_sensitivity"]


@dataclass(frozen=True, slots=True)
class SensitivityPoint:
    """Mean regret of one scheduler at one noise scale."""

    heuristic: str
    epsilon: float
    mean_regret: float      # mean (noisy-plan cost / exact-plan cost) - 1
    worst_regret: float
    n_instances: int


def perturb_probabilities(
    tree: DnfTree, epsilon: float, rng: np.random.Generator
) -> DnfTree:
    """Each leaf's probability +- Gaussian(0, epsilon), clipped to [0.001, 0.999].

    Clipping stays strictly inside (0, 1) so ratio-based schedulers remain
    well defined under noise.
    """
    groups: list[list[Leaf]] = []
    for group in tree.ands:
        new_group = []
        for leaf in group:
            noisy = float(np.clip(leaf.prob + rng.normal(0.0, epsilon), 0.001, 0.999))
            new_group.append(leaf.with_prob(noisy))
        groups.append(new_group)
    return DnfTree(groups, tree.costs)


def probability_sensitivity(
    *,
    heuristics: Sequence[str] = (
        "and-inc-c-over-p-dynamic",
        "and-inc-c-over-p-static",
        "leaf-inc-c",
        "stream-ordered",
    ),
    epsilons: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4),
    n_instances: int = 100,
    n_ands: tuple[int, int] = (2, 6),
    leaves_per_and: tuple[int, int] = (2, 6),
    rho_choices: Sequence[float] = (1.0, 2.0, 3.0, 5.0),
    seed: int | None = 0,
    engine: str = "analytic",
    trials_per_instance: int = 2000,
) -> list[SensitivityPoint]:
    """Regret of planning with noisy probabilities, per heuristic and noise scale.

    ``engine="vectorized"`` / ``"scalar"`` evaluates every schedule's cost
    on the *true* tree by a simulated trial battery instead of the
    Proposition-2 closed form (regrets then carry Monte-Carlo noise on top
    of the estimation noise being studied).
    """
    rng = np.random.default_rng(seed)

    def evaluate(tree: DnfTree, schedule, cost_rng: np.random.Generator) -> float:
        if engine == "analytic":
            return dnf_schedule_cost(tree, schedule, validate=False)
        from repro.engine.battery import estimate_schedule_cost

        return estimate_schedule_cost(
            tree, schedule, engine=engine, n_trials=trials_per_instance, rng=cost_rng
        )

    trees = [
        random_dnf_tree(
            rng,
            int(rng.integers(n_ands[0], n_ands[1] + 1)),
            int(rng.integers(leaves_per_and[0], leaves_per_and[1] + 1)),
            float(rng.choice(list(rho_choices))),
        )
        for _ in range(n_instances)
    ]
    schedulers: dict[str, Scheduler] = {
        name: (get_scheduler(name, seed=0) if name == "leaf-random" else get_scheduler(name))
        for name in heuristics
    }
    points: list[SensitivityPoint] = []
    for name, scheduler in schedulers.items():
        cost_rng = np.random.default_rng((seed or 0) + 99_991)
        exact_costs = np.array(
            [evaluate(tree, scheduler.schedule(tree), cost_rng) for tree in trees]
        )
        for epsilon in epsilons:
            noise_rng = np.random.default_rng((seed or 0) + int(epsilon * 1e6) + 1)
            # Separate stream for simulated cost evaluation, so the noisy
            # trees are the same ones the analytic engine sees.
            eval_rng = np.random.default_rng((seed or 0) + int(epsilon * 1e6) + 2)
            regrets = []
            for tree, exact_cost in zip(trees, exact_costs):
                noisy_tree = perturb_probabilities(tree, epsilon, noise_rng)
                noisy_schedule = scheduler.schedule(noisy_tree)
                # plan on noisy, pay on true
                true_cost = evaluate(tree, noisy_schedule, eval_rng)
                if exact_cost > 0:
                    regrets.append(true_cost / exact_cost - 1.0)
                else:
                    regrets.append(0.0)
            regrets_arr = np.asarray(regrets)
            points.append(
                SensitivityPoint(
                    heuristic=name,
                    epsilon=float(epsilon),
                    mean_regret=float(regrets_arr.mean()),
                    worst_regret=float(regrets_arr.max()),
                    n_instances=len(trees),
                )
            )
    return points
