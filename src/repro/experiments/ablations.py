"""Ablation studies of the design choices called out in DESIGN.md.

Four questions the paper raises but does not quantify (or that our
reproduction had to decide):

1. **Proposition 1 in stream-ordered** — how much does evaluating a stream's
   leaves by increasing ``d`` (the paper's improvement) gain over the
   original decreasing-``d`` heuristic of [4]? The paper only says the
   improved version wins "in the vast majority of the cases".
2. **Stream-ordered sort direction** — the paper's text says increasing
   ``R``, its rationale implies decreasing ``R``; which is right?
3. **Dynamic vs static AND-ordering** — the paper says dynamic is
   "marginally better"; quantify the gap.
4. **Shared cache value** — how much does item reuse save at all, i.e. the
   gap between the shared cost of Algorithm 1's schedule and the cache-less
   cost of the same schedule (AND-trees).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.andtree_optimal import algorithm1_order
from repro.core.cost import and_tree_cost, dnf_schedule_cost
from repro.core.heuristics.and_ordered import (
    AndOrderedIncreasingCOverPDynamic,
    AndOrderedIncreasingCOverPStatic,
)
from repro.core.heuristics.stream_ordered import StreamOrdered
from repro.generators.random_trees import random_and_tree, random_dnf_tree

__all__ = [
    "PairwiseComparison",
    "compare_stream_ordered_d_direction",
    "compare_stream_ordered_r_direction",
    "compare_dynamic_vs_static",
    "shared_cache_savings",
]


@dataclass(frozen=True, slots=True)
class PairwiseComparison:
    """A-vs-B cost comparison over random instances."""

    label_a: str
    label_b: str
    n_instances: int
    a_wins: int
    b_wins: int
    ties: int
    mean_ratio_b_over_a: float

    def rows(self) -> list[tuple[object, ...]]:
        n = self.n_instances
        return [
            (f"{self.label_a} strictly better", 100.0 * self.a_wins / n),
            (f"{self.label_b} strictly better", 100.0 * self.b_wins / n),
            ("ties", 100.0 * self.ties / n),
            (f"mean cost({self.label_b}) / cost({self.label_a})", self.mean_ratio_b_over_a),
        ]


def _compare(label_a, label_b, costs_a: np.ndarray, costs_b: np.ndarray, rel_tol=1e-9):
    close = np.isclose(costs_a, costs_b, rtol=rel_tol, atol=1e-12)
    a_wins = int(np.count_nonzero(~close & (costs_a < costs_b)))
    b_wins = int(np.count_nonzero(~close & (costs_b < costs_a)))
    positive = costs_a > 0
    ratios = np.ones_like(costs_a)
    ratios[positive] = costs_b[positive] / costs_a[positive]
    return PairwiseComparison(
        label_a=label_a,
        label_b=label_b,
        n_instances=int(costs_a.size),
        a_wins=a_wins,
        b_wins=b_wins,
        ties=int(np.count_nonzero(close)),
        mean_ratio_b_over_a=float(ratios.mean()),
    )


def _random_dnfs(n_instances: int, seed: int | None):
    rng = np.random.default_rng(seed)
    trees = []
    for _ in range(n_instances):
        n = int(rng.integers(2, 7))
        m = int(rng.integers(2, 7))
        rho = float(rng.choice([1.0, 1.5, 2.0, 3.0, 5.0]))
        trees.append(random_dnf_tree(rng, n, m, rho))
    return trees


def compare_stream_ordered_d_direction(
    *, n_instances: int = 300, seed: int | None = 0
) -> PairwiseComparison:
    """Proposition 1's improvement: increasing-``d`` vs original decreasing-``d``."""
    improved = StreamOrdered()
    original = StreamOrdered(original_decreasing_d=True)
    trees = _random_dnfs(n_instances, seed)
    a = np.array([improved.cost(tree) for tree in trees])
    b = np.array([original.cost(tree) for tree in trees])
    return _compare("increasing-d (paper)", "decreasing-d (original [4])", a, b)


def compare_stream_ordered_r_direction(
    *, n_instances: int = 300, seed: int | None = 0
) -> PairwiseComparison:
    """Decreasing-``R`` (rationale) vs increasing-``R`` (literal text)."""
    rationale = StreamOrdered()
    literal = StreamOrdered(literal_increasing_r=True)
    trees = _random_dnfs(n_instances, seed)
    a = np.array([rationale.cost(tree) for tree in trees])
    b = np.array([literal.cost(tree) for tree in trees])
    return _compare("decreasing-R (rationale)", "increasing-R (literal)", a, b)


def compare_dynamic_vs_static(
    *, n_instances: int = 300, seed: int | None = 0
) -> PairwiseComparison:
    """Paper's "dynamic is marginally better" claim, quantified."""
    dynamic = AndOrderedIncreasingCOverPDynamic()
    static = AndOrderedIncreasingCOverPStatic()
    trees = _random_dnfs(n_instances, seed)
    a = np.array([dynamic.cost(tree) for tree in trees])
    b = np.array([static.cost(tree) for tree in trees])
    return _compare("dynamic", "static", a, b)


def shared_cache_savings(
    *, n_instances: int = 500, m: int = 12, rho: float = 3.0, seed: int | None = 0
) -> PairwiseComparison:
    """Value of the shared-item cache itself on AND-trees: the same
    Algorithm 1 schedule costed with and without item reuse."""
    rng = np.random.default_rng(seed)
    shared = []
    unshared = []
    for _ in range(n_instances):
        tree = random_and_tree(rng, m, rho)
        order = algorithm1_order(tree)
        shared.append(and_tree_cost(tree, order, validate=False))
        unshared.append(and_tree_cost(tree, order, shared=False, validate=False))
    return _compare(
        "shared cache", "no cache", np.asarray(shared), np.asarray(unshared)
    )
