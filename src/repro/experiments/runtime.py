"""Runtime-scaling experiment (paper §IV-D, closing claim).

The paper reports that the best heuristic "runs in less than 5 seconds on a
1.86 GHz core when processing a tree with 10 AND nodes with each 20 leaves".
This module times the heuristics across a (N, m) grid and checks that claim
on the reproduction hardware. :func:`execution_throughput` extends the grid
to *execution* time — trials per second of the scalar vs vectorized trial
engines on the same trees, the number the ``engine="vectorized"`` fast path
is judged by.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.heuristics.base import Scheduler, get_scheduler
from repro.generators.random_trees import random_dnf_tree

__all__ = [
    "RuntimePoint",
    "ThroughputPoint",
    "runtime_grid",
    "paper_runtime_claim",
    "execution_throughput",
]


@dataclass(frozen=True, slots=True)
class RuntimePoint:
    """Mean scheduling wall time for one (heuristic, N, m) cell."""

    heuristic: str
    n_ands: int
    leaves_per_and: int
    seconds: float
    repeats: int


def _time_heuristic(scheduler: Scheduler, trees, repeats: int) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        for tree in trees:
            scheduler.schedule(tree)
    elapsed = time.perf_counter() - start
    return elapsed / (repeats * len(trees))


def runtime_grid(
    *,
    heuristics: Sequence[str] = ("and-inc-c-over-p-dynamic", "and-inc-c-over-p-static", "stream-ordered"),
    n_ands_values: Sequence[int] = (2, 4, 6, 8, 10),
    leaves_per_and_values: Sequence[int] = (5, 10, 20),
    rho: float = 2.0,
    trees_per_cell: int = 3,
    repeats: int = 3,
    seed: int | None = 0,
) -> list[RuntimePoint]:
    """Mean per-tree scheduling time over the grid."""
    rng = np.random.default_rng(seed)
    points: list[RuntimePoint] = []
    for name in heuristics:
        scheduler = get_scheduler(name, seed=0) if name == "leaf-random" else get_scheduler(name)
        for n in n_ands_values:
            for m in leaves_per_and_values:
                trees = [
                    random_dnf_tree(rng, n, m, rho) for _ in range(trees_per_cell)
                ]
                seconds = _time_heuristic(scheduler, trees, repeats)
                points.append(
                    RuntimePoint(
                        heuristic=name,
                        n_ands=n,
                        leaves_per_and=m,
                        seconds=seconds,
                        repeats=repeats,
                    )
                )
    return points


@dataclass(frozen=True, slots=True)
class ThroughputPoint:
    """Trial-execution throughput of one engine on one (N, m) cell."""

    engine: str
    n_ands: int
    leaves_per_and: int
    n_trials: int
    seconds: float

    @property
    def trials_per_second(self) -> float:
        return self.n_trials / self.seconds if self.seconds > 0 else float("inf")


def execution_throughput(
    *,
    engines: Sequence[str] = ("scalar", "vectorized"),
    n_ands_values: Sequence[int] = (2, 6, 10),
    leaves_per_and_values: Sequence[int] = (5, 20),
    rho: float = 2.0,
    n_trials: int = 10_000,
    scheduler: str = "and-inc-c-over-p-dynamic",
    seed: int | None = 0,
) -> list[ThroughputPoint]:
    """Trials/second of each trial engine across the runtime grid.

    Each cell runs one :func:`repro.engine.battery.run_battery` of
    ``n_trials`` executions of the reference heuristic's schedule; both
    engines replay identical outcome matrices, so the comparison measures
    pure execution machinery.
    """
    from repro.engine.battery import run_battery

    rng = np.random.default_rng(seed)
    chosen = get_scheduler(scheduler)
    points: list[ThroughputPoint] = []
    for n in n_ands_values:
        for m in leaves_per_and_values:
            tree = random_dnf_tree(rng, n, m, rho)
            schedule = chosen.schedule(tree)
            for engine in engines:
                start = time.perf_counter()
                run_battery(tree, schedule, n_trials, engine=engine, seed=seed)
                seconds = time.perf_counter() - start
                points.append(
                    ThroughputPoint(
                        engine=engine,
                        n_ands=n,
                        leaves_per_and=m,
                        n_trials=n_trials,
                        seconds=seconds,
                    )
                )
    return points


def paper_runtime_claim(*, seed: int | None = 0, repeats: int = 3) -> RuntimePoint:
    """Time the best heuristic on the paper's N=10, m=20 benchmark point."""
    rng = np.random.default_rng(seed)
    scheduler = get_scheduler("and-inc-c-over-p-dynamic")
    trees = [random_dnf_tree(rng, 10, 20, 2.0) for _ in range(3)]
    seconds = _time_heuristic(scheduler, trees, repeats)
    return RuntimePoint(
        heuristic="and-inc-c-over-p-dynamic",
        n_ands=10,
        leaves_per_and=20,
        seconds=seconds,
        repeats=repeats,
    )
