"""Performance-profile computation (the presentation device of Figures 5/6).

The paper plots, for each heuristic, the ratio-to-reference against the
fraction of instances achieving a smaller ratio: "a point at (80, 2) means
that the heuristic leads to schedules that are within a factor 2 of optimal
for 80% of the instances". These are standard Dolan-Moré performance
profiles with the axes swapped; this module computes the curves and their
summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = ["PerformanceProfile", "performance_profile", "fraction_within", "best_fractions"]


@dataclass(frozen=True)
class PerformanceProfile:
    """Sorted ratios + cumulative fractions for one heuristic."""

    name: str
    ratios: np.ndarray  # sorted ascending
    fractions: np.ndarray  # k/n for k = 1..n

    @property
    def n_instances(self) -> int:
        return int(self.ratios.size)

    def ratio_at_fraction(self, fraction: float) -> float:
        """Smallest ratio tau such that >= ``fraction`` of instances are <= tau."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        k = int(np.ceil(fraction * self.ratios.size)) - 1
        return float(self.ratios[k])

    def fraction_within(self, tau: float) -> float:
        """Fraction of instances with ratio <= tau."""
        return float(np.searchsorted(self.ratios, tau, side="right")) / self.ratios.size

    @property
    def max_ratio(self) -> float:
        return float(self.ratios[-1])

    @property
    def mean_ratio(self) -> float:
        return float(self.ratios.mean())


def performance_profile(name: str, ratios: Sequence[float]) -> PerformanceProfile:
    """Build a profile from raw per-instance ratios."""
    array = np.asarray(ratios, dtype=float)
    if array.size == 0:
        raise ValueError("cannot build a profile from zero instances")
    array = np.sort(array)
    fractions = np.arange(1, array.size + 1) / array.size
    return PerformanceProfile(name=name, ratios=array, fractions=fractions)


def fraction_within(ratios: Sequence[float], tau: float) -> float:
    """Fraction of ratios <= tau (no profile object needed)."""
    array = np.asarray(ratios, dtype=float)
    return float(np.count_nonzero(array <= tau)) / array.size


def best_fractions(
    costs: Mapping[str, Sequence[float]], *, rel_tol: float = 1e-9
) -> dict[str, float]:
    """For each heuristic: the fraction of instances where it attains the
    minimum cost among all heuristics (ties count for every winner) —
    the paper's "best one in 94.5% of the cases" statistic."""
    names = list(costs)
    matrix = np.asarray([costs[name] for name in names], dtype=float)
    if matrix.ndim != 2:
        raise ValueError("all heuristics must have the same number of instances")
    mins = matrix.min(axis=0)
    wins = matrix <= mins * (1.0 + rel_tol) + 1e-15
    return {name: float(wins[i].mean()) for i, name in enumerate(names)}
