"""Figure 4: read-once greedy vs Algorithm 1 on shared AND-trees.

Paper setup (§III-B): for every m = 2..20 and sharing ratio
rho in {1, 5/4, 4/3, 3/2, 2, 3, 4, 5, 10} with rho <= m, generate 1,000
random AND-trees (157 valid cells -> 157,000 instances); for each, compare
the cost of the read-once-optimal order (sort by ``d c / q``) with the cost
of Algorithm 1's order.

Paper's reported statistics, which :meth:`Fig4Result.summary` reproduces:

* the read-once algorithm is up to **1.86x** worse than optimal;
* more than 10% worse on **19.54%** of instances;
* more than 1% worse on **60.20%** of instances;
* exactly equal on **11.29%** of instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.andtree_optimal import algorithm1_order, read_once_order
from repro.core.cost import and_tree_cost
from repro.generators.configs import FIG4_LEAF_COUNTS, FIG4_SHARING_RATIOS, AndTreeConfig, fig4_configs
from repro.generators.random_trees import sample_and_tree
from repro.parallel import pmap, spawn_seeds

__all__ = ["Fig4Summary", "Fig4Result", "run_fig4"]


@dataclass(frozen=True, slots=True)
class Fig4Summary:
    """The in-text statistics of Figure 4."""

    n_instances: int
    max_ratio: float
    pct_over_10pct: float
    pct_over_1pct: float
    pct_equal: float
    mean_ratio: float

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("instances", float(self.n_instances)),
            ("max ratio read-once/optimal", self.max_ratio),
            ("% instances >10% worse", self.pct_over_10pct),
            ("% instances >1% worse", self.pct_over_1pct),
            ("% instances equal", self.pct_equal),
            ("mean ratio", self.mean_ratio),
        ]


@dataclass(frozen=True)
class Fig4Result:
    """Per-instance costs of both algorithms over the sweep."""

    optimal_costs: np.ndarray
    read_once_costs: np.ndarray
    leaf_counts: np.ndarray
    rhos: np.ndarray

    @property
    def n_instances(self) -> int:
        return int(self.optimal_costs.size)

    def ratios(self) -> np.ndarray:
        """Per-instance read-once / optimal cost ratio (1.0 where optimal is 0)."""
        out = np.ones_like(self.optimal_costs)
        positive = self.optimal_costs > 0
        out[positive] = self.read_once_costs[positive] / self.optimal_costs[positive]
        return out

    def summary(self) -> Fig4Summary:
        ratios = self.ratios()
        return Fig4Summary(
            n_instances=self.n_instances,
            max_ratio=float(ratios.max()),
            pct_over_10pct=float((ratios > 1.10).mean() * 100.0),
            pct_over_1pct=float((ratios > 1.01).mean() * 100.0),
            pct_equal=float(np.isclose(ratios, 1.0, rtol=1e-12, atol=1e-12).mean() * 100.0),
            mean_ratio=float(ratios.mean()),
        )

    def sorted_series(self) -> tuple[np.ndarray, np.ndarray]:
        """Both cost arrays sorted by increasing optimal cost (the figure's x axis)."""
        order = np.argsort(self.optimal_costs, kind="stable")
        return self.optimal_costs[order], self.read_once_costs[order]

    def by_rho(self) -> dict[float, Fig4Summary]:
        """Summary per sharing ratio (read-once case rho=1 must show ratio 1)."""
        out: dict[float, Fig4Summary] = {}
        for rho in np.unique(self.rhos):
            mask = self.rhos == rho
            sub = Fig4Result(
                optimal_costs=self.optimal_costs[mask],
                read_once_costs=self.read_once_costs[mask],
                leaf_counts=self.leaf_counts[mask],
                rhos=self.rhos[mask],
            )
            out[float(rho)] = sub.summary()
        return out


def _run_cell(
    args: tuple[AndTreeConfig, int, np.random.SeedSequence, str, int]
) -> tuple[list[float], list[float]]:
    """One (m, rho) cell: generate trees, evaluate both algorithms. (Top-level
    for pickling by the process pool.)"""
    config, n_trees, seed_seq, engine, trials = args
    rng = np.random.default_rng(seed_seq)
    # Trial batteries draw from a spawned child stream so the tree sequence
    # is identical to the analytic run with the same seed.
    trial_rng = None if engine == "analytic" else np.random.default_rng(seed_seq.spawn(1)[0])
    if engine != "analytic":
        # Lazy import (engine builds on core/experiments' level, not the reverse).
        from repro.engine.battery import estimate_schedule_cost
    optimal: list[float] = []
    read_once: list[float] = []
    for _ in range(n_trees):
        tree = sample_and_tree(rng, config)
        if engine == "analytic":
            optimal.append(and_tree_cost(tree, algorithm1_order(tree), validate=False))
            read_once.append(and_tree_cost(tree, read_once_order(tree), validate=False))
        else:
            optimal.append(
                estimate_schedule_cost(
                    tree, algorithm1_order(tree), engine=engine, n_trials=trials, rng=trial_rng
                )
            )
            read_once.append(
                estimate_schedule_cost(
                    tree, read_once_order(tree), engine=engine, n_trials=trials, rng=trial_rng
                )
            )
    return optimal, read_once


def run_fig4(
    *,
    trees_per_config: int = 1000,
    leaf_counts: Sequence[int] = FIG4_LEAF_COUNTS,
    rhos: Sequence[float] = FIG4_SHARING_RATIOS,
    seed: int | None = 0,
    workers: int | None = None,
    engine: str = "analytic",
    trials_per_instance: int = 2000,
) -> Fig4Result:
    """Run the Figure 4 sweep (paper scale: ``trees_per_config=1000``).

    ``engine`` selects the cost evaluator: ``"analytic"`` (the closed form,
    default) or a trial engine (``"vectorized"`` / ``"scalar"``) that
    estimates every schedule's cost from ``trials_per_instance`` simulated
    executions — an end-to-end empirical reproduction of the figure.
    Trial engines compose with ``workers`` (process fan-out per grid cell).
    """
    configs = list(fig4_configs(leaf_counts, rhos))
    seeds = spawn_seeds(seed, len(configs))
    cells = pmap(
        _run_cell,
        [
            (config, trees_per_config, seeds[i], engine, trials_per_instance)
            for i, config in enumerate(configs)
        ],
        workers=workers,
    )
    optimal: list[float] = []
    read_once: list[float] = []
    leaf_counts_out: list[int] = []
    rhos_out: list[float] = []
    for config, (opt, ro) in zip(configs, cells):
        optimal.extend(opt)
        read_once.extend(ro)
        leaf_counts_out.extend([config.m] * len(opt))
        rhos_out.extend([config.rho] * len(opt))
    return Fig4Result(
        optimal_costs=np.asarray(optimal),
        read_once_costs=np.asarray(read_once),
        leaf_counts=np.asarray(leaf_counts_out),
        rhos=np.asarray(rhos_out),
    )
