"""Cluster-serving experiment: 1 shard vs K overlap shards vs K random shards.

The unsharded :class:`~repro.service.QueryServer` pays one global
cost-effectiveness merge over the whole population — O(probes x queries) —
and re-pays it on every churn event; with many disjoint interest groups most
of those comparisons are between queries that can never share a window. The
experiment quantifies what stream-overlap sharding buys on an
overlap-clustered population, against both the single-shard baseline and an
overlap-*blind* random partition of the same width (which shows the win is
the partition quality, not just the smaller shard size):

* wall-clock serving throughput (query evaluations per second);
* total expected-cost delta (cut overlap = sharing lost across shards);
* partition quality (kept overlap weight, duplicated stream spend).

:func:`run_cluster_compare` drives all three modes on identical populations
and (per query name) identical oracle streams; :func:`verify_cluster_parity`
is the differential check that a stream-disjoint sharded run reproduces the
unsharded server's per-query costs and outcomes exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.adaptive.elastic import ElasticPolicy
from repro.cluster.cluster import ClusterServer, default_oracle_factory
from repro.cluster.partition import PartitionReport
from repro.errors import StreamError
from repro.generators.churn import churn_schedule, events_by_batch
from repro.obs import Telemetry
from repro.generators.overlap_populations import (
    clustered_registry,
    overlap_clustered_population,
)
from repro.service.server import DEFAULT_SCHEDULER, QueryServer

__all__ = [
    "ClusterModeResult",
    "ClusterCompareReport",
    "ElasticSimReport",
    "run_cluster_compare",
    "run_elastic_sim",
    "verify_cluster_parity",
    "verify_elastic_parity",
]


@dataclass(frozen=True)
class ClusterModeResult:
    """One serving mode's outcome on the common population."""

    label: str
    n_shards: int
    workers: int
    wall_seconds: float
    evals: int
    total_cost: float
    probes: int
    free_probes: int
    items_saved: int
    plan_cache_hit_rate: float
    replans: int
    partition: PartitionReport

    @property
    def throughput(self) -> float:
        return self.evals / self.wall_seconds if self.wall_seconds > 0 else float("inf")


@dataclass
class ClusterCompareReport:
    """All modes side by side, plus the population's shape."""

    n_queries: int
    n_clusters: int
    rounds: int
    cross_cluster_prob: float
    results: list[ClusterModeResult]

    def result(self, label: str) -> ClusterModeResult:
        for result in self.results:
            if result.label == label:
                return result
        raise StreamError(f"no mode labelled {label!r} in this report")

    def speedup(self, label: str, over: str = "single") -> float:
        return self.result(label).throughput / self.result(over).throughput

    @staticmethod
    def summary_headers() -> tuple[str, ...]:
        return (
            "mode",
            "shards",
            "wall s",
            "evals/s",
            "total cost",
            "kept overlap",
            "dup spend",
            "free probes",
            "hit rate",
        )

    def summary_rows(self) -> list[tuple]:
        rows = []
        for result in self.results:
            rows.append(
                (
                    result.label,
                    result.n_shards,
                    f"{result.wall_seconds:.3f}",
                    f"{result.throughput:,.0f}",
                    f"{result.total_cost:.6g}",
                    f"{result.partition.kept_fraction:.1%}",
                    f"{result.partition.duplicated_stream_cost:.4g}",
                    f"{result.free_probes}/{result.probes}",
                    f"{result.plan_cache_hit_rate:.0%}",
                )
            )
        return rows

    def to_record(self) -> dict:
        """JSON-ready record for the benchmark trajectory."""
        return {
            "n_queries": self.n_queries,
            "n_clusters": self.n_clusters,
            "rounds": self.rounds,
            "cross_cluster_prob": self.cross_cluster_prob,
            "modes": [
                {
                    "label": result.label,
                    "n_shards": result.n_shards,
                    "workers": result.workers,
                    "wall_seconds": result.wall_seconds,
                    "throughput": result.throughput,
                    "total_cost": result.total_cost,
                    "partition": result.partition.to_record(),
                }
                for result in self.results
            ],
            "sharded_over_single": self.speedup("overlap-sharded"),
            "random_over_single": self.speedup("random-sharded"),
        }


def _build_environment(
    n_queries: int,
    n_clusters: int,
    streams_per_cluster: int,
    cross_cluster_prob: float,
    seed: int,
    rounds: int,
    warmup: int,
):
    """Fresh registry + population for one mode, tapes pre-generated.

    Pre-generating the source tapes keeps lazy item generation out of the
    timed window, so mode order cannot bias the throughput comparison.
    """
    registry = clustered_registry(n_clusters, streams_per_cluster, seed=seed)
    population = overlap_clustered_population(
        n_queries,
        registry,
        n_clusters,
        streams_per_cluster,
        cross_cluster_prob=cross_cluster_prob,
        seed=seed + 1,
    )
    horizon = warmup + rounds + max(
        leaf.items for _, tree in population for leaf in tree.leaves
    )
    for name in registry.names:
        registry.source(name).value_at(horizon)
    return registry, population


def run_cluster_compare(
    *,
    n_queries: int = 300,
    n_clusters: int = 8,
    n_shards: int | None = None,
    streams_per_cluster: int = 4,
    rounds: int = 10,
    cross_cluster_prob: float = 0.0,
    workers: int | None = None,
    executor: str = "thread",
    scheduler: str = DEFAULT_SCHEDULER,
    engine: str = "scalar",
    warmup: int = 64,
    seed: int = 0,
    telemetry: "Telemetry | None" = None,
) -> ClusterCompareReport:
    """Serve one overlap-clustered population three ways and compare.

    Modes: ``single`` (1 shard, serial — the unsharded baseline),
    ``overlap-sharded`` (the stream-overlap partition on ``n_shards``
    concurrent shards) and ``random-sharded`` (same width, overlap-blind
    placement). Every mode rebuilds the identical environment per ``seed``
    and draws per-query oracles by name, so cost differences are placement
    effects, not sampling noise.

    ``telemetry`` instruments the *overlap-sharded* mode only (the mode the
    comparison is about); wiring it into all three would interleave three
    unrelated runs in one trace.
    """
    if n_shards is None:
        n_shards = n_clusters
    modes = [
        ("single", 1, "overlap", 1),
        ("overlap-sharded", n_shards, "overlap", workers),
        ("random-sharded", n_shards, "random", workers),
    ]
    results: list[ClusterModeResult] = []
    for label, width, method, mode_workers in modes:
        registry, population = _build_environment(
            n_queries,
            n_clusters,
            streams_per_cluster,
            cross_cluster_prob,
            seed,
            rounds,
            warmup,
        )
        cluster = ClusterServer(
            registry,
            n_shards=width,
            workers=mode_workers,
            # The single-shard baseline stays in-process even under
            # executor="process": it is the unsharded reference, and one
            # worker process would only add pipe overhead to it.
            executor=executor if label != "single" else "thread",
            scheduler=scheduler,
            warmup=warmup,
            seed=seed,
            telemetry=telemetry if label == "overlap-sharded" else None,
        )
        partition = cluster.register_population(population, method=method)
        report = cluster.run_batch(rounds, engine=engine)
        cluster.close()
        results.append(
            ClusterModeResult(
                label=label,
                n_shards=len(report.shard_reports),
                workers=report.workers,
                # The report's own wall clock, so this table's evals/s and
                # ClusterReport.throughput cannot disagree for the same run.
                wall_seconds=report.wall_seconds,
                evals=report.evals,
                total_cost=report.total_cost,
                probes=report.probes,
                free_probes=report.free_probes,
                items_saved=report.items_saved,
                plan_cache_hit_rate=report.plan_cache_hit_rate,
                replans=report.replans,
                partition=partition.report,
            )
        )
    return ClusterCompareReport(
        n_queries=n_queries,
        n_clusters=n_clusters,
        rounds=rounds,
        cross_cluster_prob=cross_cluster_prob,
        results=results,
    )


def verify_cluster_parity(
    *,
    n_queries: int = 60,
    n_clusters: int = 4,
    streams_per_cluster: int = 4,
    rounds: int = 8,
    engine: str = "scalar",
    executor: str = "thread",
    seed: int = 0,
    atol: float = 1e-9,
) -> dict[str, float]:
    """Differential check: K-shard serving == unsharded serving, per query.

    Runs a stream-disjoint clustered population through a ``n_clusters``-shard
    :class:`ClusterServer` and through one unsharded :class:`QueryServer`
    with the same per-name oracles, and asserts per-query costs and TRUE
    rates agree exactly. Returns the per-query absolute cost deltas (all
    ~0.0) for reporting. Raises :class:`~repro.errors.StreamError` on any
    divergence.
    """
    registry = clustered_registry(n_clusters, streams_per_cluster, seed=seed)
    population = overlap_clustered_population(
        n_queries,
        registry,
        n_clusters,
        streams_per_cluster,
        cross_cluster_prob=0.0,
        seed=seed + 1,
    )
    cluster = ClusterServer(
        registry, n_shards=n_clusters, executor=executor, seed=seed + 2
    )
    cluster.register_population(population)
    cluster_report = cluster.run_batch(rounds, engine=engine)
    cluster.close()

    single = QueryServer(registry)
    factory = default_oracle_factory(seed + 2)
    for name, tree in population:
        single.register(name, tree, oracle=factory(name))
    single_report = single.run_batch(rounds, engine=engine)

    deltas: dict[str, float] = {}
    for name in single_report.per_query_cost:
        delta = abs(
            single_report.per_query_cost[name] - cluster_report.per_query_cost[name]
        )
        deltas[name] = delta
        if delta > atol:
            raise StreamError(
                f"parity violation: query {name!r} cost differs by {delta:.3g} "
                "between sharded and unsharded serving"
            )
        if (
            single_report.per_query_true_rate[name]
            != cluster_report.per_query_true_rate[name]
        ):
            raise StreamError(
                f"parity violation: query {name!r} TRUE rate differs between "
                "sharded and unsharded serving"
            )
    return deltas


def verify_elastic_parity(
    *,
    n_queries: int = 48,
    n_clusters: int = 4,
    streams_per_cluster: int = 3,
    rounds: int = 4,
    engine: str = "scalar",
    executor: str = "thread",
    seed: int = 0,
    elastic: ElasticPolicy | None = None,
    atol: float = 0.0,
) -> dict[str, float]:
    """Differential check: elastic topology changes never change any cost.

    Drives one clustered population through a scripted gauntlet of online
    topology changes — batch, split the busiest shard, batch, grow to
    ``n_clusters`` shards, batch, drain a shard, batch, shrink back to two
    shards, batch — while an unsharded :class:`QueryServer` with the same
    per-name oracles serves the identical batch sequence. Per-query costs
    accumulated over the whole run must agree to ``atol`` (default:
    bit-identical) and TRUE counts exactly, or :class:`StreamError` is
    raised. Passing an :class:`~repro.adaptive.ElasticPolicy` additionally
    lets auto-rebalance fire mid-gauntlet; migration-based rebalancing is
    cost-preserving on clean populations, so parity must still hold.
    Returns per-query absolute cost deltas.
    """
    registry = clustered_registry(n_clusters, streams_per_cluster, seed=seed)
    population = overlap_clustered_population(
        n_queries,
        registry,
        n_clusters,
        streams_per_cluster,
        cross_cluster_prob=0.0,
        seed=seed + 1,
    )
    cluster = ClusterServer(
        registry, n_shards=2, executor=executor, seed=seed + 2, elastic=elastic
    )
    cluster.register_population(population)
    single = QueryServer(registry)
    factory = default_oracle_factory(seed + 2)
    for name, tree in population:
        single.register(name, tree, oracle=factory(name))

    cluster_cost: dict[str, float] = {name: 0.0 for name, _ in population}
    single_cost: dict[str, float] = {name: 0.0 for name, _ in population}
    cluster_true: dict[str, float] = {name: 0.0 for name, _ in population}
    single_true: dict[str, float] = {name: 0.0 for name, _ in population}

    def run_phase() -> None:
        creport = cluster.run_batch(rounds, engine=engine)
        sreport = single.run_batch(rounds, engine=engine)
        for name in sreport.per_query_cost:
            cluster_cost[name] += creport.per_query_cost[name]
            single_cost[name] += sreport.per_query_cost[name]
            cluster_true[name] += creport.per_query_true_rate[name] * rounds
            single_true[name] += sreport.per_query_true_rate[name] * rounds

    run_phase()
    busiest = max(cluster.shards, key=lambda sid: len(cluster.shards[sid]))
    cluster.split_shard(busiest, into=2)
    run_phase()
    cluster.resize(n_clusters)
    run_phase()
    victim = min(
        (sid for sid in cluster.shards if len(cluster.shards[sid])),
        key=lambda sid: len(cluster.shards[sid]),
    )
    cluster.drain_shard(victim)
    run_phase()
    cluster.resize(2)
    run_phase()
    cluster.close()

    deltas: dict[str, float] = {}
    for name in single_cost:
        delta = abs(single_cost[name] - cluster_cost[name])
        deltas[name] = delta
        if delta > atol:
            raise StreamError(
                f"elastic parity violation: query {name!r} cost differs by "
                f"{delta:.3g} across the split/drain/resize gauntlet"
            )
        if single_true[name] != cluster_true[name]:
            raise StreamError(
                f"elastic parity violation: query {name!r} TRUE count differs "
                "across the split/drain/resize gauntlet"
            )
    return deltas


@dataclass
class ElasticSimReport:
    """Timeline of an elastic cluster serving a churning population."""

    batches: int
    rounds_per_batch: int
    #: Per batch: (batch, admitted, departed, population, width, cost, actions).
    timeline: list[tuple[int, int, int, int, int, float, tuple[str, ...]]] = field(
        default_factory=list
    )
    total_cost: float = 0.0
    wall_seconds: float = 0.0
    evals: int = 0
    splits: int = 0
    drains: int = 0
    rebalances: int = 0
    final_partition: PartitionReport | None = None

    @property
    def throughput(self) -> float:
        return self.evals / self.wall_seconds if self.wall_seconds > 0 else float("inf")

    @property
    def peak_width(self) -> int:
        return max((row[4] for row in self.timeline), default=0)

    @staticmethod
    def summary_headers() -> tuple[str, ...]:
        return ("batch", "+in", "-out", "queries", "shards", "cost", "elastic actions")

    def summary_rows(self) -> list[tuple]:
        rows = []
        for batch, admitted, departed, population, width, cost, actions in self.timeline:
            rows.append(
                (
                    batch,
                    admitted,
                    departed,
                    population,
                    width,
                    f"{cost:.6g}",
                    "; ".join(a.split(": ", 1)[-1] for a in actions) or "-",
                )
            )
        return rows

    def to_record(self) -> dict:
        """JSON-ready record for the benchmark trajectory."""
        return {
            "batches": self.batches,
            "rounds_per_batch": self.rounds_per_batch,
            "total_cost": self.total_cost,
            "wall_seconds": self.wall_seconds,
            "throughput": self.throughput,
            "evals": self.evals,
            "splits": self.splits,
            "drains": self.drains,
            "rebalances": self.rebalances,
            "peak_width": self.peak_width,
            "final_partition": (
                self.final_partition.to_record()
                if self.final_partition is not None
                else None
            ),
            "width_timeline": [row[4] for row in self.timeline],
        }


def run_elastic_sim(
    *,
    n_queries: int = 240,
    n_clusters: int = 6,
    streams_per_cluster: int = 4,
    batches: int = 12,
    rounds_per_batch: int = 4,
    mean_lifetime: float = 6.0,
    policy: ElasticPolicy | None = None,
    start_shards: int = 2,
    workers: int | None = None,
    executor: str = "thread",
    scheduler: str = DEFAULT_SCHEDULER,
    engine: str = "scalar",
    warmup: int = 64,
    seed: int = 0,
    telemetry: "Telemetry | None" = None,
) -> ElasticSimReport:
    """Serve a churn-over-time population on a self-managing elastic cluster.

    A :func:`~repro.generators.churn.churn_schedule` drives admissions and
    departures between batches; the cluster starts at ``start_shards`` wide
    and the :class:`~repro.adaptive.ElasticPolicy` (default: an occupancy
    target sized to the expected per-cluster load) grows, shrinks and
    rebalances it as the population churns. The report's timeline records
    the width trajectory and every elastic action taken.
    """
    if policy is None:
        target = max(8, n_queries // max(1, n_clusters))
        policy = ElasticPolicy(
            target_shard_queries=target,
            min_split_size=max(4, target // 2),
            churn_every=max(1, n_queries // 2),
        )
    registry = clustered_registry(n_clusters, streams_per_cluster, seed=seed)
    schedule = events_by_batch(
        churn_schedule(
            n_queries,
            registry,
            n_clusters,
            streams_per_cluster,
            batches=batches,
            mean_lifetime=mean_lifetime,
            seed=seed + 1,
        )
    )
    cluster = ClusterServer(
        registry,
        n_shards=start_shards,
        workers=workers,
        executor=executor,
        scheduler=scheduler,
        warmup=warmup,
        elastic=policy,
        seed=seed + 2,
        telemetry=telemetry,
    )
    report = ElasticSimReport(batches=batches, rounds_per_batch=rounds_per_batch)
    for batch in range(batches):
        admitted = departed = 0
        for event in schedule.get(batch, []):
            if event.action == "depart":
                if event.name in cluster:
                    cluster.deregister(event.name)
                    departed += 1
            else:
                cluster.register(event.name, event.tree)
                admitted += 1
        if not len(cluster):
            report.timeline.append((batch, admitted, departed, 0, cluster.n_shards, 0.0, ()))
            continue
        start = time.perf_counter()
        batch_report = cluster.run_batch(rounds_per_batch, engine=engine)
        report.wall_seconds += time.perf_counter() - start
        report.total_cost += batch_report.total_cost
        report.evals += batch_report.evals
        report.timeline.append(
            (
                batch,
                admitted,
                departed,
                len(cluster),
                cluster.n_shards,
                batch_report.total_cost,
                batch_report.elastic_actions,
            )
        )
    report.splits = cluster.splits
    report.drains = cluster.drains
    report.rebalances = len(cluster.rebalances)
    if len(cluster):
        report.final_partition = cluster.partition_report()
    cluster.close()
    return report
