"""Cluster-serving experiment: 1 shard vs K overlap shards vs K random shards.

The unsharded :class:`~repro.service.QueryServer` pays one global
cost-effectiveness merge over the whole population — O(probes x queries) —
and re-pays it on every churn event; with many disjoint interest groups most
of those comparisons are between queries that can never share a window. The
experiment quantifies what stream-overlap sharding buys on an
overlap-clustered population, against both the single-shard baseline and an
overlap-*blind* random partition of the same width (which shows the win is
the partition quality, not just the smaller shard size):

* wall-clock serving throughput (query evaluations per second);
* total expected-cost delta (cut overlap = sharing lost across shards);
* partition quality (kept overlap weight, duplicated stream spend).

:func:`run_cluster_compare` drives all three modes on identical populations
and (per query name) identical oracle streams; :func:`verify_cluster_parity`
is the differential check that a stream-disjoint sharded run reproduces the
unsharded server's per-query costs and outcomes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.cluster import ClusterServer, default_oracle_factory
from repro.cluster.partition import PartitionReport
from repro.errors import StreamError
from repro.generators.overlap_populations import (
    clustered_registry,
    overlap_clustered_population,
)
from repro.service.server import DEFAULT_SCHEDULER, QueryServer

__all__ = [
    "ClusterModeResult",
    "ClusterCompareReport",
    "run_cluster_compare",
    "verify_cluster_parity",
]


@dataclass(frozen=True)
class ClusterModeResult:
    """One serving mode's outcome on the common population."""

    label: str
    n_shards: int
    workers: int
    wall_seconds: float
    evals: int
    total_cost: float
    probes: int
    free_probes: int
    items_saved: int
    plan_cache_hit_rate: float
    replans: int
    partition: PartitionReport

    @property
    def throughput(self) -> float:
        return self.evals / self.wall_seconds if self.wall_seconds > 0 else float("inf")


@dataclass
class ClusterCompareReport:
    """All modes side by side, plus the population's shape."""

    n_queries: int
    n_clusters: int
    rounds: int
    cross_cluster_prob: float
    results: list[ClusterModeResult]

    def result(self, label: str) -> ClusterModeResult:
        for result in self.results:
            if result.label == label:
                return result
        raise StreamError(f"no mode labelled {label!r} in this report")

    def speedup(self, label: str, over: str = "single") -> float:
        return self.result(label).throughput / self.result(over).throughput

    @staticmethod
    def summary_headers() -> tuple[str, ...]:
        return (
            "mode",
            "shards",
            "wall s",
            "evals/s",
            "total cost",
            "kept overlap",
            "dup spend",
            "free probes",
            "hit rate",
        )

    def summary_rows(self) -> list[tuple]:
        rows = []
        for result in self.results:
            rows.append(
                (
                    result.label,
                    result.n_shards,
                    f"{result.wall_seconds:.3f}",
                    f"{result.throughput:,.0f}",
                    f"{result.total_cost:.6g}",
                    f"{result.partition.kept_fraction:.1%}",
                    f"{result.partition.duplicated_stream_cost:.4g}",
                    f"{result.free_probes}/{result.probes}",
                    f"{result.plan_cache_hit_rate:.0%}",
                )
            )
        return rows

    def to_record(self) -> dict:
        """JSON-ready record for the benchmark trajectory."""
        return {
            "n_queries": self.n_queries,
            "n_clusters": self.n_clusters,
            "rounds": self.rounds,
            "cross_cluster_prob": self.cross_cluster_prob,
            "modes": [
                {
                    "label": result.label,
                    "n_shards": result.n_shards,
                    "workers": result.workers,
                    "wall_seconds": result.wall_seconds,
                    "throughput": result.throughput,
                    "total_cost": result.total_cost,
                    "partition": result.partition.to_record(),
                }
                for result in self.results
            ],
            "sharded_over_single": self.speedup("overlap-sharded"),
            "random_over_single": self.speedup("random-sharded"),
        }


def _build_environment(
    n_queries: int,
    n_clusters: int,
    streams_per_cluster: int,
    cross_cluster_prob: float,
    seed: int,
    rounds: int,
    warmup: int,
):
    """Fresh registry + population for one mode, tapes pre-generated.

    Pre-generating the source tapes keeps lazy item generation out of the
    timed window, so mode order cannot bias the throughput comparison.
    """
    registry = clustered_registry(n_clusters, streams_per_cluster, seed=seed)
    population = overlap_clustered_population(
        n_queries,
        registry,
        n_clusters,
        streams_per_cluster,
        cross_cluster_prob=cross_cluster_prob,
        seed=seed + 1,
    )
    horizon = warmup + rounds + max(
        leaf.items for _, tree in population for leaf in tree.leaves
    )
    for name in registry.names:
        registry.source(name).value_at(horizon)
    return registry, population


def run_cluster_compare(
    *,
    n_queries: int = 300,
    n_clusters: int = 8,
    n_shards: int | None = None,
    streams_per_cluster: int = 4,
    rounds: int = 10,
    cross_cluster_prob: float = 0.0,
    workers: int | None = None,
    scheduler: str = DEFAULT_SCHEDULER,
    engine: str = "scalar",
    warmup: int = 64,
    seed: int = 0,
) -> ClusterCompareReport:
    """Serve one overlap-clustered population three ways and compare.

    Modes: ``single`` (1 shard, serial — the unsharded baseline),
    ``overlap-sharded`` (the stream-overlap partition on ``n_shards``
    concurrent shards) and ``random-sharded`` (same width, overlap-blind
    placement). Every mode rebuilds the identical environment per ``seed``
    and draws per-query oracles by name, so cost differences are placement
    effects, not sampling noise.
    """
    if n_shards is None:
        n_shards = n_clusters
    modes = [
        ("single", 1, "overlap", 1),
        ("overlap-sharded", n_shards, "overlap", workers),
        ("random-sharded", n_shards, "random", workers),
    ]
    results: list[ClusterModeResult] = []
    for label, width, method, mode_workers in modes:
        registry, population = _build_environment(
            n_queries,
            n_clusters,
            streams_per_cluster,
            cross_cluster_prob,
            seed,
            rounds,
            warmup,
        )
        cluster = ClusterServer(
            registry,
            n_shards=width,
            workers=mode_workers,
            scheduler=scheduler,
            warmup=warmup,
            seed=seed,
        )
        partition = cluster.register_population(population, method=method)
        report = cluster.run_batch(rounds, engine=engine)
        results.append(
            ClusterModeResult(
                label=label,
                n_shards=len(report.shard_reports),
                workers=report.workers,
                # The report's own wall clock, so this table's evals/s and
                # ClusterReport.throughput cannot disagree for the same run.
                wall_seconds=report.wall_seconds,
                evals=report.evals,
                total_cost=report.total_cost,
                probes=report.probes,
                free_probes=report.free_probes,
                items_saved=report.items_saved,
                plan_cache_hit_rate=report.plan_cache_hit_rate,
                replans=report.replans,
                partition=partition.report,
            )
        )
    return ClusterCompareReport(
        n_queries=n_queries,
        n_clusters=n_clusters,
        rounds=rounds,
        cross_cluster_prob=cross_cluster_prob,
        results=results,
    )


def verify_cluster_parity(
    *,
    n_queries: int = 60,
    n_clusters: int = 4,
    streams_per_cluster: int = 4,
    rounds: int = 8,
    engine: str = "scalar",
    seed: int = 0,
    atol: float = 1e-9,
) -> dict[str, float]:
    """Differential check: K-shard serving == unsharded serving, per query.

    Runs a stream-disjoint clustered population through a ``n_clusters``-shard
    :class:`ClusterServer` and through one unsharded :class:`QueryServer`
    with the same per-name oracles, and asserts per-query costs and TRUE
    rates agree exactly. Returns the per-query absolute cost deltas (all
    ~0.0) for reporting. Raises :class:`~repro.errors.StreamError` on any
    divergence.
    """
    registry = clustered_registry(n_clusters, streams_per_cluster, seed=seed)
    population = overlap_clustered_population(
        n_queries,
        registry,
        n_clusters,
        streams_per_cluster,
        cross_cluster_prob=0.0,
        seed=seed + 1,
    )
    cluster = ClusterServer(registry, n_shards=n_clusters, seed=seed + 2)
    cluster.register_population(population)
    cluster_report = cluster.run_batch(rounds, engine=engine)

    single = QueryServer(registry)
    factory = default_oracle_factory(seed + 2)
    for name, tree in population:
        single.register(name, tree, oracle=factory(name))
    single_report = single.run_batch(rounds, engine=engine)

    deltas: dict[str, float] = {}
    for name in single_report.per_query_cost:
        delta = abs(
            single_report.per_query_cost[name] - cluster_report.per_query_cost[name]
        )
        deltas[name] = delta
        if delta > atol:
            raise StreamError(
                f"parity violation: query {name!r} cost differs by {delta:.3g} "
                "between sharded and unsharded serving"
            )
        if (
            single_report.per_query_true_rate[name]
            != cluster_report.per_query_true_rate[name]
        ):
            raise StreamError(
                f"parity violation: query {name!r} TRUE rate differs between "
                "sharded and unsharded serving"
            )
    return deltas
