"""Online per-leaf selectivity estimation from observed probe outcomes.

Every probe the execution engine actually evaluates is a Bernoulli sample of
its leaf's *current* success probability. :class:`LeafPosterior` maintains a
Beta posterior over those samples twice: once over the leaf's lifetime (the
long-run estimate) and once over a bounded sliding window (the drift
detector's view — old evidence ages out, so a regime change shows up within
one window instead of being averaged away by history).

:class:`SelectivityTracker` is a keyed collection of posteriors. The serving
layer keys it by ``(canonical key, canonical leaf index)`` so observations
pool across every isomorphic registered query — the more users share a query
shape, the faster its drift is detected ("pay one, get hundreds" applied to
evidence instead of data items).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Hashable, Iterator

from repro.errors import StreamError
from repro.streams.traces import estimate_probability

__all__ = ["LeafPosterior", "SelectivityTracker", "SharedLeafPool"]


class LeafPosterior:
    """Beta-posterior selectivity estimate with a sliding drift window.

    Parameters
    ----------
    window:
        Number of most recent outcomes the drift detector considers.
    prior:
        Beta prior ``(alpha, beta)``; the default Laplace prior keeps
        estimates strictly inside (0, 1), as the ratio schedulers require.
    """

    __slots__ = ("window", "prior", "_recent", "_recent_successes", "trials", "successes")

    def __init__(self, window: int = 256, prior: tuple[float, float] = (1.0, 1.0)) -> None:
        if window < 1:
            raise StreamError(f"posterior window must be >= 1, got {window}")
        alpha, beta = prior
        if alpha <= 0.0 or beta <= 0.0:
            raise StreamError(f"Beta prior must be positive, got {prior}")
        self.window = int(window)
        self.prior = (float(alpha), float(beta))
        self._recent: deque[bool] = deque(maxlen=self.window)
        self._recent_successes = 0
        self.trials = 0
        self.successes = 0

    def observe(self, outcome: bool) -> None:
        """Fold one probe outcome into both the lifetime and window counts."""
        outcome = bool(outcome)
        if len(self._recent) == self.window:
            if self._recent[0]:
                self._recent_successes -= 1
        self._recent.append(outcome)
        if outcome:
            self._recent_successes += 1
            self.successes += 1
        self.trials += 1

    @property
    def window_trials(self) -> int:
        return len(self._recent)

    @property
    def window_successes(self) -> int:
        return self._recent_successes

    @property
    def mean(self) -> float:
        """Lifetime Beta-posterior mean."""
        return estimate_probability(self.successes, self.trials, prior=self.prior)

    @property
    def window_mean(self) -> float:
        """Posterior mean over the sliding window only (the drift signal)."""
        return estimate_probability(
            self._recent_successes, len(self._recent), prior=self.prior
        )

    def divergence(self, reference: float) -> float:
        """Absolute gap between the window estimate and ``reference``."""
        return abs(self.window_mean - float(reference))

    def reset_window(self) -> None:
        """Drop the sliding window (lifetime counts are retained).

        Called after a re-plan so drift is measured against the *new* plan's
        probabilities from fresh evidence, not against evidence that already
        triggered a re-plan.
        """
        self._recent.clear()
        self._recent_successes = 0

    def clone(self) -> "LeafPosterior":
        """An independent copy (same evidence, separately mutable).

        Shard migration transplants posteriors between servers; a clone keeps
        the source and destination trackers from sharing mutable state when
        isomorphs of the same shape stay behind.
        """
        copy = LeafPosterior(window=self.window, prior=self.prior)
        copy._recent.extend(self._recent)
        copy._recent_successes = self._recent_successes
        copy.trials = self.trials
        copy.successes = self.successes
        return copy

    def __repr__(self) -> str:
        return (
            f"LeafPosterior(mean={self.mean:.3f}, window_mean={self.window_mean:.3f}, "
            f"trials={self.trials}, window={self.window_trials}/{self.window})"
        )


class SelectivityTracker:
    """Keyed collection of :class:`LeafPosterior` estimators."""

    def __init__(self, window: int = 256, prior: tuple[float, float] = (1.0, 1.0)) -> None:
        self.window = window
        self.prior = prior
        self._posteriors: dict[Hashable, LeafPosterior] = {}

    def __len__(self) -> int:
        return len(self._posteriors)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._posteriors

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._posteriors)

    def posterior(self, key: Hashable) -> LeafPosterior:
        """The (auto-created) posterior for ``key``."""
        posterior = self._posteriors.get(key)
        if posterior is None:
            posterior = LeafPosterior(window=self.window, prior=self.prior)
            self._posteriors[key] = posterior
        return posterior

    def get(self, key: Hashable) -> LeafPosterior | None:
        return self._posteriors.get(key)

    def observe(self, key: Hashable, outcome: bool) -> None:
        self.posterior(key).observe(outcome)

    def estimate(self, key: Hashable, default: float) -> float:
        """Window-posterior estimate for ``key``; ``default`` when unobserved."""
        posterior = self._posteriors.get(key)
        if posterior is None or posterior.window_trials == 0:
            return float(default)
        return posterior.window_mean

    def drop(self, key: Hashable) -> None:
        self._posteriors.pop(key, None)

    def adopt(self, key: Hashable, posterior: LeafPosterior) -> None:
        """Install a transplanted posterior for ``key`` (no-op if tracked).

        An existing posterior wins: it already pools the local isomorphs'
        evidence, which a migrated copy would clobber.
        """
        if key not in self._posteriors:
            self._posteriors[key] = posterior

    def snapshot(self) -> dict[Hashable, tuple[float, int]]:
        """``key -> (window_mean, window_trials)`` for metrics export."""
        return {
            key: (posterior.window_mean, posterior.window_trials)
            for key, posterior in self._posteriors.items()
        }


class SharedLeafPool:
    """Cross-shape selectivity evidence keyed by per-copy leaf identity.

    The :class:`SelectivityTracker` pools observations across *isomorphs* of
    one canonical shape; this pool moves sharing down to interned-subtree
    granularity: the key is a leaf identity — in practice an
    :class:`~repro.service.substore.InternedLeaf` of ``(stream, items,
    quantized base prob)``, any hashable works — so evidence observed under
    one query shape warm-starts every later shape containing the same leaf.

    The pool never *drives* drift decisions directly; it only seeds new
    shapes' posteriors (:meth:`warm_start` returns an independent clone) and
    keeps absorbing outcomes. Bounded LRU so a churning population cannot
    grow it without limit.
    """

    def __init__(
        self,
        window: int = 256,
        prior: tuple[float, float] = (1.0, 1.0),
        capacity: int = 4096,
    ) -> None:
        if capacity < 1:
            raise StreamError(f"pool capacity must be >= 1, got {capacity}")
        self.window = window
        self.prior = prior
        self.capacity = capacity
        self._posteriors: OrderedDict[Hashable, LeafPosterior] = OrderedDict()

    def __len__(self) -> int:
        return len(self._posteriors)

    def __contains__(self, leaf_id: Hashable) -> bool:
        return leaf_id in self._posteriors

    def observe(self, leaf_id: Hashable, outcome: bool) -> None:
        """Fold one probe outcome into the pooled posterior for ``leaf_id``."""
        posterior = self._posteriors.get(leaf_id)
        if posterior is None:
            posterior = LeafPosterior(window=self.window, prior=self.prior)
            self._posteriors[leaf_id] = posterior
            while len(self._posteriors) > self.capacity:
                self._posteriors.popitem(last=False)
        else:
            self._posteriors.move_to_end(leaf_id)
        posterior.observe(outcome)

    def warm_start(self, leaf_id: Hashable) -> LeafPosterior | None:
        """An independent clone of the pooled evidence; None when unobserved.

        A clone, not the pooled posterior itself: the adopting shape's
        tracker mutates its copy (window resets on re-plan), which must not
        corrupt the shared evidence other shapes will seed from.
        """
        posterior = self._posteriors.get(leaf_id)
        if posterior is None or posterior.trials == 0:
            return None
        self._posteriors.move_to_end(leaf_id)
        return posterior.clone()
