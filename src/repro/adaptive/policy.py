"""Adaptivity knobs and the re-plan audit record.

:class:`AdaptivePolicy` is the value object users hand to
``QueryServer(adaptive=...)``; it is pure configuration (no state), so one
policy can parameterize many servers. :class:`ReplanEvent` records one
re-planning decision — enough to audit *why* the server changed a plan and
*what* it changed it to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schedule import Schedule
from repro.errors import StreamError

__all__ = ["AdaptivePolicy", "ReplanEvent"]


@dataclass(frozen=True)
class AdaptivePolicy:
    """Configuration of the adaptive serving loop.

    Parameters
    ----------
    window:
        Sliding-window size of the per-leaf posteriors; the drift detector
        compares this window's posterior mean against the probability the
        current plan assumed.
    threshold:
        Absolute divergence that counts as drift (e.g. ``0.15`` — the leaf's
        observed selectivity moved more than 15 points away from the plan's
        assumption).
    min_samples:
        Minimum window observations of a leaf before it may be declared
        drifted (guards against noise triggering re-plans).
    cooldown:
        Minimum rounds between two re-plans of the same canonical query
        shape (plan stability / thrash guard).
    prior:
        Beta prior of the posteriors; the default Laplace prior keeps
        estimates strictly inside (0, 1).
    min_saving:
        Re-plan hysteresis: a drift-triggered re-plan is *suppressed* when
        its :attr:`ReplanEvent.expected_saving` (per-round expected cost the
        new schedule saves under the new probabilities) falls below this
        threshold — the drifted probabilities are adopted as the new belief
        baseline, but the schedule swap is skipped as not worth the churn.
        ``0.0`` (default) disables hysteresis; forced re-plans always apply.
    share_leaf_beliefs:
        Pool selectivity evidence *across* canonical shapes through a
        :class:`~repro.adaptive.tracker.SharedLeafPool` keyed by interned
        per-copy leaf identity ``(stream, items, base prob)``. A newly
        admitted shape whose leaves were already observed under other
        shapes starts from their pooled posterior instead of the prior —
        sub-tree-granular "pay one, get hundreds" for evidence. Off by
        default: pooling makes a shape's drift clock depend on which other
        shapes are co-resident, which the placement-independence guarantees
        of the cluster differential harness deliberately exclude.
    """

    window: int = 128
    threshold: float = 0.15
    min_samples: int = 24
    cooldown: int = 16
    prior: tuple[float, float] = (1.0, 1.0)
    min_saving: float = 0.0
    share_leaf_beliefs: bool = False

    def __post_init__(self) -> None:
        if self.window < 1:
            raise StreamError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.threshold < 1.0:
            raise StreamError(f"threshold must be in (0, 1), got {self.threshold}")
        if self.min_samples < 1:
            raise StreamError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.min_samples > self.window:
            raise StreamError(
                f"min_samples ({self.min_samples}) cannot exceed the window "
                f"({self.window}); the window would never hold enough evidence"
            )
        if self.cooldown < 0:
            raise StreamError(f"cooldown must be >= 0, got {self.cooldown}")
        alpha, beta = self.prior
        if alpha <= 0.0 or beta <= 0.0:
            raise StreamError(f"Beta prior must be positive, got {self.prior}")
        if self.min_saving < 0.0:
            raise StreamError(f"min_saving must be >= 0, got {self.min_saving}")


@dataclass(frozen=True)
class ReplanEvent:
    """One re-planning decision taken by the serving layer."""

    round_index: int
    canonical_key: str
    #: Canonical leaf indices whose posterior diverged past the threshold
    #: (empty for forced/oracle re-plans).
    drifted_leaves: tuple[int, ...]
    #: Probabilities the outgoing plan assumed, per canonical leaf.
    old_probs: tuple[float, ...]
    #: Probabilities the new plan was computed with, per canonical leaf.
    new_probs: tuple[float, ...]
    old_schedule: Schedule
    new_schedule: Schedule
    #: Expected cost of the outgoing schedule *under the new probabilities*.
    old_cost: float
    #: Expected cost of the new schedule under the new probabilities.
    new_cost: float
    #: Plan-cache entries dropped by the re-plan.
    invalidated: int
    #: Registered queries whose expanded schedule was rebuilt.
    queries: tuple[str, ...] = field(default_factory=tuple)
    #: "drift" for detector-triggered re-plans, "forced" for explicit ones.
    reason: str = "drift"

    @property
    def schedule_changed(self) -> bool:
        return self.old_schedule != self.new_schedule

    @property
    def expected_saving(self) -> float:
        """Per-round expected cost the new schedule saves, under new probs."""
        return self.old_cost - self.new_cost

    def describe(self) -> str:
        moved = ", ".join(
            f"leaf {g}: {self.old_probs[g]:.3f}->{self.new_probs[g]:.3f}"
            for g in self.drifted_leaves
        )
        return (
            f"round {self.round_index}: replan {self.canonical_key[:12]} "
            f"({self.reason}; {moved or 'forced'}) "
            f"cost {self.old_cost:.4g} -> {self.new_cost:.4g} "
            f"across {len(self.queries)} queries"
        )
