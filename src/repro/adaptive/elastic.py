"""Elastic cluster-width policy: when to split, drain and rebalance shards.

:class:`ElasticPolicy` is to :class:`~repro.cluster.cluster.ClusterServer`
what :class:`~repro.adaptive.policy.AdaptivePolicy` is to
:class:`~repro.service.server.QueryServer`: pure configuration (no state),
evaluated by the cluster after each batch. It closes the serving layer's
last operator loop — the paper's cost-optimal schedules only pay at scale
when sharing is kept where the cost model says it pays, and a fixed shard
topology drifts away from that as queries arrive, depart and re-plan. The
policy reads three signals:

* **load imbalance** — shard sizes against the ideal (population / width),
  from the cluster's own occupancy; an overloaded shard is *split* along
  its stream-disjoint sub-clusters, an underloaded one is *drained*;
* **churn and drift** — admission/departure counts and the per-shard
  :class:`~repro.adaptive.controller.AdaptiveController` re-plan counters;
  sustained churn or drift means the admission-time placement has gone
  stale, triggering a *rebalance*;
* **cut spend** — the live :class:`~repro.cluster.partition.PartitionReport`
  (overlap weight kept intra-shard vs cut across shards); when the kept
  fraction drops below a floor, co-residence the cost model pays for has
  been lost and a rebalance wins it back.

Every threshold has a disabling value, so a policy can watch a single
signal. Splits are *clean by default*: a shard is only divided along
connected components of its overlap graph (no shared stream ever crosses
the new boundary, so per-query costs are unchanged); ``allow_cut_splits``
additionally permits label-propagation community cuts on monolithic shards,
trading bounded duplicated stream spend for width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StreamError

__all__ = ["ElasticPolicy"]


@dataclass(frozen=True)
class ElasticPolicy:
    """Configuration of a cluster's automatic width management.

    Parameters
    ----------
    check_every:
        Evaluate the policy after every ``check_every`` batches (``1`` =
        after each batch).
    min_shards, max_shards:
        Hard width bounds: drains never shrink below ``min_shards``, splits
        never grow beyond ``max_shards``.
    split_above:
        Load-imbalance trigger: split the busiest shard when its population
        exceeds ``split_above`` times the ideal (total queries / width).
    min_split_size:
        Never split a shard holding fewer queries than this (small shards
        are cheap to serve; splitting them only costs topology churn).
    target_shard_queries:
        Absolute occupancy target: a shard holding more queries than this is
        split regardless of imbalance (the knob that grows the cluster under
        a rising population even when every shard is equally loaded).
        ``0`` disables.
    drain_below:
        Underload trigger: drain a non-empty shard whose population falls
        below ``drain_below`` times the ideal. ``0.0`` disables.
    drain_empty:
        Retire query-less shards (above ``min_shards``) automatically.
    min_kept_fraction:
        Cut-spend trigger: request a rebalance when the live partition keeps
        less than this fraction of the population's overlap weight
        intra-shard. ``0.0`` disables.
    churn_every:
        Churn trigger: request a rebalance after this many admissions plus
        departures since the last rebalance check. ``0`` disables.
    replans_every:
        Drift trigger: request a rebalance after this many adaptive re-plans
        (summed over every shard's :class:`AdaptiveController`) since the
        last rebalance check. ``0`` disables.
    allow_cut_splits:
        When True, a monolithic (single-component) overloaded shard may be
        split along label-propagation communities even though that cuts
        shared streams; the default only ever splits along stream-disjoint
        components, which is cost-neutral by construction.
    """

    check_every: int = 1
    min_shards: int = 1
    max_shards: int = 32
    split_above: float = 2.0
    min_split_size: int = 8
    target_shard_queries: int = 0
    drain_below: float = 0.25
    drain_empty: bool = True
    min_kept_fraction: float = 0.0
    churn_every: int = 0
    replans_every: int = 0
    allow_cut_splits: bool = False

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise StreamError(f"check_every must be >= 1, got {self.check_every}")
        if self.min_shards < 1:
            raise StreamError(f"min_shards must be >= 1, got {self.min_shards}")
        if self.max_shards < self.min_shards:
            raise StreamError(
                f"max_shards ({self.max_shards}) cannot be smaller than "
                f"min_shards ({self.min_shards})"
            )
        if self.split_above <= 1.0:
            raise StreamError(
                f"split_above must exceed 1.0 (the ideal load), got {self.split_above}"
            )
        if self.min_split_size < 2:
            raise StreamError(
                f"min_split_size must be >= 2, got {self.min_split_size}"
            )
        if self.target_shard_queries < 0:
            raise StreamError(
                f"target_shard_queries must be >= 0, got {self.target_shard_queries}"
            )
        if not 0.0 <= self.drain_below < 1.0:
            raise StreamError(
                f"drain_below must be in [0, 1), got {self.drain_below}"
            )
        if not 0.0 <= self.min_kept_fraction <= 1.0:
            raise StreamError(
                f"min_kept_fraction must be in [0, 1], got {self.min_kept_fraction}"
            )
        if self.churn_every < 0:
            raise StreamError(f"churn_every must be >= 0, got {self.churn_every}")
        if self.replans_every < 0:
            raise StreamError(
                f"replans_every must be >= 0, got {self.replans_every}"
            )
