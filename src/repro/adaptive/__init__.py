"""Adaptive serving: online selectivity tracking and drift-triggered re-planning.

The paper's schedules are only optimal for the probabilities they were
planned with; in a long-running server those probabilities drift. This
package closes the loop:

* :mod:`~repro.adaptive.tracker` — per-leaf Beta posteriors over a sliding
  window of observed probe outcomes (:class:`LeafPosterior`,
  :class:`SelectivityTracker`);
* :mod:`~repro.adaptive.policy` — the knobs (:class:`AdaptivePolicy`:
  window, divergence threshold, minimum evidence, re-plan cooldown) and the
  :class:`ReplanEvent` audit record;
* :mod:`~repro.adaptive.controller` — :class:`AdaptiveController`, the state
  machine a :class:`~repro.service.server.QueryServer` consults every round:
  it pools outcomes per *canonical* leaf across isomorphic queries, detects
  divergence from the probabilities the current plan assumed, and proposes
  updated probabilities for an incremental re-plan (:class:`ShapeBelief`
  snapshots carry that state across shard migrations);
* :mod:`~repro.adaptive.elastic` — :class:`ElasticPolicy`, the cluster-level
  sibling: thresholds on load imbalance, churn/drift counters and cut spend
  that let a :class:`~repro.cluster.cluster.ClusterServer` split, drain and
  rebalance its shards without operator calls.

The server wires it in behind ``QueryServer(adaptive=AdaptivePolicy(...))``:
on drift it re-runs the admission scheduler on the updated canonical leaves,
invalidates the stale :class:`~repro.service.plan_cache.PlanCache` entries,
re-expands the schedule for every registered isomorph and rebuilds the
merged :class:`~repro.service.shared_plan.SharedPlan`.
"""

from repro.adaptive.controller import AdaptiveController, ShapeBelief
from repro.adaptive.elastic import ElasticPolicy
from repro.adaptive.policy import AdaptivePolicy, ReplanEvent
from repro.adaptive.tracker import LeafPosterior, SelectivityTracker, SharedLeafPool

__all__ = [
    "AdaptivePolicy",
    "ElasticPolicy",
    "ReplanEvent",
    "LeafPosterior",
    "SelectivityTracker",
    "SharedLeafPool",
    "AdaptiveController",
    "ShapeBelief",
]
