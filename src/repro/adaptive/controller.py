"""The adaptive serving state machine consulted by :class:`QueryServer`.

One :class:`AdaptiveController` instance serves one server. It tracks, per
*canonical* query shape:

* the baseline probabilities the current plan was computed with (admission
  estimates at first, the re-planned estimates afterwards);
* a pooled :class:`~repro.adaptive.tracker.SelectivityTracker` posterior per
  canonical leaf, fed by every registered isomorph's probe outcomes;
* re-plan bookkeeping (cooldown clock, audit log).

Folded duplicate leaves (a canonical leaf covering ``k`` identical original
leaves, with probability ``p**k``) are handled at the *base* level: the
tracker pools the original leaves' outcomes to estimate ``p``, and the
controller folds the estimate back to ``p**k`` when proposing plan
probabilities — consistent with how
:func:`~repro.service.canonical.canonicalize` built the pseudo-leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from repro.adaptive.policy import AdaptivePolicy, ReplanEvent
from repro.adaptive.tracker import LeafPosterior, SelectivityTracker, SharedLeafPool
from repro.errors import StreamError

__all__ = ["AdaptiveController", "ShapeBelief", "fold_base_probs"]

#: Clip proposed plan probabilities into the open interval the ratio
#: schedulers require (they divide by both ``p`` and ``1 - p``).
_PROB_FLOOR = 1e-6


def _clip(prob: float) -> float:
    return min(max(prob, _PROB_FLOOR), 1.0 - _PROB_FLOOR)


def fold_base_probs(
    base_probs: Sequence[float], fold_sizes: Sequence[int]
) -> tuple[float, ...]:
    """Fold per-copy probabilities to canonical-leaf probabilities (``p**k``).

    Mirrors duplicate-leaf folding in
    :func:`~repro.service.canonical.canonicalize`; results are clipped
    strictly inside (0, 1) for the ratio schedulers.
    """
    if len(base_probs) != len(fold_sizes):
        raise StreamError(
            f"got {len(base_probs)} probabilities for {len(fold_sizes)} canonical leaves"
        )
    return tuple(_clip(float(p) ** int(k)) for p, k in zip(base_probs, fold_sizes))


@dataclass(frozen=True)
class ShapeBelief:
    """One canonical shape's adaptive state, lifted out for transplant.

    What a query migration must carry so the destination server keeps
    serving the shape on the belief the source built up: the baseline
    probabilities the current plan assumed, the duplicate-fold sizes, the
    re-plan cooldown clock and an independent copy of every per-leaf
    posterior. Produced by :meth:`AdaptiveController.export_shape`, consumed
    by :meth:`AdaptiveController.import_shape`.
    """

    baseline: tuple[float, ...]
    fold_sizes: tuple[int, ...]
    last_replan: int | None
    posteriors: tuple[LeafPosterior | None, ...]


class AdaptiveController:
    """Per-canonical-shape drift detection and re-plan proposals."""

    def __init__(self, policy: AdaptivePolicy | None = None) -> None:
        self.policy = policy if policy is not None else AdaptivePolicy()
        self.tracker = SelectivityTracker(
            window=self.policy.window, prior=self.policy.prior
        )
        #: Cross-shape evidence pool (sub-tree belief sharing), present only
        #: when the policy opts in — see AdaptivePolicy.share_leaf_beliefs.
        self.pool: SharedLeafPool | None = (
            SharedLeafPool(window=self.policy.window, prior=self.policy.prior)
            if self.policy.share_leaf_beliefs
            else None
        )
        #: canonical key -> per-canonical-leaf pooled identity (the admission
        #: leaf_ids), kept so observations can be mirrored into the pool.
        self._leaf_ids: dict[str, tuple[Hashable, ...]] = {}
        #: canonical key -> per-canonical-leaf *base* probability the current
        #: plan assumed (for a folded leaf, the per-copy probability).
        self._baseline: dict[str, tuple[float, ...]] = {}
        #: canonical key -> duplicate-fold multiplicity per canonical leaf.
        self._fold: dict[str, tuple[int, ...]] = {}
        self._last_replan: dict[str, int] = {}
        self.events: list[ReplanEvent] = []

    # -- population lifecycle -------------------------------------------

    def admit(
        self,
        key: str,
        base_probs: Sequence[float],
        fold_sizes: Sequence[int],
        *,
        leaf_ids: Sequence[Hashable] | None = None,
    ) -> None:
        """Register a canonical shape's plan assumptions (idempotent per key).

        ``leaf_ids`` (optional) are per-canonical-leaf pooled identities —
        interned leaves from the substore. With belief pooling enabled, each
        leaf already observed under *other* shapes warm-starts this shape's
        posterior from the pool's cloned evidence, and this shape's future
        observations are mirrored back into the pool.
        """
        if key in self._baseline:
            return
        base_probs = tuple(float(p) for p in base_probs)
        fold_sizes = tuple(int(k) for k in fold_sizes)
        if len(base_probs) != len(fold_sizes):
            raise StreamError(
                f"baseline covers {len(base_probs)} leaves but fold sizes cover "
                f"{len(fold_sizes)}"
            )
        self._baseline[key] = base_probs
        self._fold[key] = fold_sizes
        if leaf_ids is not None:
            leaf_ids = tuple(leaf_ids)
            if len(leaf_ids) != len(base_probs):
                raise StreamError(
                    f"got {len(leaf_ids)} leaf identities for "
                    f"{len(base_probs)} canonical leaves"
                )
            self._leaf_ids[key] = leaf_ids
            if self.pool is not None:
                for gindex, leaf_id in enumerate(leaf_ids):
                    warm = self.pool.warm_start(leaf_id)
                    if warm is not None:
                        self.tracker.adopt((key, gindex), warm)

    def retire(self, key: str) -> None:
        """Forget a canonical shape (last isomorph deregistered).

        The shared pool deliberately keeps the shape's leaf evidence: the
        whole point of pooling is that a later shape containing the same
        leaves inherits it.
        """
        baseline = self._baseline.pop(key, None)
        self._fold.pop(key, None)
        self._last_replan.pop(key, None)
        self._leaf_ids.pop(key, None)
        if baseline is not None:
            for gindex in range(len(baseline)):
                self.tracker.drop((key, gindex))

    def tracked_keys(self) -> tuple[str, ...]:
        return tuple(self._baseline)

    def export_shape(self, key: str) -> ShapeBelief | None:
        """Snapshot ``key``'s belief for migration (``None`` when untracked).

        The posteriors are cloned, so exporting does not entangle the source
        tracker with the destination when isomorphs of the shape remain
        registered here.
        """
        baseline = self._baseline.get(key)
        if baseline is None:
            return None
        return ShapeBelief(
            baseline=baseline,
            fold_sizes=self._fold[key],
            last_replan=self._last_replan.get(key),
            posteriors=tuple(
                posterior.clone() if posterior is not None else None
                for posterior in (
                    self.tracker.get((key, gindex)) for gindex in range(len(baseline))
                )
            ),
        )

    def import_shape(self, key: str, belief: ShapeBelief) -> bool:
        """Adopt a migrated shape's belief; returns False when already tracked.

        A shape this controller already tracks keeps its own state — the
        resident isomorphs' pooled evidence outranks a transplanted copy.
        """
        if key in self._baseline:
            return False
        self._baseline[key] = tuple(float(p) for p in belief.baseline)
        self._fold[key] = tuple(int(k) for k in belief.fold_sizes)
        if belief.last_replan is not None:
            self._last_replan[key] = belief.last_replan
        for gindex, posterior in enumerate(belief.posteriors):
            if posterior is not None:
                self.tracker.adopt((key, gindex), posterior)
        return True

    def baseline(self, key: str) -> tuple[float, ...]:
        try:
            return self._baseline[key]
        except KeyError:
            raise StreamError(f"canonical key {key!r} was never admitted") from None

    # -- observation -----------------------------------------------------

    def observe(self, key: str, canonical_gindex: int, outcome: bool) -> None:
        """Fold one evaluated probe's outcome into the shape's posterior.

        With pooling enabled the outcome is mirrored into the shared pool
        under the leaf's interned identity, so future shapes sharing the
        leaf inherit this evidence.
        """
        self.tracker.observe((key, canonical_gindex), outcome)
        if self.pool is not None:
            leaf_ids = self._leaf_ids.get(key)
            if leaf_ids is not None and canonical_gindex < len(leaf_ids):
                self.pool.observe(leaf_ids[canonical_gindex], outcome)

    # -- drift detection -------------------------------------------------

    def in_cooldown(self, key: str, round_index: int) -> bool:
        last = self._last_replan.get(key)
        return last is not None and round_index - last < self.policy.cooldown

    def drifted_leaves(self, key: str) -> tuple[int, ...]:
        """Canonical leaves whose windowed posterior left the plan's assumption.

        A leaf counts as drifted only with at least ``min_samples`` window
        observations *and* a divergence beyond ``threshold``.
        """
        baseline = self.baseline(key)
        drifted: list[int] = []
        for gindex, assumed in enumerate(baseline):
            posterior = self.tracker.get((key, gindex))
            if posterior is None or posterior.window_trials < self.policy.min_samples:
                continue
            if posterior.divergence(assumed) > self.policy.threshold:
                drifted.append(gindex)
        return tuple(drifted)

    def should_replan(self, key: str, round_index: int) -> tuple[int, ...]:
        """Drifted leaves of ``key`` if a re-plan is due now, else ``()``."""
        if self.in_cooldown(key, round_index):
            return ()
        return self.drifted_leaves(key)

    # -- re-plan proposals -----------------------------------------------

    def proposed_base_probs(self, key: str) -> tuple[float, ...]:
        """Updated per-copy probability per canonical leaf.

        Observed leaves take their windowed posterior mean; unobserved leaves
        keep the plan's assumption. Estimates are clipped strictly inside
        (0, 1) for the ratio schedulers.
        """
        return tuple(
            _clip(self.tracker.estimate((key, gindex), default=assumed))
            for gindex, assumed in enumerate(self.baseline(key))
        )

    def fold_probs(self, key: str, base_probs: Sequence[float]) -> tuple[float, ...]:
        """Fold per-copy probabilities of ``key`` to canonical-leaf probabilities."""
        return fold_base_probs(base_probs, self._fold[key])

    def rebase(
        self, key: str, round_index: int, new_base_probs: Sequence[float]
    ) -> None:
        """Adopt a new plan's probabilities as the drift baseline.

        Resets the shape's posterior windows so the next drift decision is
        made from evidence gathered *under the new plan*, and starts the
        cooldown clock.
        """
        baseline = self.baseline(key)
        new_base_probs = tuple(float(p) for p in new_base_probs)
        if len(new_base_probs) != len(baseline):
            raise StreamError(
                f"rebase covers {len(new_base_probs)} leaves, baseline has "
                f"{len(baseline)}"
            )
        self._baseline[key] = new_base_probs
        self._last_replan[key] = round_index
        for gindex in range(len(new_base_probs)):
            posterior = self.tracker.get((key, gindex))
            if posterior is not None:
                posterior.reset_window()

    def record_event(self, event: ReplanEvent) -> None:
        self.events.append(event)

    @property
    def replans(self) -> int:
        return len(self.events)
