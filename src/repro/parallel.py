"""Process-parallel sweep utility.

The experiment drivers evaluate 10^4-10^5 independent instances; this module
provides a deterministic chunked map that runs serially by default (tests,
small sweeps) and fans out to a process pool when asked — following the HPC
guide's advice to keep parallelism at the outermost, embarrassingly parallel
level.

Determinism: callers split randomness *before* the map (one seed per work
item via :func:`spawn_seeds`), so results are identical for any worker count.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

__all__ = ["pmap", "spawn_seeds", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default 1 = serial)."""
    try:
        return max(1, int(os.environ.get("REPRO_WORKERS", "1")))
    except ValueError:
        return 1


def spawn_seeds(seed: int | None, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seed sequences from one root seed."""
    return list(np.random.SeedSequence(seed).spawn(count))


def pmap(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    workers: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, optionally with a process pool.

    Parameters
    ----------
    workers:
        ``None`` reads ``REPRO_WORKERS`` (default 1). 1 means plain serial
        ``map`` — no pool, no pickling, easiest to debug and to profile.
    chunksize:
        Pool chunk size; defaults to ``ceil(len(items) / (8 * workers))`` to
        amortize inter-process overhead on cheap work items.

    Notes
    -----
    ``fn`` and the items must be picklable when ``workers > 1`` (module-level
    functions and dataclasses are; closures are not).

    The pool is pinned to the ``spawn`` start method on every platform:
    fork (the Linux default before 3.14) copies the parent mid-flight, so a
    lock held by any parent thread — the cluster's shard pool and telemetry
    both hold locks routinely — is cloned in the locked state and the child
    deadlocks on first acquire. Spawn starts from a fresh interpreter, which
    also keeps Linux results byte-identical with macOS/Windows.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = max(1, -(-len(items) // (8 * workers)))
    context = multiprocessing.get_context("spawn")
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
