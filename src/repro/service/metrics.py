"""Serving-layer observability: per-query and aggregate counters.

The serving layer's whole value proposition — plans paid once, windows paid
once — must be *measurable*, so the server maintains a
:class:`ServiceMetrics` ledger: per-query cost/probe/outcome counters,
aggregate sharing counters (items saved, free probes), the plan cache's
hit rate, and a per-round cost series for tail percentiles (p50/p95/p99).

The percentile properties route through :class:`repro.obs.Histogram` —
the same fixed-bucket interpolation the cluster's telemetry histograms
use — so a shard's ``ServiceMetrics`` percentiles and the cluster-level
metrics registry agree on what "p99 round cost" means (one bucketing
scheme, one interpolation rule). The exact nearest-rank :func:`percentile`
stays available for callers that want the raw order statistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import Histogram

__all__ = ["QueryStats", "ServiceMetrics", "percentile", "ROUND_COST_WINDOW"]

#: Sliding-window size for the per-round cost series. The server runs
#: indefinitely, so the ledger cannot keep every round's cost: the window
#: bounds memory at a few pages while keeping the percentile scope recent
#: enough to reflect the *current* population (a re-plan or churn event
#: washes out of the tail statistics within one window, not never). Lifetime
#: aggregates (``rounds``/``total_cost``) are unaffected by the truncation.
ROUND_COST_WINDOW = 4096


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Robust on degenerate windows: an empty ``values`` yields 0.0 (after
    ``q`` validation — an out-of-range ``q`` is a caller bug regardless of
    the data) and a singleton window yields its only element for every
    ``q``.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


@dataclass
class QueryStats:
    """Lifetime counters of one registered query."""

    rounds: int = 0
    cost: float = 0.0
    true_count: int = 0
    probes: int = 0
    items_fetched: int = 0
    items_saved: int = 0

    @property
    def mean_cost(self) -> float:
        return self.cost / self.rounds if self.rounds else 0.0

    @property
    def true_rate(self) -> float:
        return self.true_count / self.rounds if self.rounds else 0.0


@dataclass
class ServiceMetrics:
    """Aggregate view of a :class:`~repro.service.server.QueryServer`'s history.

    ``items_saved`` counts data items a probe needed but found already in the
    shared cache — each one is a unit of acquisition cost some query did not
    pay thanks to sharing (within a round *and* across rounds of the
    continuous stream). ``free_probes`` counts leaf evaluations that cost
    nothing at all.

    ``round_costs`` keeps only the most recent :data:`ROUND_COST_WINDOW`
    rounds (the server runs indefinitely; the percentiles are over that
    sliding window, while ``total_cost``/``rounds`` cover the full lifetime).
    """

    rounds: int = 0
    total_cost: float = 0.0
    total_probes: int = 0
    free_probes: int = 0
    items_fetched: int = 0
    items_saved: int = 0
    registrations: int = 0
    deregistrations: int = 0
    #: Queries transplanted in/out by shard migration (split/drain/rebalance).
    #: Deliberately separate from registrations/deregistrations: a migration
    #: is a placement change, not population churn, and elastic policies key
    #: off the churn counters.
    migrations_in: int = 0
    migrations_out: int = 0
    replans: int = 0
    #: Drift-triggered re-plans suppressed by :class:`~repro.adaptive.AdaptivePolicy`
    #: hysteresis (``expected_saving`` below ``min_saving``).
    replans_suppressed: int = 0
    plan_cache_hit_rate: float = 0.0
    round_costs: list[float] = field(default_factory=list)
    per_query: dict[str, QueryStats] = field(default_factory=dict)

    # -- recording ------------------------------------------------------

    def record_round(self, cost: float) -> None:
        self.rounds += 1
        self.total_cost += cost
        self.round_costs.append(cost)
        if len(self.round_costs) > ROUND_COST_WINDOW:
            del self.round_costs[: -ROUND_COST_WINDOW]

    def query_stats(self, name: str) -> QueryStats:
        return self.per_query.setdefault(name, QueryStats())

    # -- derived --------------------------------------------------------

    @property
    def mean_round_cost(self) -> float:
        return self.total_cost / self.rounds if self.rounds else 0.0

    def round_cost_histogram(self) -> Histogram:
        """The sliding window loaded into a telemetry histogram.

        Built on demand (report time, never the round loop) so the
        percentile properties interpolate with exactly the bucketing the
        cluster's metrics registry uses — service-level and cluster-level
        percentiles are the same function of the same buckets.
        """
        hist = Histogram()
        for cost in self.round_costs:
            hist.observe(cost)
        return hist

    @property
    def p50_round_cost(self) -> float:
        return self.round_cost_histogram().percentile(50.0)

    @property
    def p95_round_cost(self) -> float:
        return self.round_cost_histogram().percentile(95.0)

    @property
    def p99_round_cost(self) -> float:
        return self.round_cost_histogram().percentile(99.0)

    @property
    def free_probe_rate(self) -> float:
        return self.free_probes / self.total_probes if self.total_probes else 0.0

    @property
    def sharing_rate(self) -> float:
        """Fraction of needed items served from the shared cache."""
        needed = self.items_fetched + self.items_saved
        return self.items_saved / needed if needed else 0.0

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"service: {self.rounds} rounds, {len(self.per_query)} queries tracked",
            f"  total cost        {self.total_cost:.6g}"
            f" ({self.mean_round_cost:.6g}/round,"
            f" p50 {self.p50_round_cost:.6g}, p95 {self.p95_round_cost:.6g},"
            f" p99 {self.p99_round_cost:.6g})",
            f"  probes            {self.total_probes}"
            f" ({self.free_probe_rate:.1%} free via sharing)",
            f"  items             {self.items_fetched} fetched,"
            f" {self.items_saved} saved ({self.sharing_rate:.1%} shared)",
            f"  plan cache        hit rate {self.plan_cache_hit_rate:.1%}",
            f"  churn             {self.registrations} registered,"
            f" {self.deregistrations} deregistered,"
            f" {self.migrations_in}/{self.migrations_out} migrated in/out,"
            f" {self.replans} adaptive replans"
            f" ({self.replans_suppressed} suppressed)",
        ]
        for name in sorted(self.per_query):
            stats = self.per_query[name]
            lines.append(
                f"  {name}: {stats.mean_cost:.6g}/round over {stats.rounds} rounds,"
                f" TRUE rate {stats.true_rate:.3f}"
            )
        return "\n".join(lines)
