"""Cross-query global schedules: one interleaved probe order for a population.

Running each registered query's schedule back-to-back already shares the
item cache, but the *order* is still per-query greedy: an expensive stream
window fetched late by query 1 is paid early by query 7. The shared plan
merges all per-query schedules into one global probe order chosen by
marginal cost-effectiveness across the whole population:

* each query's leaves stay in its own schedule order (so per-query execution
  semantics — short-circuiting, Proposition 2 costs — are preserved);
* among the queries' *next* leaves, the globally cheapest-per-unit-of-
  resolution probe goes first. The marginal cost of a probe counts only the
  items not already planned for fetching by an earlier probe of *any* query —
  so once one query pays for a window, every other query's probes on that
  stream become free and float to the front ("pay one, get hundreds").

:func:`merge_schedules` builds the plan; :func:`execute_round` runs one
round of it against a shared cache with per-query early termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Union

from repro.core.resolution import TreeIndex
from repro.core.schedule import Schedule
from repro.core.tree import AndTree, DnfTree, QueryTree
from repro.engine.executor import ExecutionResult, LeafOracle
from repro.errors import StreamError
from repro.streams.cache import CountingCache, DataItemCache

__all__ = ["Probe", "SharedPlan", "merge_schedules", "execute_round", "RoundStats"]

_EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class Probe:
    """One planned leaf evaluation: query name + global leaf index in its tree."""

    query: str
    gindex: int


@dataclass(frozen=True)
class SharedPlan:
    """An interleaved probe order over a query population."""

    probes: tuple[Probe, ...]
    planned_items: Mapping[str, int]

    @property
    def size(self) -> int:
        return len(self.probes)

    def per_query(self) -> dict[str, tuple[int, ...]]:
        """Recover each query's leaf order as embedded in the global plan."""
        out: dict[str, list[int]] = {}
        for probe in self.probes:
            out.setdefault(probe.query, []).append(probe.gindex)
        return {name: tuple(order) for name, order in out.items()}

    def interleaving_degree(self) -> float:
        """Fraction of adjacent probe pairs that switch query (0 = fully blocked)."""
        if len(self.probes) < 2:
            return 0.0
        switches = sum(
            1
            for first, second in zip(self.probes, self.probes[1:])
            if first.query != second.query
        )
        return switches / (len(self.probes) - 1)


def merge_schedules(
    trees: Mapping[str, Union[AndTree, DnfTree, QueryTree]],
    schedules: Mapping[str, Schedule],
    costs: Mapping[str, float],
) -> SharedPlan:
    """Merge per-query schedules into one cost-effectiveness-ordered plan.

    Parameters
    ----------
    trees:
        Query name -> tree (anything with ``.leaves``).
    schedules:
        Query name -> that tree's schedule (same key set as ``trees``).
    costs:
        Global per-item stream costs (the registry's table).

    Greedy merge: repeatedly pick, among the queries' next-up leaves, the one
    minimizing ``marginal_cost / (failure_prob + eps)`` — i.e. cheapest
    expected spend per unit of short-circuiting power. Ties break toward the
    stream with the most remaining demand across the population, so widely
    shared windows are paid earliest.
    """
    if set(trees) != set(schedules):
        raise StreamError(
            f"trees and schedules disagree: {sorted(trees)} vs {sorted(schedules)}"
        )
    names = list(trees)
    leaves = {name: trees[name].leaves for name in names}
    pointers = {name: 0 for name in names}
    # Remaining population-wide demand per stream (for tie-breaking).
    demand: dict[str, int] = {}
    for name in names:
        for g in schedules[name]:
            leaf = leaves[name][g]
            demand[leaf.stream] = demand.get(leaf.stream, 0) + 1
    planned: dict[str, int] = {}
    probes: list[Probe] = []
    total = sum(len(schedules[name]) for name in names)
    while len(probes) < total:
        best_name: str | None = None
        best_score: tuple[float, int] | None = None
        for name in names:
            ptr = pointers[name]
            if ptr >= len(schedules[name]):
                continue
            leaf = leaves[name][schedules[name][ptr]]
            missing = max(0, leaf.items - planned.get(leaf.stream, 0))
            marginal = missing * costs.get(leaf.stream, 1.0)
            score = (marginal / (leaf.fail + _EPSILON), -demand[leaf.stream])
            if best_score is None or score < best_score:
                best_score = score
                best_name = name
        assert best_name is not None
        g = schedules[best_name][pointers[best_name]]
        leaf = leaves[best_name][g]
        planned[leaf.stream] = max(planned.get(leaf.stream, 0), leaf.items)
        demand[leaf.stream] -= 1
        pointers[best_name] += 1
        probes.append(Probe(best_name, g))
    return SharedPlan(probes=tuple(probes), planned_items=planned)


@dataclass
class RoundStats:
    """Aggregate and per-query accounting of one executed round."""

    cost: float = 0.0
    probes: int = 0
    free_probes: int = 0
    items_fetched: int = 0
    items_saved: int = 0
    query_items_fetched: dict[str, int] = field(default_factory=dict)
    query_items_saved: dict[str, int] = field(default_factory=dict)

    def record_probe(
        self, query: str, window_items: int, cost: float, fetched_items: int
    ) -> None:
        """Account one executed probe (shared by every round-loop engine,
        so scalar and vectorized metrics cannot drift apart)."""
        self.cost += cost
        self.probes += 1
        self.items_fetched += fetched_items
        saved = window_items - fetched_items
        self.items_saved += saved
        self.query_items_fetched[query] = (
            self.query_items_fetched.get(query, 0) + fetched_items
        )
        self.query_items_saved[query] = self.query_items_saved.get(query, 0) + saved
        if fetched_items == 0:
            self.free_probes += 1


def execute_round(
    plan: SharedPlan,
    indexes: Mapping[str, TreeIndex],
    cache: Union[DataItemCache, CountingCache],
    oracles: Mapping[str, LeafOracle],
) -> tuple[dict[str, ExecutionResult], RoundStats]:
    """Run one round of the shared plan with per-query early termination.

    Walks the global probe order once; a probe is skipped for free when its
    query's root is already resolved (early termination) or the leaf's AND/OR
    ancestors short-circuited it away. Returns per-query
    :class:`~repro.engine.executor.ExecutionResult` (identical semantics to
    running each query through :class:`~repro.engine.executor.ScheduleExecutor`)
    plus round-level sharing statistics.
    """
    states = {name: index.new_state() for name, index in indexes.items()}
    evaluated: dict[str, list[int]] = {name: [] for name in indexes}
    skipped: dict[str, list[int]] = {name: [] for name in indexes}
    outcomes: dict[str, dict[int, bool]] = {name: {} for name in indexes}
    query_cost: dict[str, float] = {name: 0.0 for name in indexes}
    stats = RoundStats()
    for probe in plan.probes:
        state = states[probe.query]
        if state.root_value is not None or state.is_skipped(probe.gindex):
            skipped[probe.query].append(probe.gindex)
            continue
        leaf = indexes[probe.query].tree.leaves[probe.gindex]
        fetch = cache.fetch_window(leaf.stream, leaf.items)
        outcome = oracles[probe.query].outcome(probe.gindex, leaf, fetch.values)
        outcomes[probe.query][probe.gindex] = outcome
        evaluated[probe.query].append(probe.gindex)
        state.set_leaf(probe.gindex, outcome)
        query_cost[probe.query] += fetch.cost
        stats.record_probe(probe.query, leaf.items, fetch.cost, fetch.fetched_items)
    results: dict[str, ExecutionResult] = {}
    for name, state in states.items():
        value = state.root_value
        assert value is not None, "a full schedule always resolves the root"
        results[name] = ExecutionResult(
            value=value,
            cost=query_cost[name],
            evaluated=tuple(evaluated[name]),
            skipped=tuple(skipped[name]),
            outcomes=outcomes[name],
        )
    return results, stats
